#!/usr/bin/env bash
# End-to-end checks of galaxy_cli error handling: unknown flags, malformed
# numbers, out-of-range gamma, and missing input files must produce a
# one-line diagnostic on stderr and a non-zero exit; bounded runs must
# report their result quality. Invoked by ctest as:
#
#   cli_errors_test.sh /path/to/galaxy_cli

set -u

CLI="${1:?usage: cli_errors_test.sh /path/to/galaxy_cli}"
TMPDIR_LOCAL="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_LOCAL"' EXIT

failures=0

# expect_fail <expected-exit> <stderr-substring> <args...>
expect_fail() {
  local want_exit="$1"; shift
  local want_substr="$1"; shift
  local stderr_file="$TMPDIR_LOCAL/stderr"
  "$CLI" "$@" >/dev/null 2>"$stderr_file"
  local got_exit=$?
  local stderr_text
  stderr_text="$(cat "$stderr_file")"
  if [[ "$got_exit" -ne "$want_exit" ]]; then
    echo "FAIL: '$*' exited $got_exit, want $want_exit" >&2
    failures=$((failures + 1))
  fi
  if [[ "$stderr_text" != *"$want_substr"* ]]; then
    echo "FAIL: '$*' stderr '$stderr_text' missing '$want_substr'" >&2
    failures=$((failures + 1))
  fi
  # One-line diagnostic: a single error line (usage help may follow it).
  local first_line
  first_line="$(head -1 "$stderr_file")"
  if [[ -z "$first_line" ]]; then
    echo "FAIL: '$*' produced no diagnostic on stderr" >&2
    failures=$((failures + 1))
  fi
}

CSV="$TMPDIR_LOCAL/data.csv"
"$CLI" generate --type grouped --out "$CSV" --records 500 --seed 5 \
  >/dev/null || { echo "FAIL: generate"; exit 1; }

# Unknown flags -> exit 2.
expect_fail 2 "unknown flag: --frobnicate" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --frobnicate 1
expect_fail 2 "unknown flag: --gama" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --gama 0.5
expect_fail 2 "unknown flag" query --csv "$CSV" --sql "SELECT 1" --bogus x
expect_fail 2 "unknown flag" generate --out "$CSV" --typ imdb
expect_fail 2 "unknown command" frobnicate --csv "$CSV"

# Malformed numbers -> exit 2.
expect_fail 2 "expects a number" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --gamma banana
expect_fail 2 "expects an integer" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --timeout-ms 5s
expect_fail 2 "expects an integer" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --max-comparisons 1e9

# Out-of-range gamma -> exit 2 (checked before the CSV is even opened).
expect_fail 2 "gamma must be in [0.5, 1]" \
  skyline --csv /nonexistent.csv --group-by class --attrs a0,a1 --gamma 0.3
expect_fail 2 "gamma must be in [0.5, 1]" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --gamma 1.5
expect_fail 2 "must be non-negative" \
  skyline --csv "$CSV" --group-by class --attrs a0,a1 --timeout-ms -5

# Missing input file -> exit 1 with a NotFound diagnostic.
expect_fail 1 "cannot open file" \
  skyline --csv /nonexistent.csv --group-by class --attrs a0,a1
expect_fail 1 "NotFound" query --csv /nonexistent.csv --sql "SELECT 1"

# Bounded runs report quality; --strict turns trips into errors.
out="$("$CLI" skyline --csv "$CSV" --group-by class --attrs a0,a1 \
  --max-comparisons 1000000)"
if [[ "$out" != *"# quality: exact"* ]]; then
  echo "FAIL: bounded-but-untripped run did not report exact quality" >&2
  failures=$((failures + 1))
fi
"$CLI" skyline --csv "$CSV" --group-by class --attrs a0,a1 \
  --max-comparisons 1 --strict >/dev/null 2>"$TMPDIR_LOCAL/stderr"
if [[ $? -ne 1 ]] || ! grep -q "ResourceExhausted" "$TMPDIR_LOCAL/stderr"; then
  echo "FAIL: --strict budget trip did not produce ResourceExhausted" >&2
  failures=$((failures + 1))
fi
# A dataset big enough that the degradation pass cannot finish either, so
# the salvage result is genuinely approximate.
BIG="$TMPDIR_LOCAL/big.csv"
"$CLI" generate --type grouped --out "$BIG" --records 60000 --seed 3 \
  >/dev/null || { echo "FAIL: generate big"; exit 1; }
out="$("$CLI" skyline --csv "$BIG" --group-by class \
  --attrs a0,a1,a2,a3,a4 --algorithm NL --max-comparisons 100)"
if [[ $? -ne 0 || "$out" != *"# quality: approximate-superset"* ]]; then
  echo "FAIL: degraded run did not report approximate-superset" >&2
  failures=$((failures + 1))
fi

if [[ "$failures" -ne 0 ]]; then
  echo "$failures failure(s)" >&2
  exit 1
fi
echo "cli_errors_test: all checks passed"
