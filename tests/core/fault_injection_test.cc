// Fault-injection campaign over the differential matrix: cancellation,
// deadline, and budget trips at randomized comparison counts must yield
// bounded unwinds and either the matching error Status or a sound
// approximate superset. The ISSUE acceptance bar is 1000+ randomized
// fault points, which FaultInjectionTest.ThousandRandomizedFaultPoints
// clears in one run.

#include "testing/fault_injection.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/exec_context.h"
#include "core/gamma.h"
#include "core/parallel.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property_gen.h"

namespace galaxy::testing {
namespace {

// Fixed small workload used by the targeted edge-case tests below.
struct FaultFixture {
  core::GroupedDataset dataset;
  double gamma;
  OracleResult oracle;

  static FaultFixture Make(uint64_t seed) {
    Rng rng(seed);
    PointGroups points = GenerateAdversarialPoints(rng);
    double gamma = PickAdversarialGamma(rng);
    core::GroupedDataset dataset = PointsToDataset(points);
    OracleResult oracle =
        ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
    return {std::move(dataset), gamma, std::move(oracle)};
  }
};

TEST(FaultInjectionTest, ThousandRandomizedFaultPoints) {
  uint64_t points = 0;
  FaultDivergence divergence = FuzzFaults(/*seed=*/20260806,
                                          /*iterations=*/250, &points);
  EXPECT_GE(points, 1000u);
  EXPECT_FALSE(divergence.found)
      << "dataset seed " << divergence.dataset_seed << " gamma "
      << divergence.gamma << "\nconfig: " << divergence.config.Name()
      << "\nplan: " << divergence.plan.Name()
      << "\ndetail: " << divergence.detail;
}

TEST(FaultInjectionTest, TriggerZeroWithDegradationIsSoundSuperset) {
  FaultFixture f = FaultFixture::Make(101);
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.trigger = 0;
  plan.allow_approximate = true;
  for (const DifferentialConfig& config : AllConfigurations()) {
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << config.Name() << ": " << outcome.detail;
    EXPECT_TRUE(outcome.tripped) << config.Name();
  }
}

TEST(FaultInjectionTest, TriggerZeroWithoutDegradationReportsCancelled) {
  FaultFixture f = FaultFixture::Make(102);
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.trigger = 0;
  plan.allow_approximate = false;
  DifferentialConfig config;  // default = brute force, exact
  FaultCheckOutcome outcome =
      RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
  EXPECT_TRUE(outcome.ok) << outcome.detail;
  EXPECT_TRUE(outcome.tripped);
}

TEST(FaultInjectionTest, EachFaultKindChecksItsStatusCode) {
  FaultFixture f = FaultFixture::Make(103);
  DifferentialConfig config;  // default = brute force, exact
  for (FaultKind kind : {FaultKind::kCancel, FaultKind::kDeadline,
                         FaultKind::kComparisonBudget}) {
    FaultPlan plan;
    plan.kind = kind;
    plan.trigger = 1;
    plan.allow_approximate = false;
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok)
        << FaultKindToString(kind) << ": " << outcome.detail;
  }
}

TEST(FaultInjectionTest, TriggerBeyondTotalWorkCompletesExactly) {
  FaultFixture f = FaultFixture::Make(104);
  FaultPlan plan;
  plan.kind = FaultKind::kDeadline;
  plan.trigger = ~uint64_t{0} / 2;  // far past any real workload
  plan.allow_approximate = true;
  for (const DifferentialConfig& config : AllConfigurations()) {
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << config.Name() << ": " << outcome.detail;
    EXPECT_FALSE(outcome.tripped) << config.Name();
  }
}

TEST(FaultInjectionTest, ParallelConfigSurvivesMidRunCancellation) {
  FaultFixture f = FaultFixture::Make(105);
  DifferentialConfig config;
  config.parallel = true;
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.allow_approximate = true;
  for (uint64_t trigger : {1ull, 16ull, 64ull, 256ull, 1024ull}) {
    plan.trigger = trigger;
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << "trigger " << trigger << ": " << outcome.detail;
  }
}

// Two (or three) equal-sized groups whose single classification needs a
// long exhaustive scan: random d=2 records, 1600 record pairs per group
// pair, no stop rule — so a fault injected a few hundred comparisons in
// reliably aborts a classification mid-scan.
core::GroupedDataset LongScanDataset(size_t num_groups, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Point>> groups(num_groups);
  for (auto& group : groups) {
    for (int r = 0; r < 40; ++r) {
      group.push_back({rng.NextDouble(), rng.NextDouble()});
    }
  }
  return core::GroupedDataset::FromPoints(groups);
}

TEST(FaultInjectionTest, AbortedPairIsNotCountedSequential) {
  // Regression: group_pairs_classified used to be incremented before the
  // aborted check, so a classification the control plane cut short still
  // counted as "classified" — diverging from the decided-pair semantics.
  core::GroupedDataset ds = LongScanDataset(2, 201);
  for (core::Algorithm algorithm :
       {core::Algorithm::kBruteForce, core::Algorithm::kNestedLoop}) {
    core::ExecutionContext ctx;
    ctx.InjectCancelAtComparison(300);  // mid-scan of the only pair
    core::AggregateSkylineOptions options;
    options.algorithm = algorithm;
    options.use_stop_rule = false;
    options.exec = &ctx;
    options.allow_approximate = true;  // stats survive degradation
    auto result = core::ComputeAggregateSkylineBounded(ds, options);
    ASSERT_TRUE(result.ok()) << core::AlgorithmToString(algorithm);
    EXPECT_TRUE(ctx.stopped());
    EXPECT_EQ(result.value().stats.group_pairs_classified, 0u)
        << core::AlgorithmToString(algorithm)
        << ": an aborted classification decided nothing";
  }
}

TEST(FaultInjectionTest, AbortedPairIsNotCountedParallel) {
  // Same regression on the parallel operator's inline path (2 groups run
  // below the cutoff on the calling thread).
  core::GroupedDataset ds = LongScanDataset(2, 202);
  core::ExecutionContext ctx;
  ctx.InjectCancelAtComparison(300);
  core::ParallelOptions options;
  options.num_threads = 2;
  options.use_stop_rule = false;
  options.exec = &ctx;
  core::AggregateSkylineResult result =
      core::ComputeAggregateSkylineParallel(ds, options);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(result.stats.group_pairs_classified, 0u);
}

TEST(FaultInjectionTest, AbortedPairIsNotCountedParallelPool) {
  // The pool path (sequential_cutoff_cost = 1) and the intra-pair tile
  // path (giant_pair_min_cost = 1): no full 1600-comparison scan can
  // finish before the trigger, so no pair may be reported classified.
  core::GroupedDataset ds = LongScanDataset(3, 203);
  for (uint64_t giant_min : {uint64_t{0}, uint64_t{1}}) {
    core::ExecutionContext ctx;
    ctx.InjectCancelAtComparison(300);
    core::ParallelOptions options;
    options.num_threads = 2;
    options.use_stop_rule = false;
    options.exec = &ctx;
    options.sequential_cutoff_cost = 1;
    options.giant_pair_min_cost = giant_min;
    core::AggregateSkylineResult result =
        core::ComputeAggregateSkylineParallel(ds, options);
    EXPECT_TRUE(ctx.stopped()) << "giant_min " << giant_min;
    EXPECT_EQ(result.stats.group_pairs_classified, 0u)
        << "giant_min " << giant_min;
  }
}

TEST(FaultInjectionTest, PlanNamesAreDescriptive) {
  FaultPlan plan;
  plan.kind = FaultKind::kComparisonBudget;
  plan.trigger = 42;
  plan.allow_approximate = true;
  std::string name = plan.Name();
  EXPECT_NE(name.find("42"), std::string::npos);
  EXPECT_NE(name.find(FaultKindToString(FaultKind::kComparisonBudget)),
            std::string::npos);
}

}  // namespace
}  // namespace galaxy::testing
