// Fault-injection campaign over the differential matrix: cancellation,
// deadline, and budget trips at randomized comparison counts must yield
// bounded unwinds and either the matching error Status or a sound
// approximate superset. The ISSUE acceptance bar is 1000+ randomized
// fault points, which FaultInjectionTest.ThousandRandomizedFaultPoints
// clears in one run.

#include "testing/fault_injection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gamma.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property_gen.h"

namespace galaxy::testing {
namespace {

// Fixed small workload used by the targeted edge-case tests below.
struct FaultFixture {
  core::GroupedDataset dataset;
  double gamma;
  OracleResult oracle;

  static FaultFixture Make(uint64_t seed) {
    Rng rng(seed);
    PointGroups points = GenerateAdversarialPoints(rng);
    double gamma = PickAdversarialGamma(rng);
    core::GroupedDataset dataset = PointsToDataset(points);
    OracleResult oracle =
        ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
    return {std::move(dataset), gamma, std::move(oracle)};
  }
};

TEST(FaultInjectionTest, ThousandRandomizedFaultPoints) {
  uint64_t points = 0;
  FaultDivergence divergence = FuzzFaults(/*seed=*/20260806,
                                          /*iterations=*/250, &points);
  EXPECT_GE(points, 1000u);
  EXPECT_FALSE(divergence.found)
      << "dataset seed " << divergence.dataset_seed << " gamma "
      << divergence.gamma << "\nconfig: " << divergence.config.Name()
      << "\nplan: " << divergence.plan.Name()
      << "\ndetail: " << divergence.detail;
}

TEST(FaultInjectionTest, TriggerZeroWithDegradationIsSoundSuperset) {
  FaultFixture f = FaultFixture::Make(101);
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.trigger = 0;
  plan.allow_approximate = true;
  for (const DifferentialConfig& config : AllConfigurations()) {
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << config.Name() << ": " << outcome.detail;
    EXPECT_TRUE(outcome.tripped) << config.Name();
  }
}

TEST(FaultInjectionTest, TriggerZeroWithoutDegradationReportsCancelled) {
  FaultFixture f = FaultFixture::Make(102);
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.trigger = 0;
  plan.allow_approximate = false;
  DifferentialConfig config;  // default = brute force, exact
  FaultCheckOutcome outcome =
      RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
  EXPECT_TRUE(outcome.ok) << outcome.detail;
  EXPECT_TRUE(outcome.tripped);
}

TEST(FaultInjectionTest, EachFaultKindChecksItsStatusCode) {
  FaultFixture f = FaultFixture::Make(103);
  DifferentialConfig config;  // default = brute force, exact
  for (FaultKind kind : {FaultKind::kCancel, FaultKind::kDeadline,
                         FaultKind::kComparisonBudget}) {
    FaultPlan plan;
    plan.kind = kind;
    plan.trigger = 1;
    plan.allow_approximate = false;
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok)
        << FaultKindToString(kind) << ": " << outcome.detail;
  }
}

TEST(FaultInjectionTest, TriggerBeyondTotalWorkCompletesExactly) {
  FaultFixture f = FaultFixture::Make(104);
  FaultPlan plan;
  plan.kind = FaultKind::kDeadline;
  plan.trigger = ~uint64_t{0} / 2;  // far past any real workload
  plan.allow_approximate = true;
  for (const DifferentialConfig& config : AllConfigurations()) {
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << config.Name() << ": " << outcome.detail;
    EXPECT_FALSE(outcome.tripped) << config.Name();
  }
}

TEST(FaultInjectionTest, ParallelConfigSurvivesMidRunCancellation) {
  FaultFixture f = FaultFixture::Make(105);
  DifferentialConfig config;
  config.parallel = true;
  FaultPlan plan;
  plan.kind = FaultKind::kCancel;
  plan.allow_approximate = true;
  for (uint64_t trigger : {1ull, 16ull, 64ull, 256ull, 1024ull}) {
    plan.trigger = trigger;
    FaultCheckOutcome outcome =
        RunFaultCheck(f.dataset, f.gamma, config, f.oracle, plan);
    EXPECT_TRUE(outcome.ok) << "trigger " << trigger << ": " << outcome.detail;
  }
}

TEST(FaultInjectionTest, PlanNamesAreDescriptive) {
  FaultPlan plan;
  plan.kind = FaultKind::kComparisonBudget;
  plan.trigger = 42;
  plan.allow_approximate = true;
  std::string name = plan.Name();
  EXPECT_NE(name.find("42"), std::string::npos);
  EXPECT_NE(name.find(FaultKindToString(FaultKind::kComparisonBudget)),
            std::string::npos);
}

}  // namespace
}  // namespace galaxy::testing
