#include "core/incremental.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

// Rebuilds a GroupedDataset from the maintainer's current contents and
// computes the exact skyline from scratch.
std::set<uint32_t> RecomputeSkyline(
    const std::vector<std::vector<Point>>& contents, double gamma) {
  // Empty groups cannot be represented in GroupedDataset; map indexes.
  std::vector<std::vector<Point>> non_empty;
  std::vector<uint32_t> ids;
  for (uint32_t g = 0; g < contents.size(); ++g) {
    if (!contents[g].empty()) {
      non_empty.push_back(contents[g]);
      ids.push_back(g);
    }
  }
  std::set<uint32_t> out;
  if (non_empty.empty()) return out;
  GroupedDataset ds = GroupedDataset::FromPoints(non_empty);
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  for (uint32_t id : ComputeAggregateSkyline(ds, options).skyline) {
    out.insert(ids[id]);
  }
  return out;
}

TEST(IncrementalTest, MatchesBatchOnMovieExample) {
  Table movies = datagen::MovieTable();
  IncrementalAggregateSkyline inc(2, 0.5);
  std::map<std::string, uint32_t> directors;
  for (size_t r = 0; r < movies.num_rows(); ++r) {
    std::string director = movies.at(r, "Director").value().AsString();
    auto [it, inserted] =
        directors.try_emplace(director, 0);
    if (inserted) it->second = inc.AddGroup(director);
    double pop = movies.at(r, "Pop").value().ToDouble().value();
    double qual = movies.at(r, "Qual").value().ToDouble().value();
    ASSERT_TRUE(inc.AddRecord(it->second, {pop, qual}).ok());
  }
  std::set<std::string> labels;
  for (uint32_t id : inc.Skyline()) labels.insert(inc.label(id));
  EXPECT_EQ(labels, (std::set<std::string>{"Coppola", "Jackson", "Kershner",
                                           "Tarantino"}));
}

TEST(IncrementalTest, RandomInsertRemoveCrossValidation) {
  Rng rng(404);
  const size_t dims = 2;
  const double gamma = 0.5;
  IncrementalAggregateSkyline inc(dims, gamma);
  std::vector<std::vector<Point>> shadow;

  for (int g = 0; g < 8; ++g) {
    inc.AddGroup("g" + std::to_string(g));
    shadow.emplace_back();
  }

  for (int step = 0; step < 400; ++step) {
    uint32_t g = static_cast<uint32_t>(rng.UniformInt(0, 7));
    bool remove = !shadow[g].empty() && rng.Bernoulli(0.35);
    if (remove) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(shadow[g].size()) - 1));
      Point victim = shadow[g][idx];
      ASSERT_TRUE(inc.RemoveRecord(g, victim).ok());
      shadow[g].erase(shadow[g].begin() + static_cast<long>(idx));
    } else {
      Point p = {rng.NextDouble(), rng.NextDouble()};
      ASSERT_TRUE(inc.AddRecord(g, p).ok());
      shadow[g].push_back(p);
    }
    if (step % 20 == 19) {
      EXPECT_EQ(AsSet(inc.Skyline()), RecomputeSkyline(shadow, gamma))
          << "step " << step;
    }
  }
}

TEST(IncrementalTest, DominationCountsMatchBruteForce) {
  Rng rng(405);
  IncrementalAggregateSkyline inc(3, 0.6);
  std::vector<std::vector<Point>> shadow(3);
  for (int g = 0; g < 3; ++g) inc.AddGroup("g" + std::to_string(g));
  for (int i = 0; i < 60; ++i) {
    uint32_t g = static_cast<uint32_t>(rng.UniformInt(0, 2));
    Point p = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(inc.AddRecord(g, p).ok());
    shadow[g].push_back(p);
  }
  for (uint32_t s = 0; s < 3; ++s) {
    for (uint32_t r = 0; r < 3; ++r) {
      if (s == r) continue;
      uint64_t expected = 0;
      for (const Point& x : shadow[s]) {
        for (const Point& y : shadow[r]) {
          if (skyline::Dominates(x, y)) ++expected;
        }
      }
      EXPECT_EQ(inc.DominationCount(s, r).value(), expected);
      EXPECT_DOUBLE_EQ(
          inc.DominationProbability(s, r).value(),
          static_cast<double>(expected) /
              static_cast<double>(shadow[s].size() * shadow[r].size()));
    }
  }
}

TEST(IncrementalTest, GroupGrowthPreservesCounts) {
  IncrementalAggregateSkyline inc(2);
  uint32_t a = inc.AddGroup("a");
  uint32_t b = inc.AddGroup("b");
  ASSERT_TRUE(inc.AddRecord(a, {2, 2}).ok());
  ASSERT_TRUE(inc.AddRecord(b, {1, 1}).ok());
  EXPECT_EQ(inc.DominationCount(a, b).value(), 1u);
  // Adding a third group must not disturb existing counts.
  uint32_t c = inc.AddGroup("c");
  EXPECT_EQ(inc.DominationCount(a, b).value(), 1u);
  ASSERT_TRUE(inc.AddRecord(c, {3, 3}).ok());
  EXPECT_EQ(inc.DominationCount(c, a).value(), 1u);
  EXPECT_EQ(inc.DominationCount(c, b).value(), 1u);
}

TEST(IncrementalTest, EmptyGroupsDoNotParticipate) {
  IncrementalAggregateSkyline inc(2);
  uint32_t a = inc.AddGroup("a");
  inc.AddGroup("empty");
  ASSERT_TRUE(inc.AddRecord(a, {1, 1}).ok());
  EXPECT_EQ(inc.Skyline(), (std::vector<uint32_t>{a}));
}

TEST(IncrementalTest, StrictDominationExcludesAtGammaOne) {
  IncrementalAggregateSkyline inc(2, 1.0);
  uint32_t strong = inc.AddGroup("strong");
  uint32_t weak = inc.AddGroup("weak");
  ASSERT_TRUE(inc.AddRecord(strong, {5, 5}).ok());
  ASSERT_TRUE(inc.AddRecord(weak, {1, 1}).ok());
  EXPECT_TRUE(inc.IsDominated(weak).value());
  EXPECT_FALSE(inc.IsDominated(strong).value());
  EXPECT_EQ(inc.Skyline(), (std::vector<uint32_t>{strong}));
  // Give the weak group one incomparable record: p drops below 1 and at
  // gamma = 1 it re-enters the skyline.
  ASSERT_TRUE(inc.AddRecord(weak, {0.5, 9}).ok());
  EXPECT_FALSE(inc.IsDominated(weak).value());
  EXPECT_EQ(inc.Skyline().size(), 2u);
}

TEST(IncrementalTest, ErrorHandling) {
  IncrementalAggregateSkyline inc(2);
  EXPECT_FALSE(inc.AddRecord(99, {1, 1}).ok());
  uint32_t g = inc.AddGroup("g");
  EXPECT_FALSE(inc.AddRecord(g, {1, 2, 3}).ok());  // wrong dims
  EXPECT_FALSE(inc.RemoveRecord(g, {1, 1}).ok());  // absent
  EXPECT_FALSE(inc.DominationCount(g, g).ok());
  EXPECT_FALSE(inc.DominationProbability(g, g).ok());
  EXPECT_FALSE(inc.IsDominated(g).ok());  // empty group
  ASSERT_TRUE(inc.AddRecord(g, {1, 1}).ok());
  EXPECT_TRUE(inc.RemoveRecord(g, {1, 1}).ok());
  EXPECT_EQ(inc.total_records(), 0u);
}

TEST(IncrementalTest, RemoveThenReAddRestoresState) {
  IncrementalAggregateSkyline inc(2);
  uint32_t a = inc.AddGroup("a");
  uint32_t b = inc.AddGroup("b");
  ASSERT_TRUE(inc.AddRecord(a, {2, 2}).ok());
  ASSERT_TRUE(inc.AddRecord(a, {0.5, 0.5}).ok());
  ASSERT_TRUE(inc.AddRecord(b, {1, 1}).ok());
  // p(a ≻ b) = 1/2: not dominated.
  EXPECT_EQ(inc.Skyline().size(), 2u);
  // Removing a's weak record makes domination strict: b drops out.
  ASSERT_TRUE(inc.RemoveRecord(a, {0.5, 0.5}).ok());
  EXPECT_EQ(inc.Skyline(), (std::vector<uint32_t>{a}));
  // Re-adding restores the original state.
  ASSERT_TRUE(inc.AddRecord(a, {0.5, 0.5}).ok());
  EXPECT_EQ(inc.Skyline().size(), 2u);
}

}  // namespace
}  // namespace galaxy::core
