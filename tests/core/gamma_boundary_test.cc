// Boundary semantics of the gamma threshold (Definition 3): domination is
// strict (p == gamma does NOT dominate) with the single escape p == 1,
// which dominates even at gamma = 1. Exercised through every pair
// classification code path (exhaustive, stop rule, MBB) plus the
// DecideDominance upper == total edge and the gamma_bar clamp region.

#include <cmath>

#include <gtest/gtest.h>

#include "core/gamma.h"

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, std::vector<Point> pts, size_t dims) {
  std::vector<double> buf;
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

// Classifies under all four option combinations and checks they agree.
PairOutcome ClassifyAllPaths(const Group& g1, const Group& g2,
                             const GammaThresholds& thresholds) {
  PairOutcome reference = ClassifyPair(g1, g2, thresholds);
  for (bool mbb : {false, true}) {
    for (bool stop : {false, true}) {
      PairCompareOptions options;
      options.use_mbb = mbb;
      options.use_stop_rule = stop;
      EXPECT_EQ(ClassifyPair(g1, g2, thresholds, options), reference)
          << "mbb=" << mbb << " stop=" << stop;
    }
  }
  return reference;
}

TEST(GammaBoundaryTest, ProbabilityExactlyGammaDoesNotDominate) {
  // p(S > R) = 1/2 exactly: one of S's two records dominates R's record.
  Group s = MakeGroup(0, {{1.0}, {0.0}}, 1);
  Group r = MakeGroup(1, {{0.5}}, 1);
  ASSERT_EQ(DominationProbability(s, r), 0.5);

  EXPECT_FALSE(GammaDominates(s, r, 0.5));  // p == gamma: strict, no
  EXPECT_TRUE(GammaDominates(s, r, 0.5 - 1e-9));
  EXPECT_EQ(ClassifyAllPaths(s, r, GammaThresholds::FromGamma(0.5)),
            PairOutcome::kIncomparable);
}

TEST(GammaBoundaryTest, ProbabilityExactlyThreeQuartersAtGammaThreeQuarters) {
  // p = 3/4 exactly at the clamp boundary gamma = 3/4 (gamma_bar == 3/4
  // too): neither plain nor strong domination.
  Group s = MakeGroup(0, {{1.0}, {1.0}, {1.0}, {0.0}}, 1);
  Group r = MakeGroup(1, {{0.5}}, 1);
  ASSERT_EQ(DominationProbability(s, r), 0.75);

  EXPECT_FALSE(GammaDominates(s, r, 0.75));
  EXPECT_TRUE(GammaDominates(s, r, 0.75 - 1e-9));
  EXPECT_EQ(ClassifyAllPaths(s, r, GammaThresholds::FromGamma(0.75)),
            PairOutcome::kIncomparable);
  // Just below the threshold both predicates flip (gamma_bar(0.75 - eps)
  // is still < 3/4 after clamping, so p = 3/4 > gamma_bar: strong).
  EXPECT_EQ(ClassifyAllPaths(s, r, GammaThresholds::FromGamma(0.75 - 1e-9)),
            PairOutcome::kFirstDominatesStrongly);
}

TEST(GammaBoundaryTest, ProbabilityOneDominatesEvenAtGammaOne) {
  Group s = MakeGroup(0, {{1.0}, {2.0}}, 1);
  Group r = MakeGroup(1, {{0.5}}, 1);
  ASSERT_EQ(DominationProbability(s, r), 1.0);

  // p > gamma is impossible at gamma = 1, but p == 1 is the explicit
  // escape in Definition 3 — and gamma_bar(1) == 1, so it is also strong.
  EXPECT_TRUE(GammaDominates(s, r, 1.0));
  EXPECT_EQ(ClassifyAllPaths(s, r, GammaThresholds::FromGamma(1.0)),
            PairOutcome::kFirstDominatesStrongly);
  // The mirrored direction stays empty-handed (asymmetry).
  EXPECT_FALSE(GammaDominates(r, s, 1.0));
}

TEST(GammaBoundaryTest, JustBelowProbabilityOneDoesNotDominateAtGammaOne) {
  // p = 3/4: at gamma = 1 neither the strict inequality nor the escape.
  Group s = MakeGroup(0, {{1.0}, {1.0}, {1.0}, {0.0}}, 1);
  Group r = MakeGroup(1, {{0.5}}, 1);
  EXPECT_FALSE(GammaDominates(s, r, 1.0));
  EXPECT_FALSE(GammaDominates(s, r, 1.0 - 1e-9 * 0.5));
  EXPECT_EQ(ClassifyAllPaths(s, r, GammaThresholds::FromGamma(1.0)),
            PairOutcome::kIncomparable);
}

TEST(GammaBoundaryTest, ClampRegionMakesEveryDominationStrong) {
  // For gamma > 3/4 the clamp sets gamma_bar == gamma, so p > gamma
  // implies p > gamma_bar: kFirstDominates (plain-but-not-strong) cannot
  // occur.
  GammaThresholds thresholds = GammaThresholds::FromGamma(0.9);
  ASSERT_DOUBLE_EQ(thresholds.gamma_bar, 0.9);
  // p = 19/20 = 0.95 > 0.9.
  std::vector<Point> pts(19, Point{1.0});
  pts.push_back(Point{0.0});
  Group s = MakeGroup(0, std::move(pts), 1);
  Group r = MakeGroup(1, {{0.5}}, 1);
  ASSERT_EQ(DominationProbability(s, r), 0.95);
  EXPECT_EQ(ClassifyAllPaths(s, r, thresholds),
            PairOutcome::kFirstDominatesStrongly);
}

TEST(DecideDominanceBoundaryTest, NoEarlyNegativeWhileUpperEqualsTotal) {
  // 2 of 2 resolved pairs dominate, 2 pending of 4 total: the final count
  // can still reach 4 == total, so the p == 1 escape keeps the outcome
  // open even though 4 * 0.75 = 3 can no longer be strictly exceeded...
  internal::BoundDecision d = internal::DecideDominance(2, 2, 4, 0.75);
  EXPECT_FALSE(d.decided);
  // ...but once one pair fails (upper == 3 < total), p == 1 is dead and
  // 3 > 3 is false: decided negative.
  d = internal::DecideDominance(2, 3, 4, 0.75);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
  // Completion with all four dominating: the escape fires.
  d = internal::DecideDominance(4, 4, 4, 0.75);
  EXPECT_TRUE(d.decided);
  EXPECT_TRUE(d.value);
}

TEST(DecideDominanceBoundaryTest, EmptyPairSpaceDecidesFalse) {
  // total == 0 (an empty group on either side): decided, not dominating —
  // previously `known == total` claimed p == 1 here.
  internal::BoundDecision d = internal::DecideDominance(0, 0, 0, 0.5);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
  d = internal::DecideDominance(0, 0, 0, 1.0);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
}

TEST(GammaBoundaryTest, EmptyGroupsNeverDominateOnAnyPath) {
  Group empty = MakeGroup(0, {}, 1);
  Group full = MakeGroup(1, {{0.5}}, 1);
  for (double gamma : {0.5, 0.75, 0.75 + 1e-9, 1.0}) {
    EXPECT_FALSE(GammaDominates(empty, full, gamma)) << gamma;
    EXPECT_FALSE(GammaDominates(full, empty, gamma)) << gamma;
    GammaThresholds thresholds = GammaThresholds::FromGamma(gamma);
    EXPECT_EQ(ClassifyAllPaths(empty, full, thresholds),
              PairOutcome::kIncomparable);
    EXPECT_EQ(ClassifyAllPaths(full, empty, thresholds),
              PairOutcome::kIncomparable);
    EXPECT_EQ(ClassifyAllPaths(empty, empty, thresholds),
              PairOutcome::kIncomparable);
  }
  EXPECT_FALSE(std::isnan(DominationProbability(empty, empty)));
}

}  // namespace
}  // namespace galaxy::core
