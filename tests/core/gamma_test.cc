#include "core/gamma.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/distributions.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, std::vector<Point> pts) {
  std::vector<double> buf;
  size_t dims = pts.front().size();
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

TEST(GammaThresholdsTest, GammaBarFormula) {
  // gamma_bar = 1 - sqrt(1 - gamma) / 2 (Proposition 5) for gamma <= 3/4.
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  EXPECT_NEAR(t.gamma_bar, 1.0 - std::sqrt(0.5) / 2.0, 1e-12);
  EXPECT_NEAR(GammaThresholds::FromGamma(1.0).gamma_bar, 1.0, 1e-12);
  EXPECT_NEAR(GammaThresholds::FromGamma(0.75).gamma_bar, 0.75, 1e-12);
}

TEST(GammaThresholdsTest, GammaBarClampedAboveThreeQuarters) {
  // The raw Proposition 5 threshold dips below gamma for gamma > 3/4 —
  // there "strong domination" would not imply domination. The library
  // clamps gamma_bar to max(gamma, 1 - sqrt(1-gamma)/2) (reproduction
  // note in DESIGN.md).
  EXPECT_LT(1.0 - std::sqrt(1.0 - 0.9) / 2.0, 0.9);  // the raw dip
  EXPECT_NEAR(GammaThresholds::FromGamma(0.9).gamma_bar, 0.9, 1e-12);
}

TEST(GammaThresholdsTest, ProvenThresholdFormula) {
  // gamma_bar = (3 + gamma) / 4 (the union-bound replacement for the
  // refuted Proposition 5 threshold; DESIGN.md erratum 3).
  EXPECT_DOUBLE_EQ(GammaThresholds::FromGammaProven(0.5).gamma_bar, 0.875);
  EXPECT_DOUBLE_EQ(GammaThresholds::FromGammaProven(1.0).gamma_bar, 1.0);
  for (double g = 0.5; g <= 1.0; g += 0.05) {
    GammaThresholds proven = GammaThresholds::FromGammaProven(g);
    GammaThresholds paper = GammaThresholds::FromGamma(g);
    EXPECT_GE(proven.gamma_bar + 1e-12, paper.gamma_bar) << g;
    EXPECT_GE(proven.gamma_bar, g);
    EXPECT_LE(proven.gamma_bar, 1.0);
  }
}

TEST(GammaThresholdsTest, GammaBarAtLeastGamma) {
  for (double g = 0.5; g <= 1.0; g += 0.01) {
    GammaThresholds t = GammaThresholds::FromGamma(g);
    EXPECT_GE(t.gamma_bar + 1e-12, t.gamma) << "gamma=" << g;
    EXPECT_LE(t.gamma_bar, 1.0);
  }
}

TEST(CountDominatedPairsTest, SmallExample) {
  Group a = MakeGroup(0, {{2, 2}, {3, 3}});
  Group b = MakeGroup(1, {{1, 1}, {2.5, 2.5}});
  // a(2,2) ≻ b(1,1); a(3,3) ≻ b(1,1) and b(2.5,2.5): 3 pairs.
  EXPECT_EQ(CountDominatedPairs(a, b), 3u);
  // b(2.5,2.5) ≻ a(2,2): 1 pair the other way.
  EXPECT_EQ(CountDominatedPairs(b, a), 1u);
  EXPECT_DOUBLE_EQ(DominationProbability(a, b), 0.75);
  EXPECT_DOUBLE_EQ(DominationProbability(b, a), 0.25);
}

TEST(CountDominatedPairsTest, PaperSkylineContainmentCounterexample) {
  // Proposition 3: G1 = {(5,5), (1,1), (1,2)}, G2 = {(2,3)};
  // p(G2 ≻ G1) = 2/3 although G1 contains the skyline record (5,5).
  Group g1 = MakeGroup(0, {{5, 5}, {1, 1}, {1, 2}});
  Group g2 = MakeGroup(1, {{2, 3}});
  EXPECT_EQ(CountDominatedPairs(g2, g1), 2u);
  EXPECT_NEAR(DominationProbability(g2, g1), 2.0 / 3.0, 1e-12);
}

TEST(GammaDominatesTest, Definition3Semantics) {
  Group a = MakeGroup(0, {{2, 2}, {3, 3}});
  Group b = MakeGroup(1, {{1, 1}, {2.5, 2.5}});
  // p(a ≻ b) = 0.75.
  EXPECT_TRUE(GammaDominates(a, b, 0.5));
  EXPECT_TRUE(GammaDominates(a, b, 0.74));
  EXPECT_FALSE(GammaDominates(a, b, 0.75));  // strict >
  EXPECT_FALSE(GammaDominates(a, b, 0.9));
  EXPECT_FALSE(GammaDominates(b, a, 0.5));
}

TEST(GammaDominatesTest, ProbabilityOneDominatesAtAnyGamma) {
  Group strong = MakeGroup(0, {{5, 5}, {6, 6}});
  Group weak = MakeGroup(1, {{1, 1}});
  EXPECT_DOUBLE_EQ(DominationProbability(strong, weak), 1.0);
  // Definition 3: p = 1 dominates even with gamma = 1.
  EXPECT_TRUE(GammaDominates(strong, weak, 1.0));
}

TEST(GammaDominatesTest, ExactlyHalfDoesNotDominateAtHalf) {
  // Two of four pairs dominate: p = 0.5, not > 0.5.
  Group a = MakeGroup(0, {{3, 3}, {0, 0}});
  Group b = MakeGroup(1, {{1, 1}, {5, 0.5}});
  // a(3,3) ≻ b(1,1); a(3,3) vs (5,0.5): incomparable; a(0,0) dominates none.
  EXPECT_EQ(CountDominatedPairs(a, b), 1u);
  EXPECT_FALSE(GammaDominates(a, b, 0.5));
}

// ---------------------------------------------------------------------------
// ClassifyPair: outcome must be invariant under all option combinations.
// ---------------------------------------------------------------------------

class ClassifyPairParamTest
    : public ::testing::TestWithParam<std::tuple<double, bool, bool>> {};

TEST_P(ClassifyPairParamTest, MatchesExhaustiveReference) {
  auto [gamma, use_stop, use_mbb] = GetParam();
  GammaThresholds t = GammaThresholds::FromGamma(gamma);
  Rng rng(91);

  auto reference = [&](const Group& g1, const Group& g2) {
    uint64_t total = static_cast<uint64_t>(g1.size()) * g2.size();
    uint64_t n12 = CountDominatedPairs(g1, g2);
    uint64_t n21 = CountDominatedPairs(g2, g1);
    auto dom = [&](uint64_t n, double thr) {
      return n == total || static_cast<double>(n) > thr * total;
    };
    if (dom(n12, t.gamma_bar)) return PairOutcome::kFirstDominatesStrongly;
    if (dom(n12, t.gamma)) return PairOutcome::kFirstDominates;
    if (dom(n21, t.gamma_bar)) return PairOutcome::kSecondDominatesStrongly;
    if (dom(n21, t.gamma)) return PairOutcome::kSecondDominates;
    return PairOutcome::kIncomparable;
  };

  PairCompareOptions options;
  options.use_stop_rule = use_stop;
  options.use_mbb = use_mbb;

  for (int trial = 0; trial < 300; ++trial) {
    size_t dims = 2 + trial % 3;
    size_t n1 = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    size_t n2 = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    // Offset groups so that dominated / dominating / overlapping
    // configurations all occur.
    double shift = rng.Uniform(-0.8, 0.8);
    std::vector<Point> p1, p2;
    for (size_t i = 0; i < n1; ++i) {
      Point p(dims);
      for (size_t d = 0; d < dims; ++d) p[d] = rng.NextDouble();
      p1.push_back(std::move(p));
    }
    for (size_t i = 0; i < n2; ++i) {
      Point p(dims);
      for (size_t d = 0; d < dims; ++d) p[d] = rng.NextDouble() + shift;
      p2.push_back(std::move(p));
    }
    Group g1 = MakeGroup(0, p1);
    Group g2 = MakeGroup(1, p2);

    PairCompareStats stats;
    PairOutcome got = ClassifyPair(g1, g2, t, options, &stats);
    EXPECT_EQ(got, reference(g1, g2))
        << "trial " << trial << " gamma " << gamma << " stop " << use_stop
        << " mbb " << use_mbb;
    EXPECT_EQ(stats.pairs_total, static_cast<uint64_t>(n1) * n2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionSweep, ClassifyPairParamTest,
    ::testing::Combine(::testing::Values(0.5, 0.6, 0.75, 0.9, 1.0),
                       ::testing::Bool(), ::testing::Bool()));

TEST(ClassifyPairTest, MbbShortcutOnStrictSeparation) {
  Group low = MakeGroup(0, {{0.1, 0.1}, {0.2, 0.2}});
  Group high = MakeGroup(1, {{0.8, 0.8}, {0.9, 0.9}});
  PairCompareOptions options;
  options.use_mbb = true;
  PairCompareStats stats;
  PairOutcome out = ClassifyPair(low, high,
                                 GammaThresholds::FromGamma(0.5), options,
                                 &stats);
  EXPECT_EQ(out, PairOutcome::kSecondDominatesStrongly);
  EXPECT_TRUE(stats.mbb_strict_shortcut);
  EXPECT_EQ(stats.record_comparisons, 0u);
}

TEST(ClassifyPairTest, StopRuleReducesWork) {
  // Large strongly-separated groups: the stop rule should bail out long
  // before the full quadratic scan.
  Rng rng(5);
  std::vector<Point> low, high;
  for (int i = 0; i < 100; ++i) {
    low.push_back({rng.NextDouble() * 0.3, rng.NextDouble() * 0.3});
    high.push_back({0.7 + rng.NextDouble() * 0.3, 0.7 + rng.NextDouble() * 0.3});
  }
  Group g1 = MakeGroup(0, low);
  Group g2 = MakeGroup(1, high);
  GammaThresholds t = GammaThresholds::FromGamma(0.5);

  PairCompareStats with_stop, without_stop;
  PairCompareOptions stop_on;  // defaults: stop rule on, mbb off
  PairCompareOptions stop_off;
  stop_off.use_stop_rule = false;
  EXPECT_EQ(ClassifyPair(g1, g2, t, stop_on, &with_stop),
            ClassifyPair(g1, g2, t, stop_off, &without_stop));
  EXPECT_TRUE(with_stop.stopped_early);
  EXPECT_LT(with_stop.record_comparisons, without_stop.record_comparisons);
  EXPECT_EQ(without_stop.record_comparisons, 100u * 100u);
}

TEST(ClassifyPairTest, SingletonGroups) {
  Group a = MakeGroup(0, {{2, 2}});
  Group b = MakeGroup(1, {{1, 1}});
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  EXPECT_EQ(ClassifyPair(a, b, t), PairOutcome::kFirstDominatesStrongly);
  EXPECT_EQ(ClassifyPair(b, a, t), PairOutcome::kSecondDominatesStrongly);
  Group c = MakeGroup(2, {{0, 3}});
  EXPECT_EQ(ClassifyPair(a, c, t), PairOutcome::kIncomparable);
}

TEST(ClassifyPairTest, IdenticalGroupsAreIncomparable) {
  Group a = MakeGroup(0, {{1, 2}, {2, 1}});
  Group b = MakeGroup(1, {{1, 2}, {2, 1}});
  EXPECT_EQ(ClassifyPair(a, b, GammaThresholds::FromGamma(0.5)),
            PairOutcome::kIncomparable);
}

TEST(ClassifyPairTest, Table2DirectorPairs) {
  // The reconstructed filmographies reproduce the Table 2 probabilities.
  GroupedDataset ds = datagen::DirectorFilmographies();
  const Group& tarantino =
      ds.group(ds.FindByLabel(datagen::kTarantino).value());
  const Group& wiseau = ds.group(ds.FindByLabel(datagen::kWiseau).value());
  const Group& fleischer =
      ds.group(ds.FindByLabel(datagen::kFleischer).value());
  const Group& jackson = ds.group(ds.FindByLabel(datagen::kJackson).value());

  EXPECT_DOUBLE_EQ(DominationProbability(tarantino, wiseau), 1.0);
  EXPECT_DOUBLE_EQ(DominationProbability(tarantino, fleischer), 30.0 / 32.0);
  EXPECT_DOUBLE_EQ(DominationProbability(tarantino, jackson), 33.0 / 48.0);
  EXPECT_DOUBLE_EQ(DominationProbability(wiseau, tarantino), 0.0);
  EXPECT_DOUBLE_EQ(DominationProbability(fleischer, tarantino), 2.0 / 32.0);
  EXPECT_DOUBLE_EQ(DominationProbability(jackson, tarantino), 12.0 / 48.0);
}

TEST(PairOutcomeTest, ToStringNames) {
  EXPECT_STREQ(PairOutcomeToString(PairOutcome::kIncomparable),
               "incomparable");
  EXPECT_STREQ(PairOutcomeToString(PairOutcome::kFirstDominatesStrongly),
               "first-dominates-strongly");
}

}  // namespace
}  // namespace galaxy::core
