#include "core/anytime.h"

#include <set>

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> ExactSkyline(const GroupedDataset& ds, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  return {result.skyline.begin(), result.skyline.end()};
}

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

GroupedDataset TestWorkload(uint64_t seed, double spread = 0.3) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 600;
  config.avg_records_per_group = 20;
  config.dims = 3;
  config.spread = spread;
  config.seed = seed;
  return datagen::GenerateGrouped(config);
}

TEST(AnytimeTest, UnlimitedBudgetMatchesExact) {
  GroupedDataset ds = TestWorkload(1);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  auto snapshot = ComputeAnytime(ds, 0.5, ~uint64_t{0});
  EXPECT_TRUE(snapshot.complete);
  EXPECT_EQ(AsSet(snapshot.possible), exact);
  EXPECT_EQ(AsSet(snapshot.confirmed), exact);
  EXPECT_EQ(snapshot.pairs_decided, snapshot.pairs_total);
}

TEST(AnytimeTest, SoundAtEveryBudget) {
  GroupedDataset ds = TestWorkload(2);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  for (uint64_t budget : {0ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    auto snapshot = ComputeAnytime(ds, 0.5, budget);
    std::set<uint32_t> possible = AsSet(snapshot.possible);
    std::set<uint32_t> confirmed = AsSet(snapshot.confirmed);
    // possible over-approximates, confirmed under-approximates.
    for (uint32_t id : exact) {
      EXPECT_TRUE(possible.count(id) > 0) << "budget " << budget;
    }
    for (uint32_t id : confirmed) {
      EXPECT_TRUE(exact.count(id) > 0) << "budget " << budget;
      EXPECT_TRUE(possible.count(id) > 0);
    }
  }
}

TEST(AnytimeTest, ProgressIsMonotone) {
  GroupedDataset ds = TestWorkload(3);
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  AnytimeAggregateSkyline engine(ds, options);

  auto previous = engine.Current();
  int rounds = 0;
  while (!engine.complete() && rounds < 10000) {
    auto next = engine.Advance(2000);
    EXPECT_LE(next.possible.size(), previous.possible.size());
    EXPECT_GE(next.confirmed.size(), previous.confirmed.size());
    EXPECT_GE(next.comparisons_used, previous.comparisons_used);
    EXPECT_GE(next.pairs_decided, previous.pairs_decided);
    // confirmed must stay inside possible.
    std::set<uint32_t> possible = AsSet(next.possible);
    for (uint32_t id : next.confirmed) {
      EXPECT_TRUE(possible.count(id) > 0);
    }
    previous = next;
    ++rounds;
  }
  EXPECT_TRUE(engine.complete());
  EXPECT_EQ(AsSet(previous.possible), ExactSkyline(ds, 0.5));
  EXPECT_EQ(AsSet(previous.confirmed), AsSet(previous.possible));
}

TEST(AnytimeTest, AdvanceAfterCompleteIsNoOp) {
  GroupedDataset ds = TestWorkload(4);
  AnytimeAggregateSkyline::Options options;
  AnytimeAggregateSkyline engine(ds, options);
  auto done = engine.Advance(~uint64_t{0});
  ASSERT_TRUE(done.complete);
  auto again = engine.Advance(1000);
  EXPECT_EQ(again.comparisons_used, done.comparisons_used);
  EXPECT_EQ(again.possible, done.possible);
}

TEST(AnytimeTest, MovieExampleConvergesToFigure4b) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  options.slice = 1;  // tiny slices: maximal suspension coverage
  AnytimeAggregateSkyline engine(ds, options);
  int rounds = 0;
  while (!engine.complete() && rounds < 1000) {
    engine.Advance(1);
    ++rounds;
  }
  ASSERT_TRUE(engine.complete());
  auto snapshot = engine.Current();
  std::set<std::string> labels;
  for (uint32_t id : snapshot.possible) {
    labels.insert(ds.group(id).label());
  }
  EXPECT_EQ(labels, (std::set<std::string>{"Coppola", "Jackson", "Kershner",
                                           "Tarantino"}));
}

TEST(AnytimeTest, WorksWithoutMbb) {
  GroupedDataset ds = TestWorkload(5);
  AnytimeAggregateSkyline::Options options;
  options.use_mbb = false;
  AnytimeAggregateSkyline engine(ds, options);
  auto snapshot = engine.Advance(~uint64_t{0});
  EXPECT_TRUE(snapshot.complete);
  EXPECT_EQ(AsSet(snapshot.possible), ExactSkyline(ds, 0.5));
}

TEST(AnytimeTest, SingleGroupIsCompleteImmediately) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}, {2, 2}}});
  AnytimeAggregateSkyline::Options options;
  AnytimeAggregateSkyline engine(ds, options);
  EXPECT_TRUE(engine.complete());
  auto snapshot = engine.Current();
  EXPECT_EQ(snapshot.possible, (std::vector<uint32_t>{0}));
  EXPECT_EQ(snapshot.confirmed, (std::vector<uint32_t>{0}));
}

TEST(AnytimeTest, HigherGammaNeverShrinksFinalResult) {
  GroupedDataset ds = TestWorkload(6);
  size_t prev = 0;
  bool first = true;
  for (double gamma : {0.5, 0.7, 0.9, 1.0}) {
    auto snapshot = ComputeAnytime(ds, gamma, ~uint64_t{0});
    ASSERT_TRUE(snapshot.complete);
    if (!first) {
      EXPECT_GE(snapshot.possible.size(), prev);
    }
    prev = snapshot.possible.size();
    first = false;
  }
}

}  // namespace
}  // namespace galaxy::core
