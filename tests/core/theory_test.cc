// Property tests for the theoretical results of Section 2 and 3:
// asymmetry (Proposition 1), stability to updates (Property 2), stability to
// monotone transformations (Proposition 2), failure of skyline containment
// (Proposition 3), failure of transitivity (Proposition 4), and weak
// transitivity (Proposition 5).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/domination_matrix.h"
#include "core/gamma.h"
#include "skyline/skyline.h"

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, std::vector<Point> pts) {
  std::vector<double> buf;
  size_t dims = pts.front().size();
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

std::vector<Point> RandomGroupPoints(Rng& rng, size_t n, size_t dims,
                                     double shift = 0.0) {
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    Point p(dims);
    for (size_t d = 0; d < dims; ++d) p[d] = rng.NextDouble() + shift;
    pts.push_back(std::move(p));
  }
  return pts;
}

// ---------------------------------------------------------------------------
// Proposition 1: asymmetry for gamma >= 0.5, and its failure below 0.5.
// ---------------------------------------------------------------------------

TEST(AsymmetryTest, HoldsForGammaAtLeastHalf) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Group a = MakeGroup(0, RandomGroupPoints(rng, 1 + trial % 6, 2));
    Group b = MakeGroup(1, RandomGroupPoints(
                               rng, 1 + (trial / 2) % 6, 2,
                               rng.Uniform(-0.5, 0.5)));
    for (double gamma : {0.5, 0.7, 1.0}) {
      bool ab = GammaDominates(a, b, gamma);
      bool ba = GammaDominates(b, a, gamma);
      EXPECT_FALSE(ab && ba) << "asymmetry violated at gamma " << gamma;
    }
  }
}

TEST(AsymmetryTest, FailsBelowHalf) {
  // The paper's Section 2.2 example: with gamma < .06 both Tarantino ≻
  // Fleischer and Fleischer ≻ Tarantino would hold. Construct two groups
  // with p(A ≻ B) = .75 and p(B ≻ A) = .25; at gamma = 0.2 both "dominate".
  Group a = MakeGroup(0, {{5, 5}, {6, 6}, {7, 7}, {0.5, 0.5}});
  Group b = MakeGroup(1, {{1, 1}});
  EXPECT_DOUBLE_EQ(DominationProbability(a, b), 0.75);
  EXPECT_DOUBLE_EQ(DominationProbability(b, a), 0.25);
  double gamma = 0.2;  // outside the sane range, for illustration
  bool ab = DominationProbability(a, b) > gamma;
  bool ba = DominationProbability(b, a) > gamma;
  EXPECT_TRUE(ab && ba);  // the inconsistency Proposition 1 rules out
}

// ---------------------------------------------------------------------------
// Property 2: stability to updates. Removing a fraction eps of a group's
// records changes gamma boundedly.
//
// Reproduction note (documented in DESIGN.md): the paper states the bound
// as gamma(1-eps) <= gamma' <= gamma(1+eps), but its own derivation gives
// the counting identities
//     gamma' <= |R > S| / (|R'||S|)          =  gamma / (1-eps)
//     gamma' >= (|R > S| - k|S|) / (|R'||S|) = (gamma - eps) / (1-eps)
// (with k removed records, eps = k/|R|), which are the tight bounds — the
// paper's (1 +- eps) factors are achievable to exceed. The tests below
// verify the tight bounds on random data and exhibit concrete violations
// of the bound as literally printed in the paper.
// ---------------------------------------------------------------------------

TEST(StabilityToUpdatesTest, TightBoundsHoldOnRandomData) {
  Rng rng(103);
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 8));
    std::vector<Point> r_pts = RandomGroupPoints(rng, n, 2);
    std::vector<Point> s_pts =
        RandomGroupPoints(rng, 3 + trial % 4, 2, rng.Uniform(-0.4, 0.4));
    Group r = MakeGroup(0, r_pts);
    Group s = MakeGroup(1, s_pts);
    double gamma = DominationProbability(r, s);
    if (gamma < 0.5) continue;  // property stated for dominating pairs
    // Remove the last k records of R.
    for (size_t k = 1; k + 1 < n; ++k) {
      std::vector<Point> reduced(r_pts.begin(),
                                 r_pts.end() - static_cast<long>(k));
      Group r_prime = MakeGroup(2, reduced);
      double eps = static_cast<double>(k) / static_cast<double>(n);
      double gamma_prime = DominationProbability(r_prime, s);
      EXPECT_LE(gamma_prime, std::min(1.0, gamma / (1 - eps)) + 1e-9);
      EXPECT_GE(gamma_prime,
                std::max(0.0, (gamma - eps) / (1 - eps)) - 1e-9);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);  // the sweep actually exercised the bound
}

TEST(StabilityToUpdatesTest, TightBoundsHoldWhenSecondGroupShrinks) {
  Rng rng(105);
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 8));
    std::vector<Point> r_pts = RandomGroupPoints(rng, n, 2);
    std::vector<Point> s_pts =
        RandomGroupPoints(rng, 3 + trial % 4, 2, rng.Uniform(-0.4, 0.4));
    Group r = MakeGroup(0, r_pts);
    Group s = MakeGroup(1, s_pts);
    double gamma = DominationProbability(s, r);
    if (gamma < 0.5) continue;
    for (size_t k = 1; k + 1 < n; ++k) {
      std::vector<Point> reduced(r_pts.begin(),
                                 r_pts.end() - static_cast<long>(k));
      Group r_prime = MakeGroup(2, reduced);
      double eps = static_cast<double>(k) / static_cast<double>(n);
      double gamma_prime = DominationProbability(s, r_prime);
      EXPECT_LE(gamma_prime, std::min(1.0, gamma / (1 - eps)) + 1e-9);
      EXPECT_GE(gamma_prime,
                std::max(0.0, (gamma - eps) / (1 - eps)) - 1e-9);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(StabilityToUpdatesTest, PaperStatedBoundIsViolatable) {
  // Upper side: R = {two dominators, two duds}, S = {one record}. gamma =
  // 2/4 = .5. Removing the two duds (eps = 1/2) gives gamma' = 1, but the
  // paper's bound gamma(1+eps) = .75 claims gamma' <= .75.
  Group r = MakeGroup(0, {{5, 5}, {6, 6}, {0, 0}, {0, 1}});
  Group s = MakeGroup(1, {{1, 1}});
  EXPECT_DOUBLE_EQ(DominationProbability(r, s), 0.5);
  Group r_prime = MakeGroup(2, {{5, 5}, {6, 6}});
  double eps = 0.5;
  double gamma_prime = DominationProbability(r_prime, s);
  EXPECT_DOUBLE_EQ(gamma_prime, 1.0);
  EXPECT_GT(gamma_prime, 0.5 * (1 + eps));          // paper's upper bound fails
  EXPECT_LE(gamma_prime, 0.5 / (1 - eps) + 1e-12);  // tight bound holds

  // Lower side: R = {three dominators, one dud}; removing two dominators
  // (eps = 1/2) drops gamma from .75 to .5 < gamma(1-eps) = .375? No —
  // build it so the drop crosses the paper's line: R = {d, d, x, x} with
  // gamma = .5; removing the two dominators gives gamma' = 0 <
  // gamma(1-eps) = .25.
  Group r2 = MakeGroup(3, {{5, 5}, {6, 6}, {0, 0}, {0, 1}});
  Group r2_prime = MakeGroup(4, {{0, 0}, {0, 1}});
  EXPECT_DOUBLE_EQ(DominationProbability(r2, s), 0.5);
  double gamma2_prime = DominationProbability(r2_prime, s);
  EXPECT_DOUBLE_EQ(gamma2_prime, 0.0);
  EXPECT_LT(gamma2_prime, 0.5 * (1 - eps));  // paper's lower bound fails
  EXPECT_GE(gamma2_prime,
            std::max(0.0, (0.5 - eps) / (1 - eps)) - 1e-12);  // tight holds
}

// ---------------------------------------------------------------------------
// Proposition 2: stability to monotone transformations.
// ---------------------------------------------------------------------------

TEST(MonotoneStabilityTest, GammaInvariantUnderMonotoneMaps) {
  Rng rng(107);
  // Strictly monotone per-dimension transformations.
  auto phi0 = [](double x) { return std::exp(3 * x); };
  auto phi1 = [](double x) { return x * x * x + 2 * x; };
  auto phi2 = [](double x) { return std::atan(5 * (x - 0.5)); };

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point> a_pts = RandomGroupPoints(rng, 1 + trial % 6, 3);
    std::vector<Point> b_pts =
        RandomGroupPoints(rng, 1 + (trial / 2) % 6, 3, rng.Uniform(-0.3, 0.3));
    auto transform = [&](std::vector<Point> pts) {
      for (Point& p : pts) {
        p[0] = phi0(p[0]);
        p[1] = phi1(p[1]);
        p[2] = phi2(p[2]);
      }
      return pts;
    };
    Group a = MakeGroup(0, a_pts);
    Group b = MakeGroup(1, b_pts);
    Group a2 = MakeGroup(2, transform(a_pts));
    Group b2 = MakeGroup(3, transform(b_pts));
    EXPECT_DOUBLE_EQ(DominationProbability(a, b),
                     DominationProbability(a2, b2));
    EXPECT_DOUBLE_EQ(DominationProbability(b, a),
                     DominationProbability(b2, a2));
  }
}

TEST(MonotoneStabilityTest, AverageBasedComparisonIsNotStable) {
  // The motivating example for Proposition 2: comparing group AVERAGES is
  // not stable under monotone transformations, while gamma-dominance is.
  std::vector<Point> a_pts = {{10.0}, {5.0}};  // avg 7.5
  std::vector<Point> b_pts = {{7.4}, {7.4}};   // avg 7.4 -> A "wins"
  auto avg = [](const std::vector<Point>& pts) {
    double s = 0;
    for (const Point& p : pts) s += p[0];
    return s / static_cast<double>(pts.size());
  };
  EXPECT_GT(avg(a_pts), avg(b_pts));
  // A monotone map emphasizing the top of the scale flips the averages.
  auto phi = [](double x) { return std::pow(x / 10.0, 8.0); };
  std::vector<Point> a_t = {{phi(10.0)}, {phi(5.0)}};
  std::vector<Point> b_t = {{phi(7.4)}, {phi(7.4)}};
  EXPECT_LT(avg(b_t), avg(a_t));  // here avg(A) still larger...
  auto phi2 = [](double x) { return std::log(std::log(x + 1.2) + 0.01); };
  std::vector<Point> a_t2 = {{phi2(10.0)}, {phi2(5.0)}};
  std::vector<Point> b_t2 = {{phi2(7.4)}, {phi2(7.4)}};
  EXPECT_GT(avg(b_t2), avg(a_t2));  // ... but a concave map flips the order
  // Meanwhile gamma-dominance is unchanged by both maps.
  Group a = MakeGroup(0, a_pts), b = MakeGroup(1, b_pts);
  Group a2 = MakeGroup(2, a_t2), b2 = MakeGroup(3, b_t2);
  EXPECT_DOUBLE_EQ(DominationProbability(a, b),
                   DominationProbability(a2, b2));
}

// ---------------------------------------------------------------------------
// Proposition 3 / Theorem 1: skyline containment fails.
// ---------------------------------------------------------------------------

TEST(SkylineContainmentTest, PaperCounterexample) {
  // G1 = {(5,5), (1,1), (1,2)} holds the record skyline point (5,5), yet G2
  // = {(2,3)} gamma-dominates G1 for gamma < 2/3 — so with gamma = 0.5 the
  // aggregate skyline does NOT contain the group of the skyline record.
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{5, 5}, {1, 1}, {1, 2}}, {{2, 3}}}, {"G1", "G2"});

  // (5,5) is in the record skyline of the union.
  std::vector<std::vector<double>> all = {{5, 5}, {1, 1}, {1, 2}, {2, 3}};
  auto sky = skyline::Compute(all, skyline::AllMax(2));
  EXPECT_EQ(sky, (std::vector<size_t>{0}));

  AggregateSkylineOptions options;
  options.gamma = 0.5;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  EXPECT_FALSE(result.Contains(0));  // G1 is dominated away
  EXPECT_TRUE(result.Contains(1));
}

// ---------------------------------------------------------------------------
// Proposition 4 / Proposition 5: transitivity fails, weak transitivity holds.
// ---------------------------------------------------------------------------

TEST(TransitivityTest, Figure6Counterexample) {
  Group r = MakeGroup(0, {{4, 8}, {9, 9}, {5, 7}, {6, 6}});
  Group s = MakeGroup(1, {{3, 5}, {8, 8}});
  Group t = MakeGroup(2, {{2, 2}, {7, 7.5}, {7.5, 7}});
  EXPECT_TRUE(GammaDominates(r, s, 0.5));
  EXPECT_TRUE(GammaDominates(s, t, 0.5));
  EXPECT_FALSE(GammaDominates(r, t, 0.5));  // transitivity fails
}

TEST(WeakTransitivityTest, PaperPropositionRefutedByCounterexample) {
  // Reproduction erratum 3 (DESIGN.md): Proposition 5 is FALSE as stated.
  // With γ = .5, γ̄ = 1 - sqrt(.5)/2 ≈ .6464; here p(R≻S) = p(S≻T) = 2/3 >
  // γ̄, yet p(R≻T) = 1/2 is NOT > γ. (Found by randomized search; the
  // proof's "worst configuration" claim for the domination-matrix product
  // does not hold.)
  Group r = MakeGroup(0, {{0.8729, 0.4750}, {0.9814, 0.9968}});
  Group s = MakeGroup(1, {{0.6496, 0.7461}, {0.0303, 0.1665},
                          {0.5199, 0.6789}});
  Group t = MakeGroup(2, {{0.0820, 0.6372}});

  GammaThresholds th = GammaThresholds::FromGamma(0.5);
  double p_rs = DominationProbability(r, s);
  double p_st = DominationProbability(s, t);
  double p_rt = DominationProbability(r, t);
  EXPECT_NEAR(p_rs, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p_st, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p_rt, 0.5, 1e-12);
  // Premise of Proposition 5 holds...
  EXPECT_GT(p_rs, th.gamma_bar);
  EXPECT_GT(p_st, th.gamma_bar);
  // ...but the conclusion fails.
  EXPECT_FALSE(GammaDominates(r, t, 0.5));
  // The corrected threshold (3+γ)/4 rejects this premise.
  GammaThresholds proven = GammaThresholds::FromGammaProven(0.5);
  EXPECT_DOUBLE_EQ(proven.gamma_bar, 0.875);
  EXPECT_FALSE(p_rs > proven.gamma_bar);
}

TEST(WeakTransitivityTest, ProvenThresholdHoldsUnderAdversarialSampling) {
  // The union-bound threshold γ̄ = (3+γ)/4 (FromGammaProven) must survive
  // the same biased sampling that refutes the paper threshold within a few
  // thousand trials.
  Rng rng(109);
  int premise_hits = 0;
  for (int trial = 0; trial < 30000; ++trial) {
    Group r = MakeGroup(0, RandomGroupPoints(rng, 1 + trial % 5, 2,
                                             rng.Uniform(0.0, 0.6)));
    Group s = MakeGroup(1, RandomGroupPoints(rng, 1 + (trial / 2) % 5, 2,
                                             rng.Uniform(-0.3, 0.3)));
    Group t = MakeGroup(2, RandomGroupPoints(rng, 1 + (trial / 3) % 5, 2,
                                             rng.Uniform(-0.6, 0.0)));
    for (double gamma : {0.5, 0.6, 0.8}) {
      GammaThresholds th = GammaThresholds::FromGammaProven(gamma);
      double p_rs = DominationProbability(r, s);
      double p_st = DominationProbability(s, t);
      bool r_strong_s = p_rs == 1.0 || p_rs > th.gamma_bar;
      bool s_strong_t = p_st == 1.0 || p_st > th.gamma_bar;
      if (r_strong_s && s_strong_t) {
        ++premise_hits;
        EXPECT_TRUE(GammaDominates(r, t, gamma))
            << "proven threshold violated: gamma " << gamma << " p_rs "
            << p_rs << " p_st " << p_st << " p_rt "
            << DominationProbability(r, t);
      }
    }
  }
  EXPECT_GT(premise_hits, 200);  // the premise actually fired often
}

TEST(WeakTransitivityTest, PaperThresholdViolationsExistUnderSearch) {
  // Statistical companion to the explicit counterexample: the same biased
  // sampling finds paper-threshold violations, demonstrating they are not
  // a measure-zero fluke.
  Rng rng(211);
  int violations = 0;
  for (int trial = 0; trial < 200000 && violations == 0; ++trial) {
    Group r = MakeGroup(
        0, RandomGroupPoints(rng, 1 + trial % 5, 2, rng.Uniform(0.0, 0.6)));
    Group s = MakeGroup(1, RandomGroupPoints(rng, 1 + (trial / 2) % 5, 2,
                                             rng.Uniform(-0.3, 0.3)));
    Group t = MakeGroup(2, RandomGroupPoints(rng, 1 + (trial / 3) % 5, 2,
                                             rng.Uniform(-0.6, 0.0)));
    GammaThresholds th = GammaThresholds::FromGamma(0.5);
    double p_rs = DominationProbability(r, s);
    double p_st = DominationProbability(s, t);
    if ((p_rs == 1.0 || p_rs > th.gamma_bar) &&
        (p_st == 1.0 || p_st > th.gamma_bar) &&
        !GammaDominates(r, t, 0.5)) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(WeakTransitivityTest, BoundIsTightAtTheMatrixConstruction) {
  // The worst-case configuration of Figure 7: pos(RS) = pos(ST) = 1 - a/2
  // forces pos(RT) >= 1 - a^2. Verify the matrix algebra at a = 0.5 using
  // synthetic block matrices (4x4 / 4x4).
  const size_t n = 4;
  const double alpha = 0.5;
  size_t zero_rows = static_cast<size_t>(alpha * n);  // 2 rows of zeros
  DominationMatrix rs(n, n), st(n, n);
  // RS: last `zero_rows` rows have zeros in the first half of columns.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      bool zero = i >= n - zero_rows && j < n / 2;
      rs.set(i, j, !zero);
    }
  }
  // ST: first half of rows all ones; the rest zero in half the columns,
  // arranged adversarially.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      bool zero = i >= n / 2 && j >= n - zero_rows;
      st.set(i, j, !zero);
    }
  }
  EXPECT_DOUBLE_EQ(rs.pos(), 1 - alpha / 2);
  EXPECT_DOUBLE_EQ(st.pos(), 1 - alpha / 2);
  DominationMatrix rt = rs.BooleanProduct(st);
  EXPECT_GE(rt.pos(), 1 - alpha * alpha - 1e-12);
}

}  // namespace
}  // namespace galaxy::core
