// Cross-validation of independent implementations of the same math:
// ClassifyPair vs the DominationMatrix framework, the MBB region counts vs
// brute force, and a compile-coverage check of the umbrella header.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/domination_matrix.h"
#include "core/gamma.h"
#include "galaxy.h"  // umbrella header must compile and interoperate

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, const std::vector<Point>& pts) {
  std::vector<double> buf;
  size_t dims = pts.front().size();
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

std::vector<Point> RandomPoints(Rng& rng, size_t n, size_t dims,
                                double shift) {
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    Point p(dims);
    for (size_t d = 0; d < dims; ++d) p[d] = rng.NextDouble() + shift;
    pts.push_back(std::move(p));
  }
  return pts;
}

// ClassifyPair and the DominationMatrix pos() values must induce the same
// classification: two entirely separate code paths compute |S ≻ R|.
TEST(CrossValidationTest, ClassifyPairAgreesWithDominationMatrix) {
  Rng rng(515);
  for (int trial = 0; trial < 500; ++trial) {
    Group g1 = MakeGroup(
        0, RandomPoints(rng, 1 + trial % 7, 3, rng.Uniform(-0.5, 0.5)));
    Group g2 = MakeGroup(
        1, RandomPoints(rng, 1 + (trial / 3) % 7, 3, rng.Uniform(-0.5, 0.5)));
    double gamma = 0.5 + 0.5 * rng.NextDouble();
    GammaThresholds t = GammaThresholds::FromGamma(gamma);

    DominationMatrix m12 = DominationMatrix::Build(g1, g2);
    DominationMatrix m21 = DominationMatrix::Build(g2, g1);
    double p12 = m12.pos();
    double p21 = m21.pos();
    auto dominates = [&](double p, double threshold) {
      return p == 1.0 || p > threshold;
    };
    PairOutcome expected;
    if (dominates(p12, t.gamma_bar)) {
      expected = PairOutcome::kFirstDominatesStrongly;
    } else if (dominates(p12, t.gamma)) {
      expected = PairOutcome::kFirstDominates;
    } else if (dominates(p21, t.gamma_bar)) {
      expected = PairOutcome::kSecondDominatesStrongly;
    } else if (dominates(p21, t.gamma)) {
      expected = PairOutcome::kSecondDominates;
    } else {
      expected = PairOutcome::kIncomparable;
    }

    PairCompareOptions options;
    options.use_mbb = trial % 2 == 0;
    EXPECT_EQ(ClassifyPair(g1, g2, t, options), expected)
        << "trial " << trial << " gamma " << gamma;
    // And the matrix counts agree with the direct counter.
    EXPECT_EQ(m12.CountPositive(), CountDominatedPairs(g1, g2));
    EXPECT_EQ(m21.CountPositive(), CountDominatedPairs(g2, g1));
  }
}

// The Figure 9(c) region classification: records below the opponent MBB's
// min corner are dominated by every opponent record; records above its max
// corner dominate every opponent record. Verified against brute force.
TEST(CrossValidationTest, MbbRegionsMatchBruteForce) {
  Rng rng(616);
  for (int trial = 0; trial < 300; ++trial) {
    Group g1 = MakeGroup(
        0, RandomPoints(rng, 2 + trial % 10, 2, rng.Uniform(-0.3, 0.3)));
    Group g2 = MakeGroup(
        1, RandomPoints(rng, 2 + (trial / 2) % 10, 2, rng.Uniform(-0.3, 0.3)));
    const Box& b2 = g2.mbb();
    for (size_t i = 0; i < g1.size(); ++i) {
      auto r = g1.point(i);
      if (skyline::Dominates(b2.min, r)) {
        // Claimed: every record of g2 dominates r.
        for (size_t j = 0; j < g2.size(); ++j) {
          EXPECT_TRUE(skyline::Dominates(g2.point(j), r));
        }
      }
      if (skyline::Dominates(r, b2.max)) {
        // Claimed: r dominates every record of g2.
        for (size_t j = 0; j < g2.size(); ++j) {
          EXPECT_TRUE(skyline::Dominates(r, g2.point(j)));
        }
      }
    }
  }
}

// The umbrella header exposes every public surface coherently: touch one
// symbol from each module in a single translation unit.
TEST(CrossValidationTest, UmbrellaHeaderInteroperates) {
  Table movies = datagen::MovieTable();
  sql::Database db;
  db.Register("m", movies);
  auto rows = db.Query("SELECT count(*) FROM m");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->at(0, 0), Value(10));

  auto ds = GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"});
  ASSERT_TRUE(ds.ok());
  WorkloadProfile profile = ProfileWorkload(*ds);
  EXPECT_EQ(profile.num_groups, 7u);

  spatial::RTree tree(2);
  tree.Insert({0.5, 0.5}, 1);
  EXPECT_EQ(tree.size(), 1u);

  Rng rng(1);
  ZipfSampler zipf(10, 1.0);
  EXPECT_GE(zipf.Sample(rng), 1);

  auto sky = skyline::ComputeOnTable(movies, {"Pop", "Qual"},
                                     skyline::AllMax(2));
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(sky->size(), 2u);
}

}  // namespace
}  // namespace galaxy::core
