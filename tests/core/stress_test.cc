// Randomized cross-validation stress tests: every algorithm against the
// exhaustive reference over a grid of gammas, group-size models and
// overlap regimes. Complements algorithms_test.cc with broader, noisier
// coverage.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/groups.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> ReferenceSkyline(const GroupedDataset& ds, double gamma) {
  std::set<uint32_t> out;
  for (uint32_t i = 0; i < ds.num_groups(); ++i) {
    bool dominated = false;
    for (uint32_t j = 0; j < ds.num_groups() && !dominated; ++j) {
      if (j != i && GammaDominates(ds.group(j), ds.group(i), gamma)) {
        dominated = true;
      }
    }
    if (!dominated) out.insert(i);
  }
  return out;
}

struct StressParam {
  uint64_t seed;
  double gamma;
  double spread;
  bool zipf;
};

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, AllAlgorithmsCrossValidated) {
  const StressParam& p = GetParam();
  datagen::GroupedWorkloadConfig config;
  config.num_records = 400;
  config.avg_records_per_group = 8;  // many small groups: worst case for
                                     // group-level pruning, best coverage
  config.dims = 3;
  config.spread = p.spread;
  config.size_model = p.zipf ? datagen::GroupSizeModel::kZipf
                             : datagen::GroupSizeModel::kUniform;
  config.seed = p.seed;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  std::set<uint32_t> exact = ReferenceSkyline(ds, p.gamma);

  for (Algorithm algo :
       {Algorithm::kBruteForce, Algorithm::kNestedLoop, Algorithm::kTransitive,
        Algorithm::kSorted, Algorithm::kIndexed, Algorithm::kIndexedBbox,
        Algorithm::kAuto}) {
    AggregateSkylineOptions options;
    options.gamma = p.gamma;
    options.algorithm = algo;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    std::set<uint32_t> got(result.skyline.begin(), result.skyline.end());

    if (algo == Algorithm::kBruteForce || algo == Algorithm::kNestedLoop) {
      EXPECT_EQ(got, exact) << AlgorithmToString(algo);
      continue;
    }
    // Pruned algorithms: exact-or-superset, and every surplus group must
    // be genuinely dominated (the weak-transitivity gap only).
    for (uint32_t id : exact) {
      EXPECT_TRUE(got.count(id) > 0)
          << AlgorithmToString(algo) << " wrongly excluded " << id;
    }
    for (uint32_t id : got) {
      if (exact.count(id) != 0) continue;
      bool dominated = false;
      for (uint32_t j = 0; j < ds.num_groups() && !dominated; ++j) {
        if (j != id && GammaDominates(ds.group(j), ds.group(id), p.gamma)) {
          dominated = true;
        }
      }
      EXPECT_TRUE(dominated) << AlgorithmToString(algo)
                             << " surplus group not explained " << id;
    }
  }
}

std::vector<StressParam> MakeStressGrid() {
  std::vector<StressParam> params;
  uint64_t seed = 1000;
  for (double gamma : {0.5, 0.75, 0.8, 1.0}) {
    for (double spread : {0.1, 0.5, 0.9}) {
      for (bool zipf : {false, true}) {
        params.push_back({seed++, gamma, spread, zipf});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Grid, StressTest,
                         ::testing::ValuesIn(MakeStressGrid()));

// The safe mode must be exact on every grid point, for every pruned
// algorithm.
class SafeModeStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(SafeModeStressTest, SafeModeIsExactEverywhere) {
  const StressParam& p = GetParam();
  datagen::GroupedWorkloadConfig config;
  config.num_records = 300;
  config.avg_records_per_group = 10;
  config.dims = 2;
  config.spread = p.spread;
  config.size_model = p.zipf ? datagen::GroupSizeModel::kZipf
                             : datagen::GroupSizeModel::kUniform;
  config.seed = p.seed + 5000;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  std::set<uint32_t> exact = ReferenceSkyline(ds, p.gamma);
  for (Algorithm algo : {Algorithm::kTransitive, Algorithm::kSorted,
                         Algorithm::kIndexed, Algorithm::kIndexedBbox}) {
    AggregateSkylineOptions options;
    options.gamma = p.gamma;
    options.algorithm = algo;
    options.prune_strongly_dominated = false;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    std::set<uint32_t> got(result.skyline.begin(), result.skyline.end());
    EXPECT_EQ(got, exact) << AlgorithmToString(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SafeModeStressTest,
                         ::testing::ValuesIn(MakeStressGrid()));

}  // namespace
}  // namespace galaxy::core
