#include "core/parallel.h"

#include <set>

#include <gtest/gtest.h>

#include "core/gamma.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

std::set<uint32_t> ExactSkyline(const GroupedDataset& ds, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  return AsSet(result.skyline);
}

GroupedDataset TestWorkload(uint64_t seed) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 1200;
  config.avg_records_per_group = 30;
  config.dims = 3;
  config.seed = seed;
  return datagen::GenerateGrouped(config);
}

class ParallelThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelThreadsTest, MatchesExactResult) {
  GroupedDataset ds = TestWorkload(11);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  ParallelOptions options;
  options.num_threads = GetParam();
  AggregateSkylineResult result =
      ComputeAggregateSkylineParallel(ds, options);
  EXPECT_EQ(AsSet(result.skyline), exact);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreadsTest,
                         ::testing::Values<size_t>(1, 2, 3, 4, 8));

TEST(ParallelTest, MatchesExactAcrossGammas) {
  GroupedDataset ds = TestWorkload(12);
  for (double gamma : {0.5, 0.75, 0.9, 1.0}) {
    ParallelOptions options;
    options.gamma = gamma;
    options.num_threads = 4;
    AggregateSkylineResult result =
        ComputeAggregateSkylineParallel(ds, options);
    EXPECT_EQ(AsSet(result.skyline), ExactSkyline(ds, gamma))
        << "gamma " << gamma;
  }
}

TEST(ParallelTest, OptionVariantsAgree) {
  GroupedDataset ds = TestWorkload(13);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  for (bool mbb : {false, true}) {
    for (bool stop : {false, true}) {
      for (bool skip : {false, true}) {
        ParallelOptions options;
        options.num_threads = 4;
        options.use_mbb = mbb;
        options.use_stop_rule = stop;
        options.skip_settled_pairs = skip;
        AggregateSkylineResult result =
            ComputeAggregateSkylineParallel(ds, options);
        EXPECT_EQ(AsSet(result.skyline), exact)
            << "mbb " << mbb << " stop " << stop << " skip " << skip;
      }
    }
  }
}

TEST(ParallelTest, MovieExample) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  ParallelOptions options;
  options.num_threads = 3;
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  std::set<std::string> labels;
  for (uint32_t id : result.skyline) labels.insert(ds.group(id).label());
  EXPECT_EQ(labels, (std::set<std::string>{"Coppola", "Jackson", "Kershner",
                                           "Tarantino"}));
}

TEST(ParallelTest, StatsAreMerged) {
  GroupedDataset ds = TestWorkload(14);
  ParallelOptions options;
  options.num_threads = 4;
  options.skip_settled_pairs = false;
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  uint32_t n = static_cast<uint32_t>(ds.num_groups());
  EXPECT_EQ(result.stats.group_pairs_classified,
            static_cast<uint64_t>(n) * (n - 1) / 2);
  EXPECT_GT(result.stats.record_comparisons, 0u);
  EXPECT_GE(result.stats.wall_seconds, 0.0);
}

TEST(ParallelTest, SingleGroup) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 2}}});
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds);
  EXPECT_EQ(result.skyline, (std::vector<uint32_t>{0}));
}

TEST(ParallelTest, DeterministicResultUnderRepetition) {
  // The result set must not depend on thread interleavings: run several
  // times and compare.
  GroupedDataset ds = TestWorkload(15);
  ParallelOptions options;
  options.num_threads = 8;
  std::set<uint32_t> first;
  for (int run = 0; run < 5; ++run) {
    AggregateSkylineResult result =
        ComputeAggregateSkylineParallel(ds, options);
    if (run == 0) {
      first = AsSet(result.skyline);
    } else {
      EXPECT_EQ(AsSet(result.skyline), first) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace galaxy::core
