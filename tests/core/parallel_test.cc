#include "core/parallel.h"

#include <set>

#include <gtest/gtest.h>

#include "core/gamma.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

std::set<uint32_t> ExactSkyline(const GroupedDataset& ds, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  return AsSet(result.skyline);
}

GroupedDataset TestWorkload(uint64_t seed) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 1200;
  config.avg_records_per_group = 30;
  config.dims = 3;
  config.seed = seed;
  return datagen::GenerateGrouped(config);
}

class ParallelThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelThreadsTest, MatchesExactResult) {
  GroupedDataset ds = TestWorkload(11);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  ParallelOptions options;
  options.num_threads = GetParam();
  AggregateSkylineResult result =
      ComputeAggregateSkylineParallel(ds, options);
  EXPECT_EQ(AsSet(result.skyline), exact);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreadsTest,
                         ::testing::Values<size_t>(1, 2, 3, 4, 8));

TEST(ParallelTest, MatchesExactAcrossGammas) {
  GroupedDataset ds = TestWorkload(12);
  for (double gamma : {0.5, 0.75, 0.9, 1.0}) {
    ParallelOptions options;
    options.gamma = gamma;
    options.num_threads = 4;
    AggregateSkylineResult result =
        ComputeAggregateSkylineParallel(ds, options);
    EXPECT_EQ(AsSet(result.skyline), ExactSkyline(ds, gamma))
        << "gamma " << gamma;
  }
}

TEST(ParallelTest, OptionVariantsAgree) {
  GroupedDataset ds = TestWorkload(13);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  for (bool mbb : {false, true}) {
    for (bool stop : {false, true}) {
      for (bool skip : {false, true}) {
        ParallelOptions options;
        options.num_threads = 4;
        options.use_mbb = mbb;
        options.use_stop_rule = stop;
        options.skip_settled_pairs = skip;
        AggregateSkylineResult result =
            ComputeAggregateSkylineParallel(ds, options);
        EXPECT_EQ(AsSet(result.skyline), exact)
            << "mbb " << mbb << " stop " << stop << " skip " << skip;
      }
    }
  }
}

TEST(ParallelTest, MovieExample) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  ParallelOptions options;
  options.num_threads = 3;
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  std::set<std::string> labels;
  for (uint32_t id : result.skyline) labels.insert(ds.group(id).label());
  EXPECT_EQ(labels, (std::set<std::string>{"Coppola", "Jackson", "Kershner",
                                           "Tarantino"}));
}

TEST(ParallelTest, StatsAreMerged) {
  GroupedDataset ds = TestWorkload(14);
  ParallelOptions options;
  options.num_threads = 4;
  options.skip_settled_pairs = false;
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  uint32_t n = static_cast<uint32_t>(ds.num_groups());
  EXPECT_EQ(result.stats.group_pairs_classified,
            static_cast<uint64_t>(n) * (n - 1) / 2);
  EXPECT_GT(result.stats.record_comparisons, 0u);
  EXPECT_GE(result.stats.wall_seconds, 0.0);
}

TEST(ParallelTest, SingleGroup) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 2}}});
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds);
  EXPECT_EQ(result.skyline, (std::vector<uint32_t>{0}));
}

GroupedDataset SkewedWorkload(uint64_t seed) {
  // Zipf-head group sizes: the shape whose one giant pair serialized the
  // pre-cost-model scheduler (ISSUE 6).
  datagen::GroupedWorkloadConfig config;
  config.num_records = 4000;
  config.avg_records_per_group = 100;
  config.dims = 4;
  config.size_model = datagen::GroupSizeModel::kZipf;
  config.zipf_theta = 1.2;
  config.seed = seed;
  return datagen::GenerateGrouped(config);
}

AggregateSkylineResult ExactResult(const GroupedDataset& ds, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  return ComputeAggregateSkyline(ds, options);
}

TEST(ParallelTest, SkewedWorkloadStealsAndSplitsAndStaysExact) {
  GroupedDataset ds = SkewedWorkload(77);
  AggregateSkylineResult exact = ExactResult(ds, 0.5);
  ParallelOptions options;
  options.num_threads = 8;
  options.sequential_cutoff_cost = 1;   // never run inline
  options.giant_pair_min_cost = 1000;   // Zipf-head pairs split into tiles
  options.chunk_cost_target = 256;      // small cost-sized claims
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  EXPECT_EQ(result.dominated, exact.dominated);
  EXPECT_EQ(result.strongly_dominated, exact.strongly_dominated);
  EXPECT_GT(result.stats.chunks_stolen, 0u);
  EXPECT_GT(result.stats.pairs_split, 0u);
}

TEST(ParallelTest, CostModelConfigsAllMatchExactMarks) {
  // The cutoff, chunking, and intra-pair-split axes of the differential
  // matrix: every combination must reproduce the exact mark vectors.
  GroupedDataset ds = SkewedWorkload(78);
  AggregateSkylineResult exact = ExactResult(ds, 0.5);
  for (uint64_t cutoff : {uint64_t{0}, uint64_t{1}}) {
    for (uint64_t giant : {uint64_t{0}, uint64_t{1000}, UINT64_MAX}) {
      for (uint64_t cost_target : {uint64_t{0}, uint64_t{64}}) {
        for (uint64_t chunk : {uint64_t{0}, uint64_t{4}}) {
          ParallelOptions options;
          options.num_threads = 4;
          options.sequential_cutoff_cost = cutoff;
          options.giant_pair_min_cost = giant;
          options.chunk_cost_target = cost_target;
          options.pair_chunk = chunk;
          AggregateSkylineResult result =
              ComputeAggregateSkylineParallel(ds, options);
          EXPECT_EQ(result.dominated, exact.dominated)
              << "cutoff " << cutoff << " giant " << giant << " cost "
              << cost_target << " chunk " << chunk;
          EXPECT_EQ(result.strongly_dominated, exact.strongly_dominated)
              << "cutoff " << cutoff << " giant " << giant << " cost "
              << cost_target << " chunk " << chunk;
        }
      }
    }
  }
}

TEST(ParallelTest, SplitPairsAreClassifiedExactlyOnce) {
  // With settled-pair skipping off every unordered pair must be decided
  // exactly once, whether it went through the giant tile phase or the
  // triangle sweep.
  GroupedDataset ds = SkewedWorkload(79);
  ParallelOptions options;
  options.num_threads = 8;
  options.skip_settled_pairs = false;
  options.sequential_cutoff_cost = 1;
  options.giant_pair_min_cost = 1;  // every pair is a "giant" candidate
  AggregateSkylineResult result = ComputeAggregateSkylineParallel(ds, options);
  const uint64_t n = ds.num_groups();
  EXPECT_EQ(result.stats.group_pairs_classified, n * (n - 1) / 2);
  EXPECT_GT(result.stats.pairs_split, 0u);
  EXPECT_EQ(AsSet(result.skyline), AsSet(ExactResult(ds, 0.5).skyline));
}

TEST(ParallelTest, InlineCutoffMatchesPoolResult) {
  // The same workload below and above the cutoff: identical marks, and
  // the inline path reports no scheduler activity.
  GroupedDataset ds = TestWorkload(16);
  ParallelOptions inline_opts;
  inline_opts.num_threads = 4;
  inline_opts.sequential_cutoff_cost = UINT64_MAX - 1;  // force inline
  AggregateSkylineResult inline_result =
      ComputeAggregateSkylineParallel(ds, inline_opts);
  EXPECT_EQ(inline_result.stats.chunks_stolen, 0u);
  EXPECT_EQ(inline_result.stats.pairs_split, 0u);

  ParallelOptions pool_opts;
  pool_opts.num_threads = 4;
  pool_opts.sequential_cutoff_cost = 1;  // force the pool
  AggregateSkylineResult pool_result =
      ComputeAggregateSkylineParallel(ds, pool_opts);
  EXPECT_EQ(inline_result.dominated, pool_result.dominated);
  EXPECT_EQ(inline_result.strongly_dominated, pool_result.strongly_dominated);
}

TEST(ParallelTest, DeterministicResultUnderRepetition) {
  // The result set must not depend on thread interleavings: run several
  // times and compare.
  GroupedDataset ds = TestWorkload(15);
  ParallelOptions options;
  options.num_threads = 8;
  std::set<uint32_t> first;
  for (int run = 0; run < 5; ++run) {
    AggregateSkylineResult result =
        ComputeAggregateSkylineParallel(ds, options);
    if (run == 0) {
      first = AsSet(result.skyline);
    } else {
      EXPECT_EQ(AsSet(result.skyline), first) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace galaxy::core
