#include "core/representative.h"

#include <set>

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

TEST(RepresentativeTest, SmallSkylineReturnsEverything) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  RepresentativeResult r = SelectRepresentatives(ds, 10, 0.5);
  // The skyline has 4 directors; all are returned.
  EXPECT_EQ(r.representatives.size(), 4u);
  EXPECT_EQ(r.dominated_total, 3u);  // Cameron, Nolan, Wiseau
}

TEST(RepresentativeTest, PicksTheDominatorFirst) {
  // One skyline group dominates both losers; the other dominates none.
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{0.9, 0.9}},   // A: top-right, dominates C and D
       {{0.1, 1.5}},   // B: skyline via dimension 1, dominates nothing
       {{0.5, 0.5}},   // C: dominated by A
       {{0.6, 0.4}}},  // D: dominated by A
      {"A", "B", "C", "D"});
  RepresentativeResult r = SelectRepresentatives(ds, 1, 0.5);
  ASSERT_EQ(r.representatives.size(), 1u);
  EXPECT_EQ(ds.group(r.representatives[0].id).label(), "A");
  EXPECT_EQ(r.representatives[0].marginal_coverage, 2u);
  EXPECT_EQ(r.covered, 2u);
  EXPECT_EQ(r.dominated_total, 2u);
}

TEST(RepresentativeTest, GreedyCoverageIsMonotoneAndBounded) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 1500;
  config.avg_records_per_group = 25;
  config.dims = 3;
  config.seed = 71;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  size_t previous_covered = 0;
  for (size_t k : {1, 2, 4, 8, 1000}) {
    RepresentativeResult r = SelectRepresentatives(ds, k, 0.5);
    EXPECT_GE(r.covered, previous_covered);
    EXPECT_LE(r.covered, r.dominated_total);
    previous_covered = r.covered;
    // All representatives are skyline members.
    AggregateSkylineOptions options;
    options.algorithm = Algorithm::kBruteForce;
    AggregateSkylineResult sky = ComputeAggregateSkyline(ds, options);
    for (const RepresentativeGroup& rep : r.representatives) {
      EXPECT_TRUE(sky.Contains(rep.id));
    }
  }
  // Unlimited budget covers every group that is dominated by some skyline
  // group (not necessarily all dominated groups: domination is not
  // transitive, so a group can be dominated only by non-skyline groups).
  RepresentativeResult all = SelectRepresentatives(ds, 1u << 20, 0.5);
  size_t coverable = 0;
  AggregateSkylineOptions options;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult sky = ComputeAggregateSkyline(ds, options);
  for (uint32_t g = 0; g < ds.num_groups(); ++g) {
    if (sky.Contains(g)) continue;
    for (uint32_t s : sky.skyline) {
      if (GammaDominates(ds.group(s), ds.group(g), 0.5)) {
        ++coverable;
        break;
      }
    }
  }
  EXPECT_EQ(all.covered, coverable);
}

TEST(RepresentativeTest, MarginalCoverageIsNonIncreasing) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 1000;
  config.avg_records_per_group = 20;
  config.dims = 2;
  config.seed = 72;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  RepresentativeResult r = SelectRepresentatives(ds, 10, 0.5);
  for (size_t i = 1; i < r.representatives.size(); ++i) {
    EXPECT_LE(r.representatives[i].marginal_coverage,
              r.representatives[i - 1].marginal_coverage);
  }
}

TEST(RepresentativeTest, SingleGroupDataset) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}}});
  RepresentativeResult r = SelectRepresentatives(ds, 3, 0.5);
  ASSERT_EQ(r.representatives.size(), 1u);
  EXPECT_EQ(r.covered, 0u);
  EXPECT_EQ(r.dominated_total, 0u);
}

}  // namespace
}  // namespace galaxy::core
