#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace galaxy::core {
namespace {

TEST(ThreadPoolTest, RunsEverySlotExactlyOnce) {
  ThreadPool pool(3);
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{7}, size_t{32}}) {
    std::vector<std::atomic<int>> hits(parallelism);
    for (auto& h : hits) h.store(0);
    pool.Run(parallelism, [&](size_t slot) {
      ASSERT_LT(slot, parallelism);
      hits[slot].fetch_add(1);
    });
    for (size_t s = 0; s < parallelism; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "slot " << s;
    }
  }
}

TEST(ThreadPoolTest, MakesProgressWithZeroPoolThreads) {
  // Single-core machines: the caller must claim every slot itself.
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.Run(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ConcurrentCallersShareThePool) {
  ThreadPool pool(2);
  constexpr int kCallers = 4;
  constexpr size_t kSlots = 16;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      pool.Run(kSlots, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * static_cast<int>(kSlots));
}

TEST(ThreadPoolTest, GlobalPoolIsReusable) {
  std::atomic<int> count{0};
  ThreadPool::Global().Run(4, [&](size_t) { count.fetch_add(1); });
  ThreadPool::Global().Run(4, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(WorkStealingPartitionTest, CoversEveryIndexExactlyOnceSingleSlot) {
  const uint64_t total = 1003;
  WorkStealingPartition partition(total, 1, 16);
  std::vector<int> seen(total, 0);
  uint64_t begin = 0, end = 0;
  while (partition.Next(0, &begin, &end)) {
    ASSERT_LT(begin, end);
    for (uint64_t p = begin; p < end; ++p) ++seen[p];
  }
  for (uint64_t p = 0; p < total; ++p) EXPECT_EQ(seen[p], 1) << p;
  EXPECT_EQ(partition.chunks_stolen(), 0u);
}

TEST(WorkStealingPartitionTest, CoversEveryIndexExactlyOnceConcurrently) {
  const uint64_t total = 20000;
  const size_t parallelism = 4;
  WorkStealingPartition partition(total, parallelism, 7);
  std::vector<std::atomic<int>> seen(total);
  for (auto& s : seen) s.store(0);
  std::vector<std::thread> threads;
  for (size_t slot = 0; slot < parallelism; ++slot) {
    threads.emplace_back([&, slot] {
      uint64_t begin = 0, end = 0;
      // Slot 0 claims greedily; the others start delayed so stealing
      // actually happens.
      if (slot != 0) std::this_thread::yield();
      while (partition.Next(slot, &begin, &end)) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, total);
        for (uint64_t p = begin; p < end; ++p) seen[p].fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (uint64_t p = 0; p < total; ++p) {
    ASSERT_EQ(seen[p].load(), 1) << "index " << p;
  }
}

TEST(WorkStealingPartitionTest, EmptyRangeYieldsNothing) {
  WorkStealingPartition partition(0, 3, 8);
  uint64_t begin = 0, end = 0;
  EXPECT_FALSE(partition.Next(0, &begin, &end));
  EXPECT_FALSE(partition.Next(2, &begin, &end));
}

TEST(WorkStealingPartitionTest, FewerIndicesThanSlotsStillCoversAll) {
  // Degenerate shape: total < parallelism * chunk — most slots start with
  // an empty (or missing) share and must exit without work.
  const uint64_t total = 3;
  const size_t parallelism = 8;
  WorkStealingPartition partition(total, parallelism, 16);
  std::vector<int> seen(total, 0);
  uint64_t begin = 0, end = 0;
  for (size_t slot = 0; slot < parallelism; ++slot) {
    while (partition.Next(slot, &begin, &end)) {
      ASSERT_LE(end, total);
      for (uint64_t p = begin; p < end; ++p) ++seen[p];
    }
  }
  for (uint64_t p = 0; p < total; ++p) EXPECT_EQ(seen[p], 1) << p;
}

TEST(WorkStealingPartitionTest, DrainedPartitionAnswersWithoutLocking) {
  // After the last claim every further Next must return false from the
  // lock-free remaining_ gate — cheap for surplus slots arriving late.
  WorkStealingPartition partition(5, 4, 8);
  uint64_t begin = 0, end = 0;
  while (partition.Next(0, &begin, &end)) {
  }
  for (size_t slot = 0; slot < 4; ++slot) {
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_FALSE(partition.Next(slot, &begin, &end)) << slot;
    }
  }
}

TEST(WorkStealingPartitionTest, SingleIndexSingleSlot) {
  WorkStealingPartition partition(1, 1, 64);
  uint64_t begin = 0, end = 0;
  ASSERT_TRUE(partition.Next(0, &begin, &end));
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 1u);
  EXPECT_FALSE(partition.Next(0, &begin, &end));
}

TEST(WorkStealingPartitionTest, ChunkSizerControlsClaimExtent) {
  // A sizer returning begin + 3 must produce 3-wide claims, clamped at the
  // range limit, and still cover every index exactly once.
  const uint64_t total = 10;
  WorkStealingPartition partition(total, 1, 1);
  WorkStealingPartition::ChunkSizer sizer =
      [](uint64_t begin, uint64_t limit) {
        return std::min(begin + 3, limit);
      };
  std::vector<int> seen(total, 0);
  std::vector<uint64_t> widths;
  uint64_t begin = 0, end = 0;
  while (partition.Next(0, &begin, &end, &sizer)) {
    widths.push_back(end - begin);
    for (uint64_t p = begin; p < end; ++p) ++seen[p];
  }
  for (uint64_t p = 0; p < total; ++p) EXPECT_EQ(seen[p], 1) << p;
  EXPECT_EQ(widths, (std::vector<uint64_t>{3, 3, 3, 1}));
}

TEST(WorkStealingPartitionTest, MisbehavingSizerIsClampedToProgress) {
  // Sizers returning <= begin (or past the limit) must still yield a
  // non-empty in-range claim: the partition guarantees forward progress.
  const uint64_t total = 4;
  WorkStealingPartition partition(total, 1, 1);
  WorkStealingPartition::ChunkSizer bad =
      [](uint64_t begin, uint64_t) { return begin; };
  std::vector<int> seen(total, 0);
  uint64_t begin = 0, end = 0;
  while (partition.Next(0, &begin, &end, &bad)) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, total);
    for (uint64_t p = begin; p < end; ++p) ++seen[p];
  }
  for (uint64_t p = 0; p < total; ++p) EXPECT_EQ(seen[p], 1) << p;
}

TEST(WorkStealingPartitionTest, SizerAppliesToStolenRangesToo) {
  // Slot 1 owns nothing; it steals from slot 0 and the stolen range's
  // claims must also be sizer-shaped.
  WorkStealingPartition partition(100, 2, 8);
  WorkStealingPartition::ChunkSizer sizer =
      [](uint64_t begin, uint64_t limit) {
        return std::min(begin + 5, limit);
      };
  uint64_t begin = 0, end = 0;
  uint64_t claimed = 0;
  while (partition.Next(1, &begin, &end, &sizer)) {
    EXPECT_LE(end - begin, 5u);
    claimed += end - begin;
  }
  EXPECT_EQ(claimed, 100u);
  EXPECT_GT(partition.chunks_stolen(), 0u);
}

TEST(WorkStealingPartitionTest, IdleSlotStealsFromLoadedOne) {
  // Everything starts on slot 0's plate; slot 1 must steal to get work.
  WorkStealingPartition partition(100, 2, 8);
  uint64_t begin = 0, end = 0;
  uint64_t claimed_by_1 = 0;
  while (partition.Next(1, &begin, &end)) claimed_by_1 += end - begin;
  EXPECT_GT(claimed_by_1, 0u);
  EXPECT_GT(partition.chunks_stolen(), 0u);
  uint64_t claimed_by_0 = 0;
  while (partition.Next(0, &begin, &end)) claimed_by_0 += end - begin;
  EXPECT_EQ(claimed_by_0 + claimed_by_1, 100u);
}

TEST(PairFromIndexTest, RoundTripsTheTriangleEnumeration) {
  for (uint32_t n : {2u, 3u, 5u, 17u, 100u}) {
    uint64_t p = 0;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j, ++p) {
        PairIndex pair = PairFromIndex(p, n);
        ASSERT_EQ(pair.i, i) << "n=" << n << " p=" << p;
        ASSERT_EQ(pair.j, j) << "n=" << n << " p=" << p;
      }
    }
    EXPECT_EQ(p, static_cast<uint64_t>(n) * (n - 1) / 2);
  }
}

}  // namespace
}  // namespace galaxy::core
