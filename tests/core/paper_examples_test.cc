// End-to-end reproduction of the paper's running example (Figures 1-4 and
// the Section 1.3 discussion) on the verbatim Movie table.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/movies.h"
#include "skyline/skyline.h"
#include "sql/catalog.h"

namespace galaxy::core {
namespace {

std::set<std::string> DirectorsOf(const Table& movies,
                                  const std::vector<size_t>& rows) {
  std::set<std::string> out;
  for (size_t r : rows) {
    out.insert(movies.at(r, "Director").value().AsString());
  }
  return out;
}

TEST(PaperExamplesTest, Figure2RecordSkyline) {
  Table movies = datagen::MovieTable();
  auto rows =
      skyline::ComputeOnTable(movies, {"Pop", "Qual"}, skyline::AllMax(2));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(movies.at((*rows)[0], "Title").value(), Value("Pulp Fiction"));
  EXPECT_EQ(movies.at((*rows)[1], "Title").value(), Value("The Godfather"));
}

TEST(PaperExamplesTest, Figure3AggregateQuery) {
  // Example 2: SELECT Director, max(Pop), max(Qual) FROM Movie
  //            GROUP BY Director HAVING max(Qual) >= 8.0
  sql::Database db;
  db.Register("Movie", datagen::MovieTable());
  auto result = db.Query(
      "SELECT Director, max(Pop) AS mp, max(Qual) AS mq FROM Movie "
      "GROUP BY Director HAVING max(Qual) >= 8.0 ORDER BY Director");
  ASSERT_TRUE(result.ok()) << result.status();
  // Six directors qualify (all but Wiseau).
  ASSERT_EQ(result->num_rows(), 6u);
  auto row_of = [&](const std::string& director) -> int {
    for (size_t r = 0; r < result->num_rows(); ++r) {
      if (result->at(r, 0).AsString() == director) return static_cast<int>(r);
    }
    return -1;
  };
  int cameron = row_of("Cameron");
  ASSERT_GE(cameron, 0);
  EXPECT_EQ(result->at(cameron, 1), Value(404));
  EXPECT_EQ(result->at(cameron, 2), Value(8.6));
  int tarantino = row_of("Tarantino");
  ASSERT_GE(tarantino, 0);
  EXPECT_EQ(result->at(tarantino, 1), Value(557));
  EXPECT_EQ(result->at(tarantino, 2), Value(9.0));
  int coppola = row_of("Coppola");
  ASSERT_GE(coppola, 0);
  EXPECT_EQ(result->at(coppola, 1), Value(531));
  EXPECT_EQ(result->at(coppola, 2), Value(9.2));
  EXPECT_EQ(row_of("Wiseau"), -1);
}

TEST(PaperExamplesTest, Figure4aSequentialSkylineDirectors) {
  // skyline -> group by: the directors of the skyline movies are just
  // Tarantino and Coppola.
  Table movies = datagen::MovieTable();
  auto rows =
      skyline::ComputeOnTable(movies, {"Pop", "Qual"}, skyline::AllMax(2));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(DirectorsOf(movies, *rows),
            (std::set<std::string>{"Tarantino", "Coppola"}));
}

TEST(PaperExamplesTest, Figure4aGroupByThenSkyline) {
  // group by -> skyline on (max(Pop), max(Qual)) also returns only
  // Tarantino and Coppola (the paper's Figure 4(a) discussion).
  sql::Database db;
  db.Register("Movie", datagen::MovieTable());
  Table aggregated =
      db.Query(
            "SELECT Director, max(Pop) AS mp, max(Qual) AS mq FROM Movie "
            "GROUP BY Director")
          .value();
  auto rows =
      skyline::ComputeOnTable(aggregated, {"mp", "mq"}, skyline::AllMax(2));
  ASSERT_TRUE(rows.ok());
  std::set<std::string> directors;
  for (size_t r : *rows) {
    directors.insert(aggregated.at(r, 0).AsString());
  }
  EXPECT_EQ(directors, (std::set<std::string>{"Tarantino", "Coppola"}));
}

TEST(PaperExamplesTest, Figure4bAggregateSkylineDirectors) {
  // Example 3: SELECT director FROM movies GROUP BY Director
  //            SKYLINE OF Pop MAX, Qual MAX
  // returns Coppola, Jackson, Kershner, Tarantino.
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  AggregateSkylineOptions options;
  options.gamma = 0.5;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  std::vector<std::string> labels = result.Labels(ds);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<std::string>{"Coppola", "Jackson",
                                              "Kershner", "Tarantino"}));
}

TEST(PaperExamplesTest, Figure4bViaSqlSkylineSyntax) {
  // The same query through the SQL front end with the paper's syntax.
  sql::Database db;
  db.Register("movies", datagen::MovieTable());
  auto result = db.Query(
      "SELECT Director FROM movies GROUP BY Director "
      "SKYLINE OF Pop MAX, Qual MAX ORDER BY Director");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->at(0, 0), Value("Coppola"));
  EXPECT_EQ(result->at(1, 0), Value("Jackson"));
  EXPECT_EQ(result->at(2, 0), Value("Kershner"));
  EXPECT_EQ(result->at(3, 0), Value("Tarantino"));
}

TEST(PaperExamplesTest, Section13CameronNotBetterThanNolan) {
  // The paper's argument against group-by -> skyline: Cameron appears to
  // beat Nolan on (max Pop, max Qual), but no single Cameron movie
  // dominates Nolan's only movie — so neither director gamma-dominates the
  // other.
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  size_t cameron = ds.FindByLabel("Cameron").value();
  size_t nolan = ds.FindByLabel("Nolan").value();
  EXPECT_DOUBLE_EQ(DominationProbability(ds.group(cameron), ds.group(nolan)),
                   0.0);
  EXPECT_DOUBLE_EQ(DominationProbability(ds.group(nolan), ds.group(cameron)),
                   0.0);
}

TEST(PaperExamplesTest, Section13JacksonDominatedRecordWiseButNotGroupWise) {
  // Jackson's only movie is dominated by Pulp Fiction, yet Jackson the
  // *director* is not gamma-dominated by Tarantino (p = 1/2, not > 1/2).
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  size_t tarantino = ds.FindByLabel("Tarantino").value();
  size_t jackson = ds.FindByLabel("Jackson").value();
  EXPECT_DOUBLE_EQ(
      DominationProbability(ds.group(tarantino), ds.group(jackson)), 0.5);
  EXPECT_FALSE(GammaDominates(ds.group(tarantino), ds.group(jackson), 0.5));
}

TEST(PaperExamplesTest, WiseauStrictlyDominatedByEveryone) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  size_t wiseau = ds.FindByLabel("Wiseau").value();
  for (size_t g = 0; g < ds.num_groups(); ++g) {
    if (g == wiseau) continue;
    EXPECT_DOUBLE_EQ(DominationProbability(ds.group(g), ds.group(wiseau)),
                     1.0)
        << ds.group(g).label();
  }
}

TEST(PaperExamplesTest, MovieSkylineTableMatchesFigure2) {
  Table expected = datagen::MovieSkylineTable();
  EXPECT_EQ(expected.num_rows(), 2u);
  EXPECT_EQ(expected.at(0, "Title").value(), Value("Pulp Fiction"));
  EXPECT_EQ(expected.at(1, "Director").value(), Value("Coppola"));
}

}  // namespace
}  // namespace galaxy::core
