// Unit tests of the execution control plane: trip reasons and their
// precedence, deterministic fault injection, amortized deadline polling,
// memory reservations, and thread-safety of cancellation.

#include "core/exec_context.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace galaxy::core {
namespace {

TEST(ExecContextTest, FreshContextIsUnbounded) {
  ExecutionContext exec;
  EXPECT_FALSE(exec.stopped());
  EXPECT_TRUE(exec.status().ok());
  EXPECT_FALSE(exec.degradable_trip());
  EXPECT_FALSE(exec.has_deadline());
  EXPECT_TRUE(exec.Charge(1000000));
  EXPECT_TRUE(exec.Charge(0));  // pure poll
  EXPECT_EQ(exec.comparisons(), 1000000u);
}

TEST(ExecContextTest, ComparisonBudgetTripsStrictlyAboveMax) {
  ExecutionContext exec;
  exec.set_max_comparisons(100);
  EXPECT_TRUE(exec.Charge(100));  // exactly the budget is fine
  EXPECT_FALSE(exec.stopped());
  EXPECT_FALSE(exec.Charge(1));  // 101 > 100 trips
  EXPECT_TRUE(exec.stopped());
  EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(exec.degradable_trip());
}

TEST(ExecContextTest, CancelFromAnotherLogicalOwner) {
  ExecutionContext exec;
  exec.RequestCancel();
  EXPECT_TRUE(exec.stopped());
  EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(exec.degradable_trip());
  // A stopped context stays stopped; charges keep failing.
  EXPECT_FALSE(exec.Charge(1));
  EXPECT_FALSE(exec.Charge(0));
}

TEST(ExecContextTest, FirstTripReasonWins) {
  ExecutionContext exec;
  exec.set_max_comparisons(10);
  EXPECT_FALSE(exec.Charge(11));
  ASSERT_EQ(exec.status().code(), StatusCode::kResourceExhausted);
  exec.RequestCancel();  // later trip must not overwrite the reason
  EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ExpiredDeadlineTripsOnNextPoll) {
  ExecutionContext exec;
  exec.set_deadline(ExecutionContext::Clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(exec.has_deadline());
  // next_deadline_check_ starts at zero, so the very first charge polls.
  EXPECT_FALSE(exec.Charge(1));
  EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(exec.degradable_trip());
}

TEST(ExecContextTest, FutureDeadlineDoesNotTrip) {
  ExecutionContext exec;
  exec.set_timeout(std::chrono::milliseconds(60000));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(exec.Charge(1000));
  EXPECT_FALSE(exec.stopped());
}

TEST(ExecContextTest, DeadlinePollIsAmortized) {
  // An expired deadline is only noticed when the charged total crosses the
  // next poll point; with the first poll consumed, detection waits until
  // kDeadlineCheckInterval more units. This documents the detection-latency
  // bound rather than an exact trip point.
  ExecutionContext exec;
  exec.set_timeout(std::chrono::milliseconds(60000));
  EXPECT_TRUE(exec.Charge(1));  // consumes the poll at zero
  // Expire the deadline retroactively (configuration is not thread-safe;
  // we are single-threaded here and the run has not observably started).
  exec.set_deadline(ExecutionContext::Clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_FALSE(exec.Charge(1));  // set_deadline re-armed the poll
  EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, InjectedCancelIsDeterministic) {
  for (int trial = 0; trial < 3; ++trial) {
    ExecutionContext exec;
    exec.InjectCancelAtComparison(500);
    uint64_t charged = 0;
    while (exec.Charge(7)) charged += 7;
    // The first failing charge is the one whose running total reaches 500.
    EXPECT_LT(charged, 500u);
    EXPECT_GE(charged + 7, 500u);
    EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
  }
}

TEST(ExecContextTest, InjectedDeadlineReportsDeadlineExceeded) {
  ExecutionContext exec;
  exec.InjectDeadlineAtComparison(1);
  EXPECT_FALSE(exec.Charge(1));
  EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(exec.degradable_trip());
}

TEST(ExecContextTest, InjectedFaultAtZeroTripsImmediately) {
  ExecutionContext exec;
  exec.InjectCancelAtComparison(0);
  EXPECT_FALSE(exec.Charge(0));  // even a pure poll observes it
  EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, InjectionPrecedesRealBudget) {
  ExecutionContext exec;
  exec.set_max_comparisons(10);
  exec.InjectCancelAtComparison(5);
  EXPECT_FALSE(exec.Charge(20));  // crosses both; injection wins
  EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, MemoryBudgetTripIsNotDegradable) {
  ExecutionContext exec;
  exec.set_max_resident_bytes(1024);
  EXPECT_TRUE(exec.ReserveBytes(1000).ok());
  EXPECT_EQ(exec.resident_bytes(), 1000u);
  Status status = exec.ReserveBytes(100);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Failed reservation rolls back — nothing extra held.
  EXPECT_EQ(exec.resident_bytes(), 1000u);
  EXPECT_TRUE(exec.stopped());
  EXPECT_FALSE(exec.degradable_trip());
}

TEST(ExecContextTest, ReleaseBytesReturnsHeadroom) {
  ExecutionContext exec;
  exec.set_max_resident_bytes(100);
  EXPECT_TRUE(exec.ReserveBytes(80).ok());
  exec.ReleaseBytes(80);
  EXPECT_EQ(exec.resident_bytes(), 0u);
  EXPECT_TRUE(exec.ReserveBytes(100).ok());
}

TEST(ExecContextTest, ScopedReservationReleasesOnDestruction) {
  ExecutionContext exec;
  exec.set_max_resident_bytes(100);
  {
    ScopedReservation reservation;
    EXPECT_TRUE(reservation.Reserve(&exec, 60).ok());
    EXPECT_EQ(exec.resident_bytes(), 60u);
  }
  EXPECT_EQ(exec.resident_bytes(), 0u);
}

TEST(ExecContextTest, ScopedReservationOnNullContextIsNoop) {
  ScopedReservation reservation;
  EXPECT_TRUE(reservation.Reserve(nullptr, 1 << 30).ok());
  reservation.Release();  // must not crash
}

TEST(ExecContextTest, ScopedReservationReReserveReleasesPrevious) {
  ExecutionContext exec;
  ScopedReservation reservation;
  ASSERT_TRUE(reservation.Reserve(&exec, 50).ok());
  ASSERT_TRUE(reservation.Reserve(&exec, 30).ok());
  EXPECT_EQ(exec.resident_bytes(), 30u);
}

TEST(ExecContextTest, ConcurrentChargesObserveCancelPromptly) {
  ExecutionContext exec;
  std::atomic<int> still_running{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&exec, &still_running] {
      while (exec.Charge(ExecutionContext::kChargeBatch)) {
      }
      // Every worker exits its loop only because the context stopped.
      if (!exec.stopped()) still_running.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  exec.RequestCancel();
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(still_running.load(), 0);
  EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ConcurrentBudgetTripHasOneReason) {
  ExecutionContext exec;
  exec.set_max_comparisons(1 << 20);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&exec] {
      while (exec.Charge(64)) {
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted);
  // The total can overshoot by at most one in-flight charge per thread.
  EXPECT_LE(exec.comparisons(), (1u << 20) + 4 * 64);
}

}  // namespace
}  // namespace galaxy::core
