#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

TEST(RankByGammaTest, MovieDirectors) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  std::vector<RankedGroup> ranked = RankByGamma(ds);
  ASSERT_EQ(ranked.size(), ds.num_groups());

  // Wiseau is strictly dominated: always last, never in a skyline.
  EXPECT_EQ(ranked.back().label, "Wiseau");
  EXPECT_TRUE(ranked.back().always_dominated);

  // Every non-strictly-dominated group reports min_gamma in [0.5, 1].
  for (const RankedGroup& rg : ranked) {
    if (!rg.always_dominated) {
      EXPECT_GE(rg.min_gamma, 0.5);
      EXPECT_LE(rg.min_gamma, 1.0);
    }
  }
  // Sorted ascending by min_gamma among the never-strictly-dominated.
  for (size_t i = 1; i < ranked.size(); ++i) {
    if (!ranked[i - 1].always_dominated && !ranked[i].always_dominated) {
      EXPECT_LE(ranked[i - 1].min_gamma, ranked[i].min_gamma);
    }
  }
}

TEST(RankByGammaTest, ConsistentWithSkylineMembership) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 500;
  config.avg_records_per_group = 25;
  config.dims = 3;
  config.seed = 11;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  std::vector<RankedGroup> ranked = RankByGamma(ds);

  for (double gamma : {0.5, 0.65, 0.8, 0.95}) {
    AggregateSkylineOptions options;
    options.gamma = gamma;
    options.algorithm = Algorithm::kBruteForce;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    for (const RankedGroup& rg : ranked) {
      bool in_skyline = result.Contains(rg.id);
      bool predicted = !rg.always_dominated && rg.min_gamma <= gamma;
      EXPECT_EQ(in_skyline, predicted)
          << "group " << rg.label << " gamma " << gamma << " min_gamma "
          << rg.min_gamma;
    }
  }
}

TEST(RankByGammaTest, MinGammaIsMaxDominationProbability) {
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{5, 5}, {1, 1}, {1, 2}}, {{2, 3}}, {{0.5, 6}}}, {"G1", "G2", "G3"});
  std::vector<RankedGroup> ranked = RankByGamma(ds);
  auto find = [&](const std::string& label) {
    for (const RankedGroup& rg : ranked) {
      if (rg.label == label) return rg;
    }
    ADD_FAILURE() << "missing " << label;
    return RankedGroup{};
  };
  // p(G2 ≻ G1) = 2/3 is the strongest attack on G1.
  EXPECT_NEAR(find("G1").min_gamma, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(find("G1").always_dominated);
  // Nothing dominates G2 or G3 at all.
  EXPECT_NEAR(find("G2").min_gamma, 0.5, 1e-12);
  EXPECT_NEAR(find("G3").min_gamma, 0.5, 1e-12);
}

TEST(RankByGammaTest, StrongestDominatorIsReported) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  std::vector<RankedGroup> ranked = RankByGamma(ds);
  auto find = [&](const std::string& label) -> const RankedGroup& {
    for (const RankedGroup& rg : ranked) {
      if (rg.label == label) return rg;
    }
    static RankedGroup none;
    ADD_FAILURE() << "missing " << label;
    return none;
  };
  // Nolan's single movie is strictly dominated by Jackson's (p = 1).
  const RankedGroup& nolan = find("Nolan");
  EXPECT_TRUE(nolan.always_dominated);
  EXPECT_EQ(ds.group(nolan.strongest_dominator).label(), "Jackson");
  EXPECT_DOUBLE_EQ(nolan.strongest_probability, 1.0);
  // G with no attackers points at itself with probability 0... movie data
  // has attackers for everyone except via zero probability: check Coppola,
  // whose strongest attacker is Tarantino or Jackson at p = .5.
  const RankedGroup& coppola = find("Coppola");
  EXPECT_DOUBLE_EQ(coppola.strongest_probability, 0.5);
  EXPECT_FALSE(coppola.always_dominated);
}

TEST(StabilityBoundsTest, CorrectedPropertyTwoBounds) {
  GammaDriftBounds b = StabilityBounds(0.5, 0.5);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
  EXPECT_DOUBLE_EQ(b.upper, 1.0);
  b = StabilityBounds(0.8, 0.1);
  EXPECT_NEAR(b.lower, 0.7 / 0.9, 1e-12);
  EXPECT_NEAR(b.upper, 0.8 / 0.9, 1e-12);
  b = StabilityBounds(0.6, 0.0);
  EXPECT_DOUBLE_EQ(b.lower, 0.6);
  EXPECT_DOUBLE_EQ(b.upper, 0.6);
}

TEST(RankByGammaTest, SingleGroup) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}}});
  std::vector<RankedGroup> ranked = RankByGamma(ds);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].min_gamma, 0.5);
  EXPECT_FALSE(ranked[0].always_dominated);
}

}  // namespace
}  // namespace galaxy::core
