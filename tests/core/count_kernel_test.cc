#include "core/count_kernel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gamma.h"
#include "core/group.h"
#include "testing/property_gen.h"

namespace galaxy::core {
namespace {

using testing::GenerateAdversarialPoints;
using testing::PickAdversarialGamma;
using testing::PointsToDataset;
using testing::PropertyGenConfig;

// Exhaustive reference over raw rows, independent of the kernels.
kernel::KernelCounts NaiveCounts(const double* rows1, size_t n1,
                                 const double* rows2, size_t n2,
                                 size_t dims) {
  kernel::KernelCounts c;
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) {
      const double* a = rows1 + i * dims;
      const double* b = rows2 + j * dims;
      bool a_ge = true, b_ge = true, equal = true;
      for (size_t k = 0; k < dims; ++k) {
        if (a[k] < b[k]) a_ge = false;
        if (b[k] < a[k]) b_ge = false;
        if (a[k] != b[k]) equal = false;
      }
      if (a_ge && !equal) ++c.n12;
      if (b_ge && !equal) ++c.n21;
    }
  }
  return c;
}

std::vector<double> RandomRows(Rng& rng, size_t n, size_t dims,
                               int grid_levels) {
  std::vector<double> rows(n * dims);
  for (double& v : rows) {
    // Grid-aligned values so duplicates and per-dimension ties are common.
    v = static_cast<double>(rng.UniformInt(0, grid_levels - 1)) /
        static_cast<double>(grid_levels - 1);
  }
  return rows;
}

TEST(CountBlockTest, MatchesNaiveCountsForEveryDimension) {
  Rng rng(1234);
  for (size_t dims = 1; dims <= 10; ++dims) {
    for (int round = 0; round < 8; ++round) {
      const size_t n1 = static_cast<size_t>(rng.UniformInt(0, 70));
      const size_t n2 = static_cast<size_t>(rng.UniformInt(0, 70));
      std::vector<double> rows1 = RandomRows(rng, n1, dims, 4);
      std::vector<double> rows2 = RandomRows(rng, n2, dims, 4);
      kernel::KernelCounts expected =
          NaiveCounts(rows1.data(), n1, rows2.data(), n2, dims);
      kernel::KernelCounts got =
          kernel::CountBlock(rows1.data(), n1, rows2.data(), n2, dims);
      EXPECT_EQ(got.n12, expected.n12) << "dims=" << dims;
      EXPECT_EQ(got.n21, expected.n21) << "dims=" << dims;
    }
  }
}

TEST(CountBlockTest, AllEqualRowsCountInNeitherDirection) {
  for (size_t dims : {2u, 5u, 9u}) {
    std::vector<double> rows1(7 * dims, 0.5);
    std::vector<double> rows2(3 * dims, 0.5);
    kernel::KernelCounts c =
        kernel::CountBlock(rows1.data(), 7, rows2.data(), 3, dims);
    EXPECT_EQ(c.n12, 0u);
    EXPECT_EQ(c.n21, 0u);
  }
}

TEST(OneWayKernelsTest, MatchComponentwiseGeCounts) {
  Rng rng(99);
  for (size_t dims = 1; dims <= 9; ++dims) {
    const size_t n = 64;
    std::vector<double> rows = RandomRows(rng, n, dims, 3);
    std::vector<double> r = RandomRows(rng, 1, dims, 3);
    uint64_t expect_dominated = 0;
    uint64_t expect_dominating = 0;
    for (size_t j = 0; j < n; ++j) {
      if (kernel::GeqAll(r.data(), rows.data() + j * dims, dims)) {
        ++expect_dominated;
      }
      if (kernel::GeqAll(rows.data() + j * dims, r.data(), dims)) {
        ++expect_dominating;
      }
    }
    EXPECT_EQ(kernel::CountDominatedOneWay(r.data(), rows.data(), n, dims),
              expect_dominated);
    EXPECT_EQ(kernel::CountDominatingOneWay(r.data(), rows.data(), n, dims),
              expect_dominating);
  }
}

TEST(Sweep2DTest, MatchesNaiveCountsOnAdversarialGrids) {
  Rng rng(777);
  kernel::Sweep2DScratch scratch;
  for (int round = 0; round < 30; ++round) {
    const size_t n1 = static_cast<size_t>(rng.UniformInt(0, 120));
    const size_t n2 = static_cast<size_t>(rng.UniformInt(0, 120));
    // Coarse grids force many x/y ties and exact duplicates across sides.
    const int levels = round % 2 == 0 ? 3 : 17;
    std::vector<double> rows1 = RandomRows(rng, n1, 2, levels);
    std::vector<double> rows2 = RandomRows(rng, n2, 2, levels);
    kernel::KernelCounts expected =
        NaiveCounts(rows1.data(), n1, rows2.data(), n2, 2);
    kernel::KernelCounts got = kernel::CountPairsSweep2D(
        rows1.data(), n1, rows2.data(), n2, &scratch);
    ASSERT_EQ(got.n12, expected.n12) << "round " << round;
    ASSERT_EQ(got.n21, expected.n21) << "round " << round;
  }
}

TEST(SortedPrimitivesTest, OrderScoresAndCornersAreConsistent) {
  Rng rng(5);
  const size_t dims = 3;
  const size_t n = 50;
  std::vector<double> rows = RandomRows(rng, n, dims, 5);
  std::vector<uint32_t> order;
  std::vector<double> scores;
  kernel::SortByScoreDesc(rows.data(), n, dims, &order, &scores);
  ASSERT_EQ(order.size(), n);
  ASSERT_EQ(scores.size(), n);
  std::vector<uint32_t> sorted_idx = order;
  std::sort(sorted_idx.begin(), sorted_idx.end());
  for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(sorted_idx[i], i);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scores[i], kernel::RowScore(rows.data() + order[i] * dims, dims));
    if (i > 0) {
      EXPECT_GE(scores[i - 1], scores[i]);
      if (scores[i - 1] == scores[i]) {
      EXPECT_LT(order[i - 1], order[i]);
    }
    }
  }

  std::vector<double> packed;
  kernel::GatherRows(rows.data(), order.data(), n, dims, &packed);
  std::vector<double> suffmax, premin;
  kernel::BuildSuffixMax(packed.data(), n, dims, &suffmax);
  kernel::BuildPrefixMin(packed.data(), n, dims, &premin);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      double mx = packed[i * dims + k];
      for (size_t j = i; j < n; ++j) {
        mx = std::max(mx, packed[j * dims + k]);
      }
      EXPECT_EQ(suffmax[i * dims + k], mx);
      double mn = packed[k];
      for (size_t j = 0; j <= i; ++j) {
        mn = std::min(mn, packed[j * dims + k]);
      }
      EXPECT_EQ(premin[i * dims + k], mn);
    }
  }
}

// Every kernel policy must yield the bit-identical PairOutcome of the
// scalar reference, across the adversarial generator (empty groups,
// duplicates, all-equal records, boundary γ) and every knob combination.
TEST(ClassifyPairKernelTest, AllPoliciesAgreeOnAdversarialDatasets) {
  Rng rng(20260806);
  const KernelPolicy kPolicies[] = {
      KernelPolicy::kAuto, KernelPolicy::kTiled, KernelPolicy::kSorted,
      KernelPolicy::kSweep2D};
  for (int round = 0; round < 60; ++round) {
    core::GroupedDataset ds =
        PointsToDataset(GenerateAdversarialPoints(rng));
    const double gamma = PickAdversarialGamma(rng);
    GammaThresholds thresholds = GammaThresholds::FromGamma(gamma);
    for (size_t a = 0; a < ds.num_groups(); ++a) {
      for (size_t b = 0; b < ds.num_groups(); ++b) {
        if (a == b) continue;
        for (bool stop : {false, true}) {
          for (bool mbb : {false, true}) {
            PairCompareOptions ref_options;
            ref_options.use_stop_rule = stop;
            ref_options.use_mbb = mbb;
            ref_options.kernel = KernelPolicy::kScalar;
            PairOutcome expected = ClassifyPair(ds.group(a), ds.group(b),
                                                thresholds, ref_options);
            for (KernelPolicy policy : kPolicies) {
              PairCompareOptions options = ref_options;
              options.kernel = policy;
              PairCompareStats stats;
              PairOutcome got = ClassifyPair(ds.group(a), ds.group(b),
                                             thresholds, options, &stats);
              EXPECT_EQ(got, expected)
                  << "round=" << round << " pair=(" << a << "," << b
                  << ") stop=" << stop << " mbb=" << mbb
                  << " kernel=" << KernelPolicyToString(policy)
                  << " gamma=" << gamma;
              EXPECT_FALSE(stats.aborted);
            }
          }
        }
      }
    }
  }
}

// Large 2D groups push kAuto over kSweepMinPairs; the sweep must agree
// with the scalar loop and report itself in the stats.
TEST(ClassifyPairKernelTest, AutoPicksSweepOnLarge2D) {
  Rng rng(31);
  const size_t n = 300;  // 300 * 300 pairs > kSweepMinPairs
  std::vector<Point> pts1, pts2;
  for (size_t i = 0; i < n; ++i) {
    pts1.push_back({rng.NextDouble(), rng.NextDouble()});
    pts2.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  core::GroupedDataset ds = core::GroupedDataset::FromPoints({pts1, pts2});
  GammaThresholds thresholds = GammaThresholds::FromGamma(0.75);

  PairCompareOptions scalar;
  scalar.kernel = KernelPolicy::kScalar;
  PairOutcome expected =
      ClassifyPair(ds.group(0), ds.group(1), thresholds, scalar);

  PairCompareOptions auto_options;  // kAuto, stop rule on, no exec
  PairCompareStats stats;
  PairOutcome got =
      ClassifyPair(ds.group(0), ds.group(1), thresholds, auto_options, &stats);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(stats.kernel_used, KernelPolicy::kSweep2D);

  // An explicit sweep request on charged scans must demote to tiled.
  ExecutionContext exec;
  PairCompareOptions bounded;
  bounded.kernel = KernelPolicy::kSweep2D;
  bounded.exec = &exec;
  PairCompareStats bounded_stats;
  PairOutcome bounded_got = ClassifyPair(ds.group(0), ds.group(1), thresholds,
                                         bounded, &bounded_stats);
  EXPECT_EQ(bounded_got, expected);
  EXPECT_EQ(bounded_stats.kernel_used, KernelPolicy::kTiled);
}

TEST(ClassifyPairKernelTest, MbbStatsReportPreclassifiedRecords) {
  // g1 sits entirely above g2's max corner except one straggler, so the
  // MBB preclassification removes most records from the pairwise scan.
  std::vector<Point> high, low;
  for (int i = 0; i < 6; ++i) {
    high.push_back({10.0 + i, 10.0 + i});
    low.push_back({static_cast<double>(i % 3), static_cast<double>(i % 2)});
  }
  high.push_back({0.5, 0.5});  // inside g2's MBB: must be scanned
  core::GroupedDataset ds = core::GroupedDataset::FromPoints({high, low});
  GammaThresholds thresholds = GammaThresholds::FromGamma(0.5);
  PairCompareOptions options;
  options.use_mbb = true;
  options.use_stop_rule = false;
  PairCompareStats stats;
  ClassifyPair(ds.group(0), ds.group(1), thresholds, options, &stats);
  EXPECT_GT(stats.records_preclassified, 0u);
  const uint64_t total_records = ds.group(0).size() + ds.group(1).size();
  EXPECT_GT(stats.preclassified_record_fraction(total_records), 0.0);
  EXPECT_LE(stats.preclassified_record_fraction(total_records), 1.0);
}

TEST(GroupScoreOrderTest, OrderIsDescendingAndStableUnderConcurrency) {
  Rng rng(7);
  std::vector<double> data = RandomRows(rng, 200, 4, 6);
  Group g(0, "g", data, 4);
  const std::vector<uint32_t>* first = nullptr;
  // Hammer the lazy initialization from several threads; all must observe
  // the same published vector.
  std::vector<std::thread> threads;
  std::vector<const std::vector<uint32_t>*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, &seen, t] { seen[t] = &g.score_order_desc(); });
  }
  for (std::thread& t : threads) t.join();
  first = seen[0];
  for (const auto* p : seen) EXPECT_EQ(p, first);

  const std::vector<uint32_t>& order = *first;
  ASSERT_EQ(order.size(), g.size());
  for (size_t i = 1; i < order.size(); ++i) {
    double prev = kernel::RowScore(data.data() + order[i - 1] * 4, 4);
    double cur = kernel::RowScore(data.data() + order[i] * 4, 4);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }

  // Copies recompute (and agree); moves carry the cache along.
  Group copy = g;
  EXPECT_EQ(copy.score_order_desc(), order);
  Group moved = std::move(copy);
  EXPECT_EQ(moved.score_order_desc(), order);
}

}  // namespace
}  // namespace galaxy::core
