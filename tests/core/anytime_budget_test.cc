// Anytime-operator behavior under adversarial budgets: zero, one, and
// pair-boundary budgets, monotonicity of the possible/confirmed sets
// across Advance calls, and prompt return once an ExecutionContext trips.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/anytime.h"
#include "core/exec_context.h"
#include "datagen/groups.h"
#include "testing/property_gen.h"

namespace galaxy::core {
namespace {

std::set<uint32_t> ExactSkyline(const GroupedDataset& ds, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  return {result.skyline.begin(), result.skyline.end()};
}

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

GroupedDataset TestWorkload(uint64_t seed) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 400;
  config.avg_records_per_group = 16;
  config.dims = 3;
  config.seed = seed;
  return datagen::GenerateGrouped(config);
}

TEST(AnytimeBudgetTest, ZeroBudgetSnapshotIsSound) {
  GroupedDataset ds = TestWorkload(11);
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  AnytimeAggregateSkyline anytime(ds, options);
  auto snapshot = anytime.Advance(0);
  std::set<uint32_t> possible = AsSet(snapshot.possible);
  for (uint32_t id : exact) EXPECT_TRUE(possible.count(id) > 0);
  for (uint32_t id : snapshot.confirmed) EXPECT_TRUE(exact.count(id) > 0);
}

TEST(AnytimeBudgetTest, OneComparisonBudgetAdvancesWithoutOverrun) {
  GroupedDataset ds = TestWorkload(12);
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  options.use_mbb = false;  // count raw record comparisons only
  AnytimeAggregateSkyline anytime(ds, options);
  uint64_t previous = 0;
  for (int step = 0; step < 50 && !anytime.complete(); ++step) {
    auto snapshot = anytime.Advance(1);
    // A one-comparison budget may be rounded up to one slice of one pair,
    // but progress must be bounded: at most `slice` comparisons per call.
    EXPECT_LE(snapshot.comparisons_used, previous + options.slice);
    EXPECT_GE(snapshot.comparisons_used, previous);
    previous = snapshot.comparisons_used;
  }
}

TEST(AnytimeBudgetTest, PossibleShrinksConfirmedGrowsMonotonically) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    GroupedDataset ds = TestWorkload(seed);
    std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
    AnytimeAggregateSkyline::Options options;
    options.gamma = 0.5;
    AnytimeAggregateSkyline anytime(ds, options);

    std::set<uint32_t> prev_possible;
    std::set<uint32_t> prev_confirmed;
    bool first = true;
    // Adversarial step schedule: tiny, boundary-sized, and large advances.
    const uint64_t steps[] = {0, 1, 1, options.slice - 1, options.slice,
                              options.slice + 1, 97, 1000, 50000, ~uint64_t{0}};
    for (uint64_t step : steps) {
      auto snapshot = anytime.Advance(step);
      std::set<uint32_t> possible = AsSet(snapshot.possible);
      std::set<uint32_t> confirmed = AsSet(snapshot.confirmed);
      if (!first) {
        // possible never grows...
        EXPECT_TRUE(std::includes(prev_possible.begin(), prev_possible.end(),
                                  possible.begin(), possible.end()))
            << "seed " << seed << " step " << step;
        // ...confirmed never shrinks.
        EXPECT_TRUE(std::includes(confirmed.begin(), confirmed.end(),
                                  prev_confirmed.begin(),
                                  prev_confirmed.end()))
            << "seed " << seed << " step " << step;
      }
      // Sandwich invariant at every point: confirmed ⊆ exact ⊆ possible.
      for (uint32_t id : exact) EXPECT_TRUE(possible.count(id) > 0);
      for (uint32_t id : confirmed) EXPECT_TRUE(exact.count(id) > 0);
      prev_possible = std::move(possible);
      prev_confirmed = std::move(confirmed);
      first = false;
    }
    EXPECT_TRUE(anytime.complete());
    EXPECT_EQ(prev_possible, exact);
    EXPECT_EQ(prev_confirmed, exact);
  }
}

TEST(AnytimeBudgetTest, StoppedContextMakesAdvanceReturnPromptly) {
  GroupedDataset ds = TestWorkload(31);
  ExecutionContext exec;
  exec.RequestCancel();
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  options.exec = &exec;
  AnytimeAggregateSkyline anytime(ds, options);  // skips MBB preclass
  auto snapshot = anytime.Advance(~uint64_t{0});
  // A stopped context drains the budget: the unbounded Advance returns
  // after at most one slice of work instead of finishing the computation.
  EXPECT_LE(snapshot.comparisons_used, options.slice);
  EXPECT_FALSE(snapshot.complete);
  // The snapshot is still sound.
  std::set<uint32_t> exact = ExactSkyline(ds, 0.5);
  std::set<uint32_t> possible = AsSet(snapshot.possible);
  for (uint32_t id : exact) EXPECT_TRUE(possible.count(id) > 0);
}

TEST(AnytimeBudgetTest, ContextTripMidRunStopsWithinOneSlice) {
  GroupedDataset ds = TestWorkload(32);
  ExecutionContext exec;
  exec.InjectCancelAtComparison(2000);
  AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  options.exec = &exec;
  AnytimeAggregateSkyline anytime(ds, options);
  auto snapshot = anytime.Advance(~uint64_t{0});
  EXPECT_TRUE(exec.stopped());
  // The operator charges per slice (and the MBB pre-classification per
  // pair), so the overshoot past the trip point is bounded by one slice
  // plus one pair's pre-classification — not the rest of the computation.
  uint64_t max_group = 0;
  for (size_t g = 0; g < ds.num_groups(); ++g) {
    max_group = std::max<uint64_t>(max_group, ds.group(g).size());
  }
  EXPECT_LE(snapshot.comparisons_used,
            2000 + options.slice + 4 * max_group);
}

TEST(AnytimeBudgetTest, AdversarialDatasetsStaySoundUnderTinyBudgets) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    testing::PointGroups points = testing::GenerateAdversarialPoints(rng);
    const double gamma = testing::PickAdversarialGamma(rng);
    GroupedDataset ds = testing::PointsToDataset(points);
    std::set<uint32_t> exact = ExactSkyline(ds, gamma);

    AnytimeAggregateSkyline::Options options;
    options.gamma = gamma;
    AnytimeAggregateSkyline anytime(ds, options);
    std::set<uint32_t> prev_possible;
    bool first = true;
    while (!anytime.complete()) {
      auto snapshot = anytime.Advance(1);
      std::set<uint32_t> possible = AsSet(snapshot.possible);
      for (uint32_t id : exact) {
        EXPECT_TRUE(possible.count(id) > 0) << "seed " << seed;
      }
      if (!first) {
        EXPECT_TRUE(std::includes(prev_possible.begin(), prev_possible.end(),
                                  possible.begin(), possible.end()));
      }
      prev_possible = std::move(possible);
      first = false;
    }
    EXPECT_EQ(prev_possible, exact);
  }
}

}  // namespace
}  // namespace galaxy::core
