#include "core/adaptive.h"

#include <set>

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "datagen/groups.h"

namespace galaxy::core {
namespace {

datagen::GroupedWorkloadConfig BaseConfig() {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 2000;
  config.avg_records_per_group = 40;
  config.dims = 4;
  config.seed = 55;
  return config;
}

TEST(ProfileWorkloadTest, BasicShape) {
  GroupedDataset ds = datagen::GenerateGrouped(BaseConfig());
  WorkloadProfile profile = ProfileWorkload(ds);
  EXPECT_EQ(profile.num_groups, 50u);
  EXPECT_EQ(profile.total_records, 2000u);
  EXPECT_DOUBLE_EQ(profile.avg_group_size, 40.0);
  EXPECT_GT(profile.max_group_share, 0.0);
  EXPECT_GE(profile.window_selectivity, 0.0);
  EXPECT_LE(profile.window_selectivity, 1.0);
  EXPECT_FALSE(profile.ToString().empty());
}

TEST(ProfileWorkloadTest, SelectivityGrowsWithOverlap) {
  datagen::GroupedWorkloadConfig narrow = BaseConfig();
  narrow.spread = 0.05;
  datagen::GroupedWorkloadConfig wide = BaseConfig();
  wide.spread = 0.9;
  double narrow_sel =
      ProfileWorkload(datagen::GenerateGrouped(narrow)).window_selectivity;
  double wide_sel =
      ProfileWorkload(datagen::GenerateGrouped(wide)).window_selectivity;
  EXPECT_GT(wide_sel, narrow_sel);
  EXPECT_GT(wide_sel, 0.7);  // wide spread: window query prunes nothing
}

TEST(ProfileWorkloadTest, SkewShowsInMaxShare) {
  datagen::GroupedWorkloadConfig zipf = BaseConfig();
  zipf.size_model = datagen::GroupSizeModel::kZipf;
  zipf.zipf_theta = 1.2;
  WorkloadProfile uniform = ProfileWorkload(datagen::GenerateGrouped(BaseConfig()));
  WorkloadProfile skewed = ProfileWorkload(datagen::GenerateGrouped(zipf));
  EXPECT_GT(skewed.max_group_share, 3.0 * uniform.max_group_share);
}

TEST(ProfileWorkloadTest, SingleGroupProfile) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}, {2, 2}}});
  WorkloadProfile profile = ProfileWorkload(ds);
  EXPECT_EQ(profile.num_groups, 1u);
  EXPECT_DOUBLE_EQ(profile.max_group_share, 1.0);
  EXPECT_DOUBLE_EQ(profile.window_selectivity, 0.0);
}

TEST(ChooseAlgorithmTest, LowOverlapPicksIndexed) {
  WorkloadProfile profile;
  profile.num_groups = 100;
  profile.total_records = 10000;
  profile.max_group_share = 0.011;
  profile.window_selectivity = 0.2;
  AdaptiveChoice choice = ChooseAlgorithm(profile);
  EXPECT_EQ(choice.algorithm, Algorithm::kIndexedBbox);
  EXPECT_EQ(choice.ordering, GroupOrdering::kCornerDistance);
}

TEST(ChooseAlgorithmTest, HighOverlapPicksSorted) {
  WorkloadProfile profile;
  profile.num_groups = 100;
  profile.total_records = 10000;
  profile.max_group_share = 0.011;
  profile.window_selectivity = 0.95;
  EXPECT_EQ(ChooseAlgorithm(profile).algorithm, Algorithm::kSorted);
}

TEST(ChooseAlgorithmTest, SkewPicksSmallestFirst) {
  WorkloadProfile profile;
  profile.num_groups = 100;
  profile.total_records = 10000;
  profile.max_group_share = 0.3;  // one group holds 30% of the records
  profile.window_selectivity = 0.2;
  EXPECT_EQ(ChooseAlgorithm(profile).ordering,
            GroupOrdering::kSmallestFirstThenCorner);
}

TEST(AutoAlgorithmTest, ResolvesAndMatchesReferenceSuperset) {
  for (double spread : {0.1, 0.8}) {
    datagen::GroupedWorkloadConfig config = BaseConfig();
    config.spread = spread;
    GroupedDataset ds = datagen::GenerateGrouped(config);

    AggregateSkylineOptions options;
    options.algorithm = Algorithm::kAuto;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    EXPECT_NE(result.algorithm_used, Algorithm::kAuto);

    // kAuto inherits the paper algorithms' superset-of-exact guarantee.
    std::set<uint32_t> got(result.skyline.begin(), result.skyline.end());
    for (uint32_t i = 0; i < ds.num_groups(); ++i) {
      bool dominated = false;
      for (uint32_t j = 0; j < ds.num_groups() && !dominated; ++j) {
        if (j != i && GammaDominates(ds.group(j), ds.group(i), 0.5)) {
          dominated = true;
        }
      }
      if (!dominated) {
        EXPECT_TRUE(got.count(i) > 0) << "spread " << spread << " group " << i;
      }
    }
  }
}

TEST(AutoAlgorithmTest, PicksDifferentAlgorithmsAcrossOverlapRegimes) {
  datagen::GroupedWorkloadConfig narrow = BaseConfig();
  narrow.spread = 0.05;
  datagen::GroupedWorkloadConfig wide = BaseConfig();
  wide.spread = 0.9;

  AggregateSkylineOptions options;
  options.algorithm = Algorithm::kAuto;
  Algorithm narrow_algo =
      ComputeAggregateSkyline(datagen::GenerateGrouped(narrow), options)
          .algorithm_used;
  Algorithm wide_algo =
      ComputeAggregateSkyline(datagen::GenerateGrouped(wide), options)
          .algorithm_used;
  EXPECT_EQ(narrow_algo, Algorithm::kIndexedBbox);
  EXPECT_EQ(wide_algo, Algorithm::kSorted);
}

}  // namespace
}  // namespace galaxy::core
