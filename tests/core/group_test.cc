#include "core/group.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"

namespace galaxy::core {
namespace {

TEST(GroupTest, BasicConstruction) {
  Group g(0, "g0", {1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.dims(), 2u);
  EXPECT_EQ(g.label(), "g0");
  EXPECT_EQ(g.point(0)[0], 1);
  EXPECT_EQ(g.point(2)[1], 6);
}

TEST(GroupTest, MbbCoversAllRecords) {
  Group g(0, "g", {1, 5, 3, 2, 2, 9}, 2);
  EXPECT_EQ(g.mbb().min, (Point{1, 2}));
  EXPECT_EQ(g.mbb().max, (Point{3, 9}));
}

TEST(GroupedDatasetTest, FromPoints) {
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{1, 2}, {3, 4}}, {{5, 6}}}, {"a", "b"});
  EXPECT_EQ(ds.num_groups(), 2u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_EQ(ds.total_records(), 3u);
  EXPECT_EQ(ds.group(0).label(), "a");
  EXPECT_EQ(ds.group(1).size(), 1u);
  EXPECT_EQ(ds.FindByLabel("b").value(), 1u);
  EXPECT_FALSE(ds.FindByLabel("c").ok());
}

TEST(GroupedDatasetTest, FromPointsDefaultLabels) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}}, {{2, 2}}});
  EXPECT_EQ(ds.group(0).label(), "g0");
  EXPECT_EQ(ds.group(1).label(), "g1");
}

TEST(GroupedDatasetTest, FromTableGroupsByDirector) {
  Table movies = datagen::MovieTable();
  auto ds = GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"});
  ASSERT_TRUE(ds.ok());
  // Seven distinct directors in Figure 1.
  EXPECT_EQ(ds->num_groups(), 7u);
  EXPECT_EQ(ds->total_records(), 10u);
  size_t tarantino = ds->FindByLabel("Tarantino").value();
  EXPECT_EQ(ds->group(tarantino).size(), 2u);
  size_t coppola = ds->FindByLabel("Coppola").value();
  EXPECT_EQ(ds->group(coppola).size(), 2u);
  // Groups appear in first-occurrence order: Cameron first.
  EXPECT_EQ(ds->group(0).label(), "Cameron");
}

TEST(GroupedDatasetTest, FromTableCompositeKey) {
  Table movies = datagen::MovieTable();
  auto ds =
      GroupedDataset::FromTable(movies, {"Director", "Year"}, {"Pop", "Qual"});
  ASSERT_TRUE(ds.ok());
  // Every movie has a distinct (director, year) pair in Figure 1.
  EXPECT_EQ(ds->num_groups(), 10u);
  EXPECT_TRUE(ds->FindByLabel("Tarantino|2003").ok());
}

TEST(GroupedDatasetTest, FromTableMinPreferencesNegate) {
  Table movies = datagen::MovieTable();
  auto ds = GroupedDataset::FromTable(
      movies, {"Director"}, {"Pop", "Year"},
      {skyline::Preference::kMax, skyline::Preference::kMin});
  ASSERT_TRUE(ds.ok());
  size_t nolan = ds->FindByLabel("Nolan").value();
  // Year 2005 negated.
  EXPECT_EQ(ds->group(nolan).point(0)[1], -2005.0);
}

TEST(GroupedDatasetTest, CompositeKeysDoNotCollide) {
  // ("a|b", "c") and ("a", "b|c") must form distinct groups even though
  // their display labels coincide.
  TableBuilder b{Schema({{"k1", ValueType::kString},
                         {"k2", ValueType::kString},
                         {"v", ValueType::kDouble}})};
  b.AddRow({"a|b", "c", 1.0}).AddRow({"a", "b|c", 2.0});
  auto ds = GroupedDataset::FromTable(b.Build(), {"k1", "k2"}, {"v"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_groups(), 2u);
}

TEST(GroupedDatasetTest, FromTableRejectsBadInput) {
  Table movies = datagen::MovieTable();
  EXPECT_FALSE(GroupedDataset::FromTable(movies, {}, {"Pop"}).ok());
  EXPECT_FALSE(GroupedDataset::FromTable(movies, {"Director"}, {}).ok());
  EXPECT_FALSE(
      GroupedDataset::FromTable(movies, {"Director"}, {"Nope"}).ok());
  EXPECT_FALSE(
      GroupedDataset::FromTable(movies, {"Nope"}, {"Pop"}).ok());
  EXPECT_FALSE(GroupedDataset::FromTable(movies, {"Director"}, {"Title"}).ok());
  // Preference arity mismatch.
  EXPECT_FALSE(GroupedDataset::FromTable(movies, {"Director"}, {"Pop"},
                                         skyline::AllMax(2))
                   .ok());
}

}  // namespace
}  // namespace galaxy::core
