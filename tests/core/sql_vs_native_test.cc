// Equivalence of the paper's Algorithm 1 (direct SQL aggregate skyline,
// executed by the from-scratch SQL engine) and the native operator.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "datagen/groups.h"
#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/skyline_query.h"

namespace galaxy::core {
namespace {

std::set<std::string> NativeSkylineLabels(const GroupedDataset& ds,
                                          double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  std::vector<std::string> labels = result.Labels(ds);
  return {labels.begin(), labels.end()};
}

std::set<std::string> SqlSkylineLabels(const Table& table, size_t dims,
                                       double gamma) {
  sql::Database db;
  db.Register("data", table);
  std::vector<std::string> attrs;
  for (size_t i = 0; i < dims; ++i) attrs.push_back("a" + std::to_string(i));
  std::string query =
      sql::BuildAggregateSkylineSql("data", "class", "num", attrs, gamma);
  auto result = db.Query(query);
  EXPECT_TRUE(result.ok()) << result.status();
  std::set<std::string> out;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    out.insert(result->at(r, 0).AsString());
  }
  return out;
}

struct SqlParam {
  size_t records;
  size_t per_group;
  size_t dims;
  double gamma;
  datagen::Distribution distribution;
  uint64_t seed;
};

class SqlVsNativeTest : public ::testing::TestWithParam<SqlParam> {};

TEST_P(SqlVsNativeTest, SameSkyline) {
  const SqlParam& p = GetParam();
  datagen::GroupedWorkloadConfig config;
  config.num_records = p.records;
  config.avg_records_per_group = p.per_group;
  config.dims = p.dims;
  config.distribution = p.distribution;
  config.seed = p.seed;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  Table table = datagen::GroupedDatasetToTable(ds);

  EXPECT_EQ(SqlSkylineLabels(table, p.dims, p.gamma),
            NativeSkylineLabels(ds, p.gamma));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SqlVsNativeTest,
    ::testing::Values(
        SqlParam{120, 10, 2, 0.5, datagen::Distribution::kAntiCorrelated, 1},
        SqlParam{120, 10, 2, 0.5, datagen::Distribution::kIndependent, 2},
        SqlParam{120, 10, 2, 0.5, datagen::Distribution::kCorrelated, 3},
        SqlParam{150, 15, 3, 0.5, datagen::Distribution::kAntiCorrelated, 4},
        SqlParam{150, 15, 3, 0.7, datagen::Distribution::kAntiCorrelated, 5},
        SqlParam{100, 5, 2, 0.9, datagen::Distribution::kIndependent, 6},
        SqlParam{200, 50, 4, 0.5, datagen::Distribution::kIndependent, 7}));

TEST(SqlVsNativeTest, MovieDirectorsThroughAlgorithm1) {
  // Run the Algorithm 1 query on the movie table (rebuilt into the
  // class/num layout) and compare with Figure 4(b).
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  Table data = datagen::GroupedDatasetToTable(ds);
  std::set<std::string> sql_result = SqlSkylineLabels(data, 2, 0.5);
  EXPECT_EQ(sql_result, (std::set<std::string>{"Coppola", "Jackson",
                                               "Kershner", "Tarantino"}));
}

TEST(SqlVsNativeTest, GeneratedQueryShape) {
  std::string sql = sql::BuildAggregateSkylineSql("movies", "director", "num",
                                                  {"votes", "rank"}, 0.5);
  // Spot-check the clauses of Algorithm 1.
  EXPECT_NE(sql.find("SELECT DISTINCT director FROM movies"),
            std::string::npos);
  EXPECT_NE(sql.find("NOT IN"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY X.director, Y.director"), std::string::npos);
  EXPECT_NE(sql.find("HAVING 1.0 * COUNT(*) / (X.num * Y.num) > 0.5"),
            std::string::npos);
  EXPECT_NE(sql.find("Y.votes >= X.votes"), std::string::npos);
  EXPECT_NE(sql.find("Y.rank > X.rank"), std::string::npos);
}

TEST(SqlVsNativeTest, DominancePredicateGeneralizesToManyDims) {
  std::string pred =
      sql::BuildDominancePredicate({"a0", "a1", "a2"}, "Y", "X");
  EXPECT_EQ(pred,
            "(Y.a0 >= X.a0 AND Y.a1 >= X.a1 AND Y.a2 >= X.a2) AND "
            "(Y.a0 > X.a0 OR Y.a1 > X.a1 OR Y.a2 > X.a2)");
}

}  // namespace
}  // namespace galaxy::core
