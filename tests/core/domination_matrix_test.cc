#include "core/domination_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, std::vector<Point> pts) {
  std::vector<double> buf;
  size_t dims = pts.front().size();
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

// The three groups of Figure 6: R ≻.5 S, S ≻.5 T but R ⊁.5 T.
// Engineered so that the R-S and S-T domination matrices match the paper's
// example: pos(RS) = 5/8, pos(ST) = 2/3, pos(RT) = 1/2.
struct Figure6Groups {
  Group r = MakeGroup(0, {{4, 8}, {9, 9}, {5, 7}, {6, 6}});
  Group s = MakeGroup(1, {{3, 5}, {8, 8}});
  Group t = MakeGroup(2, {{2, 2}, {7, 7.5}, {7.5, 7}});
};

TEST(DominationMatrixTest, BuildMatchesPairwiseDominance) {
  Figure6Groups f;
  DominationMatrix rs = DominationMatrix::Build(f.r, f.s);
  ASSERT_EQ(rs.rows(), 4u);
  ASSERT_EQ(rs.cols(), 2u);
  for (size_t i = 0; i < rs.rows(); ++i) {
    for (size_t j = 0; j < rs.cols(); ++j) {
      EXPECT_EQ(rs.at(i, j),
                skyline::Dominates(f.r.point(i), f.s.point(j)));
    }
  }
}

TEST(DominationMatrixTest, Figure6PosValues) {
  Figure6Groups f;
  DominationMatrix rs = DominationMatrix::Build(f.r, f.s);
  DominationMatrix st = DominationMatrix::Build(f.s, f.t);
  DominationMatrix rt = DominationMatrix::Build(f.r, f.t);
  EXPECT_DOUBLE_EQ(rs.pos(), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(st.pos(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(rt.pos(), 0.5);
  // R ≻.5 S and S ≻.5 T, but p(R ≻ T) = .5 is NOT > .5: transitivity fails
  // (Proposition 4).
  EXPECT_GT(rs.pos(), 0.5);
  EXPECT_GT(st.pos(), 0.5);
  EXPECT_FALSE(rt.pos() > 0.5);
}

TEST(DominationMatrixTest, BooleanProductIsLowerBoundWitness) {
  // Fact 2 of the Proposition 5 proof: every positive entry of RS x ST
  // certifies a positive entry of RT (record dominance is transitive).
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto random_group = [&](uint32_t id, size_t n) {
      std::vector<Point> pts;
      for (size_t i = 0; i < n; ++i) {
        pts.push_back({rng.NextDouble(), rng.NextDouble()});
      }
      return MakeGroup(id, pts);
    };
    Group r = random_group(0, 1 + trial % 5);
    Group s = random_group(1, 1 + (trial / 2) % 5);
    Group t = random_group(2, 1 + (trial / 3) % 5);
    DominationMatrix product = DominationMatrix::Build(r, s).BooleanProduct(
        DominationMatrix::Build(s, t));
    DominationMatrix rt = DominationMatrix::Build(r, t);
    for (size_t i = 0; i < rt.rows(); ++i) {
      for (size_t k = 0; k < rt.cols(); ++k) {
        if (product.at(i, k)) {
        EXPECT_TRUE(rt.at(i, k));
      }
      }
    }
    EXPECT_LE(product.pos(), rt.pos() + 1e-12);
  }
}

TEST(DominationMatrixTest, CountPositiveAndSetters) {
  DominationMatrix m(2, 3);
  EXPECT_EQ(m.CountPositive(), 0u);
  m.set(0, 0, true);
  m.set(1, 2, true);
  EXPECT_EQ(m.CountPositive(), 2u);
  EXPECT_TRUE(m.at(0, 0));
  EXPECT_FALSE(m.at(0, 1));
  m.set(0, 0, false);
  EXPECT_EQ(m.CountPositive(), 1u);
  EXPECT_DOUBLE_EQ(m.pos(), 1.0 / 6.0);
}

TEST(DominationMatrixTest, ProductShape) {
  DominationMatrix a(2, 3);
  DominationMatrix b(3, 4);
  a.set(0, 1, true);
  b.set(1, 3, true);
  DominationMatrix p = a.BooleanProduct(b);
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_EQ(p.cols(), 4u);
  EXPECT_TRUE(p.at(0, 3));
  EXPECT_EQ(p.CountPositive(), 1u);
}

TEST(DominationMatrixTest, ToStringRendering) {
  DominationMatrix m(2, 2);
  m.set(0, 0, true);
  EXPECT_EQ(m.ToString(), "1 0\n0 0\n");
}

}  // namespace
}  // namespace galaxy::core
