// Theorem 1 of the paper: no "reasonable" definition of group domination
// (one where strict domination of every record implies group domination)
// can satisfy both skyline containment (Property 3) and stability to
// updates (Property 2). These tests walk the theorem's construction
// numerically on our Definition 3 operator.

#include <gtest/gtest.h>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"

namespace galaxy::core {
namespace {

Group MakeGroup(uint32_t id, const std::vector<Point>& pts) {
  std::vector<double> buf;
  size_t dims = pts.front().size();
  for (const Point& p : pts) buf.insert(buf.end(), p.begin(), p.end());
  return Group(id, "g" + std::to_string(id), std::move(buf), dims);
}

TEST(Theorem1Test, StrictDominanceHoldsForDefinition3) {
  // The "reasonable" premise: all records of S dominate all records of R
  // implies S ≻g R — true for Definition 3 (p = 1).
  Group s = MakeGroup(0, {{5, 5}, {6, 6}});
  Group r = MakeGroup(1, {{1, 1}, {2, 2}, {0, 3.5}});
  // (0, 3.5): dominated by both (5,5) and (6,6)? 5>0, 5>3.5 yes.
  EXPECT_DOUBLE_EQ(DominationProbability(s, r), 1.0);
  EXPECT_TRUE(GammaDominates(s, r, 1.0));
}

TEST(Theorem1Test, TheoremConstruction) {
  // Start from R' entirely dominated by S, then add to R one skyline
  // record dominating all of S. Skyline containment would demand R be in
  // every group skyline; Definition 3 (rightly, per the theorem) keeps R
  // dominated when R' is large: the lone hero record cannot rescue a group
  // of dominated ones — which is the paper's argued-for behavior and the
  // reason containment must be given up.
  std::vector<Point> r_records;
  for (int i = 0; i < 9; ++i) {
    r_records.push_back({1.0 + 0.01 * i, 1.0 + 0.01 * (9 - i)});
  }
  Group s = MakeGroup(0, {{3, 3}, {4, 4}});
  Group r_prime = MakeGroup(1, r_records);
  EXPECT_DOUBLE_EQ(DominationProbability(s, r_prime), 1.0);

  // Add the hero record (10, 10), which dominates all of S.
  r_records.push_back({10, 10});
  Group r = MakeGroup(2, r_records);
  // p(S ≻ R) drops from 1 to 18/20 = .9 — within the corrected stability
  // bounds for eps = 1/10 (gamma' >= (1 - eps') ... here the insertion
  // direction: p stays >= (gamma - eps)/(1 - eps) in the removal view).
  EXPECT_DOUBLE_EQ(DominationProbability(s, r), 0.9);
  // R contains the record skyline point of the union, yet R is dominated
  // at gamma = .5 (and any gamma < .9): containment fails, stability wins.
  EXPECT_TRUE(GammaDominates(s, r, 0.5));
  EXPECT_TRUE(GammaDominates(s, r, 0.75));
  EXPECT_FALSE(GammaDominates(s, r, 0.9));  // strict >
}

TEST(Theorem1Test, ContainmentWouldRequireUnboundedInstability) {
  // Quantify the theorem's tension: to put R (hero + n dominated records)
  // into the skyline at gamma = .5, p(S ≻ R) must drop below .5 — but one
  // insertion moves p by at most a 1/(n+1) fraction (stability). Measure
  // the actual p as the group grows: it approaches 1, not .5.
  Group s = MakeGroup(0, {{3, 3}, {4, 4}});
  std::vector<Point> r_records = {{10, 10}};  // hero first
  double previous = 0.0;
  for (int i = 0; i < 30; ++i) {
    r_records.push_back({1.0 + 0.001 * i, 1.0});
    Group r = MakeGroup(1, r_records);
    double p = DominationProbability(s, r);
    EXPECT_GE(p, previous);  // monotonically worse for R
    previous = p;
  }
  EXPECT_GT(previous, 0.9);  // far above the .5 containment would need
}

}  // namespace
}  // namespace galaxy::core
