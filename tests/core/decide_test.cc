// Unit tests for the stopping-rule primitives (core/gamma.h internal API):
// bound decidability and partial-count outcome resolution.

#include <gtest/gtest.h>

#include "core/gamma.h"

namespace galaxy::core::internal {
namespace {

TEST(DecideDominanceTest, UndecidedWhileBothOutcomesPossible) {
  // 10 of 100 pairs known true, 20 resolved: final in [10, 90].
  BoundDecision d = DecideDominance(10, 20, 100, 0.5);
  EXPECT_FALSE(d.decided);
}

TEST(DecideDominanceTest, DecidedTrueWhenLowerBoundExceeds) {
  BoundDecision d = DecideDominance(51, 60, 100, 0.5);
  EXPECT_TRUE(d.decided);
  EXPECT_TRUE(d.value);
}

TEST(DecideDominanceTest, DecidedFalseWhenUpperBoundCannotExceed) {
  // 10 known true of 80 resolved: final at most 30, and < 100 so p=1 is
  // impossible too.
  BoundDecision d = DecideDominance(10, 80, 100, 0.5);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
}

TEST(DecideDominanceTest, BoundaryIsStrict) {
  // Exactly half at completion: NOT > 0.5.
  BoundDecision d = DecideDominance(50, 100, 100, 0.5);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
  // One more pair tips it.
  d = DecideDominance(51, 100, 100, 0.5);
  EXPECT_TRUE(d.decided);
  EXPECT_TRUE(d.value);
}

TEST(DecideDominanceTest, ProbabilityOneEscape) {
  // threshold 1.0: only p == 1 counts. All resolved true so far, none
  // failed: undecided until the very end.
  BoundDecision d = DecideDominance(99, 99, 100, 1.0);
  EXPECT_FALSE(d.decided);
  // One failure kills it immediately.
  d = DecideDominance(98, 99, 100, 1.0);
  EXPECT_TRUE(d.decided);
  EXPECT_FALSE(d.value);
  // Completion with all pairs dominating: p == 1.
  d = DecideDominance(100, 100, 100, 1.0);
  EXPECT_TRUE(d.decided);
  EXPECT_TRUE(d.value);
}

TEST(DecideDominanceTest, CompletionAlwaysDecides) {
  for (uint64_t known : {0ull, 37ull, 50ull, 51ull, 100ull}) {
    BoundDecision d = DecideDominance(known, 100, 100, 0.5);
    EXPECT_TRUE(d.decided) << known;
    EXPECT_EQ(d.value, known == 100 || known > 50) << known;
  }
}

TEST(TryResolveOutcomeTest, StrongDominationShortcut) {
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  PairOutcome outcome;
  // 90 of first 100 resolved (of 100 total... use total 100): n12 = 90.
  ASSERT_TRUE(TryResolveOutcome(90, 5, 100, 100, t, &outcome));
  EXPECT_EQ(outcome, PairOutcome::kFirstDominatesStrongly);
}

TEST(TryResolveOutcomeTest, WeakDominationNeedsStrongExcluded) {
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  PairOutcome outcome;
  // n12 = 55 with 40 pairs open: gamma (0.5) is satisfied already, but
  // strong (~0.6464) could still go either way -> undecided.
  EXPECT_FALSE(TryResolveOutcome(55, 5, 60, 100, t, &outcome));
  // Once enough pairs fail, strong is excluded and the weak outcome
  // resolves: n12 = 55, resolved 95 -> upper 60 <= 64.64.
  ASSERT_TRUE(TryResolveOutcome(55, 30, 95, 100, t, &outcome));
  EXPECT_EQ(outcome, PairOutcome::kFirstDominates);
}

TEST(TryResolveOutcomeTest, IncomparableWhenBothSidesCapped) {
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  PairOutcome outcome;
  // Both directions can reach at most 30+10 = 40 and 20+10 = 30 of 100.
  ASSERT_TRUE(TryResolveOutcome(30, 20, 90, 100, t, &outcome));
  EXPECT_EQ(outcome, PairOutcome::kIncomparable);
}

TEST(TryResolveOutcomeTest, SecondSideMirrors) {
  GammaThresholds t = GammaThresholds::FromGamma(0.5);
  PairOutcome outcome;
  ASSERT_TRUE(TryResolveOutcome(5, 90, 100, 100, t, &outcome));
  EXPECT_EQ(outcome, PairOutcome::kSecondDominatesStrongly);
  ASSERT_TRUE(TryResolveOutcome(30, 55, 95, 100, t, &outcome));
  EXPECT_EQ(outcome, PairOutcome::kSecondDominates);
}

TEST(TryResolveOutcomeTest, CompletionAlwaysResolves) {
  GammaThresholds t = GammaThresholds::FromGamma(0.75);
  for (uint64_t n12 : {0ull, 40ull, 76ull, 100ull}) {
    PairOutcome outcome;
    EXPECT_TRUE(
        TryResolveOutcome(n12, 100 - n12, 100, 100, t, &outcome))
        << n12;
  }
}

}  // namespace
}  // namespace galaxy::core::internal
