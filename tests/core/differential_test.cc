// Differential tests: every algorithm configuration (sequential knobs and
// the parallel operator at 1 and 4 threads) against the exhaustive oracle
// on seeded adversarial datasets, plus regression tests for the
// empty-group semantics and the parallel result identifier.

#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aggregate_skyline.h"
#include "core/gamma.h"
#include "core/parallel.h"
#include "testing/differential.h"
#include "testing/oracle.h"
#include "testing/property_gen.h"

namespace galaxy::testing {
namespace {

TEST(DifferentialMatrixTest, CoversAllAlgorithmsAndThreadCounts) {
  std::vector<DifferentialConfig> configs = AllConfigurations();
  bool parallel_1 = false;
  bool parallel_4 = false;
  bool safe_mode = false;
  std::set<core::Algorithm> algorithms;
  for (const DifferentialConfig& c : configs) {
    if (c.parallel) {
      if (c.num_threads == 1) parallel_1 = true;
      if (c.num_threads == 4) parallel_4 = true;
    } else {
      algorithms.insert(c.algorithm);
      if (!c.prune_strongly_dominated) safe_mode = true;
    }
  }
  EXPECT_TRUE(parallel_1);
  EXPECT_TRUE(parallel_4);
  EXPECT_TRUE(safe_mode);
  EXPECT_EQ(algorithms.size(), 6u);  // BF, NL, TR, SI, IN, LO
  EXPECT_GE(configs.size(), 40u);
}

// The tentpole run: 200 seeded adversarial datasets, every configuration,
// zero disagreements with the oracle. On failure the input is shrunk and
// printed as a ready-to-paste regression test.
TEST(DifferentialTest, TwoHundredSeededDatasetsAgreeWithOracle) {
  constexpr uint64_t kDatasets = 200;
  for (uint64_t run = 0; run < kDatasets; ++run) {
    const uint64_t seed = 0xd1fful + run * 0x9e3779b97f4a7c15ull;
    Rng rng(seed);
    PointGroups points = GenerateAdversarialPoints(rng);
    const double gamma = PickAdversarialGamma(rng);
    core::GroupedDataset dataset = PointsToDataset(points);
    Divergence divergence = CheckDataset(dataset, gamma);
    if (divergence.found) {
      Reproducer repro = Shrink(points, gamma, divergence.config);
      FAIL() << "divergence at dataset seed " << seed << ", gamma " << gamma
             << ", config " << divergence.config.Name() << ": "
             << divergence.detail << "\n"
             << ReproducerToCpp(repro);
    }
  }
}

TEST(DifferentialTest, OracleMatchesBruteForceOnGeneratedData) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    core::GroupedDataset dataset = GenerateAdversarialDataset(rng);
    const double gamma = PickAdversarialGamma(rng);
    OracleResult oracle =
        ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
    core::AggregateSkylineOptions options;
    options.gamma = gamma;
    options.algorithm = core::Algorithm::kBruteForce;
    core::AggregateSkylineResult result =
        core::ComputeAggregateSkyline(dataset, options);
    EXPECT_EQ(result.dominated, oracle.dominated) << "iteration " << i;
    EXPECT_EQ(result.strongly_dominated, oracle.strongly_dominated)
        << "iteration " << i;
    EXPECT_EQ(result.skyline, oracle.skyline) << "iteration " << i;
  }
}

TEST(EmptyGroupTest, ProbabilityAndDominanceAreDefinedWithoutNan) {
  core::GroupedDataset dataset = core::GroupedDataset::FromPoints({
      {{0.5, 0.5}},
      {},
      {{1.0, 1.0}, {0.0, 0.0}},
  });
  const core::Group& full = dataset.group(0);
  const core::Group& empty = dataset.group(1);
  ASSERT_EQ(empty.size(), 0u);

  // 0/0 division guard: the probability is 0 by convention, never NaN.
  EXPECT_EQ(core::DominationProbability(full, empty), 0.0);
  EXPECT_EQ(core::DominationProbability(empty, full), 0.0);
  EXPECT_EQ(core::DominationProbability(empty, empty), 0.0);
  EXPECT_FALSE(std::isnan(core::DominationProbability(empty, full)));

  // An empty group neither dominates nor is dominated, at any gamma.
  for (double gamma : {0.5, 0.75, 1.0}) {
    EXPECT_FALSE(core::GammaDominates(full, empty, gamma));
    EXPECT_FALSE(core::GammaDominates(empty, full, gamma));
    core::GammaThresholds thresholds = core::GammaThresholds::FromGamma(gamma);
    for (bool mbb : {false, true}) {
      for (bool stop : {false, true}) {
        core::PairCompareOptions options;
        options.use_mbb = mbb;
        options.use_stop_rule = stop;
        EXPECT_EQ(core::ClassifyPair(full, empty, thresholds, options),
                  core::PairOutcome::kIncomparable);
        EXPECT_EQ(core::ClassifyPair(empty, full, thresholds, options),
                  core::PairOutcome::kIncomparable);
        EXPECT_EQ(core::ClassifyPair(empty, empty, thresholds, options),
                  core::PairOutcome::kIncomparable);
      }
    }
  }
}

TEST(EmptyGroupTest, EmptyGroupSurvivesEveryConfiguration) {
  core::GroupedDataset dataset = core::GroupedDataset::FromPoints({
      {{1.0, 1.0}},
      {},
      {{0.2, 0.2}, {0.1, 0.1}},
  });
  OracleResult oracle =
      ComputeOracle(dataset, core::GammaThresholds::FromGamma(0.5));
  EXPECT_EQ(oracle.dominated[1], 0);  // vacuously in the skyline
  EXPECT_EQ(oracle.dominated[2], 1);  // group 0 dominates every record
  for (const DifferentialConfig& config : AllConfigurations()) {
    core::AggregateSkylineResult result =
        RunConfiguration(dataset, 0.5, config);
    EXPECT_EQ(result.dominated[1], 0) << config.Name();
    EXPECT_EQ(result.strongly_dominated[1], 0) << config.Name();
    EXPECT_EQ(CheckResult(dataset, 0.5, config, oracle, result), "")
        << config.Name();
  }
}

TEST(EmptyGroupTest, DatasetsWithManyEmptyGroupsRoundTrip) {
  // Heavier empty-group pressure than the default generator mix.
  core::GroupedDataset dataset = core::GroupedDataset::FromPoints({
      {},
      {},
      {{0.75}},
      {},
      {{0.5}, {0.25}},
  });
  Divergence divergence = CheckDataset(dataset, 0.75);
  EXPECT_FALSE(divergence.found)
      << divergence.config.Name() << ": " << divergence.detail;
}

TEST(ParallelIdentifierTest, ParallelResultReportsParallelAlgorithm) {
  core::GroupedDataset dataset = core::GroupedDataset::FromPoints({
      {{1.0, 0.0}},
      {{0.0, 1.0}},
  });
  core::AggregateSkylineResult direct =
      core::ComputeAggregateSkylineParallel(dataset);
  EXPECT_EQ(direct.algorithm_used, core::Algorithm::kParallel);

  // Dispatch through the public entry point with Algorithm::kParallel.
  core::AggregateSkylineOptions options;
  options.algorithm = core::Algorithm::kParallel;
  core::AggregateSkylineResult routed =
      core::ComputeAggregateSkyline(dataset, options);
  EXPECT_EQ(routed.algorithm_used, core::Algorithm::kParallel);
  EXPECT_EQ(routed.skyline, direct.skyline);
}

TEST(ParallelSkipSettledTest, StrongMarksStayExactWithSkipEnabled) {
  // The settled-pair skip may only fire when classifying the pair cannot
  // change any mark; with the old dominated-based condition, strong marks
  // could be left unset. Exactness must hold at every thread count.
  Rng rng(4242);
  for (int i = 0; i < 25; ++i) {
    core::GroupedDataset dataset = GenerateAdversarialDataset(rng);
    const double gamma = PickAdversarialGamma(rng);
    OracleResult oracle =
        ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
    for (size_t threads : {size_t{1}, size_t{4}}) {
      core::ParallelOptions options;
      options.gamma = gamma;
      options.num_threads = threads;
      options.skip_settled_pairs = true;
      core::AggregateSkylineResult result =
          core::ComputeAggregateSkylineParallel(dataset, options);
      EXPECT_EQ(result.dominated, oracle.dominated)
          << "iteration " << i << ", threads " << threads;
      EXPECT_EQ(result.strongly_dominated, oracle.strongly_dominated)
          << "iteration " << i << ", threads " << threads;
    }
  }
}

// Shrunk reproducer from the differential harness (galaxy_fuzz, dataset
// seed 17096893083570007196, gamma 0.5). With the settled-pair skip gated
// on `dominated` instead of `strongly_dominated`, group 1 here loses its
// strong mark: the pair (0,1) is skipped after (2,1) marks group 1
// dominated, even though group 0 dominates it strongly.
TEST(DifferentialRegressionTest, ParallelSkipMustNotDropStrongMarks) {
  core::GroupedDataset ds = core::GroupedDataset::FromPoints({
      {{0.75}, {0.625}, {0.0}, {0.625}},
      {{0.375}, {0.0}, {0.25}, {1.0}},
      {{0.5}},
  });
  DifferentialConfig config;
  config.parallel = true;
  config.num_threads = 1;
  config.skip_settled_pairs = true;
  config.use_mbb = false;
  config.use_stop_rule = true;
  const double gamma = 0.5;
  OracleResult oracle =
      ComputeOracle(ds, core::GammaThresholds::FromGamma(gamma));
  EXPECT_EQ(RunAndCheck(ds, gamma, config, oracle), "");
}

TEST(ShrinkerTest, PassingInputReturnsUnshrunkWithEmptyDetail) {
  PointGroups points = {{{1.0, 0.0}}, {{0.0, 1.0}}};
  DifferentialConfig config;  // brute force: always consistent
  Reproducer repro = Shrink(points, 0.5, config);
  EXPECT_TRUE(repro.detail.empty());
  EXPECT_EQ(repro.groups, points);
}

TEST(ShrinkerTest, ReproducerRendersCompilableLookingCode) {
  Reproducer repro;
  repro.groups = {{{0.25, 0.5}}, {}};
  repro.gamma = 0.75;
  repro.config.algorithm = core::Algorithm::kTransitive;
  repro.config.use_mbb = true;
  repro.detail = "example disagreement";
  std::string code = ReproducerToCpp(repro);
  EXPECT_NE(code.find("GroupedDataset::FromPoints"), std::string::npos);
  EXPECT_NE(code.find("core::Algorithm::kTransitive"), std::string::npos);
  EXPECT_NE(code.find("config.use_mbb = true"), std::string::npos);
  EXPECT_NE(code.find("example disagreement"), std::string::npos);
  EXPECT_NE(code.find("RunAndCheck"), std::string::npos);
}

}  // namespace
}  // namespace galaxy::testing
