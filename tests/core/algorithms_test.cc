#include "core/aggregate_skyline.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gamma.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

namespace galaxy::core {
namespace {

// True exact aggregate skyline per Definition 2, computed from first
// principles (independent of the library's algorithm plumbing).
std::set<uint32_t> ReferenceSkyline(const GroupedDataset& ds, double gamma) {
  std::set<uint32_t> out;
  for (uint32_t i = 0; i < ds.num_groups(); ++i) {
    bool dominated = false;
    for (uint32_t j = 0; j < ds.num_groups() && !dominated; ++j) {
      if (j != i && GammaDominates(ds.group(j), ds.group(i), gamma)) {
        dominated = true;
      }
    }
    if (!dominated) out.insert(i);
  }
  return out;
}

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

struct WorkloadParam {
  datagen::Distribution distribution;
  size_t records;
  size_t per_group;
  size_t dims;
  double spread;
  double gamma;
  uint64_t seed;
};

class AlgorithmAgreementTest : public ::testing::TestWithParam<WorkloadParam> {
 protected:
  GroupedDataset Generate() const {
    const WorkloadParam& p = GetParam();
    datagen::GroupedWorkloadConfig config;
    config.num_records = p.records;
    config.avg_records_per_group = p.per_group;
    config.dims = p.dims;
    config.distribution = p.distribution;
    config.spread = p.spread;
    config.seed = p.seed;
    return datagen::GenerateGrouped(config);
  }
};

TEST_P(AlgorithmAgreementTest, BruteForceAndNestedLoopAreExact) {
  GroupedDataset ds = Generate();
  std::set<uint32_t> expected = ReferenceSkyline(ds, GetParam().gamma);

  for (Algorithm algo : {Algorithm::kBruteForce, Algorithm::kNestedLoop}) {
    AggregateSkylineOptions options;
    options.gamma = GetParam().gamma;
    options.algorithm = algo;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    EXPECT_EQ(AsSet(result.skyline), expected)
        << "algorithm " << AlgorithmToString(algo);
  }
}

TEST_P(AlgorithmAgreementTest, SafeModeMakesAllAlgorithmsExact) {
  GroupedDataset ds = Generate();
  std::set<uint32_t> expected = ReferenceSkyline(ds, GetParam().gamma);

  for (Algorithm algo : {Algorithm::kTransitive, Algorithm::kSorted,
                         Algorithm::kIndexed, Algorithm::kIndexedBbox}) {
    AggregateSkylineOptions options;
    options.gamma = GetParam().gamma;
    options.algorithm = algo;
    options.prune_strongly_dominated = false;  // disable the only lossy step
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    EXPECT_EQ(AsSet(result.skyline), expected)
        << "algorithm " << AlgorithmToString(algo);
  }
}

// The paper's TR/SI/IN/LO skip strongly-dominated groups entirely. Weak
// transitivity only collapses γ̄-γ̄ chains, so the pruned algorithms may
// return a SUPERSET of the exact skyline (see DESIGN.md). This test pins
// down that containment plus the exactness of everything they exclude.
TEST_P(AlgorithmAgreementTest, PrunedAlgorithmsReturnSupersetOnly) {
  GroupedDataset ds = Generate();
  std::set<uint32_t> expected = ReferenceSkyline(ds, GetParam().gamma);

  for (Algorithm algo : {Algorithm::kTransitive, Algorithm::kSorted,
                         Algorithm::kIndexed, Algorithm::kIndexedBbox}) {
    AggregateSkylineOptions options;
    options.gamma = GetParam().gamma;
    options.algorithm = algo;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    std::set<uint32_t> got = AsSet(result.skyline);
    // Everything in the exact skyline must be present (no false exclusion).
    for (uint32_t id : expected) {
      EXPECT_TRUE(got.count(id) > 0)
          << "algorithm " << AlgorithmToString(algo)
          << " wrongly excluded group " << id;
    }
    // Any extra group must indeed be gamma-dominated by some group (i.e.,
    // the discrepancy is the documented weak-transitivity gap, not a bug).
    for (uint32_t id : got) {
      if (expected.count(id) == 0) {
        bool dominated = false;
        for (uint32_t j = 0; j < ds.num_groups(); ++j) {
          if (j != id &&
              GammaDominates(ds.group(j), ds.group(id), GetParam().gamma)) {
            dominated = true;
            break;
          }
        }
        EXPECT_TRUE(dominated);
      }
    }
  }
}

TEST_P(AlgorithmAgreementTest, StatsArePopulated) {
  GroupedDataset ds = Generate();
  AggregateSkylineOptions options;
  options.gamma = GetParam().gamma;
  options.algorithm = Algorithm::kIndexed;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  EXPECT_GT(result.stats.group_pairs_classified, 0u);
  EXPECT_GE(result.stats.wall_seconds, 0.0);
  EXPECT_FALSE(result.stats.ToString().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AlgorithmAgreementTest,
    ::testing::Values(
        WorkloadParam{datagen::Distribution::kAntiCorrelated, 600, 20, 2, 0.2,
                      0.5, 1},
        WorkloadParam{datagen::Distribution::kAntiCorrelated, 600, 20, 4, 0.2,
                      0.5, 2},
        WorkloadParam{datagen::Distribution::kAntiCorrelated, 600, 20, 3, 0.5,
                      0.7, 3},
        WorkloadParam{datagen::Distribution::kIndependent, 600, 20, 3, 0.2,
                      0.5, 4},
        WorkloadParam{datagen::Distribution::kIndependent, 600, 30, 5, 0.8,
                      0.6, 5},
        WorkloadParam{datagen::Distribution::kCorrelated, 600, 20, 3, 0.2,
                      0.5, 6},
        WorkloadParam{datagen::Distribution::kCorrelated, 400, 10, 2, 0.4,
                      0.9, 7},
        WorkloadParam{datagen::Distribution::kAntiCorrelated, 500, 5, 3, 0.3,
                      0.5, 8},
        WorkloadParam{datagen::Distribution::kIndependent, 300, 100, 4, 0.2,
                      0.5, 9}));

TEST(AlgorithmsTest, SingleGroupIsAlwaysInSkyline) {
  GroupedDataset ds = GroupedDataset::FromPoints({{{1, 1}, {2, 2}}});
  for (Algorithm algo :
       {Algorithm::kBruteForce, Algorithm::kNestedLoop, Algorithm::kTransitive,
        Algorithm::kSorted, Algorithm::kIndexed, Algorithm::kIndexedBbox}) {
    AggregateSkylineOptions options;
    options.algorithm = algo;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    EXPECT_EQ(result.skyline, (std::vector<uint32_t>{0}));
  }
}

TEST(AlgorithmsTest, GammaOneKeepsAllButStrictlyDominated) {
  // With gamma = 1, only p = 1 (strict) domination excludes a group.
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{5, 5}, {6, 6}},       // A
       {{1, 1}},               // B: strictly dominated by A
       {{4, 7}, {0.5, 0.5}}},  // C: partially dominated by A (p < 1)
      {"A", "B", "C"});
  AggregateSkylineOptions options;
  options.gamma = 1.0;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  EXPECT_EQ(AsSet(result.skyline), (std::set<uint32_t>{0, 2}));
}

TEST(AlgorithmsTest, ResultSizeShrinksAsGammaDrops) {
  // gamma = .5 is the most selective setting (Section 2.2): lowering the
  // threshold towards .5 can only add dominances.
  datagen::GroupedWorkloadConfig config;
  config.num_records = 800;
  config.avg_records_per_group = 20;
  config.dims = 3;
  config.seed = 77;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  size_t previous = 0;
  bool first = true;
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    AggregateSkylineOptions options;
    options.gamma = gamma;
    options.algorithm = Algorithm::kBruteForce;
    size_t size = ComputeAggregateSkyline(ds, options).skyline.size();
    if (!first) {
      EXPECT_GE(size, previous) << "gamma " << gamma;
    }
    previous = size;
    first = false;
  }
}

TEST(AlgorithmsTest, MovieExampleAllAlgorithmsAgree) {
  Table movies = datagen::MovieTable();
  GroupedDataset ds =
      GroupedDataset::FromTable(movies, {"Director"}, {"Pop", "Qual"}).value();
  std::set<uint32_t> expected = ReferenceSkyline(ds, 0.5);
  for (Algorithm algo :
       {Algorithm::kBruteForce, Algorithm::kNestedLoop, Algorithm::kTransitive,
        Algorithm::kSorted, Algorithm::kIndexed, Algorithm::kIndexedBbox}) {
    AggregateSkylineOptions options;
    options.algorithm = algo;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    EXPECT_EQ(AsSet(result.skyline), expected)
        << "algorithm " << AlgorithmToString(algo);
  }
}

TEST(AlgorithmsTest, OrderingVariantsPreserveSupersetGuarantee) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 1000;
  config.avg_records_per_group = 25;
  config.size_model = datagen::GroupSizeModel::kZipf;
  config.seed = 31;
  GroupedDataset ds = datagen::GenerateGrouped(config);
  std::set<uint32_t> expected = ReferenceSkyline(ds, 0.5);
  for (GroupOrdering ordering :
       {GroupOrdering::kCornerDistance, GroupOrdering::kSmallestFirst,
        GroupOrdering::kSmallestFirstThenCorner}) {
    AggregateSkylineOptions options;
    options.algorithm = Algorithm::kSorted;
    options.ordering = ordering;
    AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
    for (uint32_t id : expected) {
      EXPECT_TRUE(result.Contains(id))
          << GroupOrderingToString(ordering) << " excluded " << id;
    }
  }
}

TEST(AlgorithmsTest, LabelsHelper) {
  GroupedDataset ds = GroupedDataset::FromPoints(
      {{{5, 5}}, {{1, 1}}, {{6, 4}}}, {"A", "B", "C"});
  AggregateSkylineOptions options;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult result = ComputeAggregateSkyline(ds, options);
  EXPECT_EQ(result.Labels(ds), (std::vector<std::string>{"A", "C"}));
  EXPECT_TRUE(result.Contains(0));
  EXPECT_FALSE(result.Contains(1));
}

}  // namespace
}  // namespace galaxy::core
