// Property tests for the Figure 9(c) MBB pre-classification accounting
// (internal::PreclassifyWithMbb): on boundary-heavy grid datasets the
// analytic pair counts n12 / n21 / resolved must match brute force
// exactly, and classification with use_mbb on/off must agree.

#include <cstdint>
#include <span>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gamma.h"
#include "testing/property_gen.h"

namespace galaxy::core {
namespace {

// Local strict Pareto dominance, independent of the library predicate.
bool StrictlyDominates(std::span<const double> a, std::span<const double> b) {
  bool strict = false;
  for (size_t d = 0; d < a.size(); ++d) {
    if (a[d] < b[d]) return false;
    if (a[d] > b[d]) strict = true;
  }
  return strict;
}

// Ordered dominating pairs within the residual rest1 x rest2 block.
uint64_t CountRestPairs(const Group& g1, const Group& g2,
                        const std::vector<uint32_t>& rest1,
                        const std::vector<uint32_t>& rest2, bool direction12) {
  uint64_t count = 0;
  for (uint32_t i : rest1) {
    for (uint32_t j : rest2) {
      bool dominates = direction12
                           ? StrictlyDominates(g1.point(i), g2.point(j))
                           : StrictlyDominates(g2.point(j), g1.point(i));
      if (dominates) ++count;
    }
  }
  return count;
}

void CheckPairAccounting(const Group& g1, const Group& g2) {
  internal::MbbPreclassification pre = internal::PreclassifyWithMbb(g1, g2);
  const uint64_t total = static_cast<uint64_t>(g1.size()) * g2.size();

  // The residual block is exactly what the pre-classification left over.
  const uint64_t rest_block =
      static_cast<uint64_t>(pre.rest1.size()) * pre.rest2.size();
  ASSERT_LE(rest_block, total);
  EXPECT_EQ(pre.resolved, total - rest_block);
  EXPECT_LE(pre.n12 + pre.n21, pre.resolved);

  // Analytic counts + residual scan == exhaustive counts, both directions.
  EXPECT_EQ(pre.n12 + CountRestPairs(g1, g2, pre.rest1, pre.rest2, true),
            CountDominatedPairs(g1, g2));
  EXPECT_EQ(pre.n21 + CountRestPairs(g1, g2, pre.rest1, pre.rest2, false),
            CountDominatedPairs(g2, g1));

  // Residual indexes must be valid and unique.
  for (uint32_t i : pre.rest1) EXPECT_LT(i, g1.size());
  for (uint32_t j : pre.rest2) EXPECT_LT(j, g2.size());
}

TEST(MbbAccountingTest, MatchesBruteForceOnBoundaryHeavyDatasets) {
  // The generator plants records exactly on other groups' MBB corners and
  // boundaries and draws grid-aligned coordinates, so the A/C region
  // membership tests are routinely decided by ties.
  Rng rng(31337);
  int pairs_checked = 0;
  for (int iteration = 0; iteration < 60; ++iteration) {
    GroupedDataset dataset = galaxy::testing::GenerateAdversarialDataset(rng);
    for (size_t a = 0; a < dataset.num_groups(); ++a) {
      for (size_t b = 0; b < dataset.num_groups(); ++b) {
        if (a == b) continue;
        if (dataset.group(a).size() == 0 || dataset.group(b).size() == 0) {
          continue;
        }
        CheckPairAccounting(dataset.group(a), dataset.group(b));
        ++pairs_checked;
      }
    }
  }
  EXPECT_GT(pairs_checked, 500);
}

TEST(MbbAccountingTest, IdenticalGroupsResolveToEqualPairsOnly) {
  // Two copies of the same group: MBBs coincide, every record sits on the
  // shared boundary. Domination counts must match in both directions.
  GroupedDataset dataset = GroupedDataset::FromPoints({
      {{0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}},
      {{0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}},
  });
  CheckPairAccounting(dataset.group(0), dataset.group(1));
  EXPECT_EQ(CountDominatedPairs(dataset.group(0), dataset.group(1)),
            CountDominatedPairs(dataset.group(1), dataset.group(0)));
}

TEST(MbbAccountingTest, DegenerateMbbSinglePoint) {
  // A group whose MBB is a single point: the opponent's records compare
  // against identical min and max corners.
  GroupedDataset dataset = GroupedDataset::FromPoints({
      {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}},
      {{0.25, 0.25}, {0.5, 0.5}, {0.75, 0.75}, {0.25, 0.75}},
  });
  CheckPairAccounting(dataset.group(0), dataset.group(1));
  CheckPairAccounting(dataset.group(1), dataset.group(0));
}

TEST(MbbAccountingTest, ClassificationAgreesWithAndWithoutMbb) {
  Rng rng(2718);
  for (int iteration = 0; iteration < 40; ++iteration) {
    GroupedDataset dataset = galaxy::testing::GenerateAdversarialDataset(rng);
    const double gamma = galaxy::testing::PickAdversarialGamma(rng);
    GammaThresholds thresholds = GammaThresholds::FromGamma(gamma);
    for (size_t a = 0; a < dataset.num_groups(); ++a) {
      for (size_t b = a + 1; b < dataset.num_groups(); ++b) {
        PairCompareOptions plain;
        plain.use_mbb = false;
        PairCompareOptions mbb;
        mbb.use_mbb = true;
        for (bool stop : {false, true}) {
          plain.use_stop_rule = stop;
          mbb.use_stop_rule = stop;
          EXPECT_EQ(
              ClassifyPair(dataset.group(a), dataset.group(b), thresholds,
                           plain),
              ClassifyPair(dataset.group(a), dataset.group(b), thresholds,
                           mbb))
              << "iteration " << iteration << " pair (" << a << "," << b
              << ") stop=" << stop << " gamma=" << gamma;
        }
      }
    }
  }
}

}  // namespace
}  // namespace galaxy::core
