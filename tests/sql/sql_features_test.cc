// Tests for the extended SQL surface: LIKE, CASE, EXISTS and UNION.

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sql/catalog.h"

namespace galaxy::sql {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override { db_.Register("Movie", datagen::MovieTable()); }

  Table Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : Table();
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// LIKE
// ---------------------------------------------------------------------------

TEST_F(SqlFeaturesTest, LikePrefixAndSuffix) {
  Table t = Q("SELECT Title FROM Movie WHERE Title LIKE 'The%'");
  EXPECT_EQ(t.num_rows(), 3u);  // The Godfather, The LOTR, The Room
  Table t2 = Q("SELECT Title FROM Movie WHERE Title LIKE '%Bill'");
  ASSERT_EQ(t2.num_rows(), 1u);
  EXPECT_EQ(t2.at(0, 0), Value("Kill Bill"));
}

TEST_F(SqlFeaturesTest, LikeInfixAndUnderscore) {
  Table t = Q("SELECT Title FROM Movie WHERE Title LIKE '%o_father%'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value("The Godfather"));
  // '_' requires exactly one character.
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE 'Avata_'").num_rows(),
            1u);
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE 'Avatar_'").num_rows(),
            0u);
}

TEST_F(SqlFeaturesTest, LikeIsCaseInsensitive) {
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE 'the%'").num_rows(),
            3u);
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Director LIKE 'TARANTINO'")
                .num_rows(),
            2u);
}

TEST_F(SqlFeaturesTest, NotLike) {
  Table t = Q("SELECT Title FROM Movie WHERE Title NOT LIKE 'The%'");
  EXPECT_EQ(t.num_rows(), 7u);
}

TEST_F(SqlFeaturesTest, LikeExactMatchWithoutWildcards) {
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE 'Avatar'").num_rows(),
            1u);
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE 'Avat'").num_rows(),
            0u);
}

TEST_F(SqlFeaturesTest, LikePercentOnlyMatchesEverything) {
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE Title LIKE '%'").num_rows(), 10u);
}

TEST_F(SqlFeaturesTest, LikeRequiresStrings) {
  EXPECT_FALSE(db_.Query("SELECT * FROM Movie WHERE Pop LIKE '5%'").ok());
}

// ---------------------------------------------------------------------------
// CASE
// ---------------------------------------------------------------------------

TEST_F(SqlFeaturesTest, SearchedCase) {
  Table t = Q(
      "SELECT Title, CASE WHEN Qual >= 9.0 THEN 'great' "
      "WHEN Qual >= 8.0 THEN 'good' ELSE 'meh' END AS verdict "
      "FROM Movie ORDER BY Title");
  ASSERT_EQ(t.num_rows(), 10u);
  // Sorted by title: Avatar (8.0) -> good; Batman Begins (8.3) -> good;
  // Dracula (7.3) -> meh.
  EXPECT_EQ(t.at(0, 1), Value("good"));
  EXPECT_EQ(t.at(1, 1), Value("good"));
  EXPECT_EQ(t.at(2, 1), Value("meh"));
}

TEST_F(SqlFeaturesTest, SimpleCase) {
  Table t = Q(
      "SELECT CASE Director WHEN 'Tarantino' THEN 1 ELSE 0 END AS is_qt "
      "FROM Movie WHERE Title = 'Kill Bill'");
  EXPECT_EQ(t.at(0, 0), Value(1));
}

TEST_F(SqlFeaturesTest, CaseWithoutElseYieldsNull) {
  Table t = Q("SELECT CASE WHEN Pop > 10000 THEN 1 END FROM Movie LIMIT 1");
  EXPECT_TRUE(t.at(0, 0).is_null());
}

TEST_F(SqlFeaturesTest, CaseInWhereAndAggregates) {
  // Count movies per quality band.
  Table t = Q(
      "SELECT sum(CASE WHEN Qual >= 8.5 THEN 1 ELSE 0 END) AS top "
      "FROM Movie");
  EXPECT_EQ(t.at(0, 0), Value(5));  // 9.0, 8.8, 8.6, 9.2, 8.7
}

TEST_F(SqlFeaturesTest, CaseFirstMatchingBranchWins) {
  Table t = Q(
      "SELECT CASE WHEN 1 = 1 THEN 'first' WHEN 1 = 1 THEN 'second' END "
      "FROM Movie LIMIT 1");
  EXPECT_EQ(t.at(0, 0), Value("first"));
}

TEST_F(SqlFeaturesTest, CaseParseErrors) {
  EXPECT_FALSE(db_.Query("SELECT CASE END FROM Movie").ok());
  EXPECT_FALSE(db_.Query("SELECT CASE WHEN 1 THEN 2 FROM Movie").ok());
}

// ---------------------------------------------------------------------------
// EXISTS
// ---------------------------------------------------------------------------

TEST_F(SqlFeaturesTest, ExistsTrueAndFalse) {
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE EXISTS "
              "(SELECT * FROM Movie WHERE Pop > 550)")
                .num_rows(),
            10u);
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE EXISTS "
              "(SELECT * FROM Movie WHERE Pop > 10000)")
                .num_rows(),
            0u);
}

TEST_F(SqlFeaturesTest, NotExists) {
  EXPECT_EQ(Q("SELECT Title FROM Movie WHERE NOT EXISTS "
              "(SELECT * FROM Movie WHERE Pop > 10000)")
                .num_rows(),
            10u);
}

// ---------------------------------------------------------------------------
// UNION
// ---------------------------------------------------------------------------

TEST_F(SqlFeaturesTest, UnionDeduplicates) {
  Table t = Q(
      "SELECT Director FROM Movie WHERE Pop > 500 "
      "UNION SELECT Director FROM Movie WHERE Qual > 9.0");
  // >500: Tarantino, Coppola, Jackson; >9.0: Coppola. Dedup -> 3.
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(SqlFeaturesTest, UnionAllKeepsDuplicates) {
  Table t = Q(
      "SELECT Director FROM Movie WHERE Pop > 500 "
      "UNION ALL SELECT Director FROM Movie WHERE Qual > 9.0");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(SqlFeaturesTest, ThreeWayUnionChain) {
  Table t = Q(
      "SELECT Title FROM Movie WHERE Year < 1980 "
      "UNION SELECT Title FROM Movie WHERE Year >= 2005 "
      "UNION SELECT Title FROM Movie WHERE Director = 'Wiseau'");
  // 1972 Godfather; 2005 Batman Begins, 2009 Avatar; The Room.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(SqlFeaturesTest, UnionWidensNumericTypes) {
  Table t = Q("SELECT Pop FROM Movie WHERE Pop > 550 "
              "UNION SELECT Qual FROM Movie WHERE Qual > 9.1");
  EXPECT_EQ(t.schema().column(0).type, ValueType::kDouble);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SqlFeaturesTest, UnionArityMismatchIsError) {
  EXPECT_FALSE(db_.Query("SELECT Title FROM Movie UNION "
                         "SELECT Title, Pop FROM Movie")
                   .ok());
}

TEST_F(SqlFeaturesTest, UnionWithOrderByIsRejected) {
  EXPECT_FALSE(db_.Query("SELECT Title FROM Movie ORDER BY Title UNION "
                         "SELECT Title FROM Movie")
                   .ok());
  EXPECT_FALSE(db_.Query("SELECT Title FROM Movie UNION "
                         "SELECT Title FROM Movie LIMIT 3")
                   .ok());
}

TEST_F(SqlFeaturesTest, UnionInsideInSubquery) {
  Table t = Q(
      "SELECT Title FROM Movie WHERE Director IN ("
      "SELECT Director FROM Movie WHERE Pop > 550 "
      "UNION SELECT Director FROM Movie WHERE Qual > 9.1)");
  // Tarantino (557) + Coppola (9.2): 4 movies.
  EXPECT_EQ(t.num_rows(), 4u);
}

}  // namespace
}  // namespace galaxy::sql
