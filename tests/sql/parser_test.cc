#include "sql/parser.h"

#include <gtest/gtest.h>

namespace galaxy::sql {
namespace {

std::unique_ptr<SelectStmt> ParseOk(const std::string& s) {
  auto r = Parse(s);
  EXPECT_TRUE(r.ok()) << s << " -> " << r.status();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseOk("SELECT * FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->items[0].star);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table_name, "t");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectListWithAliases) {
  auto stmt = ParseOk("SELECT a AS x, b y, a + b FROM t");
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_TRUE(stmt->items[2].alias.empty());
  EXPECT_EQ(stmt->items[2].expr->ToString(), "(a + b)");
}

TEST(ParserTest, DistinctFlag) {
  EXPECT_TRUE(ParseOk("SELECT DISTINCT a FROM t")->distinct);
  EXPECT_FALSE(ParseOk("SELECT a FROM t")->distinct);
}

TEST(ParserTest, FromWithAliasesAndCommaJoin) {
  auto stmt = ParseOk("SELECT * FROM movies X, movies AS Y");
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].effective_alias(), "X");
  EXPECT_EQ(stmt->from[1].effective_alias(), "Y");
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = ParseOk("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1");
  ASSERT_EQ(stmt->from.size(), 2u);
  ASSERT_NE(stmt->where, nullptr);
  // WHERE and ON combined by AND.
  EXPECT_EQ(stmt->where->ToString(), "((a.y > 1) AND (a.x = b.x))");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseOk("SELECT a + b * c - d FROM t");
  EXPECT_EQ(stmt->items[0].expr->ToString(), "((a + (b * c)) - d)");
}

TEST(ParserTest, LogicPrecedence) {
  auto stmt = ParseOk("SELECT * FROM t WHERE a > 1 AND b < 2 OR NOT c = 3");
  EXPECT_EQ(stmt->where->ToString(),
            "(((a > 1) AND (b < 2)) OR NOT (c = 3))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = ParseOk("SELECT (a + b) * c FROM t");
  EXPECT_EQ(stmt->items[0].expr->ToString(), "((a + b) * c)");
}

TEST(ParserTest, QualifiedColumnRefs) {
  auto stmt = ParseOk("SELECT X.director FROM movies X");
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kColumnRef);
  EXPECT_EQ(stmt->items[0].expr->table, "X");
  EXPECT_EQ(stmt->items[0].expr->column, "director");
}

TEST(ParserTest, FunctionCalls) {
  auto stmt = ParseOk("SELECT count(*), max(Pop), min(Qual) FROM t");
  EXPECT_EQ(stmt->items[0].expr->function, "COUNT");
  EXPECT_TRUE(stmt->items[0].expr->star_arg);
  EXPECT_EQ(stmt->items[1].expr->function, "MAX");
  ASSERT_EQ(stmt->items[1].expr->args.size(), 1u);
  EXPECT_EQ(stmt->items[2].expr->function, "MIN");
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = ParseOk(
      "SELECT Director, max(Qual) FROM Movie GROUP BY Director "
      "HAVING max(Qual) >= 8.0");
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0]->column, "Director");
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->having->ToString(), "(MAX(Qual) >= 8)");
}

TEST(ParserTest, InSubquery) {
  auto stmt = ParseOk(
      "SELECT d FROM t WHERE d NOT IN (SELECT x FROM u WHERE x > 2)");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kInSubquery);
  EXPECT_TRUE(stmt->where->negated);
  ASSERT_NE(stmt->where->subquery, nullptr);
  EXPECT_EQ(stmt->where->subquery->from[0].table_name, "u");
}

TEST(ParserTest, InList) {
  auto stmt = ParseOk("SELECT * FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(stmt->where->kind, ExprKind::kInList);
  EXPECT_FALSE(stmt->where->negated);
  EXPECT_EQ(stmt->where->in_list.size(), 3u);
}

TEST(ParserTest, IsNull) {
  auto stmt = ParseOk("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
  EXPECT_EQ(stmt->where->ToString(), "(a IS NULL AND b IS NOT NULL)");
}

TEST(ParserTest, Between) {
  auto stmt = ParseOk("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
  EXPECT_EQ(stmt->where->ToString(), "((a >= 1) AND (a <= 5))");
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt =
      ParseOk("SELECT a FROM t ORDER BY a DESC, b ASC, c LIMIT 10");
  ASSERT_EQ(stmt->order_by.size(), 3u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_TRUE(stmt->order_by[2].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, RecordSkylineClause) {
  auto stmt = ParseOk("SELECT * FROM Movie SKYLINE OF Pop MAX, Qual MAX");
  ASSERT_EQ(stmt->skyline.size(), 2u);
  EXPECT_TRUE(stmt->skyline[0].maximize);
  EXPECT_EQ(stmt->skyline[0].expr->column, "Pop");
  EXPECT_FALSE(stmt->skyline_gamma.has_value());
}

TEST(ParserTest, AggregateSkylineClauseWithGamma) {
  auto stmt = ParseOk(
      "SELECT director FROM movies GROUP BY Director "
      "SKYLINE OF Pop MAX, Year MIN GAMMA 0.7");
  ASSERT_EQ(stmt->skyline.size(), 2u);
  EXPECT_FALSE(stmt->skyline[1].maximize);
  ASSERT_TRUE(stmt->skyline_gamma.has_value());
  EXPECT_DOUBLE_EQ(*stmt->skyline_gamma, 0.7);
}

TEST(ParserTest, NegativeNumbersAndUnaryMinus) {
  auto stmt = ParseOk("SELECT -a, -1.5, +2 FROM t");
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kUnary);
  EXPECT_EQ(stmt->items[1].expr->ToString(), "-1.5");
  EXPECT_EQ(stmt->items[2].expr->ToString(), "2");
}

TEST(ParserTest, SemicolonTerminatorAccepted) {
  EXPECT_NE(ParseOk("SELECT * FROM t;"), nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t GROUP").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(Parse("SELECT a, FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t SKYLINE Pop MAX").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t SKYLINE OF Pop").ok());
  EXPECT_FALSE(Parse("UPDATE t SET a = 1").ok());
}

TEST(ParserTest, StatementRoundTripsThroughToString) {
  const std::string sql =
      "SELECT DISTINCT director FROM movies WHERE director NOT IN "
      "(SELECT X.director FROM movies X, movies Y WHERE (Y.votes > X.votes "
      "AND Y.rank >= X.rank) OR (Y.votes >= X.votes AND Y.rank > X.rank) "
      "GROUP BY X.director, Y.director "
      "HAVING 1.0 * COUNT(*) / (X.num * Y.num) > 0.5)";
  auto stmt = ParseOk(sql);
  ASSERT_NE(stmt, nullptr);
  // Re-parse the printed form; it must parse to the same printed form.
  auto reparsed = ParseOk(stmt->ToString());
  ASSERT_NE(reparsed, nullptr);
  EXPECT_EQ(stmt->ToString(), reparsed->ToString());
}

}  // namespace
}  // namespace galaxy::sql
