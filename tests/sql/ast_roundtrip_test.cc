// Parse -> ToString -> parse round-trips for the full SQL surface: the
// printed form of a statement must re-parse to the same printed form.

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace galaxy::sql {
namespace {

void ExpectRoundTrip(const std::string& sql) {
  auto first = Parse(sql);
  ASSERT_TRUE(first.ok()) << sql << " -> " << first.status();
  std::string printed = (*first)->ToString();
  auto second = Parse(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  EXPECT_EQ(printed, (*second)->ToString()) << "original: " << sql;
}

TEST(AstRoundTripTest, Basics) {
  ExpectRoundTrip("SELECT * FROM t");
  ExpectRoundTrip("SELECT a, b AS x FROM t WHERE a > 1 ORDER BY b DESC");
  ExpectRoundTrip("SELECT DISTINCT a FROM t LIMIT 7");
}

TEST(AstRoundTripTest, JoinsAndSubqueries) {
  ExpectRoundTrip("SELECT A.x FROM t A, t B WHERE A.x = B.y");
  ExpectRoundTrip(
      "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u WHERE b < 3)");
  ExpectRoundTrip("SELECT a FROM t WHERE a IN (1, 2, 3)");
}

TEST(AstRoundTripTest, Aggregates) {
  ExpectRoundTrip(
      "SELECT d, count(*), max(p) FROM t GROUP BY d "
      "HAVING 1.0 * count(*) / (n * m) > 0.5");
}

TEST(AstRoundTripTest, LikeCaseExists) {
  ExpectRoundTrip("SELECT a FROM t WHERE a LIKE 'The%'");
  ExpectRoundTrip("SELECT a FROM t WHERE a NOT LIKE '%x_'");
  ExpectRoundTrip(
      "SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' "
      "ELSE 'lo' END FROM t");
  ExpectRoundTrip("SELECT CASE a WHEN 1 THEN 'one' END FROM t");
  ExpectRoundTrip("SELECT a FROM t WHERE EXISTS (SELECT b FROM u)");
  ExpectRoundTrip("SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM u)");
}

TEST(AstRoundTripTest, Unions) {
  ExpectRoundTrip("SELECT a FROM t UNION SELECT b FROM u");
  ExpectRoundTrip(
      "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v");
}

TEST(AstRoundTripTest, SkylineClauses) {
  ExpectRoundTrip("SELECT * FROM movies SKYLINE OF Pop MAX, Qual MAX");
  ExpectRoundTrip(
      "SELECT d FROM movies GROUP BY d SKYLINE OF Pop MAX, Year MIN "
      "GAMMA 0.75");
  ExpectRoundTrip(
      "SELECT d FROM movies GROUP BY d SKYLINE OF Pop MAX GAMMA RANK");
}

TEST(AstRoundTripTest, NullsAndIsNull) {
  ExpectRoundTrip("SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL");
  ExpectRoundTrip("SELECT NULL FROM t");
}

}  // namespace
}  // namespace galaxy::sql
