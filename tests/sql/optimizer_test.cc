#include "sql/optimizer.h"

#include <gtest/gtest.h>

#include "datagen/groups.h"
#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace galaxy::sql {
namespace {

// Parses a query whose WHERE is the expression under test and returns the
// folded WHERE rendered back to text.
std::string FoldWhere(const std::string& where) {
  auto stmt = Parse("SELECT * FROM t WHERE " + where);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  if (!stmt.ok()) return "";
  FoldConstants((*stmt)->where);
  return (*stmt)->where == nullptr ? "" : (*stmt)->where->ToString();
}

TEST(FoldConstantsTest, Arithmetic) {
  EXPECT_EQ(FoldWhere("1 + 2 * 3"), "7");
  EXPECT_EQ(FoldWhere("1.0 * 30 / 32"), "0.9375");
  EXPECT_EQ(FoldWhere("-(2 + 3)"), "-5");
}

TEST(FoldConstantsTest, Comparisons) {
  EXPECT_EQ(FoldWhere("2 < 3"), "1");
  EXPECT_EQ(FoldWhere("2 >= 3"), "0");
  EXPECT_EQ(FoldWhere("'a' = 'a'"), "1");
}

TEST(FoldConstantsTest, LogicSimplification) {
  // TRUE AND x -> x.
  EXPECT_EQ(FoldWhere("1 = 1 AND Pop > 5"), "(Pop > 5)");
  // FALSE AND x -> FALSE, even with non-constant x.
  EXPECT_EQ(FoldWhere("1 = 2 AND Pop > 5"), "0");
  // TRUE OR x -> TRUE.
  EXPECT_EQ(FoldWhere("1 = 1 OR Pop > 5"), "1");
  // FALSE OR x -> x.
  EXPECT_EQ(FoldWhere("1 = 2 OR Pop > 5"), "(Pop > 5)");
  EXPECT_EQ(FoldWhere("NOT (1 = 2)"), "1");
}

TEST(FoldConstantsTest, IsNullFolding) {
  EXPECT_EQ(FoldWhere("NULL IS NULL"), "1");
  EXPECT_EQ(FoldWhere("1 IS NULL"), "0");
  EXPECT_EQ(FoldWhere("1 IS NOT NULL"), "1");
}

TEST(FoldConstantsTest, DivisionByZeroIsNotFolded) {
  // Folding must not turn a runtime error into a plan-time change.
  EXPECT_EQ(FoldWhere("1 / 0"), "(1 / 0)");
}

TEST(FoldConstantsTest, NonConstantSubtreesSurvive) {
  EXPECT_EQ(FoldWhere("Pop + 1 > 2 + 3"), "((Pop + 1) > 5)");
}

TEST(FoldConstantsTest, CaseArmPruning) {
  EXPECT_EQ(FoldWhere("CASE WHEN 1 = 2 THEN 10 WHEN Pop > 5 THEN 20 END"),
            "CASE WHEN (Pop > 5) THEN 20 END");
  // Leading TRUE arm replaces the CASE entirely.
  EXPECT_EQ(FoldWhere("CASE WHEN 1 = 1 THEN 10 ELSE 20 END"), "10");
  // All arms dead: the ELSE remains.
  EXPECT_EQ(FoldWhere("CASE WHEN 1 = 2 THEN 10 ELSE 20 END"), "20");
  // All arms dead, no ELSE: NULL.
  EXPECT_EQ(FoldWhere("CASE WHEN 1 = 2 THEN 10 END"), "NULL");
}

TEST(SplitConjunctsTest, SplitsNestedAnds) {
  auto stmt = Parse("SELECT * FROM t WHERE a > 1 AND b > 2 AND c > 3").value();
  auto conjuncts = SplitConjuncts(std::move(stmt->where));
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), "(a > 1)");
  EXPECT_EQ(conjuncts[2]->ToString(), "(c > 3)");
  ExprPtr rebuilt = ConjoinAll(std::move(conjuncts));
  EXPECT_EQ(rebuilt->ToString(), "(((a > 1) AND (b > 2)) AND (c > 3))");
}

TEST(SplitConjunctsTest, OrIsNotSplit) {
  auto stmt = Parse("SELECT * FROM t WHERE a > 1 OR b > 2").value();
  auto conjuncts = SplitConjuncts(std::move(stmt->where));
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(SplitConjunctsTest, EmptyInput) {
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
  EXPECT_EQ(ConjoinAll({}), nullptr);
}

// ---------------------------------------------------------------------------
// Pushdown, observed through ExecStats.
// ---------------------------------------------------------------------------

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override { db_.Register("Movie", datagen::MovieTable()); }

  Result<Table> Run(const std::string& sql, ExecStats* stats) {
    auto stmt = Parse(sql);
    if (!stmt.ok()) return stmt.status();
    return ExecuteSelect(db_, **stmt, stats);
  }

  Database db_;
};

TEST_F(PushdownTest, SingleTablePredicatesMoveBelowTheJoin) {
  ExecStats stats;
  auto result = Run(
      "SELECT A.Title FROM Movie A, Movie B "
      "WHERE A.Pop > 500 AND B.Qual > 9.0 AND A.Year < B.Year",
      &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(stats.pushed_filters, 2u);
  // A side keeps 3 of 10 rows, B side 1 of 10: 16 rows filtered, the cross
  // product enumerates 3 x 1 instead of 100 combinations.
  EXPECT_EQ(stats.base_rows_filtered, 16u);
  EXPECT_EQ(stats.cross_product_rows, 3u);
  // Result correctness: A in {Pulp Fiction 1994, Godfather 1972, LOTR 2001},
  // B = Godfather (1972). A.Year < 1972: none.
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(PushdownTest, PushdownPreservesResults) {
  // The same join with and without pushdown-eligible predicates written as
  // one conjunction vs nested parentheses (ORs are not split).
  ExecStats stats;
  auto pushed = Run(
      "SELECT A.Title, B.Title FROM Movie A, Movie B "
      "WHERE A.Pop > 400 AND B.Pop > 400 AND A.Qual < B.Qual "
      "ORDER BY A.Title, B.Title",
      &stats);
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(stats.pushed_filters, 2u);

  ExecStats stats2;
  auto unpushed = Run(
      "SELECT A.Title, B.Title FROM Movie A, Movie B "
      "WHERE (A.Pop > 400 OR 1 = 2) AND (B.Pop > 400 OR 1 = 2) "
      "AND A.Qual < B.Qual ORDER BY A.Title, B.Title",
      &stats2);
  ASSERT_TRUE(unpushed.ok());
  // Folding rewrites (x OR FALSE) -> x, so these also end up pushable;
  // results must match either way.
  ASSERT_EQ(pushed->num_rows(), unpushed->num_rows());
  for (size_t r = 0; r < pushed->num_rows(); ++r) {
    EXPECT_EQ(pushed->at(r, 0), unpushed->at(r, 0));
    EXPECT_EQ(pushed->at(r, 1), unpushed->at(r, 1));
  }
}

TEST_F(PushdownTest, CrossTablePredicatesStayInWhere) {
  ExecStats stats;
  auto result = Run(
      "SELECT count(*) FROM Movie A, Movie B WHERE A.Pop > B.Pop", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.pushed_filters, 0u);
  EXPECT_EQ(stats.cross_product_rows, 100u);
  // Strict order: 45 pairs are strictly ordered either way; ties on equal
  // Pop values: none in the movie table, so 45.
  EXPECT_EQ(result->at(0, 0), Value(45));
}

TEST_F(PushdownTest, SingleTableQueriesAreUnaffected) {
  ExecStats stats;
  auto result = Run("SELECT Title FROM Movie WHERE Pop > 500", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.pushed_filters, 0u);  // no join, nothing to push below
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(PushdownTest, FoldingCountsAreReported) {
  ExecStats stats;
  auto result =
      Run("SELECT Title FROM Movie WHERE Pop > 100 + 400", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(stats.folded_constants, 1u);
  EXPECT_EQ(result->num_rows(), 3u);
}

TEST_F(PushdownTest, Algorithm1QueryStillCorrectWithOptimizer) {
  // The whole Algorithm 1 pipeline through the optimizer: same answer as
  // the paper's Figure 4(b).
  core::GroupedDataset ds =
      core::GroupedDataset::FromTable(datagen::MovieTable(), {"Director"},
                                      {"Pop", "Qual"})
          .value();
  Table data = datagen::GroupedDatasetToTable(ds);
  db_.Register("data", data);
  ExecStats stats;
  auto result = Run(
      "SELECT DISTINCT class FROM data WHERE class NOT IN ("
      "SELECT X.class FROM data X, data Y WHERE X.class != Y.class AND "
      "((Y.a0 >= X.a0 AND Y.a1 >= X.a1) AND (Y.a0 > X.a0 OR Y.a1 > X.a1)) "
      "GROUP BY X.class, Y.class "
      "HAVING 1.0 * COUNT(*) / (X.num * Y.num) > 0.5) ORDER BY class",
      &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->at(0, 0), Value("Coppola"));
  EXPECT_EQ(result->at(3, 0), Value("Tarantino"));
}

}  // namespace
}  // namespace galaxy::sql
