// Seeded SQL fuzzing through the full lexer -> parser -> executor
// pipeline: every mutated statement must come back as a clean Status or a
// well-formed table — never an abort, never an empty-message error.

#include "testing/sql_fuzz.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/executor.h"

namespace galaxy::testing {
namespace {

TEST(SqlFuzzTest, CorpusSeedsExecuteCleanly) {
  sql::Database db = MakeSqlFuzzDatabase();
  for (const std::string& statement : SqlFuzzCorpus()) {
    auto result = db.Query(statement);
    EXPECT_TRUE(result.ok()) << statement << "\n  -> "
                             << result.status().ToString();
  }
}

TEST(SqlFuzzTest, MutatorIsDeterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(MutateSql(a), MutateSql(b));
}

TEST(SqlFuzzTest, MutatorProducesNonCorpusStatements) {
  Rng rng(3);
  int mutated = 0;
  const std::vector<std::string>& corpus = SqlFuzzCorpus();
  for (int i = 0; i < 100; ++i) {
    std::string s = MutateSql(rng);
    bool in_corpus = false;
    for (const std::string& seed : corpus) in_corpus |= (s == seed);
    if (!in_corpus) ++mutated;
  }
  EXPECT_GT(mutated, 80);  // the mutator must actually mutate
}

TEST(SqlFuzzTest, ThousandMutatedStatementsYieldCleanStatuses) {
  SqlFuzzStats stats;
  std::string detail = FuzzSql(/*seed=*/20260806, /*iterations=*/1000,
                               &stats);
  EXPECT_EQ(detail, "");
  EXPECT_EQ(stats.executed, 1000u);
  // The campaign must exercise both accept and reject paths, otherwise the
  // corpus or mutation rate is off.
  EXPECT_GT(stats.ok, 0u);
  EXPECT_GT(stats.parse_errors, 0u);
}

TEST(SqlFuzzTest, DifferentSeedsCoverDifferentStatements) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (MutateSql(a) != MutateSql(b)) ++differing;
  }
  EXPECT_GT(differing, 10);
}

}  // namespace
}  // namespace galaxy::testing
