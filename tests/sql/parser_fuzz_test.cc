// Robustness "fuzz" tests: the SQL front end must never crash — every
// input either parses or returns a ParseError/Unimplemented status.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/parser.h"

namespace galaxy::sql {
namespace {

TEST(ParserFuzzTest, RandomAsciiNeverCrashes) {
  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 120));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.UniformInt(32, 126));
    }
    auto result = Parse(input);  // must not crash; errors are fine
    (void)result;
  }
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // Strings built from valid SQL fragments in random order: exercises the
  // parser's error recovery far more deeply than raw bytes.
  const std::vector<std::string> fragments = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",      "HAVING", "ORDER",
      "LIMIT",  "UNION", "ALL",    "NOT",    "IN",      "LIKE",   "CASE",
      "WHEN",   "THEN",  "ELSE",   "END",    "EXISTS",  "AND",    "OR",
      "IS",     "NULL",  "SKYLINE", "OF",    "MAX",     "MIN",    "GAMMA",
      "*",      ",",     "(",      ")",      "+",       "-",      "/",
      "=",      "<",     ">",      "<=",     ">=",      "!=",     ".",
      "movies", "t",     "a",      "Pop",    "'str'",   "1",      "2.5",
      "count",  "sum",   "BETWEEN", "AS",    "DISTINCT", "JOIN",  "ON",
  };
  Rng rng(777);
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = static_cast<size_t>(rng.UniformInt(1, 25));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += fragments[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fragments.size()) - 1))];
      input += " ";
    }
    auto result = Parse(input);
    (void)result;
  }
}

TEST(ParserFuzzTest, MutatedValidQueriesNeverCrashExecution) {
  // Take a valid query, delete / duplicate random spans, and run the whole
  // pipeline (parse + execute). Every outcome must be a clean Status.
  const std::string base =
      "SELECT Director, count(*) AS c FROM Movie WHERE Pop > 100 AND "
      "Title NOT LIKE 'The%' GROUP BY Director HAVING count(*) >= 1 "
      "ORDER BY c DESC LIMIT 5";
  Database db;
  db.Register("Movie", datagen::MovieTable());
  Rng rng(99);
  int executed_ok = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      size_t span = static_cast<size_t>(rng.UniformInt(1, 10));
      if (rng.Bernoulli(0.5)) {
        mutated.erase(pos, span);
      } else {
        mutated.insert(pos, mutated.substr(pos, span));
      }
    }
    auto result = db.Query(mutated);
    if (result.ok()) ++executed_ok;
  }
  // The unmutated query must work; some mutations should too.
  EXPECT_TRUE(db.Query(base).ok());
  EXPECT_GT(executed_ok, 0);
}

TEST(ParserFuzzTest, DeeplyNestedParenthesesDoNotOverflow) {
  // Bounded recursion check: a few hundred levels must either parse or
  // error out without smashing the stack.
  std::string query = "SELECT ";
  for (int i = 0; i < 400; ++i) query += "(";
  query += "1";
  for (int i = 0; i < 400; ++i) query += ")";
  query += " FROM t";
  auto result = Parse(query);
  EXPECT_TRUE(result.ok()) << result.status();
}

}  // namespace
}  // namespace galaxy::sql
