#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace galaxy::sql {
namespace {

std::vector<Token> Lex(const std::string& s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value_or({});
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = Lex("select FROM Where");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + end
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "WHERE");
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersKeepCasing) {
  auto tokens = Lex("Director movie_title _x1");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Director");
  EXPECT_EQ(tokens[1].text, "movie_title");
  EXPECT_EQ(tokens[2].text, "_x1");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Lex("42 3.14 .5 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.14);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.5);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuotes) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= == != <> < <= > >= + - * / % ( ) , . ;");
  std::vector<TokenType> expected = {
      TokenType::kEq,     TokenType::kEq,      TokenType::kNotEq,
      TokenType::kNotEq,  TokenType::kLt,      TokenType::kLtEq,
      TokenType::kGt,     TokenType::kGtEq,    TokenType::kPlus,
      TokenType::kMinus,  TokenType::kStar,    TokenType::kSlash,
      TokenType::kPercent, TokenType::kLParen, TokenType::kRParen,
      TokenType::kComma,  TokenType::kDot,     TokenType::kSemicolon,
      TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("SELECT -- this is a comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, UnknownCharacterIsError) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Lex("SELECT a");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, SkylineKeywords) {
  auto tokens = Lex("SKYLINE OF Pop MAX, Qual MIN GAMMA 0.6");
  EXPECT_EQ(tokens[0].text, "SKYLINE");
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[1].text, "OF");
  EXPECT_EQ(tokens[3].text, "MAX");
  EXPECT_EQ(tokens[6].text, "MIN");
  EXPECT_EQ(tokens[7].text, "GAMMA");
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace galaxy::sql
