#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "sql/catalog.h"

namespace galaxy::sql {
namespace {

Table OneCellTable(int64_t cell) {
  Schema schema({{"a", ValueType::kInt64}});
  return Table(schema, {{Value(cell)}});
}

TEST(CatalogVersionTest, RegisterReturnsMonotonicVersions) {
  Database db;
  uint64_t v1 = db.Register("t", OneCellTable(1));
  uint64_t v2 = db.Register("u", OneCellTable(2));
  uint64_t v3 = db.Register("t", OneCellTable(3));  // replace bumps
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  ASSERT_TRUE(db.TableVersion("t").ok());
  EXPECT_EQ(*db.TableVersion("t"), v3);
  EXPECT_EQ(*db.TableVersion("u"), v2);
  EXPECT_FALSE(db.TableVersion("missing").ok());
}

TEST(CatalogSnapshotTest, HeldSnapshotSurvivesReplacement) {
  Database db;
  db.Register("t", OneCellTable(1));
  auto snapshot = db.GetTable("t");
  ASSERT_TRUE(snapshot.ok());
  db.Register("t", OneCellTable(99));
  // The old snapshot still reads the old data; a fresh read sees the new.
  EXPECT_EQ((**snapshot).at(0, 0), Value(int64_t{1}));
  auto fresh = db.GetTable("t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((**fresh).at(0, 0), Value(int64_t{99}));
}

TEST(CatalogConcurrencyTest, ReadersNeverSeeTornState) {
  Database db;
  db.Register("t", OneCellTable(0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!stop.load()) {
        auto version = db.TableVersion("t");
        auto snapshot = db.GetTable("t");
        if (!version.ok() || !snapshot.ok()) {
          failed.store(true);
          return;
        }
        // Versions only move forward from any single reader's view.
        if (*version < last_version) {
          failed.store(true);
          return;
        }
        last_version = *version;
        // The snapshot is internally consistent: exactly one row whose
        // cell is a valid written value.
        const Table& t = **snapshot;
        if (t.num_rows() != 1 || t.at(0, 0).type() != ValueType::kInt64) {
          failed.store(true);
          return;
        }
        db.TableNames();
        reads.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    for (int64_t i = 1; i <= 200; ++i) {
      db.Register("t", OneCellTable(i));
      std::this_thread::yield();
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(reads.load(), 0u);
  ASSERT_TRUE(db.GetTable("t").ok());
  EXPECT_EQ((**db.GetTable("t")).at(0, 0), Value(int64_t{200}));
}

TEST(CatalogConcurrencyTest, ConcurrentWritersToDistinctTables) {
  Database db;
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&db, w] {
      for (int i = 0; i < 50; ++i) {
        db.Register("t" + std::to_string(w), OneCellTable(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(db.num_tables(), 4u);
  // 200 registrations happened; the final version reflects all of them.
  uint64_t max_version = 0;
  for (const std::string& name : db.TableNames()) {
    max_version = std::max(max_version, *db.TableVersion(name));
  }
  EXPECT_EQ(max_version, 200u);
}

TEST(CatalogMoveTest, MoveTransfersTablesAndVersions) {
  Database db;
  db.Register("t", OneCellTable(7));
  Database moved(std::move(db));
  ASSERT_TRUE(moved.GetTable("t").ok());
  EXPECT_EQ(*moved.TableVersion("t"), 1u);
  Database assigned;
  assigned = std::move(moved);
  EXPECT_EQ((**assigned.GetTable("t")).at(0, 0), Value(int64_t{7}));
}

}  // namespace
}  // namespace galaxy::sql
