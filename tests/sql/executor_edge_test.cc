// Edge-case and robustness tests for the SQL executor beyond the basics in
// executor_test.cc.

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/executor.h"

namespace galaxy::sql {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Register("Movie", datagen::MovieTable());
    TableBuilder empty{Schema({{"x", ValueType::kInt64}})};
    db_.Register("empty", empty.Build());
    TableBuilder nulls{Schema({{"id", ValueType::kInt64},
                               {"v", ValueType::kDouble}})};
    nulls.AddRow({1, Value::Null()}).AddRow({2, 5.0}).AddRow({3, Value::Null()});
    db_.Register("nulls", nulls.Build());
  }

  Table Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : Table();
  }

  Database db_;
};

TEST_F(ExecutorEdgeTest, EmptyTableScan) {
  EXPECT_EQ(Q("SELECT * FROM empty").num_rows(), 0u);
  EXPECT_EQ(Q("SELECT x + 1 FROM empty WHERE x > 0").num_rows(), 0u);
}

TEST_F(ExecutorEdgeTest, CrossJoinWithEmptyTableIsEmpty) {
  EXPECT_EQ(Q("SELECT * FROM Movie, empty").num_rows(), 0u);
  EXPECT_EQ(Q("SELECT * FROM empty, Movie").num_rows(), 0u);
}

TEST_F(ExecutorEdgeTest, GroupByOnEmptyInputYieldsNoGroups) {
  EXPECT_EQ(Q("SELECT x, count(*) FROM empty GROUP BY x").num_rows(), 0u);
}

TEST_F(ExecutorEdgeTest, GlobalAggregateOnEmptyTableYieldsOneRow) {
  Table t = Q("SELECT count(*), min(x) FROM empty");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value(0));
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST_F(ExecutorEdgeTest, LimitZeroAndLimitBeyondSize) {
  EXPECT_EQ(Q("SELECT * FROM Movie LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(Q("SELECT * FROM Movie LIMIT 9999").num_rows(), 10u);
}

TEST_F(ExecutorEdgeTest, WhereOnNullsFiltersThemOut) {
  // NULL comparisons are UNKNOWN, so rows with NULL v never pass.
  EXPECT_EQ(Q("SELECT id FROM nulls WHERE v > 0").num_rows(), 1u);
  EXPECT_EQ(Q("SELECT id FROM nulls WHERE NOT (v > 0)").num_rows(), 0u);
}

TEST_F(ExecutorEdgeTest, DivisionByZeroIsRuntimeError) {
  EXPECT_FALSE(db_.Query("SELECT Pop / 0 FROM Movie").ok());
  EXPECT_FALSE(db_.Query("SELECT Pop / (Pop - Pop) FROM Movie").ok());
}

TEST_F(ExecutorEdgeTest, MultiKeyOrderByMixedDirections) {
  Table t = Q("SELECT Director, Year FROM Movie "
              "ORDER BY Director ASC, Year DESC");
  ASSERT_EQ(t.num_rows(), 10u);
  // Cameron appears twice: 2009 before 1991.
  EXPECT_EQ(t.at(0, 0), Value("Cameron"));
  EXPECT_EQ(t.at(0, 1), Value(2009));
  EXPECT_EQ(t.at(1, 0), Value("Cameron"));
  EXPECT_EQ(t.at(1, 1), Value(1991));
}

TEST_F(ExecutorEdgeTest, OrderByExpressionNotInSelect) {
  Table t = Q("SELECT Title FROM Movie ORDER BY Pop * Qual DESC LIMIT 1");
  EXPECT_EQ(t.at(0, 0), Value("Pulp Fiction"));
}

TEST_F(ExecutorEdgeTest, DistinctOnExpressions) {
  Table t = Q("SELECT DISTINCT Year / 10 FROM Movie");
  // Decades: 197, 198, 199, 200 — integer division.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorEdgeTest, DistinctWithOrderByKeepsSortKeys) {
  Table t = Q("SELECT DISTINCT Director FROM Movie ORDER BY Director DESC");
  ASSERT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.at(0, 0), Value("Wiseau"));
  EXPECT_EQ(t.at(6, 0), Value("Cameron"));
}

TEST_F(ExecutorEdgeTest, GroupByExpressionKey) {
  Table t = Q("SELECT Year / 10, count(*) AS c FROM Movie "
              "GROUP BY Year / 10 ORDER BY c DESC");
  ASSERT_EQ(t.num_rows(), 4u);
  // The 2000s hold 5 movies.
  EXPECT_EQ(t.at(0, 1), Value(5));
}

TEST_F(ExecutorEdgeTest, AggregateOfExpression) {
  Table t = Q("SELECT max(Pop * Qual) FROM Movie");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.at(0, 0).ToDouble().value(), 557 * 9.0);
}

TEST_F(ExecutorEdgeTest, ExpressionOverAggregates) {
  Table t = Q("SELECT max(Pop) - min(Pop), count(*) + 1 FROM Movie");
  EXPECT_EQ(t.at(0, 0), Value(547));
  EXPECT_EQ(t.at(0, 1), Value(11));
}

TEST_F(ExecutorEdgeTest, NestedSubqueries) {
  Table t = Q(
      "SELECT Title FROM Movie WHERE Director IN ("
      "  SELECT Director FROM Movie WHERE Pop IN ("
      "    SELECT Pop FROM Movie WHERE Qual >= 9.0))");
  // Innermost: Pops of Qual>=9 movies (557, 531) -> directors Tarantino,
  // Coppola -> their 4 movies.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorEdgeTest, SubqueryAgainstEmptyTable) {
  EXPECT_EQ(Q("SELECT * FROM Movie WHERE Pop IN (SELECT x FROM empty)")
                .num_rows(),
            0u);
  EXPECT_EQ(Q("SELECT * FROM Movie WHERE Pop NOT IN (SELECT x FROM empty)")
                .num_rows(),
            10u);
}

TEST_F(ExecutorEdgeTest, NotInWithNullInSubqueryExcludesEverything) {
  // SQL 3VL: x NOT IN (set containing NULL) is never TRUE.
  EXPECT_EQ(Q("SELECT id FROM nulls WHERE id NOT IN (SELECT v FROM nulls)")
                .num_rows(),
            0u);
}

TEST_F(ExecutorEdgeTest, InWithNullStillFindsMatches) {
  // 5.0 IS in the set {NULL, 5.0}; NULL in the set does not block a match.
  TableBuilder probe{Schema({{"p", ValueType::kDouble}})};
  probe.AddRow({5.0}).AddRow({6.0});
  db_.Register("probe", probe.Build());
  Table t = Q("SELECT p FROM probe WHERE p IN (SELECT v FROM nulls)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value(5.0));
}

TEST_F(ExecutorEdgeTest, ThreeWayJoin) {
  TableBuilder small{Schema({{"k", ValueType::kInt64}})};
  small.AddRow({1}).AddRow({2});
  db_.Register("small", small.Build());
  Table t = Q("SELECT A.k, B.k, C.k FROM small A, small B, small C");
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.num_columns(), 3u);
}

TEST_F(ExecutorEdgeTest, StarExpansionQualifiesAcrossJoins) {
  Table t = Q("SELECT * FROM Movie A, Movie B LIMIT 1");
  EXPECT_EQ(t.num_columns(), 10u);
  EXPECT_EQ(t.schema().column(0).name, "A.Title");
  EXPECT_EQ(t.schema().column(5).name, "B.Title");
}

TEST_F(ExecutorEdgeTest, BetweenPredicate) {
  Table t = Q("SELECT Title FROM Movie WHERE Year BETWEEN 1990 AND 1999");
  EXPECT_EQ(t.num_rows(), 3u);  // Pulp Fiction, Terminator II, Dracula
}

TEST_F(ExecutorEdgeTest, HavingReferencingGroupKey) {
  Table t = Q("SELECT Director FROM Movie GROUP BY Director "
              "HAVING Director != 'Wiseau' ORDER BY Director");
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST_F(ExecutorEdgeTest, CaseInsensitiveKeywordsAndIdentifiers) {
  Table t = Q("select TITLE from MOVIE where pop > 500 order by title");
  EXPECT_EQ(t.num_rows(), 3u);
}

}  // namespace
}  // namespace galaxy::sql
