#include "sql/executor.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sql/catalog.h"

namespace galaxy::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Register("Movie", datagen::MovieTable());
    TableBuilder nums{Schema({{"x", ValueType::kInt64},
                              {"y", ValueType::kDouble},
                              {"tag", ValueType::kString}})};
    nums.AddRow({1, 10.0, "a"})
        .AddRow({2, 20.0, "b"})
        .AddRow({3, 30.0, "a"})
        .AddRow({4, Value::Null(), "b"});
    db_.Register("nums", nums.Build());
  }

  Table Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : Table();
  }

  Database db_;
};

TEST_F(ExecutorTest, SelectStar) {
  Table t = Q("SELECT * FROM Movie");
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.schema().column(0).name, "Title");
}

TEST_F(ExecutorTest, Projection) {
  Table t = Q("SELECT Title, Pop FROM Movie WHERE Pop > 500");
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 3u);  // Pulp Fiction, The Godfather, LOTR
}

TEST_F(ExecutorTest, WhereWithLogic) {
  Table t = Q("SELECT Title FROM Movie WHERE Pop > 300 AND Qual >= 8.6");
  // Pulp Fiction (557,9.0), SW V (362,8.8), Terminator II (326,8.6),
  // The Godfather (531,9.2), LOTR (518,8.7).
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(ExecutorTest, ComputedColumnsAndAliases) {
  Table t = Q("SELECT x * 2 AS twice, y / 2 FROM nums WHERE x <= 2");
  EXPECT_EQ(t.schema().column(0).name, "twice");
  EXPECT_EQ(t.at(0, 0), Value(2));
  EXPECT_EQ(t.at(1, 0), Value(4));
  EXPECT_EQ(t.at(0, 1), Value(5.0));
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  Table t = Q("SELECT Title, Pop FROM Movie ORDER BY Pop DESC LIMIT 3");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.at(0, 0), Value("Pulp Fiction"));
  EXPECT_EQ(t.at(1, 0), Value("The Godfather"));
  EXPECT_EQ(t.at(2, 0), Value("The Lord of the Rings"));
}

TEST_F(ExecutorTest, OrderByAlias) {
  Table t = Q("SELECT Title, Pop * 2 AS p2 FROM Movie ORDER BY p2 LIMIT 1");
  EXPECT_EQ(t.at(0, 0), Value("The Room"));
}

TEST_F(ExecutorTest, Distinct) {
  Table t = Q("SELECT DISTINCT Director FROM Movie");
  EXPECT_EQ(t.num_rows(), 7u);
  Table t2 = Q("SELECT DISTINCT tag FROM nums");
  EXPECT_EQ(t2.num_rows(), 2u);
}

TEST_F(ExecutorTest, GlobalAggregatesIgnoreNulls) {
  Table t = Q("SELECT count(*), count(y), sum(x), avg(y), min(y), max(y) "
              "FROM nums");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value(4));
  EXPECT_EQ(t.at(0, 1), Value(3));
  EXPECT_EQ(t.at(0, 2), Value(10));
  EXPECT_EQ(t.at(0, 3), Value(20.0));
  EXPECT_EQ(t.at(0, 4), Value(10.0));
  EXPECT_EQ(t.at(0, 5), Value(30.0));
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  Table t = Q("SELECT count(*), sum(x) FROM nums WHERE x > 100");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value(0));
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  Table t = Q("SELECT tag, count(*) AS c, sum(x) FROM nums GROUP BY tag "
              "HAVING count(*) >= 2 ORDER BY tag");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), Value("a"));
  EXPECT_EQ(t.at(0, 1), Value(2));
  EXPECT_EQ(t.at(0, 2), Value(4));
  EXPECT_EQ(t.at(1, 0), Value("b"));
  EXPECT_EQ(t.at(1, 2), Value(6));
}

TEST_F(ExecutorTest, BareColumnInHavingUsesGroupRepresentative) {
  // sqlite-style: non-aggregated columns in HAVING read from some row of
  // the group (our engine: the first).
  Table t = Q("SELECT tag FROM nums GROUP BY tag HAVING x < 2");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value("a"));
}

TEST_F(ExecutorTest, CrossJoinWithAliases) {
  Table t = Q("SELECT A.x, B.x FROM nums A, nums B WHERE A.x < B.x");
  EXPECT_EQ(t.num_rows(), 6u);  // C(4,2)
}

TEST_F(ExecutorTest, JoinOnSyntax) {
  Table t = Q("SELECT A.x FROM nums A JOIN nums B ON A.x = B.x");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, InList) {
  Table t = Q("SELECT Title FROM Movie WHERE Director IN "
              "('Tarantino', 'Coppola')");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, NotInSubquery) {
  Table t = Q("SELECT DISTINCT Director FROM Movie WHERE Director NOT IN "
              "(SELECT Director FROM Movie WHERE Pop > 400)");
  // Directors with no movie over 400k votes: Nolan, Kershner, Wiseau.
  // (Tarantino, Coppola, Jackson, Cameron all have a >400 movie.)
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, InSubquery) {
  Table t = Q("SELECT Title FROM Movie WHERE Director IN "
              "(SELECT Director FROM Movie WHERE Qual >= 9.0)");
  // Tarantino (2 movies) + Coppola (2 movies).
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, ScalarFunctions) {
  Table t = Q("SELECT abs(-3), abs(2.5), round(2.4) FROM nums LIMIT 1");
  EXPECT_EQ(t.at(0, 0), Value(3));
  EXPECT_EQ(t.at(0, 1), Value(2.5));
  EXPECT_EQ(t.at(0, 2), Value(2.0));
}

TEST_F(ExecutorTest, IsNullPredicates) {
  EXPECT_EQ(Q("SELECT x FROM nums WHERE y IS NULL").num_rows(), 1u);
  EXPECT_EQ(Q("SELECT x FROM nums WHERE y IS NOT NULL").num_rows(), 3u);
}

TEST_F(ExecutorTest, ColumnNamesAreCaseInsensitive) {
  Table t = Q("SELECT title FROM movie WHERE POP > 500");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, Errors) {
  EXPECT_FALSE(db_.Query("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(db_.Query("SELECT bogus FROM Movie").ok());
  EXPECT_FALSE(db_.Query("SELECT M.bogus FROM Movie M").ok());
  EXPECT_FALSE(db_.Query("SELECT count(*) FROM Movie WHERE count(*) > 1").ok());
  EXPECT_FALSE(db_.Query("SELECT nosuchfn(Pop) FROM Movie").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM Movie GROUP BY Director").ok());
  // Ambiguous unqualified column across a self join.
  EXPECT_FALSE(db_.Query("SELECT x FROM nums A, nums B").ok());
  // Multi-column IN subquery.
  EXPECT_FALSE(
      db_.Query("SELECT * FROM nums WHERE x IN (SELECT x, y FROM nums)").ok());
}

TEST_F(ExecutorTest, StatementReuseIsRejectedByDesign) {
  // Database::Query parses fresh each time, so repeated Query calls work.
  EXPECT_EQ(Q("SELECT count(*) FROM nums").at(0, 0), Value(4));
  EXPECT_EQ(Q("SELECT count(*) FROM nums").at(0, 0), Value(4));
}

TEST_F(ExecutorTest, RegisterAndUnregister) {
  Database db;
  TableBuilder b{Schema({{"v", ValueType::kInt64}})};
  b.AddRow({1});
  db.Register("t", b.Build());
  EXPECT_EQ(db.num_tables(), 1u);
  EXPECT_TRUE(db.Query("SELECT * FROM t").ok());
  db.Unregister("t");
  EXPECT_FALSE(db.Query("SELECT * FROM t").ok());
}

}  // namespace
}  // namespace galaxy::sql
