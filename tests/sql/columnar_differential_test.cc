// Batch-vs-tuple differential: every query in the corpus runs twice —
// through the vectorized single-table pipeline (default) and through the
// scalar tuple-at-a-time reference (ExecOptions::force_scalar) — and the
// results must be indistinguishable: equal tables cell-for-cell with type
// identity, or both errors. The scalar pipeline is the behavioral oracle
// the columnar engine is validated against.

#include <gtest/gtest.h>

#include "datagen/groups.h"
#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/executor.h"

namespace galaxy::sql {
namespace {

class ColumnarDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Register("Movie", datagen::MovieTable());

    // Mixed types, NULLs in every column, duplicate group keys, a
    // NULL-keyed group, and an all-null column.
    TableBuilder nums{Schema({{"x", ValueType::kInt64},
                              {"y", ValueType::kDouble},
                              {"tag", ValueType::kString},
                              {"dead", ValueType::kInt64}})};
    nums.AddRow({1, 10.0, "a", Value::Null()})
        .AddRow({2, 20.5, "b", Value::Null()})
        .AddRow({3, Value::Null(), "a", Value::Null()})
        .AddRow({Value::Null(), 40.0, Value::Null(), Value::Null()})
        .AddRow({5, 50.0, "b", Value::Null()})
        .AddRow({5, 15.0, "c", Value::Null()});
    db_.Register("nums", nums.Build());

    // A generated grouped workload so the skyline paths see realistic
    // group counts, not just toy fixtures.
    datagen::GroupedWorkloadConfig config;
    config.num_records = 600;
    config.avg_records_per_group = 20;
    config.dims = 3;
    config.distribution = datagen::Distribution::kIndependent;
    config.seed = 17;
    db_.Register("data", datagen::GroupedDatasetToTable(
                             datagen::GenerateGrouped(config)));

    Table empty{Schema({{"a", ValueType::kDouble}, {"b", ValueType::kInt64}}),
                std::vector<Row>{}};
    db_.Register("empty", empty);
  }

  // Equality with type identity: Value::operator== calls int 3 == double
  // 3.0, which would hide widening discrepancies between the pipelines.
  void ExpectIdentical(const Table& a, const Table& b,
                       const std::string& sql) {
    ASSERT_EQ(a.num_columns(), b.num_columns()) << sql;
    ASSERT_EQ(a.num_rows(), b.num_rows()) << sql;
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name) << sql;
      EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type)
          << sql << " column " << a.schema().column(c).name;
      for (size_t r = 0; r < a.num_rows(); ++r) {
        Value va = a.at(r, c);
        Value vb = b.at(r, c);
        ASSERT_EQ(va.type(), vb.type())
            << sql << " cell " << r << "," << c;
        ASSERT_EQ(va, vb) << sql << " cell " << r << "," << c;
      }
    }
  }

  void RunDifferential(const std::string& sql) {
    ExecOptions scalar;
    scalar.force_scalar = true;
    auto vec = db_.Query(sql);
    auto ref = db_.Query(sql, scalar);
    ASSERT_EQ(vec.ok(), ref.ok())
        << sql << "\n  vectorized: " << vec.status()
        << "\n  scalar:     " << ref.status();
    if (vec.ok()) ExpectIdentical(*vec, *ref, sql);
  }

  Database db_;
};

TEST_F(ColumnarDifferentialTest, Corpus) {
  const char* corpus[] = {
      // Scans and projections.
      "SELECT * FROM Movie",
      "SELECT Title, Pop FROM Movie",
      "SELECT * FROM nums",
      "SELECT x, y, tag, dead FROM nums",
      "SELECT * FROM empty",
      "SELECT a FROM empty WHERE b > 0",
      // Compiled predicates: every comparison op, int/double/string
      // columns, literal on either side, NULL cells in the column.
      "SELECT x FROM nums WHERE x = 5",
      "SELECT x FROM nums WHERE x != 2",
      "SELECT x FROM nums WHERE x < 3",
      "SELECT x FROM nums WHERE x <= 3",
      "SELECT x FROM nums WHERE x > 2",
      "SELECT x FROM nums WHERE x >= 2",
      "SELECT x FROM nums WHERE 3 < x",
      "SELECT y FROM nums WHERE y > 15.0",
      "SELECT tag FROM nums WHERE tag = 'a'",
      "SELECT tag FROM nums WHERE tag < 'c'",
      "SELECT x FROM nums WHERE x > 1.5",
      "SELECT x FROM nums WHERE y IS NULL",
      "SELECT x FROM nums WHERE y IS NOT NULL",
      "SELECT x FROM nums WHERE dead IS NULL",
      // Column-vs-column comparisons and conjunct mixes.
      "SELECT x FROM nums WHERE x < y",
      "SELECT x FROM nums WHERE x > 1 AND y > 12 AND tag != 'c'",
      "SELECT x FROM nums WHERE x > 1 OR y > 45",
      // Per-row fallback predicates (arithmetic, LIKE, CASE, EXISTS).
      "SELECT x FROM nums WHERE x + 1 > 3",
      "SELECT x FROM nums WHERE x % 2 = 1",
      "SELECT Title FROM Movie WHERE Title LIKE 'The%'",
      "SELECT Title FROM Movie WHERE Title NOT LIKE '%a%'",
      "SELECT Title FROM Movie WHERE CASE WHEN Pop > 400 THEN 1 ELSE 0 END "
      "= 1",
      "SELECT Title FROM Movie WHERE EXISTS "
      "(SELECT 1 FROM nums WHERE x > 4)",
      // Expression projections (no gather fast path).
      "SELECT x + 1, y * 2 FROM nums",
      "SELECT x, x / 2.0 FROM nums",
      "SELECT dead FROM nums",
      "SELECT dead + 1 FROM nums",
      // DISTINCT / ORDER BY / LIMIT tails.
      "SELECT DISTINCT tag FROM nums",
      "SELECT DISTINCT x FROM nums WHERE x >= 1",
      "SELECT x, y FROM nums ORDER BY y DESC",
      "SELECT x FROM nums ORDER BY x LIMIT 3",
      "SELECT * FROM Movie ORDER BY Pop DESC LIMIT 4",
      "SELECT x FROM nums LIMIT 0",
      "SELECT x FROM nums LIMIT 2",
      // Aggregates: star, typed folds over int/double/string, NULL args,
      // empty input, expression args.
      "SELECT COUNT(*) FROM nums",
      "SELECT COUNT(y) FROM nums",
      "SELECT COUNT(*) FROM empty",
      "SELECT SUM(x), SUM(y) FROM nums",
      "SELECT MIN(x), MAX(x), MIN(y), MAX(y) FROM nums",
      "SELECT MIN(tag), MAX(tag) FROM nums",
      "SELECT AVG(x), AVG(y) FROM nums",
      "SELECT SUM(dead) FROM nums",
      "SELECT AVG(dead) FROM nums",
      "SELECT SUM(x + 1) FROM nums",
      "SELECT SUM(x) FROM empty",
      // GROUP BY: string/int/double keys, NULL keys, multi-key, expr key.
      "SELECT tag, COUNT(*) FROM nums GROUP BY tag ORDER BY tag",
      "SELECT x, COUNT(*) FROM nums GROUP BY x ORDER BY x",
      "SELECT y, COUNT(*) FROM nums GROUP BY y ORDER BY y",
      "SELECT tag, x, SUM(y) FROM nums GROUP BY tag, x ORDER BY tag, x",
      "SELECT x % 2, COUNT(*) FROM nums GROUP BY x % 2 ORDER BY 1",
      "SELECT tag, MIN(y), MAX(y), AVG(x) FROM nums GROUP BY tag "
      "ORDER BY tag",
      "SELECT Director, COUNT(*) FROM Movie GROUP BY Director "
      "ORDER BY Director",
      // HAVING.
      "SELECT tag, COUNT(*) FROM nums GROUP BY tag HAVING COUNT(*) >= 2 "
      "ORDER BY tag",
      "SELECT Director, AVG(Qual) FROM Movie GROUP BY Director "
      "HAVING AVG(Qual) > 8 ORDER BY Director",
      // Record skylines.
      "SELECT * FROM Movie SKYLINE OF Pop MAX, Qual MAX",
      "SELECT Title FROM Movie SKYLINE OF Year MIN, Pop MAX",
      "SELECT Title FROM Movie WHERE Pop > 100 "
      "SKYLINE OF Pop MAX, Qual MAX ORDER BY Title",
      // Aggregate skylines (grouped), with gamma and RANK.
      "SELECT class FROM data GROUP BY class "
      "SKYLINE OF a0 MAX, a1 MAX GAMMA 0.5 ORDER BY class",
      "SELECT class, COUNT(*) FROM data GROUP BY class "
      "SKYLINE OF a0 MAX, a1 MIN, a2 MAX GAMMA 0.8 ORDER BY class",
      "SELECT class FROM data WHERE a0 > 0.1 GROUP BY class "
      "HAVING COUNT(*) >= 5 SKYLINE OF a0 MAX, a1 MAX GAMMA 0.5 "
      "ORDER BY class",
      "SELECT Director FROM Movie GROUP BY Director "
      "SKYLINE OF Pop MAX, Qual MAX GAMMA RANK",
      // UNION and UNION ALL.
      "SELECT x FROM nums UNION SELECT x FROM nums",
      "SELECT x FROM nums UNION ALL SELECT x + 10 FROM nums",
      "SELECT tag FROM nums UNION SELECT Title FROM Movie LIMIT 5",
      // Error cases: both pipelines must fail (status text may differ in
      // multi-error orderings, which is accepted).
      "SELECT zz FROM nums",
      "SELECT x FROM nums WHERE tag + 1 > 0",
      "SELECT SUM(x) FROM nums WHERE x",  // non-bool WHERE on int is ok —
                                          // truthiness; strings error below
      "SELECT x FROM nums WHERE tag",
      "SELECT class FROM data GROUP BY class SKYLINE OF a0 MAX GAMMA 1.5",
      "SELECT tag FROM nums SKYLINE OF tag MAX",
  };
  for (const char* sql : corpus) RunDifferential(sql);
}

TEST_F(ColumnarDifferentialTest, VectorizedCountersFire) {
  ExecOptions opts;
  ExecStats stats;
  auto r = db_.Query("SELECT x FROM nums WHERE x > 1 AND y > 12", opts,
                     &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(stats.vectorized_predicates, 2u);
  EXPECT_EQ(stats.columnar_projections, 1u);

  ExecStats agg_stats;
  ASSERT_TRUE(
      db_.Query("SELECT tag, SUM(y) FROM nums GROUP BY tag", opts, &agg_stats)
          .ok());
  EXPECT_GT(agg_stats.vectorized_folds, 0u);

  ExecStats sky_stats;
  ASSERT_TRUE(db_.Query("SELECT class FROM data GROUP BY class "
                        "SKYLINE OF a0 MAX, a1 MAX GAMMA 0.5",
                        opts, &sky_stats)
                  .ok());
  EXPECT_GT(sky_stats.group_gather_cells, 0u);
}

TEST_F(ColumnarDifferentialTest, ForceScalarDisablesBatchPaths) {
  ExecOptions scalar;
  scalar.force_scalar = true;
  ExecStats stats;
  auto r = db_.Query("SELECT x FROM nums WHERE x > 1", scalar, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(stats.vectorized_predicates, 0u);
  EXPECT_EQ(stats.vectorized_folds, 0u);
  EXPECT_EQ(stats.columnar_projections, 0u);
  EXPECT_EQ(stats.group_gather_cells, 0u);
}

}  // namespace
}  // namespace galaxy::sql
