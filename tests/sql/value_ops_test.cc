#include "sql/value_ops.h"

#include <gtest/gtest.h>

namespace galaxy::sql {
namespace {

Value B(BinaryOp op, const Value& l, const Value& r) {
  auto res = EvalBinary(op, l, r);
  EXPECT_TRUE(res.ok()) << res.status();
  return res.value_or(Value::Null());
}

TEST(ValueOpsTest, IntegerArithmetic) {
  EXPECT_EQ(B(BinaryOp::kAdd, 2, 3), Value(5));
  EXPECT_EQ(B(BinaryOp::kSub, 2, 3), Value(-1));
  EXPECT_EQ(B(BinaryOp::kMul, 4, 3), Value(12));
  // Integer division, sqlite-style.
  EXPECT_EQ(B(BinaryOp::kDiv, 7, 2), Value(3));
  EXPECT_EQ(B(BinaryOp::kMod, 7, 2), Value(1));
}

TEST(ValueOpsTest, MixedArithmeticPromotesToDouble) {
  EXPECT_EQ(B(BinaryOp::kAdd, 2, Value(0.5)), Value(2.5));
  EXPECT_EQ(B(BinaryOp::kDiv, Value(1.0), 2), Value(0.5));
  // The Algorithm 1 idiom: 1.0 * count / (n * m).
  Value scaled = B(BinaryOp::kMul, Value(1.0), Value(30));
  EXPECT_EQ(B(BinaryOp::kDiv, scaled, Value(32)), Value(0.9375));
}

TEST(ValueOpsTest, DivisionByZeroFails) {
  EXPECT_FALSE(EvalBinary(BinaryOp::kDiv, Value(1), Value(0)).ok());
  EXPECT_FALSE(EvalBinary(BinaryOp::kDiv, Value(1.0), Value(0.0)).ok());
  EXPECT_FALSE(EvalBinary(BinaryOp::kMod, Value(1), Value(0)).ok());
}

TEST(ValueOpsTest, ArithmeticRejectsStrings) {
  EXPECT_FALSE(EvalBinary(BinaryOp::kAdd, Value("a"), Value(1)).ok());
}

TEST(ValueOpsTest, Comparisons) {
  EXPECT_EQ(B(BinaryOp::kLt, 1, 2), Value(1));
  EXPECT_EQ(B(BinaryOp::kLtEq, 2, 2), Value(1));
  EXPECT_EQ(B(BinaryOp::kGt, 1, 2), Value(0));
  EXPECT_EQ(B(BinaryOp::kGtEq, 2, 2), Value(1));
  EXPECT_EQ(B(BinaryOp::kEq, 2, Value(2.0)), Value(1));
  EXPECT_EQ(B(BinaryOp::kNotEq, 2, 3), Value(1));
  EXPECT_EQ(B(BinaryOp::kLt, Value("abc"), Value("abd")), Value(1));
}

TEST(ValueOpsTest, ComparingNumberWithStringFails) {
  EXPECT_FALSE(EvalBinary(BinaryOp::kLt, Value(1), Value("a")).ok());
}

TEST(ValueOpsTest, NullPropagatesThroughArithmeticAndComparison) {
  EXPECT_TRUE(B(BinaryOp::kAdd, Value::Null(), 1).is_null());
  EXPECT_TRUE(B(BinaryOp::kLt, Value::Null(), 1).is_null());
}

TEST(ValueOpsTest, ThreeValuedAnd) {
  EXPECT_EQ(B(BinaryOp::kAnd, 1, 1), Value(1));
  EXPECT_EQ(B(BinaryOp::kAnd, 1, 0), Value(0));
  // FALSE AND NULL = FALSE.
  EXPECT_EQ(B(BinaryOp::kAnd, 0, Value::Null()), Value(0));
  // TRUE AND NULL = NULL.
  EXPECT_TRUE(B(BinaryOp::kAnd, 1, Value::Null()).is_null());
}

TEST(ValueOpsTest, ThreeValuedOr) {
  EXPECT_EQ(B(BinaryOp::kOr, 0, 1), Value(1));
  // TRUE OR NULL = TRUE.
  EXPECT_EQ(B(BinaryOp::kOr, 1, Value::Null()), Value(1));
  // FALSE OR NULL = NULL.
  EXPECT_TRUE(B(BinaryOp::kOr, 0, Value::Null()).is_null());
}

TEST(ValueOpsTest, UnaryOps) {
  EXPECT_EQ(EvalUnary(UnaryOp::kNot, Value(1)).value(), Value(0));
  EXPECT_EQ(EvalUnary(UnaryOp::kNot, Value(0)).value(), Value(1));
  EXPECT_TRUE(EvalUnary(UnaryOp::kNot, Value::Null()).value().is_null());
  EXPECT_EQ(EvalUnary(UnaryOp::kNegate, Value(3)).value(), Value(-3));
  EXPECT_EQ(EvalUnary(UnaryOp::kNegate, Value(2.5)).value(), Value(-2.5));
  EXPECT_FALSE(EvalUnary(UnaryOp::kNegate, Value("x")).ok());
}

TEST(ValueOpsTest, Truthiness) {
  EXPECT_TRUE(ValueIsTrue(Value(1)).value());
  EXPECT_TRUE(ValueIsTrue(Value(0.1)).value());
  EXPECT_FALSE(ValueIsTrue(Value(0)).value());
  EXPECT_FALSE(ValueIsTrue(Value(0.0)).value());
  EXPECT_FALSE(ValueIsTrue(Value::Null()).value());
  EXPECT_FALSE(ValueIsTrue(Value("str")).ok());
}

}  // namespace
}  // namespace galaxy::sql
