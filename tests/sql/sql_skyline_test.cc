// Tests for the SKYLINE OF SQL extension (record skylines and aggregate
// skylines through the SQL front end).

#include <gtest/gtest.h>

#include "datagen/movies.h"
#include "sql/catalog.h"

namespace galaxy::sql {
namespace {

class SqlSkylineTest : public ::testing::Test {
 protected:
  void SetUp() override { db_.Register("Movie", datagen::MovieTable()); }

  Table Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : Table();
  }

  Database db_;
};

TEST_F(SqlSkylineTest, Example1RecordSkyline) {
  Table t = Q("SELECT * FROM Movie SKYLINE OF Pop MAX, Qual MAX");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, "Title").value(), Value("Pulp Fiction"));
  EXPECT_EQ(t.at(1, "Title").value(), Value("The Godfather"));
}

TEST_F(SqlSkylineTest, RecordSkylineWithMin) {
  // Prefer old, popular movies.
  Table t = Q("SELECT Title FROM Movie SKYLINE OF Year MIN, Pop MAX");
  // The Godfather (1972, 531) dominates everything older-and-less-popular;
  // Pulp Fiction (1994, 557) survives on popularity.
  std::set<std::string> titles;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    titles.insert(t.at(r, 0).AsString());
  }
  EXPECT_TRUE(titles.count("The Godfather") > 0);
  EXPECT_TRUE(titles.count("Pulp Fiction") > 0);
  EXPECT_EQ(titles.count("The Room"), 0u);
}

TEST_F(SqlSkylineTest, RecordSkylineComposesWithWhere) {
  // Restrict to the 2000s first: skyline of {Avatar, Batman Begins, Kill
  // Bill, LOTR, The Room}.
  Table t = Q("SELECT Title FROM Movie WHERE Year >= 2000 "
              "SKYLINE OF Pop MAX, Qual MAX ORDER BY Title");
  std::vector<std::string> titles;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    titles.push_back(t.at(r, 0).AsString());
  }
  // LOTR (518, 8.7) dominates the other 2000s movies except... Avatar
  // (404, 8.0) dominated, Batman Begins (371, 8.3) dominated, Kill Bill
  // (313, 8.2) dominated, The Room dominated.
  EXPECT_EQ(titles, (std::vector<std::string>{"The Lord of the Rings"}));
}

TEST_F(SqlSkylineTest, Example3AggregateSkyline) {
  Table t = Q("SELECT Director FROM Movie GROUP BY Director "
              "SKYLINE OF Pop MAX, Qual MAX ORDER BY Director");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.at(0, 0), Value("Coppola"));
  EXPECT_EQ(t.at(1, 0), Value("Jackson"));
  EXPECT_EQ(t.at(2, 0), Value("Kershner"));
  EXPECT_EQ(t.at(3, 0), Value("Tarantino"));
}

TEST_F(SqlSkylineTest, AggregateSkylineWithAggregateOutputs) {
  Table t = Q("SELECT Director, count(*) AS movies, max(Qual) FROM Movie "
              "GROUP BY Director SKYLINE OF Pop MAX, Qual MAX "
              "ORDER BY Director");
  ASSERT_EQ(t.num_rows(), 4u);
  // Tarantino has two movies.
  EXPECT_EQ(t.at(3, 0), Value("Tarantino"));
  EXPECT_EQ(t.at(3, 1), Value(2));
  EXPECT_EQ(t.at(3, 2), Value(9.0));
}

TEST_F(SqlSkylineTest, GammaParameterWidensResult) {
  Table at_half = Q("SELECT Director FROM Movie GROUP BY Director "
                    "SKYLINE OF Pop MAX, Qual MAX GAMMA 0.5");
  Table at_one = Q("SELECT Director FROM Movie GROUP BY Director "
                   "SKYLINE OF Pop MAX, Qual MAX GAMMA 1.0");
  EXPECT_GE(at_one.num_rows(), at_half.num_rows());
  // At gamma = 1 only strictly dominated groups drop out: Wiseau (beaten by
  // everyone), and Cameron + Nolan (each strictly dominated by Jackson's
  // single movie).
  EXPECT_EQ(at_one.num_rows(), 4u);
}

TEST_F(SqlSkylineTest, AggregateSkylineComposesWithHaving) {
  // HAVING filters groups before the skyline: dropping Coppola's
  // prerequisite (both movies) changes nothing for the others here, but
  // requiring count(*) >= 2 leaves only Cameron/Tarantino/Coppola, whose
  // aggregate skyline is Tarantino + Coppola (Cameron is not dominated by
  // either... verify against the native reference below).
  Table t = Q("SELECT Director FROM Movie GROUP BY Director "
              "HAVING count(*) >= 2 SKYLINE OF Pop MAX, Qual MAX "
              "ORDER BY Director");
  std::vector<std::string> directors;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    directors.push_back(t.at(r, 0).AsString());
  }
  // Among {Cameron, Tarantino, Coppola}: p(T ≻ Cameron) = 2/4 = .5 (not
  // dominated), p(C ≻ Cameron) = 2/4 = .5: all three survive.
  EXPECT_EQ(directors, (std::vector<std::string>{"Cameron", "Coppola",
                                                 "Tarantino"}));
}

TEST_F(SqlSkylineTest, GammaRankOrdersByMinimalGamma) {
  // Section 2.2's parameter-free mode: all gamma-admissible directors,
  // best (lowest minimal gamma) first; strictly dominated directors
  // (Cameron, Nolan, Wiseau — each strictly beaten) never appear.
  Table t = Q("SELECT Director FROM Movie GROUP BY Director "
              "SKYLINE OF Pop MAX, Qual MAX GAMMA RANK");
  ASSERT_EQ(t.num_rows(), 4u);
  std::set<std::string> names;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    names.insert(t.at(r, 0).AsString());
  }
  EXPECT_EQ(names, (std::set<std::string>{"Coppola", "Jackson", "Kershner",
                                          "Tarantino"}));
}

TEST_F(SqlSkylineTest, GammaRankParsesAndRoundTrips) {
  EXPECT_FALSE(db_.Query("SELECT Director FROM Movie GROUP BY Director "
                         "SKYLINE OF Pop MAX GAMMA nonsense")
                   .ok());
  // RANK without GROUP BY is meaningless.
  EXPECT_FALSE(
      db_.Query("SELECT * FROM Movie SKYLINE OF Pop MAX GAMMA RANK").ok());
}

TEST_F(SqlSkylineTest, SkylineOverEmptyInput) {
  Table t = Q("SELECT Title FROM Movie WHERE Pop > 10000 "
              "SKYLINE OF Pop MAX, Qual MAX");
  EXPECT_EQ(t.num_rows(), 0u);
  Table g = Q("SELECT Director FROM Movie WHERE Pop > 10000 "
              "GROUP BY Director SKYLINE OF Pop MAX, Qual MAX");
  EXPECT_EQ(g.num_rows(), 0u);
}

TEST_F(SqlSkylineTest, SkylineAttributeMustBeNumeric) {
  EXPECT_FALSE(
      db_.Query("SELECT * FROM Movie SKYLINE OF Title MAX").ok());
}

}  // namespace
}  // namespace galaxy::sql
