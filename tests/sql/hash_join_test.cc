// Tests for the two-table hash equi-join path of the executor.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/movies.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace galaxy::sql {
namespace {

class HashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Register("Movie", datagen::MovieTable());
    TableBuilder awards{Schema({{"who", ValueType::kString},
                                {"prize", ValueType::kString}})};
    awards.AddRow({"Coppola", "Palme d'Or"})
        .AddRow({"Coppola", "Oscar"})
        .AddRow({"Tarantino", "Palme d'Or"})
        .AddRow({"Nobody", "Razzie"})
        .AddRow({Value::Null(), "Lost"});
    db_.Register("awards", awards.Build());
  }

  Result<Table> Run(const std::string& sql, ExecStats* stats = nullptr) {
    auto stmt = Parse(sql);
    if (!stmt.ok()) return stmt.status();
    return ExecuteSelect(db_, **stmt, stats);
  }

  Table Q(const std::string& sql, ExecStats* stats = nullptr) {
    auto r = Run(sql, stats);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : Table();
  }

  Database db_;
};

TEST_F(HashJoinTest, EquiJoinUsesHashPath) {
  ExecStats stats;
  Table t = Q("SELECT Title, prize FROM Movie, awards "
              "WHERE Director = who ORDER BY Title, prize",
              &stats);
  EXPECT_EQ(stats.hash_joins, 1u);
  // Coppola: 2 movies x 2 awards = 4; Tarantino: 2 movies x 1 award = 2.
  EXPECT_EQ(t.num_rows(), 6u);
  // Only matching combinations were enumerated.
  EXPECT_EQ(stats.cross_product_rows, 6u);
}

TEST_F(HashJoinTest, MatchesCrossProductSemantics) {
  // Same query forced through the nested-loop path by hiding the equality
  // inside an OR (not splittable).
  ExecStats hash_stats, loop_stats;
  Table hash = Q("SELECT Title, prize FROM Movie, awards "
                 "WHERE Director = who ORDER BY Title, prize",
                 &hash_stats);
  // "OR Pop < 0" is never true (Pop >= 10 in the movie table) but blocks
  // both constant folding and the equi-join extraction.
  Table loop = Q("SELECT Title, prize FROM Movie, awards "
                 "WHERE (Director = who OR Pop < 0) "
                 "ORDER BY Title, prize",
                 &loop_stats);
  EXPECT_EQ(hash_stats.hash_joins, 1u);
  EXPECT_EQ(loop_stats.hash_joins, 0u);
  ASSERT_EQ(hash.num_rows(), loop.num_rows());
  for (size_t r = 0; r < hash.num_rows(); ++r) {
    EXPECT_EQ(hash.at(r, 0), loop.at(r, 0));
    EXPECT_EQ(hash.at(r, 1), loop.at(r, 1));
  }
}

TEST_F(HashJoinTest, NullKeysNeverMatch) {
  ExecStats stats;
  Table t = Q("SELECT A.prize FROM awards A, awards B WHERE A.who = B.who",
              &stats);
  EXPECT_EQ(stats.hash_joins, 1u);
  // Coppola 2x2 + Tarantino 1 + Nobody 1 = 6; the NULL row matches nothing.
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST_F(HashJoinTest, ResidualPredicatesStillApply) {
  ExecStats stats;
  Table t = Q("SELECT Title, prize FROM Movie, awards "
              "WHERE Director = who AND Pop > 500 AND prize = 'Palme d''Or' "
              "ORDER BY Title",
              &stats);
  EXPECT_EQ(stats.hash_joins, 1u);
  EXPECT_EQ(stats.pushed_filters, 2u);
  // Pop > 500 keeps Pulp Fiction / Godfather / LOTR; award filter keeps the
  // Palme d'Or rows; join leaves Pulp Fiction + The Godfather.
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), Value("Pulp Fiction"));
  EXPECT_EQ(t.at(1, 0), Value("The Godfather"));
}

TEST_F(HashJoinTest, JoinOnSyntaxAlsoUsesHashPath) {
  ExecStats stats;
  Table t = Q("SELECT Title FROM Movie JOIN awards ON Director = who",
              &stats);
  EXPECT_EQ(stats.hash_joins, 1u);
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST_F(HashJoinTest, MixedIntDoubleKeysPromote) {
  TableBuilder ints{Schema({{"k", ValueType::kInt64}})};
  ints.AddRow({1}).AddRow({2}).AddRow({3});
  TableBuilder doubles{Schema({{"d", ValueType::kDouble}})};
  doubles.AddRow({2.0}).AddRow({3.0}).AddRow({3.5});
  db_.Register("ints", ints.Build());
  db_.Register("doubles", doubles.Build());
  ExecStats stats;
  Table t = Q("SELECT k FROM ints, doubles WHERE k = d ORDER BY k", &stats);
  EXPECT_EQ(stats.hash_joins, 1u);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), Value(2));
  EXPECT_EQ(t.at(1, 0), Value(3));
}

TEST_F(HashJoinTest, StringVsNumberEqualityIsNotHashJoined) {
  // Incomparable column types must keep the runtime TypeError semantics.
  ExecStats stats;
  auto result =
      Run("SELECT Title FROM Movie, awards WHERE Pop = who", &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(stats.hash_joins, 0u);
}

TEST_F(HashJoinTest, ThreeTableJoinsFallBackToNestedLoop) {
  ExecStats stats;
  Table t = Q("SELECT count(*) FROM awards A, awards B, awards C "
              "WHERE A.who = B.who AND B.who = C.who",
              &stats);
  EXPECT_EQ(stats.hash_joins, 0u);
  // Coppola 2^3 + Tarantino + Nobody = 10.
  EXPECT_EQ(t.at(0, 0), Value(10));
}

TEST_F(HashJoinTest, GroupByOverHashJoin) {
  Table t = Q("SELECT who, count(*) AS movies FROM Movie, awards "
              "WHERE Director = who GROUP BY who ORDER BY who");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), Value("Coppola"));
  EXPECT_EQ(t.at(0, 1), Value(4));
  EXPECT_EQ(t.at(1, 1), Value(2));
}

}  // namespace
}  // namespace galaxy::sql
