#include "datagen/movies.h"

#include <gtest/gtest.h>

#include "core/gamma.h"

namespace galaxy::datagen {
namespace {

TEST(MoviesTest, Figure1TableVerbatim) {
  Table t = MovieTable();
  ASSERT_EQ(t.num_rows(), 10u);
  // Spot-check a few cells against Figure 1.
  EXPECT_EQ(t.at(0, "Title").value(), Value("Avatar"));
  EXPECT_EQ(t.at(0, "Year").value(), Value(2009));
  EXPECT_EQ(t.at(0, "Director").value(), Value("Cameron"));
  EXPECT_EQ(t.at(0, "Pop").value(), Value(404));
  EXPECT_EQ(t.at(0, "Qual").value(), Value(8.0));
  EXPECT_EQ(t.at(9, "Title").value(), Value("Dracula"));
  EXPECT_EQ(t.at(9, "Pop").value(), Value(76));
}

TEST(MoviesTest, FilmographyGroupShapes) {
  core::GroupedDataset ds = DirectorFilmographies();
  EXPECT_EQ(ds.num_groups(), 4u);
  EXPECT_EQ(ds.group(ds.FindByLabel(kTarantino).value()).size(), 8u);
  EXPECT_EQ(ds.group(ds.FindByLabel(kWiseau).value()).size(), 2u);
  EXPECT_EQ(ds.group(ds.FindByLabel(kFleischer).value()).size(), 4u);
  EXPECT_EQ(ds.group(ds.FindByLabel(kJackson).value()).size(), 6u);
}

TEST(MoviesTest, Table2ProbabilitiesWithinPaperTolerance) {
  core::GroupedDataset ds = DirectorFilmographies();
  auto p = [&](const char* s, const char* r) {
    return core::DominationProbability(
        ds.group(ds.FindByLabel(s).value()),
        ds.group(ds.FindByLabel(r).value()));
  };
  // Paper Table 2 values: 1.00, .94, .68, .00, .06, .26 (rounded).
  EXPECT_DOUBLE_EQ(p(kTarantino, kWiseau), 1.0);
  EXPECT_NEAR(p(kTarantino, kFleischer), 0.94, 0.01);
  EXPECT_NEAR(p(kTarantino, kJackson), 0.68, 0.015);
  EXPECT_DOUBLE_EQ(p(kWiseau, kTarantino), 0.0);
  EXPECT_NEAR(p(kFleischer, kTarantino), 0.06, 0.01);
  EXPECT_NEAR(p(kJackson, kTarantino), 0.26, 0.015);
}

TEST(MoviesTest, ProbabilitiesDoNotSumToOneForJackson) {
  // The paper notes p(T ≻ J) + p(J ≻ T) < 1: some movie pairs are
  // incomparable.
  core::GroupedDataset ds = DirectorFilmographies();
  const auto& t = ds.group(ds.FindByLabel(kTarantino).value());
  const auto& j = ds.group(ds.FindByLabel(kJackson).value());
  EXPECT_LT(core::DominationProbability(t, j) +
                core::DominationProbability(j, t),
            1.0);
}

}  // namespace
}  // namespace galaxy::datagen
