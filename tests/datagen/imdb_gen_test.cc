#include "datagen/imdb_gen.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/group.h"

namespace galaxy::datagen {
namespace {

TEST(ImdbGenTest, TargetSizeAndRanges) {
  ImdbConfig config;
  config.target_movies = 5000;
  auto movies = GenerateImdbCorpus(config);
  EXPECT_EQ(movies.size(), 5000u);
  for (const MovieRecord& m : movies) {
    EXPECT_GE(m.year, config.first_year);
    EXPECT_LE(m.year, config.last_year);
    EXPECT_GE(m.rating, 1.0);
    EXPECT_LE(m.rating, 10.0);
    EXPECT_GE(m.votes_thousands, 1);
    EXPECT_FALSE(m.title.empty());
    EXPECT_FALSE(m.director.empty());
    EXPECT_FALSE(m.genre.empty());
  }
}

TEST(ImdbGenTest, FilmographySizesAreHeavyTailed) {
  ImdbConfig config;
  config.target_movies = 20000;
  auto movies = GenerateImdbCorpus(config);
  std::map<std::string, int> filmography;
  for (const MovieRecord& m : movies) ++filmography[m.director];
  int max_size = 0;
  int singletons = 0;
  for (const auto& [name, n] : filmography) {
    max_size = std::max(max_size, n);
    if (n <= 2) ++singletons;
  }
  // The top director holds far more than the mean share, and a long tail
  // of near-singleton directors exists.
  EXPECT_GT(max_size, 100);
  EXPECT_GT(singletons, 100);
}

TEST(ImdbGenTest, VotesSpanOrdersOfMagnitude) {
  ImdbConfig config;
  config.target_movies = 10000;
  auto movies = GenerateImdbCorpus(config);
  int64_t min_votes = INT64_MAX, max_votes = 0;
  for (const MovieRecord& m : movies) {
    min_votes = std::min(min_votes, m.votes_thousands);
    max_votes = std::max(max_votes, m.votes_thousands);
  }
  EXPECT_GE(max_votes / std::max<int64_t>(1, min_votes), 1000);
}

TEST(ImdbGenTest, QualityClustersByDirector) {
  // Between-director rating variance should be a sizable share of total
  // variance (the auteur latent is visible through the noise).
  ImdbConfig config;
  config.target_movies = 15000;
  auto movies = GenerateImdbCorpus(config);
  std::map<std::string, std::pair<double, int>> by_director;
  double total_sum = 0;
  for (const MovieRecord& m : movies) {
    by_director[m.director].first += m.rating;
    by_director[m.director].second += 1;
    total_sum += m.rating;
  }
  double grand_mean = total_sum / movies.size();
  double between = 0, total_var = 0;
  for (const MovieRecord& m : movies) {
    total_var += (m.rating - grand_mean) * (m.rating - grand_mean);
  }
  for (const auto& [name, acc] : by_director) {
    double mean = acc.first / acc.second;
    between += acc.second * (mean - grand_mean) * (mean - grand_mean);
  }
  EXPECT_GT(between / total_var, 0.3);
}

TEST(ImdbGenTest, Deterministic) {
  ImdbConfig config;
  config.target_movies = 500;
  auto a = GenerateImdbCorpus(config);
  auto b = GenerateImdbCorpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].director, b[i].director);
    EXPECT_EQ(a[i].votes_thousands, b[i].votes_thousands);
    EXPECT_EQ(a[i].rating, b[i].rating);
  }
}

TEST(ImdbGenTest, ToTableShapeMatchesFigure1Schema) {
  ImdbConfig config;
  config.target_movies = 1000;
  Table t = ToTable(GenerateImdbCorpus(config));
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_TRUE(t.schema().Contains("Pop"));
  EXPECT_TRUE(t.schema().Contains("Qual"));
  // Grouping by director works end to end.
  auto ds = core::GroupedDataset::FromTable(t, {"Director"}, {"Pop", "Qual"});
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(ds->num_groups(), 100u);
  // Grouping by genre and by decade-style expressions also used in demos.
  auto by_genre = core::GroupedDataset::FromTable(t, {"Genre"}, {"Pop", "Qual"});
  ASSERT_TRUE(by_genre.ok());
  EXPECT_LE(by_genre->num_groups(), 8u);
}

}  // namespace
}  // namespace galaxy::datagen
