#include "datagen/groups.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace galaxy::datagen {
namespace {

TEST(GroupsGenTest, RespectsRecordAndGroupBudget) {
  GroupedWorkloadConfig config;
  config.num_records = 1000;
  config.avg_records_per_group = 50;
  config.dims = 3;
  core::GroupedDataset ds = GenerateGrouped(config);
  EXPECT_EQ(ds.num_groups(), 20u);
  EXPECT_EQ(ds.total_records(), 1000u);
  EXPECT_EQ(ds.dims(), 3u);
}

TEST(GroupsGenTest, NoEmptyGroups) {
  GroupedWorkloadConfig config;
  config.num_records = 200;
  config.avg_records_per_group = 10;
  config.size_model = GroupSizeModel::kZipf;
  config.zipf_theta = 1.5;  // heavily skewed
  core::GroupedDataset ds = GenerateGrouped(config);
  for (const core::Group& g : ds.groups()) {
    EXPECT_GE(g.size(), 1u);
  }
}

TEST(GroupsGenTest, PointsInsideUnitCube) {
  GroupedWorkloadConfig config;
  config.num_records = 500;
  config.spread = 0.5;
  core::GroupedDataset ds = GenerateGrouped(config);
  for (const core::Group& g : ds.groups()) {
    for (size_t i = 0; i < g.size(); ++i) {
      for (double v : g.point(i)) {
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
      }
    }
  }
}

TEST(GroupsGenTest, SpreadBoundsGroupExtent) {
  GroupedWorkloadConfig config;
  config.num_records = 2000;
  config.avg_records_per_group = 100;
  config.spread = 0.2;
  core::GroupedDataset ds = GenerateGrouped(config);
  for (const core::Group& g : ds.groups()) {
    const Box& b = g.mbb();
    for (size_t d = 0; d < b.dims(); ++d) {
      EXPECT_LE(b.max[d] - b.min[d], 0.2 + 1e-12);
    }
  }
}

TEST(GroupsGenTest, LargerSpreadIncreasesMbbOverlap) {
  auto overlap_count = [](const core::GroupedDataset& ds) {
    size_t count = 0;
    for (size_t i = 0; i < ds.num_groups(); ++i) {
      for (size_t j = i + 1; j < ds.num_groups(); ++j) {
        if (ds.group(i).mbb().Intersects(ds.group(j).mbb())) ++count;
      }
    }
    return count;
  };
  GroupedWorkloadConfig narrow;
  narrow.num_records = 2000;
  narrow.avg_records_per_group = 100;
  narrow.spread = 0.1;
  narrow.seed = 9;
  GroupedWorkloadConfig wide = narrow;
  wide.spread = 0.8;
  EXPECT_GT(overlap_count(GenerateGrouped(wide)),
            overlap_count(GenerateGrouped(narrow)));
}

TEST(GroupsGenTest, UniformSizesAreBalanced) {
  GroupedWorkloadConfig config;
  config.num_records = 10000;
  config.avg_records_per_group = 100;
  config.size_model = GroupSizeModel::kUniform;
  core::GroupedDataset ds = GenerateGrouped(config);
  size_t min_size = SIZE_MAX, max_size = 0;
  for (const core::Group& g : ds.groups()) {
    min_size = std::min(min_size, g.size());
    max_size = std::max(max_size, g.size());
  }
  // Poisson(100): very unlikely to leave [40, 180].
  EXPECT_GT(min_size, 40u);
  EXPECT_LT(max_size, 180u);
}

TEST(GroupsGenTest, ZipfSizesAreSkewed) {
  GroupedWorkloadConfig config;
  config.num_records = 10000;
  config.avg_records_per_group = 100;
  config.size_model = GroupSizeModel::kZipf;
  config.zipf_theta = 1.0;
  core::GroupedDataset ds = GenerateGrouped(config);
  size_t max_size = 0;
  for (const core::Group& g : ds.groups()) {
    max_size = std::max(max_size, g.size());
  }
  // The top group should hold far more than the average share.
  EXPECT_GT(max_size, 500u);
}

TEST(GroupsGenTest, DeterministicInSeed) {
  GroupedWorkloadConfig config;
  config.num_records = 300;
  config.seed = 123;
  core::GroupedDataset a = GenerateGrouped(config);
  core::GroupedDataset b = GenerateGrouped(config);
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.group(g).data(), b.group(g).data());
  }
  config.seed = 124;
  core::GroupedDataset c = GenerateGrouped(config);
  bool any_diff = false;
  for (size_t g = 0; g < std::min(a.num_groups(), c.num_groups()); ++g) {
    if (a.group(g).data() != c.group(g).data()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GroupsGenTest, ToTableShape) {
  GroupedWorkloadConfig config;
  config.num_records = 100;
  config.avg_records_per_group = 10;
  config.dims = 3;
  core::GroupedDataset ds = GenerateGrouped(config);
  Table t = GroupedDatasetToTable(ds);
  EXPECT_EQ(t.num_rows(), 100u);
  EXPECT_EQ(t.num_columns(), 5u);  // class, num, a0..a2
  EXPECT_EQ(t.schema().column(0).name, "class");
  EXPECT_EQ(t.schema().column(1).name, "num");
  // num matches the group cardinality of the row's class.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string& label = t.at(r, 0).AsString();
    size_t gid = ds.FindByLabel(label).value();
    EXPECT_EQ(t.at(r, 1).AsInt64(),
              static_cast<int64_t>(ds.group(gid).size()));
  }
}

TEST(GroupsGenTest, NumGroupsHelper) {
  GroupedWorkloadConfig config;
  config.num_records = 10;
  config.avg_records_per_group = 100;
  EXPECT_EQ(config.num_groups(), 1u);  // never zero
  config.num_records = 1000;
  EXPECT_EQ(config.num_groups(), 10u);
}

}  // namespace
}  // namespace galaxy::datagen
