#include "datagen/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "skyline/skyline.h"

namespace galaxy::datagen {
namespace {

double Correlation(const std::vector<Point>& pts, size_t i, size_t j) {
  double mi = 0, mj = 0;
  for (const Point& p : pts) {
    mi += p[i];
    mj += p[j];
  }
  mi /= pts.size();
  mj /= pts.size();
  double cov = 0, vi = 0, vj = 0;
  for (const Point& p : pts) {
    cov += (p[i] - mi) * (p[j] - mj);
    vi += (p[i] - mi) * (p[i] - mi);
    vj += (p[j] - mj) * (p[j] - mj);
  }
  return cov / std::sqrt(vi * vj);
}

TEST(DistributionsTest, PointsAreInUnitCube) {
  Rng rng(1);
  for (Distribution d : {Distribution::kIndependent, Distribution::kCorrelated,
                         Distribution::kAntiCorrelated}) {
    for (int i = 0; i < 2000; ++i) {
      Point p = SamplePoint(d, 4, rng);
      ASSERT_EQ(p.size(), 4u);
      for (double v : p) {
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
      }
    }
  }
}

TEST(DistributionsTest, IndependentHasNearZeroCorrelation) {
  Rng rng(2);
  auto pts = SamplePoints(Distribution::kIndependent, 3, 20000, rng);
  EXPECT_NEAR(Correlation(pts, 0, 1), 0.0, 0.03);
  EXPECT_NEAR(Correlation(pts, 1, 2), 0.0, 0.03);
}

TEST(DistributionsTest, CorrelatedHasStrongPositiveCorrelation) {
  Rng rng(3);
  auto pts = SamplePoints(Distribution::kCorrelated, 3, 20000, rng);
  EXPECT_GT(Correlation(pts, 0, 1), 0.7);
  EXPECT_GT(Correlation(pts, 0, 2), 0.7);
}

TEST(DistributionsTest, AntiCorrelatedHasNegativeCorrelation) {
  Rng rng(4);
  auto pts = SamplePoints(Distribution::kAntiCorrelated, 2, 20000, rng);
  EXPECT_LT(Correlation(pts, 0, 1), -0.5);
}

TEST(DistributionsTest, AntiCorrelatedNegativeInHigherDims) {
  Rng rng(5);
  auto pts = SamplePoints(Distribution::kAntiCorrelated, 5, 20000, rng);
  // Pairwise correlations are negative (sum is roughly constant).
  EXPECT_LT(Correlation(pts, 0, 1), -0.1);
  EXPECT_LT(Correlation(pts, 2, 4), -0.1);
}

TEST(DistributionsTest, SkylineSizeOrdering) {
  // The canonical sanity check: |sky(anti)| >> |sky(indep)| >> |sky(corr)|.
  Rng r1(6), r2(6), r3(6);
  size_t n = 5000;
  auto anti = SamplePoints(Distribution::kAntiCorrelated, 3, n, r1);
  auto ind = SamplePoints(Distribution::kIndependent, 3, n, r2);
  auto corr = SamplePoints(Distribution::kCorrelated, 3, n, r3);
  size_t s_anti = skyline::Compute(anti, skyline::AllMax(3)).size();
  size_t s_ind = skyline::Compute(ind, skyline::AllMax(3)).size();
  size_t s_corr = skyline::Compute(corr, skyline::AllMax(3)).size();
  EXPECT_GT(s_anti, s_ind);
  EXPECT_GT(s_ind, s_corr);
}

TEST(DistributionsTest, Deterministic) {
  Rng a(7), b(7);
  auto x = SamplePoints(Distribution::kAntiCorrelated, 3, 100, a);
  auto y = SamplePoints(Distribution::kAntiCorrelated, 3, 100, b);
  EXPECT_EQ(x, y);
}

TEST(DistributionsTest, NameRoundTrip) {
  EXPECT_EQ(DistributionFromString("independent"),
            Distribution::kIndependent);
  EXPECT_EQ(DistributionFromString("CORR"), Distribution::kCorrelated);
  EXPECT_EQ(DistributionFromString("anti"), Distribution::kAntiCorrelated);
  EXPECT_STREQ(DistributionToString(Distribution::kAntiCorrelated),
               "anticorrelated");
}

}  // namespace
}  // namespace galaxy::datagen
