// Crash-recovery scenario tests for the DurabilityManager over MemEnv:
// every test shapes a data directory (possibly mid-crash), reopens it, and
// checks the recovered catalog equals exactly the acked updates.

#include "storage/durability.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "sql/catalog.h"
#include "storage/env.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace galaxy::storage {
namespace {

using galaxy::ColumnDef;
using galaxy::Schema;
using galaxy::Table;
using galaxy::TableBuilder;
using galaxy::ValueType;

Schema TestSchema() {
  return Schema({ColumnDef{"g", ValueType::kString},
                 ColumnDef{"x", ValueType::kInt64}});
}

Table SeedTable() {
  TableBuilder builder(TestSchema());
  for (const char* row : {"a,1", "b,2"}) {
    auto parsed = galaxy::ParseCsvRowForSchema(TestSchema(), row);
    EXPECT_TRUE(parsed.ok());
    builder.AddRow(*std::move(parsed));
  }
  return builder.Build();
}

UpdateRecord Insert(const std::string& row) {
  UpdateRecord record;
  record.table = "t";
  record.insert = true;
  record.row_csv = row;
  return record;
}

UpdateRecord Remove(const std::string& row) {
  UpdateRecord record = Insert(row);
  record.insert = false;
  return record;
}

std::vector<std::string> TableRows(const sql::Database& db) {
  std::vector<std::string> out;
  auto table = db.GetTable("t");
  if (!table.ok()) return out;
  for (const Row& row : (*table)->DebugRows()) {
    out.push_back(row[0].AsString() + "," + std::to_string(row[1].AsInt64()));
  }
  return out;
}

std::unique_ptr<DurabilityManager> MustOpen(Env* env, sql::Database* db) {
  auto manager = DurabilityManager::Open(env, "data", db,
                                         DurabilityOptions{});
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  return manager.ok() ? std::move(*manager) : nullptr;
}

TEST(Durability, BootstrapThenRecover) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    EXPECT_EQ(manager->recovery_info().generation, 0u);
    EXPECT_EQ(db.num_tables(), 0u);

    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
    EXPECT_EQ(manager->generation(), 1u);
  }
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->recovery_info().generation, 1u);
  EXPECT_EQ(manager->recovery_info().tables_restored, 1u);
  EXPECT_EQ(TableRows(db), std::vector<std::string>({"a,1", "b,2"}));
}

TEST(Durability, LoggedUpdatesReplayInOrder) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
    // Log without applying — exactly what a crash after LogUpdate but
    // before the in-memory apply leaves behind.
    ASSERT_TRUE(manager->LogUpdate(Insert("c,3")).ok());
    ASSERT_TRUE(manager->LogUpdate(Remove("a,1")).ok());
    ASSERT_TRUE(manager->LogUpdate(Insert("d,4")).ok());
  }
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->recovery_info().replayed_records, 3u);
  EXPECT_EQ(TableRows(db), std::vector<std::string>({"b,2", "c,3", "d,4"}));
}

TEST(Durability, TornWalTailIsTruncatedAndAppendsContinue) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
    ASSERT_TRUE(manager->LogUpdate(Insert("c,3")).ok());
  }
  // Tear the log: append half of a valid record, as a crash mid-write
  // would.
  std::string torn;
  EncodeWalRecord(WalRecordType::kUpdate, EncodeUpdateRecord(Insert("d,4")),
                  &torn);
  {
    auto file = env->NewWritableFile("data/wal-1.log",
                                     Env::WriteMode::kAppend);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(
                    std::string_view(torn).substr(0, torn.size() - 3))
                    .ok());
  }
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    EXPECT_TRUE(manager->recovery_info().wal_tail_truncated);
    EXPECT_EQ(manager->recovery_info().replayed_records, 1u);
    EXPECT_EQ(TableRows(db), std::vector<std::string>({"a,1", "b,2", "c,3"}));
    // The tail is gone: appending now must produce a decodable log.
    ASSERT_TRUE(manager->LogUpdate(Insert("e,5")).ok());
  }
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  EXPECT_FALSE(manager->recovery_info().wal_tail_truncated);
  EXPECT_EQ(TableRows(db),
            std::vector<std::string>({"a,1", "b,2", "c,3", "e,5"}));
}

TEST(Durability, DoubleCrashDuringWalTruncation) {
  // First crash tears the WAL tail; the second crash interrupts recovery's
  // own TruncateFile, leaving any byte count between the valid prefix and
  // the original size. Every such intermediate state must recover to the
  // same catalog.
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
    ASSERT_TRUE(manager->LogUpdate(Insert("c,3")).ok());
  }
  auto valid = env->FileSize("data/wal-1.log");
  ASSERT_TRUE(valid.ok());
  std::string torn;
  EncodeWalRecord(WalRecordType::kUpdate, EncodeUpdateRecord(Insert("d,4")),
                  &torn);
  {
    auto file = env->NewWritableFile("data/wal-1.log",
                                     Env::WriteMode::kAppend);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(
                    std::string_view(torn).substr(0, torn.size() - 2))
                    .ok());
  }
  auto full = env->FileSize("data/wal-1.log");
  ASSERT_TRUE(full.ok());

  for (uint64_t crash_at = *valid; crash_at <= *full; ++crash_at) {
    // Clone the torn directory state at this truncation progress point.
    std::unique_ptr<Env> clone = NewMemEnv();
    ASSERT_TRUE(clone->CreateDirs("data").ok());
    auto listing = env->ListDir("data");
    ASSERT_TRUE(listing.ok());
    for (const std::string& name : *listing) {
      auto content = env->ReadFileToString("data/" + name);
      ASSERT_TRUE(content.ok());
      auto file = clone->NewWritableFile("data/" + name,
                                         Env::WriteMode::kTruncate);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE((*file)->Append(*content).ok());
    }
    ASSERT_TRUE(clone->TruncateFile("data/wal-1.log", crash_at).ok());

    sql::Database db;
    auto manager = MustOpen(clone.get(), &db);
    ASSERT_NE(manager, nullptr) << "truncation crash point " << crash_at;
    EXPECT_EQ(manager->recovery_info().replayed_records, 1u);
    EXPECT_EQ(TableRows(db), std::vector<std::string>({"a,1", "b,2", "c,3"}))
        << "truncation crash point " << crash_at;
  }
}

TEST(Durability, SnapshotRotationDropsOldGeneration) {
  std::unique_ptr<Env> env = NewMemEnv();
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  db.Register("t", SeedTable());
  ASSERT_TRUE(manager->Bootstrap().ok());
  ASSERT_TRUE(manager->LogUpdate(Insert("c,3")).ok());
  ASSERT_TRUE(ApplyUpdateRecord(&db, Insert("c,3")).ok());

  ASSERT_TRUE(manager->Snapshot().ok());
  EXPECT_EQ(manager->generation(), 2u);
  auto listing = env->ListDir("data");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing,
            std::vector<std::string>({"snapshot-2.gal", "wal-2.log"}));

  // More updates land in the new WAL; recovery = snapshot-2 + wal-2.
  ASSERT_TRUE(manager->LogUpdate(Insert("d,4")).ok());
  sql::Database recovered;
  auto reopened = DurabilityManager::Open(env.get(), "data", &recovered,
                                          DurabilityOptions{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery_info().generation, 2u);
  EXPECT_EQ((*reopened)->recovery_info().replayed_records, 1u);
  EXPECT_EQ(TableRows(recovered),
            std::vector<std::string>({"a,1", "b,2", "c,3", "d,4"}));
}

TEST(Durability, CorruptNewestSnapshotFallsBackAGeneration) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
    ASSERT_TRUE(manager->LogUpdate(Insert("c,3")).ok());
  }
  // A torn rotation: snapshot-2 exists but is garbage, generation 1 is
  // still complete. (The real writer renames only complete snapshots into
  // place; this models a corrupted disk or a partial rename on a
  // non-atomic filesystem.)
  {
    auto file =
        env->NewWritableFile("data/snapshot-2.gal", Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("GALSNAP1 this is not a snapshot").ok());
  }
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->recovery_info().generation, 1u);
  EXPECT_EQ(manager->recovery_info().replayed_records, 1u);
  EXPECT_FALSE(manager->recovery_info().warnings.empty());
  EXPECT_EQ(TableRows(db), std::vector<std::string>({"a,1", "b,2", "c,3"}));
  // The unreadable snapshot was swept so it cannot shadow later
  // generations forever.
  auto exists = env->FileExists("data/snapshot-2.gal");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST(Durability, StaleTmpFilesAreSwept) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    sql::Database db;
    auto manager = MustOpen(env.get(), &db);
    ASSERT_NE(manager, nullptr);
    db.Register("t", SeedTable());
    ASSERT_TRUE(manager->Bootstrap().ok());
  }
  {
    auto file = env->NewWritableFile("data/snapshot-2.gal.tmp",
                                     Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("torn snapshot write").ok());
  }
  sql::Database db;
  auto manager = MustOpen(env.get(), &db);
  ASSERT_NE(manager, nullptr);
  auto exists = env->FileExists("data/snapshot-2.gal.tmp");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST(Durability, OpenRequiresEmptyDatabase) {
  std::unique_ptr<Env> env = NewMemEnv();
  sql::Database db;
  db.Register("t", SeedTable());
  auto manager =
      DurabilityManager::Open(env.get(), "data", &db, DurabilityOptions{});
  EXPECT_FALSE(manager.ok());
}

}  // namespace
}  // namespace galaxy::storage
