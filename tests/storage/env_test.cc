// Contract tests run against both Env implementations (posix + in-memory):
// the durability layer must behave identically over either, and MemEnv is
// what the fault-injection and fuzz tests build on.

#include "storage/env.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>

namespace galaxy::storage {
namespace {

class EnvTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (GetParam() == 0) {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      root_ = "envtest";
    } else {
      env_ = Env::Default();
      root_ = ::testing::TempDir() + "galaxy_env_test_" +
              std::to_string(::getpid());
    }
    ASSERT_TRUE(env_->CreateDirs(root_).ok());
  }

  void TearDown() override {
    auto entries = env_->ListDir(root_);
    if (entries.ok()) {
      for (const std::string& name : *entries) {
        (void)env_->RemoveFile(root_ + "/" + name);
      }
    }
  }

  std::string Path(const std::string& name) const { return root_ + "/" + name; }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string root_;
};

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "Mem" : "Posix";
                         });

TEST_P(EnvTest, WriteReadRoundTrip) {
  auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto content = env_->ReadFileToString(Path("a"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
  auto size = env_->FileSize(Path("a"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST_P(EnvTest, AppendModePreservesExistingBytes) {
  {
    auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("one").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kAppend);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("+two").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto content = env_->ReadFileToString(Path("a"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "one+two");

  // kTruncate drops the old contents.
  auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  content = env_->ReadFileToString(Path("a"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "");
}

TEST_P(EnvTest, ExistsRenameRemove) {
  auto exists = env_->FileExists(Path("a"));
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_FALSE(env_->ReadFileToString(Path("a")).ok());

  auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("x").ok());
  ASSERT_TRUE((*file)->Close().ok());

  ASSERT_TRUE(env_->RenameFile(Path("a"), Path("b")).ok());
  exists = env_->FileExists(Path("a"));
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  exists = env_->FileExists(Path("b"));
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);

  ASSERT_TRUE(env_->RemoveFile(Path("b")).ok());
  exists = env_->FileExists(Path("b"));
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_FALSE(env_->RemoveFile(Path("b")).ok());
}

TEST_P(EnvTest, RenameReplacesExistingTarget) {
  for (const char* name : {"from", "to"}) {
    auto file = env_->NewWritableFile(Path(name), Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(name).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env_->RenameFile(Path("from"), Path("to")).ok());
  auto content = env_->ReadFileToString(Path("to"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "from");
}

TEST_P(EnvTest, TruncateShortensInPlace) {
  auto file = env_->NewWritableFile(Path("a"), Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Close().ok());

  ASSERT_TRUE(env_->TruncateFile(Path("a"), 4).ok());
  auto content = env_->ReadFileToString(Path("a"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "0123");
}

TEST_P(EnvTest, ListDirSortedBasenames) {
  for (const char* name : {"c", "a", "b"}) {
    auto file = env_->NewWritableFile(Path(name), Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto entries = env_->ListDir(root_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0], "a");
  EXPECT_EQ((*entries)[1], "b");
  EXPECT_EQ((*entries)[2], "c");
  EXPECT_TRUE(env_->SyncDir(root_).ok());
}

TEST(MemEnv, IsHermetic) {
  std::unique_ptr<Env> a = NewMemEnv();
  std::unique_ptr<Env> b = NewMemEnv();
  ASSERT_TRUE(a->CreateDirs("d").ok());
  auto file = a->NewWritableFile("d/x", Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto exists = b->FileExists("d/x");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

}  // namespace
}  // namespace galaxy::storage
