#include "storage/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/env.h"
#include "storage/fault_env.h"

namespace galaxy::storage {
namespace {

std::string Image(const std::vector<std::string>& payloads) {
  std::string image;
  for (const std::string& payload : payloads) {
    EncodeWalRecord(WalRecordType::kUpdate, payload, &image);
  }
  return image;
}

TEST(WalCodec, RoundTrip) {
  const std::vector<std::string> payloads = {"", "a", std::string(300, 'x'),
                                             std::string("\x00\xff\n", 3)};
  const WalDecodeResult decoded = DecodeWal(Image(payloads));
  EXPECT_FALSE(decoded.truncated_tail);
  ASSERT_EQ(decoded.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(decoded.records[i].type, WalRecordType::kUpdate);
    EXPECT_EQ(decoded.records[i].payload, payloads[i]);
  }
}

TEST(WalCodec, TornTailIsTruncatedNotFatal) {
  std::string image = Image({"first", "second"});
  const size_t full = image.size();
  std::string torn;
  EncodeWalRecord(WalRecordType::kUpdate, "half-written", &torn);
  image += torn.substr(0, torn.size() / 2);

  const WalDecodeResult decoded = DecodeWal(image);
  EXPECT_TRUE(decoded.truncated_tail);
  EXPECT_EQ(decoded.valid_bytes, full);
  ASSERT_EQ(decoded.records.size(), 2u);
  EXPECT_EQ(decoded.records[1].payload, "second");
}

TEST(WalCodec, BadChecksumStopsTheScan) {
  std::string image = Image({"first", "second", "third"});
  // Corrupt one payload byte of the second record: everything from there
  // on is untrusted, even though the third record is intact.
  const size_t second_start = Image({"first"}).size();
  image[second_start + 9] ^= 0x40;

  const WalDecodeResult decoded = DecodeWal(image);
  EXPECT_TRUE(decoded.truncated_tail);
  EXPECT_EQ(decoded.valid_bytes, second_start);
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.records[0].payload, "first");
}

TEST(WalCodec, GarbageOnlyDecodesToNothing) {
  std::string junk(57, '\x5a');
  const WalDecodeResult decoded = DecodeWal(junk);
  EXPECT_TRUE(decoded.records.empty());
  EXPECT_EQ(decoded.valid_bytes, 0u);
  EXPECT_TRUE(decoded.truncated_tail);
}

TEST(WalWriter, AppendsAreDurableAndReopenable) {
  std::unique_ptr<Env> env = NewMemEnv();
  {
    auto wal = WalWriter::Open(env.get(), "wal.log", WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "one").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "two").ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // Reopen appends after the existing records, like recovery does.
  {
    auto wal = WalWriter::Open(env.get(), "wal.log", WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "three").ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto image = env->ReadFileToString("wal.log");
  ASSERT_TRUE(image.ok());
  const WalDecodeResult decoded = DecodeWal(*image);
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[2].payload, "three");
}

TEST(WalWriter, ConcurrentAppendsAllSurviveGroupCommit) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto wal = WalWriter::Open(env.get(), "wal.log", WalWriterOptions{});
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, payload).ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_TRUE((*wal)->Close().ok());

  auto image = env->ReadFileToString("wal.log");
  ASSERT_TRUE(image.ok());
  const WalDecodeResult decoded = DecodeWal(*image);
  EXPECT_FALSE(decoded.truncated_tail);
  EXPECT_EQ(decoded.records.size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(WalWriter, FsyncPolicyGovernsSyncCalls) {
  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  WalWriterOptions always;
  always.policy = FsyncPolicy::kAlways;
  {
    auto wal = WalWriter::Open(&env, "a.log", always);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "x").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "y").ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  const uint64_t always_syncs = env.op_count(FaultInjectionEnv::Op::kSync);
  EXPECT_GE(always_syncs, 2u);

  WalWriterOptions never;
  never.policy = FsyncPolicy::kNever;
  {
    auto wal = WalWriter::Open(&env, "b.log", never);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "x").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "y").ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  EXPECT_EQ(env.op_count(FaultInjectionEnv::Op::kSync), always_syncs);
}

TEST(WalWriter, PoisonedAfterWriteFailure) {
  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  auto wal = WalWriter::Open(&env, "wal.log", WalWriterOptions{});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "good").ok());

  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kAppend;
  fault.nth = env.op_count(FaultInjectionEnv::Op::kAppend) + 1;
  fault.error = Status::Internal("injected EIO");
  fault.partial_bytes = 3;  // a torn record reached the file
  env.InjectFault(fault);

  EXPECT_FALSE((*wal)->Append(WalRecordType::kUpdate, "torn").ok());
  // Sticky: later appends must fail even though the disk works again —
  // appending past a torn record would orphan everything behind it.
  EXPECT_FALSE((*wal)->Append(WalRecordType::kUpdate, "after").ok());
  EXPECT_FALSE((*wal)->status().ok());

  // The file holds the good record plus the torn fragment; decode must
  // recover exactly the acked prefix.
  auto image = base->ReadFileToString("wal.log");
  ASSERT_TRUE(image.ok());
  const WalDecodeResult decoded = DecodeWal(*image);
  EXPECT_TRUE(decoded.truncated_tail);
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.records[0].payload, "good");
}

TEST(WalWriter, FsyncFailureFailsTheAppend) {
  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  WalWriterOptions options;
  options.policy = FsyncPolicy::kAlways;
  auto wal = WalWriter::Open(&env, "wal.log", options);
  ASSERT_TRUE(wal.ok());

  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kSync;
  fault.nth = env.op_count(FaultInjectionEnv::Op::kSync) + 1;
  fault.error = Status::Internal("injected fsync EIO");
  env.InjectFault(fault);

  // fsync EIO means the bytes may not be on stable media: the append must
  // NOT report success (no ack), and the log is poisoned.
  EXPECT_FALSE((*wal)->Append(WalRecordType::kUpdate, "unacked").ok());
  EXPECT_FALSE((*wal)->Append(WalRecordType::kUpdate, "after").ok());
}

TEST(WalOptions, ParseFsyncPolicyNames) {
  for (const char* name : {"always", "interval", "never"}) {
    auto policy = ParseFsyncPolicy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_STREQ(FsyncPolicyName(*policy), name);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

}  // namespace
}  // namespace galaxy::storage
