#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace galaxy::storage {
namespace {

using galaxy::ColumnDef;
using galaxy::Schema;
using galaxy::Table;
using galaxy::TableBuilder;
using galaxy::Value;
using galaxy::ValueType;

std::vector<SnapshotTable> SampleTables() {
  TableBuilder movies(Schema({ColumnDef{"title", ValueType::kString},
                              ColumnDef{"year", ValueType::kInt64},
                              ColumnDef{"score", ValueType::kDouble}}));
  movies.AddRow({Value("with, comma"), Value(int64_t{1994}), Value(9.0)});
  movies.AddRow({Value("quote \"inside\""), Value(int64_t{2001}),
                 Value(7.25)});
  movies.AddRow({Value::Null(), Value::Null(), Value(3.0)});

  TableBuilder empty(Schema({ColumnDef{"only", ValueType::kInt64}}));

  std::vector<SnapshotTable> tables;
  tables.push_back({"movies", movies.Build()});
  tables.push_back({"empty", empty.Build()});
  return tables;
}

TEST(SnapshotCodec, RoundTripPreservesTypesExactly) {
  const std::string image = EncodeSnapshot(SampleTables());
  auto decoded = DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);

  const Table& movies = (*decoded)[0].table;
  EXPECT_EQ((*decoded)[0].name, "movies");
  ASSERT_EQ(movies.num_rows(), 3u);
  EXPECT_EQ(movies.at(0, 0).AsString(), "with, comma");
  EXPECT_EQ(movies.at(1, 1).AsInt64(), 2001);
  // A double that happens to hold an integral value must stay a double —
  // the CSV surface form would lose this (type inference reads 9 as
  // INT64); the snapshot's typed cells must not.
  EXPECT_EQ(movies.at(0, 2).type(), ValueType::kDouble);
  EXPECT_EQ(movies.at(0, 2).AsDouble(), 9.0);
  EXPECT_TRUE(movies.at(2, 0).is_null());

  EXPECT_EQ((*decoded)[1].name, "empty");
  EXPECT_EQ((*decoded)[1].table.num_rows(), 0u);
  EXPECT_EQ((*decoded)[1].table.schema().num_columns(), 1u);
}

TEST(SnapshotCodec, EveryCorruptionIsDetected) {
  const std::string image = EncodeSnapshot(SampleTables());

  // Bad magic.
  std::string bad = image;
  bad[0] ^= 0x01;
  EXPECT_FALSE(DecodeSnapshot(bad).ok());

  // Every truncation point fails (torn write).
  for (size_t cut : {size_t{0}, size_t{7}, image.size() / 2,
                     image.size() - 1}) {
    EXPECT_FALSE(DecodeSnapshot(std::string_view(image).substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // A single flipped body bit fails the checksum.
  bad = image;
  bad[image.size() / 2] ^= 0x10;
  EXPECT_FALSE(DecodeSnapshot(bad).ok());

  // Trailing garbage is rejected too (the file is the image, exactly).
  bad = image + "junk";
  EXPECT_FALSE(DecodeSnapshot(bad).ok());
}

TEST(SnapshotFile, WriteIsAtomicUnderRenameFailure) {
  std::unique_ptr<Env> base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  ASSERT_TRUE(env.CreateDirs("data").ok());

  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kRename;
  fault.nth = 1;
  fault.error = Status::Internal("injected rename failure");
  env.InjectFault(fault);

  EXPECT_FALSE(
      WriteSnapshotFile(&env, "data", "snapshot-1.gal", SampleTables()).ok());
  // The target must not exist — only the tmp file may linger.
  auto exists = base->FileExists("data/snapshot-1.gal");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);

  // Without the fault the write lands and reads back.
  ASSERT_TRUE(
      WriteSnapshotFile(&env, "data", "snapshot-1.gal", SampleTables()).ok());
  auto decoded = ReadSnapshotFile(base.get(), "data/snapshot-1.gal");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 2u);
}

TEST(SnapshotFile, ReadMissingIsNotFound) {
  std::unique_ptr<Env> env = NewMemEnv();
  auto decoded = ReadSnapshotFile(env.get(), "nope.gal");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace galaxy::storage
