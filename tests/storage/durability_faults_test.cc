// Injected disk-fault scenarios against the full DurabilityManager stack:
// the ack contract under short writes and fsync EIO, and snapshot rotation
// under disk-full. Each test ends by recovering the directory and checking
// exactly the acked updates survive.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace galaxy::storage {
namespace {

using galaxy::ColumnDef;
using galaxy::Schema;
using galaxy::TableBuilder;
using galaxy::ValueType;

Schema TestSchema() {
  return Schema({ColumnDef{"g", ValueType::kString},
                 ColumnDef{"x", ValueType::kInt64}});
}

UpdateRecord Insert(const std::string& row) {
  UpdateRecord record;
  record.table = "t";
  record.insert = true;
  record.row_csv = row;
  return record;
}

std::vector<std::string> TableRows(const sql::Database& db) {
  std::vector<std::string> out;
  auto table = db.GetTable("t");
  if (!table.ok()) return out;
  for (const Row& row : (*table)->DebugRows()) {
    out.push_back(row[0].AsString() + "," + std::to_string(row[1].AsInt64()));
  }
  return out;
}

class DurabilityFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = NewMemEnv();
    env_ = std::make_unique<FaultInjectionEnv>(base_.get());

    sql::Database db;
    auto manager = DurabilityManager::Open(env_.get(), "data", &db,
                                           DurabilityOptions{});
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    TableBuilder builder(TestSchema());
    auto parsed = galaxy::ParseCsvRowForSchema(TestSchema(), "seed,0");
    ASSERT_TRUE(parsed.ok());
    builder.AddRow(*std::move(parsed));
    db.Register("t", builder.Build());
    ASSERT_TRUE((*manager)->Bootstrap().ok());
  }

  /// Reopens the directory fault-free and returns the recovered rows.
  std::vector<std::string> Recover() {
    env_->ClearFaults();
    sql::Database db;
    auto manager = DurabilityManager::Open(env_.get(), "data", &db,
                                           DurabilityOptions{});
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return TableRows(db);
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(DurabilityFaultsTest, ShortWriteMidRecordFailsAckAndPoisons) {
  sql::Database db;
  auto manager =
      DurabilityManager::Open(env_.get(), "data", &db, DurabilityOptions{});
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LogUpdate(Insert("a,1")).ok());

  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kAppend;
  fault.nth = env_->op_count(FaultInjectionEnv::Op::kAppend) + 1;
  fault.error = Status::Internal("injected short write");
  fault.partial_bytes = 5;  // half a header reaches the file
  env_->InjectFault(fault);

  // The torn append must not ack, and the WAL is poisoned: a durable
  // append after a torn record would be unreachable at replay.
  EXPECT_FALSE((*manager)->LogUpdate(Insert("torn,2")).ok());
  env_->ClearFaults();
  EXPECT_FALSE((*manager)->LogUpdate(Insert("after,3")).ok());

  EXPECT_EQ(Recover(), std::vector<std::string>({"seed,0", "a,1"}));
}

TEST_F(DurabilityFaultsTest, FsyncEioFailsAckAndPoisons) {
  sql::Database db;
  DurabilityOptions options;
  options.wal.policy = FsyncPolicy::kAlways;
  auto manager = DurabilityManager::Open(env_.get(), "data", &db, options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LogUpdate(Insert("a,1")).ok());

  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kSync;
  fault.nth = env_->op_count(FaultInjectionEnv::Op::kSync) + 1;
  fault.error = Status::Internal("injected fsync EIO");
  env_->InjectFault(fault);

  // After a failed fsync the kernel may have dropped the dirty pages
  // (fsyncgate): the record's durability is unknown, so no ack, and the
  // writer must refuse further appends.
  EXPECT_FALSE((*manager)->LogUpdate(Insert("unsynced,2")).ok());
  env_->ClearFaults();
  EXPECT_FALSE((*manager)->LogUpdate(Insert("after,3")).ok());

  // Recovery may or may not see the unacked record (here the bytes did
  // reach the MemEnv file) — but every ACKED update must be present.
  const std::vector<std::string> rows = Recover();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0], "seed,0");
  EXPECT_EQ(rows[1], "a,1");
}

TEST_F(DurabilityFaultsTest, DiskFullDuringSnapshotKeepsOldGeneration) {
  sql::Database db;
  auto manager =
      DurabilityManager::Open(env_.get(), "data", &db, DurabilityOptions{});
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LogUpdate(Insert("a,1")).ok());
  ASSERT_TRUE(ApplyUpdateRecord(&db, Insert("a,1")).ok());
  const uint64_t generation = (*manager)->generation();

  env_->SetDiskFullAfterBytes(10);  // snapshot body cannot fit
  EXPECT_FALSE((*manager)->Snapshot().ok());
  env_->ClearFaults();

  // The old generation is intact and still accepting appends.
  EXPECT_EQ((*manager)->generation(), generation);
  auto exists = base_->FileExists("data/snapshot-" +
                                  std::to_string(generation) + ".gal");
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  ASSERT_TRUE((*manager)->LogUpdate(Insert("b,2")).ok());
  ASSERT_TRUE(ApplyUpdateRecord(&db, Insert("b,2")).ok());

  // A later rotation with space available succeeds.
  ASSERT_TRUE((*manager)->Snapshot().ok());
  EXPECT_EQ((*manager)->generation(), generation + 1);

  EXPECT_EQ(Recover(), std::vector<std::string>({"seed,0", "a,1", "b,2"}));
}

TEST_F(DurabilityFaultsTest, CrashDuringRotationRenameRecoversOldGeneration) {
  sql::Database db;
  auto manager =
      DurabilityManager::Open(env_.get(), "data", &db, DurabilityOptions{});
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LogUpdate(Insert("a,1")).ok());
  ASSERT_TRUE(ApplyUpdateRecord(&db, Insert("a,1")).ok());

  // Fail the rename that publishes the new snapshot: the tmp file may
  // linger but generation N is untouched.
  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kRename;
  fault.nth = env_->op_count(FaultInjectionEnv::Op::kRename) + 1;
  fault.error = Status::Internal("injected rename failure");
  env_->InjectFault(fault);
  EXPECT_FALSE((*manager)->Snapshot().ok());

  EXPECT_EQ(Recover(), std::vector<std::string>({"seed,0", "a,1"}));
}

}  // namespace
}  // namespace galaxy::storage
