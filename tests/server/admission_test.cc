#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace galaxy::server {
namespace {

using Outcome = AdmissionController::Outcome;

TEST(AdmissionTest, AdmitsUpToMaxConcurrent) {
  AdmissionOptions options;
  options.max_concurrent = 3;
  options.queue_capacity = 0;
  options.queue_timeout = std::chrono::milliseconds(10);
  AdmissionController admission(options);

  EXPECT_EQ(admission.Acquire(), Outcome::kAdmitted);
  EXPECT_EQ(admission.Acquire(), Outcome::kAdmitted);
  EXPECT_EQ(admission.Acquire(), Outcome::kAdmitted);
  EXPECT_EQ(admission.active(), 3u);
  // No queue slots: the fourth arrival is rejected immediately.
  EXPECT_EQ(admission.Acquire(), Outcome::kRejected);
  admission.Release();
  EXPECT_EQ(admission.Acquire(), Outcome::kAdmitted);
  for (int i = 0; i < 3; ++i) admission.Release();
  EXPECT_EQ(admission.active(), 0u);
}

TEST(AdmissionTest, QueuedArrivalTimesOutWithoutSlot) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 1;
  options.queue_timeout = std::chrono::milliseconds(30);
  AdmissionController admission(options);

  ASSERT_EQ(admission.Acquire(), Outcome::kAdmitted);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(admission.Acquire(), Outcome::kTimedOut);
  auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(25));
  admission.Release();
}

TEST(AdmissionTest, ReleaseWakesQueuedWaiter) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 1;
  options.queue_timeout = std::chrono::seconds(5);
  AdmissionController admission(options);

  ASSERT_EQ(admission.Acquire(), Outcome::kAdmitted);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    if (admission.Acquire() == Outcome::kAdmitted) {
      admitted.store(true);
      admission.Release();
    }
  });
  // Give the waiter time to enqueue, then free the slot.
  while (admission.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.active(), 0u);
  EXPECT_EQ(admission.queued(), 0u);
}

TEST(AdmissionTest, QueueOverflowRejectsImmediately) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 2;
  options.queue_timeout = std::chrono::seconds(5);
  AdmissionController admission(options);

  ASSERT_EQ(admission.Acquire(), Outcome::kAdmitted);
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] {
      if (admission.Acquire() == Outcome::kAdmitted) admission.Release();
    });
  }
  while (admission.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue full: an immediate rejection, no waiting.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(admission.Acquire(), Outcome::kRejected);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(1));
  admission.Release();
  for (std::thread& t : waiters) t.join();
}

TEST(AdmissionTest, StressNeverExceedsLimit) {
  AdmissionOptions options;
  options.max_concurrent = 4;
  options.queue_capacity = 64;
  options.queue_timeout = std::chrono::seconds(5);
  AdmissionController admission(options);

  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (admission.Acquire() != Outcome::kAdmitted) continue;
        int now = inside.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::yield();
        inside.fetch_sub(1);
        admission.Release();
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(peak.load(), 4);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(admission.active(), 0u);
}

}  // namespace
}  // namespace galaxy::server
