// /update's durability contract at the HTTP layer, exercised through the
// Server::Handle seam (no sockets): ack-after-WAL ordering, 503 on a
// poisoned log, the durability metrics scrape, and the coalesced (lazy)
// incremental-view maintenance under update bursts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "server/http.h"
#include "server/server.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace galaxy::server {
namespace {

using galaxy::ColumnDef;
using galaxy::Schema;
using galaxy::TableBuilder;
using galaxy::ValueType;
using galaxy::storage::DurabilityManager;
using galaxy::storage::DurabilityOptions;
using galaxy::storage::Env;
using galaxy::storage::FaultInjectionEnv;
using galaxy::storage::NewMemEnv;

Schema TestSchema() {
  return Schema({ColumnDef{"g", ValueType::kString},
                 ColumnDef{"x", ValueType::kInt64},
                 ColumnDef{"y", ValueType::kDouble}});
}

HttpRequest Req(const std::string& raw) {
  HttpRequest request;
  const HttpParseResult parsed = ParseHttpRequest(raw, &request);
  EXPECT_EQ(parsed.state, ParseState::kDone);
  return request;
}

HttpRequest UpdateReq(const std::string& op, const std::string& row) {
  return Req("POST /update?table=t&op=" + op +
             " HTTP/1.1\r\nContent-Length: " + std::to_string(row.size()) +
             "\r\n\r\n" + row);
}

/// Value of an un-labelled counter/gauge line in a Prometheus scrape.
double MetricValue(const std::string& scrape, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const size_t pos = scrape.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(scrape.substr(pos + needle.size()));
}

class DurabilityServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = NewMemEnv();
    env_ = std::make_unique<FaultInjectionEnv>(base_.get());
    db_ = std::make_unique<sql::Database>();
    ServerOptions options;
    options.snapshot_every = 0;
    server_ = std::make_unique<Server>(db_.get(), options);

    auto durability =
        DurabilityManager::Open(env_.get(), "data", db_.get(),
                                DurabilityOptions{},
                                server_->DurabilityHooks());
    ASSERT_TRUE(durability.ok()) << durability.status().ToString();
    durability_ = std::move(*durability);

    TableBuilder builder(TestSchema());
    for (const char* row : {"g0,10,1.5", "g1,20,2.5"}) {
      auto parsed = galaxy::ParseCsvRowForSchema(TestSchema(), row);
      ASSERT_TRUE(parsed.ok());
      builder.AddRow(*std::move(parsed));
    }
    db_->Register("t", builder.Build());
    ASSERT_TRUE(durability_->Bootstrap().ok());
    server_->AttachDurability(durability_.get());
  }

  void TearDown() override {
    // The manager must outlive the server's request handling; nothing is
    // in flight here, so releasing it first is safe and mirrors
    // galaxy_served's shutdown order.
    durability_.reset();
  }

  size_t NumRows() {
    auto table = db_->GetTable("t");
    EXPECT_TRUE(table.ok());
    return table.ok() ? (*table)->num_rows() : 0;
  }

  /// Recovers the on-disk state into a fresh catalog.
  std::vector<std::string> RecoveredRows() {
    env_->ClearFaults();
    sql::Database db;
    auto manager = DurabilityManager::Open(env_.get(), "data", &db,
                                           DurabilityOptions{});
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    std::vector<std::string> out;
    auto table = db.GetTable("t");
    if (!table.ok()) return out;
    for (const Row& row : (*table)->DebugRows()) {
      out.push_back(row[0].AsString() + "," +
                    std::to_string(row[1].AsInt64()));
    }
    return out;
  }

  std::string Scrape() {
    return server_->Handle(Req("GET /metrics HTTP/1.1\r\n\r\n")).body;
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> env_;
  std::unique_ptr<sql::Database> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<DurabilityManager> durability_;
};

TEST_F(DurabilityServerTest, AckedUpdatesAreRecoverable) {
  EXPECT_EQ(server_->Handle(UpdateReq("insert", "g2,30,3.5")).status, 200);
  EXPECT_EQ(server_->Handle(UpdateReq("remove", "g0,10,1.5")).status, 200);
  EXPECT_EQ(NumRows(), 2u);

  const std::vector<std::string> rows = RecoveredRows();
  EXPECT_EQ(rows, std::vector<std::string>({"g1,20", "g2,30"}));
}

TEST_F(DurabilityServerTest, InvalidUpdatesAreRejectedBeforeTheLog) {
  // 400/404 must happen BEFORE the WAL append: a rejected request leaves
  // no trace on disk.
  EXPECT_EQ(server_->Handle(UpdateReq("insert", "not-enough-columns")).status,
            400);
  EXPECT_EQ(
      server_->Handle(Req("POST /update?table=ghost&op=insert HTTP/1.1\r\n"
                          "Content-Length: 8\r\n\r\ng,1,1.5\n"))
          .status,
      404);
  EXPECT_EQ(server_->Handle(UpdateReq("remove", "zz,9,9.5")).status, 404);

  EXPECT_EQ(RecoveredRows(),
            std::vector<std::string>({"g0,10", "g1,20"}));
}

TEST_F(DurabilityServerTest, PoisonedWalReturns503AndLeavesCatalogAlone) {
  FaultInjectionEnv::Fault fault;
  fault.op = FaultInjectionEnv::Op::kAppend;
  fault.nth = env_->op_count(FaultInjectionEnv::Op::kAppend) + 1;
  fault.error = Status::Internal("injected EIO");
  env_->InjectFault(fault);

  const std::string scrape_before = Scrape();
  EXPECT_EQ(server_->Handle(UpdateReq("insert", "g2,30,3.5")).status, 503);
  EXPECT_EQ(NumRows(), 2u);  // not applied in memory either

  // Sticky: the log stays poisoned after the disk recovers.
  env_->ClearFaults();
  EXPECT_EQ(server_->Handle(UpdateReq("insert", "g3,40,4.5")).status, 503);

  const std::string scrape = Scrape();
  EXPECT_EQ(MetricValue(scrape, "galaxy_durability_errors_total") -
                MetricValue(scrape_before, "galaxy_durability_errors_total"),
            2.0);
  EXPECT_EQ(RecoveredRows(),
            std::vector<std::string>({"g0,10", "g1,20"}));
}

TEST_F(DurabilityServerTest, ScrapeCarriesDurabilitySeries) {
  EXPECT_EQ(server_->Handle(UpdateReq("insert", "g2,30,3.5")).status, 200);
  const std::string scrape = Scrape();

  for (const char* needle :
       {"galaxy_wal_appends_total", "galaxy_wal_bytes_total",
        "galaxy_wal_fsync_seconds_count", "galaxy_snapshot_duration_seconds",
        "galaxy_recovery_replayed_records", "galaxy_durability_errors_total",
        "galaxy_view_refreshes_total", "galaxy_view_deltas_total",
        "galaxy_view_pending_deltas"}) {
    EXPECT_NE(scrape.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(MetricValue(scrape, "galaxy_wal_appends_total"), 1.0);
  EXPECT_GT(MetricValue(scrape, "galaxy_wal_bytes_total"), 0.0);
}

TEST_F(DurabilityServerTest, SnapshotEveryRotatesInline) {
  ServerOptions options;
  options.snapshot_every = 3;
  Server server(db_.get(), options);
  server.AttachDurability(durability_.get());

  const uint64_t generation = durability_->generation();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server
                  .Handle(UpdateReq("insert",
                                    "g" + std::to_string(i) + ",5,5.5"))
                  .status,
              200);
  }
  EXPECT_EQ(durability_->generation(), generation + 1);
  // The rotated snapshot alone (WAL now empty) carries all acked rows.
  EXPECT_EQ(RecoveredRows().size(), 5u);
}

TEST_F(DurabilityServerTest, ViewRefreshesAreCoalescedAcrossUpdateBursts) {
  SkylineViewConfig config;
  config.table = "t";
  config.group_column = "g";
  config.attrs = {"x", "y"};
  ASSERT_TRUE(server_->EnableSkylineView(config).ok());

  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(server_
                  ->Handle(UpdateReq("insert", "g" + std::to_string(i % 4) +
                                                   "," + std::to_string(i) +
                                                   ",1.5"))
                  .status,
              200);
  }
  std::string scrape = Scrape();
  EXPECT_EQ(MetricValue(scrape, "galaxy_view_deltas_total"),
            static_cast<double>(kBurst));
  EXPECT_EQ(MetricValue(scrape, "galaxy_view_pending_deltas"),
            static_cast<double>(kBurst));
  EXPECT_EQ(MetricValue(scrape, "galaxy_view_refreshes_total"), 0.0);

  // One reader drains the whole burst: exactly one refresh, queue empty.
  EXPECT_EQ(server_->Handle(Req("GET /skyline HTTP/1.1\r\n\r\n")).status,
            200);
  scrape = Scrape();
  EXPECT_EQ(MetricValue(scrape, "galaxy_view_refreshes_total"), 1.0);
  EXPECT_EQ(MetricValue(scrape, "galaxy_view_pending_deltas"), 0.0);

  // A second read with nothing pending is free — still one refresh.
  EXPECT_EQ(server_->Handle(Req("GET /skyline HTTP/1.1\r\n\r\n")).status,
            200);
  EXPECT_EQ(MetricValue(Scrape(), "galaxy_view_refreshes_total"), 1.0);
}

}  // namespace
}  // namespace galaxy::server
