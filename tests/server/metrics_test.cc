#include "server/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace galaxy::server {
namespace {

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), 80000u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(5);
  gauge.Add(-8);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(HistogramTest, BucketsArePowerOfTwoUpperBounds) {
  Histogram h;
  h.Observe(1);    // le 1  (bucket 0)
  h.Observe(2);    // le 2  (bucket 1)
  h.Observe(3);    // le 4  (bucket 2)
  h.Observe(4);    // le 4  (bucket 2)
  h.Observe(5);    // le 8  (bucket 3)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_micros(), 15u);
}

TEST(HistogramTest, OverflowBucketCatchesHugeValues) {
  Histogram h;
  h.Observe(uint64_t{1} << 40);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketed) {
  Histogram h;
  for (uint64_t us = 1; us <= 1000; ++us) h.Observe(us);
  double p50 = h.QuantileMicros(0.5);
  double p90 = h.QuantileMicros(0.9);
  double p99 = h.QuantileMicros(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The true p50 of 1..1000 is ~500; the bucketed estimate must stay
  // within its bucket (le 512, previous bound 256).
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.QuantileMicros(0.99), 0.0);
}

TEST(MetricsRegistryTest, RendersPrometheusTextFormat) {
  MetricsRegistry registry;
  Counter* requests = registry.AddCounter("app_requests_total", "requests");
  Gauge* depth = registry.AddGauge("app_queue_depth", "queue depth");
  Histogram* latency =
      registry.AddHistogram("app_latency_seconds", "latency");
  requests->Inc(3);
  depth->Set(7);
  latency->Observe(1000);  // 1ms

  std::string text = registry.Render();
  EXPECT_NE(text.find("# HELP app_requests_total requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("app_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("app_queue_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("app_latency_seconds_p50"), std::string::npos);
  EXPECT_NE(text.find("app_latency_seconds_p99"), std::string::npos);
}

TEST(MetricsRegistryTest, LabeledSeriesShareOneHelpBlock) {
  MetricsRegistry registry;
  Counter* ok = registry.AddCounter("app_responses_total", "responses",
                                    "{code=\"200\"}");
  Counter* bad = registry.AddCounter("app_responses_total", "responses",
                                     "{code=\"400\"}");
  ok->Inc(2);
  bad->Inc(1);
  std::string text = registry.Render();
  EXPECT_NE(text.find("app_responses_total{code=\"200\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("app_responses_total{code=\"400\"} 1"),
            std::string::npos);
  // HELP/TYPE emitted once for the shared family, not per label set.
  size_t first = text.find("# HELP app_responses_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# HELP app_responses_total", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("lat_seconds", "x");
  h->Observe(1);  // bucket le=1us
  h->Observe(3);  // bucket le=4us
  std::string text = registry.Render();
  // The 4us bucket must include the 1us observation (cumulative count 2).
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace galaxy::server
