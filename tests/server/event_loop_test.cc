// Unit tests for the event-driven serving substrate (server/event_loop.h):
// the timer wheel's at-tick-granularity / never-early contract, both Poller
// backends (epoll and the portable poll(2) fallback) against the same
// readiness scenarios, the worker pool's FIFO/shutdown semantics, the
// EventLoop's cross-thread Post and timer dispatch, and one socket-level
// round trip through a Server forced onto the poll(2) backend.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "server/event_loop.h"
#include "server/server.h"
#include "sql/catalog.h"

namespace galaxy::server {
namespace {

using Clock = TimerWheel::Clock;
using std::chrono::milliseconds;

// ---- TimerWheel ------------------------------------------------------------
// Time is injected through ExpireUpTo's `now`, so none of these sleep.

TEST(TimerWheelTest, FiresOnlyAfterDeadlinePasses) {
  TimerWheel wheel(milliseconds(10), 64);
  const Clock::time_point base = Clock::now();
  wheel.Schedule(1, base + milliseconds(30));

  std::vector<uint64_t> expired;
  wheel.ExpireUpTo(base, &expired);
  EXPECT_TRUE(expired.empty());  // never early
  wheel.ExpireUpTo(base + milliseconds(20), &expired);
  EXPECT_TRUE(expired.empty());
  // Late by at most one tick: by deadline + tick it must have fired.
  wheel.ExpireUpTo(base + milliseconds(40), &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  EXPECT_EQ(wheel.size(), 0u);

  // Firing removed it; advancing further must not re-fire.
  expired.clear();
  wheel.ExpireUpTo(base + milliseconds(500), &expired);
  EXPECT_TRUE(expired.empty());
}

TEST(TimerWheelTest, CancelAndReschedule) {
  TimerWheel wheel(milliseconds(10), 64);
  const Clock::time_point base = Clock::now();
  wheel.Schedule(1, base + milliseconds(20));
  wheel.Schedule(2, base + milliseconds(20));
  EXPECT_EQ(wheel.size(), 2u);

  wheel.Cancel(1);
  EXPECT_EQ(wheel.size(), 1u);
  // Rescheduling an armed timer moves it instead of duplicating it.
  wheel.Schedule(2, base + milliseconds(200));
  EXPECT_EQ(wheel.size(), 1u);

  std::vector<uint64_t> expired;
  wheel.ExpireUpTo(base + milliseconds(100), &expired);
  EXPECT_TRUE(expired.empty());  // old deadline no longer fires
  wheel.ExpireUpTo(base + milliseconds(220), &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 2u);
}

TEST(TimerWheelTest, DeadlinesBeyondTheCircumferenceWrapWithoutFiringEarly) {
  // Circumference = 10ms * 8 = 80ms; a 300ms deadline wraps several times.
  TimerWheel wheel(milliseconds(10), 8);
  const Clock::time_point base = Clock::now();
  wheel.Schedule(7, base + milliseconds(300));

  std::vector<uint64_t> expired;
  for (int ms = 0; ms <= 290; ms += 25) {
    wheel.ExpireUpTo(base + milliseconds(ms), &expired);
    EXPECT_TRUE(expired.empty()) << "fired early at +" << ms << "ms";
  }
  wheel.ExpireUpTo(base + milliseconds(320), &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7u);
}

TEST(TimerWheelTest, NextTimeoutBoundsTheLoopSleep) {
  TimerWheel wheel(milliseconds(10), 64);
  const Clock::time_point base = Clock::now();
  EXPECT_EQ(wheel.NextTimeoutMs(base), -1);  // nothing armed: sleep freely

  // With anything armed the sleep is capped at one tick — the wheel's
  // acceptable lateness — rather than the true minimum deadline (O(1)
  // under 10k scheduled idle timers).
  wheel.Schedule(1, base + milliseconds(50));
  int timeout = wheel.NextTimeoutMs(base);
  ASSERT_GE(timeout, 0);
  EXPECT_LE(timeout, 10);

  // Even a deadline already in the past wakes the loop within one tick.
  wheel.Schedule(2, base - milliseconds(5));
  timeout = wheel.NextTimeoutMs(base);
  ASSERT_GE(timeout, 0);
  EXPECT_LE(timeout, 10);
}

// ---- Poller (both backends) ------------------------------------------------

class PollerTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    poller_ = MakePoller(/*prefer_epoll=*/GetParam());
    ASSERT_NE(poller_, nullptr);
    ASSERT_EQ(::pipe(pipe_), 0);
  }
  void TearDown() override {
    if (pipe_[0] >= 0) ::close(pipe_[0]);
    if (pipe_[1] >= 0) ::close(pipe_[1]);
  }

  std::vector<ReadyEvent> Wait(int timeout_ms) {
    std::vector<ReadyEvent> events;
    EXPECT_TRUE(poller_->Wait(timeout_ms, &events).ok());
    return events;
  }

  std::unique_ptr<Poller> poller_;
  int pipe_[2] = {-1, -1};
};

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Preferred" : "PollFallback";
                         });

TEST_P(PollerTest, ReportsReadableOnlyOnceDataArrives) {
  ASSERT_TRUE(poller_->Add(pipe_[0], /*want_read=*/true, false).ok());
  EXPECT_TRUE(Wait(0).empty());

  ASSERT_EQ(::write(pipe_[1], "x", 1), 1);
  std::vector<ReadyEvent> events = Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pipe_[0]);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST_P(PollerTest, UpdateReplacesTheInterestSet) {
  // Registered with an empty interest set: data arriving is not reported.
  ASSERT_TRUE(poller_->Add(pipe_[0], false, false).ok());
  ASSERT_EQ(::write(pipe_[1], "x", 1), 1);
  EXPECT_TRUE(Wait(0).empty());

  ASSERT_TRUE(poller_->Update(pipe_[0], /*want_read=*/true, false).ok());
  std::vector<ReadyEvent> events = Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].readable);
}

TEST_P(PollerTest, WritableEndOfAnEmptyPipeIsWritable) {
  ASSERT_TRUE(poller_->Add(pipe_[1], false, /*want_write=*/true).ok());
  std::vector<ReadyEvent> events = Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pipe_[1]);
  EXPECT_TRUE(events[0].writable);
}

TEST_P(PollerTest, RemovedFdIsNeverReported) {
  ASSERT_TRUE(poller_->Add(pipe_[0], true, false).ok());
  poller_->Remove(pipe_[0]);
  ASSERT_EQ(::write(pipe_[1], "x", 1), 1);
  EXPECT_TRUE(Wait(0).empty());
  // Double-registration after removal works (fd slots are recycled).
  ASSERT_TRUE(poller_->Add(pipe_[0], true, false).ok());
  EXPECT_EQ(Wait(1000).size(), 1u);
}

TEST_P(PollerTest, PeerCloseSurfacesAsHangupOrFinalRead) {
  ASSERT_TRUE(poller_->Add(pipe_[0], true, false).ok());
  ::close(pipe_[1]);
  pipe_[1] = -1;
  std::vector<ReadyEvent> events = Wait(1000);
  ASSERT_EQ(events.size(), 1u);
  // Pipes report POLLHUP on writer close; either flavor tells the owner to
  // drain and tear down, which is all the loop relies on.
  EXPECT_TRUE(events[0].hangup || events[0].readable);
}

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, SingleThreadExecutesInFifoOrder) {
  WorkerPool pool(1);
  pool.Start();
  std::mutex mutex;
  std::condition_variable done;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
      if (order.size() == 16) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(done.wait_for(lock, std::chrono::seconds(10),
                            [&] { return order.size() == 16; }));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  pool.Stop();
}

TEST(WorkerPoolTest, SubmitAfterStopIsDiscarded) {
  WorkerPool pool(2);
  pool.Start();
  pool.Stop();
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(ran.load());
}

TEST(WorkerPoolTest, StopIsIdempotentAndDestructorSafe) {
  auto pool = std::make_unique<WorkerPool>(2);
  pool->Start();
  std::atomic<int> ran{0};
  pool->Submit([&] { ran.fetch_add(1); });
  pool->Stop();
  pool->Stop();
  pool.reset();  // destructor after explicit Stop must not crash
  EXPECT_LE(ran.load(), 1);
}

// ---- EventLoop -------------------------------------------------------------

class EventLoopTest : public ::testing::Test {
 protected:
  void StartLoop(bool use_epoll) {
    EventLoop::Options options;
    options.use_epoll = use_epoll;
    options.timer_tick = milliseconds(5);
    loop_ = std::make_unique<EventLoop>(options);
    ASSERT_TRUE(loop_->Init().ok());
    thread_ = std::thread([this] { loop_->Run(); });
  }
  void TearDown() override {
    if (loop_ != nullptr) loop_->Stop();
    if (thread_.joinable()) thread_.join();
  }

  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
};

TEST_F(EventLoopTest, PostedClosuresRunOnTheLoopThread) {
  StartLoop(/*use_epoll=*/true);
  std::mutex mutex;
  std::condition_variable cv;
  std::thread::id loop_thread_id;
  bool ran = false;
  loop_->Post([&] {
    std::lock_guard<std::mutex> lock(mutex);
    loop_thread_id = std::this_thread::get_id();
    ran = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(10), [&] { return ran; }));
  EXPECT_EQ(loop_thread_id, thread_.get_id());
  EXPECT_NE(loop_thread_id, std::this_thread::get_id());
}

TEST_F(EventLoopTest, TimerCallbackFiresOnTheLoopThread) {
  StartLoop(/*use_epoll=*/true);
  std::mutex mutex;
  std::condition_variable cv;
  uint64_t fired_id = 0;
  std::thread::id fired_on;
  // SetTimerCallback and ScheduleTimer are loop-thread-only; reach them
  // through Post. (Setting the callback directly here would race with the
  // running loop's reads of it — the thread-role annotation rejects it.)
  loop_->Post([&] {
    ClaimLoopThreadRole();  // Posted closures run on the loop thread.
    loop_->SetTimerCallback([&](uint64_t id) {
      std::lock_guard<std::mutex> lock(mutex);
      fired_id = id;
      fired_on = std::this_thread::get_id();
      cv.notify_one();
    });
    loop_->ScheduleTimer(42, TimerWheel::Clock::now() + milliseconds(20));
  });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return fired_id != 0; }));
  EXPECT_EQ(fired_id, 42u);
  EXPECT_EQ(fired_on, thread_.get_id());
}

TEST_F(EventLoopTest, PollFallbackReportsItsBackendName) {
  StartLoop(/*use_epoll=*/false);
  EXPECT_STREQ(loop_->poller_name(), "poll");
}

#ifdef __linux__
TEST_F(EventLoopTest, EpollPreferredOnLinux) {
  StartLoop(/*use_epoll=*/true);
  EXPECT_STREQ(loop_->poller_name(), "epoll");
}
#endif

// ---- Server on the poll(2) fallback ----------------------------------------
// The event engine must serve identically when epoll is unavailable; this
// pins the ServerOptions::use_epoll seam end to end over a real socket.

TEST(PollFallbackServerTest, QueryRoundTripsOverARealSocket) {
  Schema schema({{"class", ValueType::kString}, {"a0", ValueType::kDouble}});
  Table table(schema, {Row{Value("g0"), Value(1.0)},
                       Row{Value("g1"), Value(2.0)}});
  sql::Database db;
  db.Register("data", std::move(table));

  ServerOptions options;
  options.port = 0;
  options.use_epoll = false;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string sql = "SELECT count(*) FROM data";
  const std::string request =
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: " +
      std::to_string(sql.size()) + "\r\n\r\n" + sql;
  ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
  std::string buffer;
  char chunk[4096];
  while (buffer.find("\"rows\"") == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_NE(buffer.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(buffer.find("[2]"), std::string::npos);
  ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace galaxy::server
