// End-to-end serving-layer tests over real loopback sockets: round trips,
// admission-control rejection, deterministic graceful degradation (206),
// result-cache hits and their invalidation by /update, the incremental
// skyline view, the metrics endpoint, and the idle/slowloris guard — all
// against the event-driven engine (the only serving model).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "server/server.h"
#include "sql/catalog.h"

namespace galaxy::server {
namespace {

struct ClientResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

// One full HTTP exchange on a fresh loopback connection.
ClientResponse Exchange(uint16_t port, const std::string& request) {
  ClientResponse out;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return out;
    }
    sent += static_cast<size_t>(n);
  }
  std::string buffer;
  char chunk[8192];
  while (true) {
    size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      out.headers = buffer.substr(0, header_end + 4);
      out.status = std::atoi(out.headers.c_str() + 9);
      size_t content_length = 0;
      size_t cl = out.headers.find("Content-Length:");
      if (cl != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(out.headers.c_str() + cl + 15, nullptr, 10));
      }
      size_t total = header_end + 4 + content_length;
      while (buffer.size() < total) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<size_t>(n));
      }
      out.body = buffer.substr(header_end + 4);
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string QueryRequest(const std::string& sql,
                         const std::string& extra_headers = "") {
  return "POST /query HTTP/1.1\r\nHost: test\r\n" + extra_headers +
         "Content-Length: " + std::to_string(sql.size()) + "\r\n\r\n" + sql;
}

// A grouped numeric table: `groups` labels, `per_group` records each, two
// uniform attributes — big enough configurations make the skyline step
// dominate the comparison budget.
Table GroupedTable(int groups, int per_group, uint64_t seed) {
  Schema schema({{"class", ValueType::kString},
                 {"a0", ValueType::kDouble},
                 {"a1", ValueType::kDouble}});
  Rng rng(seed);
  std::vector<Row> rows;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) {
      rows.push_back(Row{Value("g" + std::to_string(g)),
                         Value(rng.NextDouble()), Value(rng.NextDouble())});
    }
  }
  return Table(schema, std::move(rows));
}

class ServerE2eTest : public ::testing::Test {
 protected:
  void StartServer(Table table, ServerOptions options = {}) {
    db_.Register("data", std::move(table));
    options.port = 0;  // ephemeral
    server_ = std::make_unique<Server>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
    ASSERT_NE(port_, 0);
  }

  sql::Database db_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(ServerE2eTest, HealthzAndUnknownRoutes) {
  StartServer(GroupedTable(2, 2, 1));
  ClientResponse health =
      Exchange(port_, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  EXPECT_EQ(Exchange(port_, "GET /nope HTTP/1.1\r\n\r\n").status, 404);
  // Wrong method on a known route.
  EXPECT_EQ(Exchange(port_, "GET /query HTTP/1.1\r\n\r\n").status, 405);
  // A parse error is answered (with close) rather than dropped.
  EXPECT_EQ(Exchange(port_, "BAD\r\n\r\n").status, 400);
}

TEST_F(ServerE2eTest, QueryRoundTripJsonAndCsv) {
  StartServer(GroupedTable(3, 4, 2));
  const std::string sql =
      "SELECT class, count(*) FROM data GROUP BY class ORDER BY class";

  ClientResponse json = Exchange(port_, QueryRequest(sql));
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.headers.find("application/json"), std::string::npos);
  EXPECT_NE(json.body.find("\"columns\": [\"class\", \"COUNT(*)\"]"),
            std::string::npos);
  EXPECT_NE(json.body.find("[\"g0\", 4]"), std::string::npos);
  EXPECT_NE(json.body.find("\"degraded\": false"), std::string::npos);

  ClientResponse csv =
      Exchange(port_, QueryRequest(sql, "Accept: text/csv\r\n"));
  EXPECT_EQ(csv.status, 200);
  EXPECT_NE(csv.headers.find("text/csv"), std::string::npos);
  EXPECT_NE(csv.body.find("class,COUNT(*)"), std::string::npos);
  EXPECT_NE(csv.body.find("g0,4"), std::string::npos);
}

TEST_F(ServerE2eTest, BadSqlIs400AndEmptyBodyIs400) {
  StartServer(GroupedTable(2, 2, 3));
  EXPECT_EQ(Exchange(port_, QueryRequest("SELECT FROM nothing")).status, 400);
  EXPECT_EQ(Exchange(port_, QueryRequest("SELECT * FROM missing")).status,
            404);
  ClientResponse empty =
      Exchange(port_, "POST /query HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(empty.status, 400);
}

TEST_F(ServerE2eTest, OverloadReturns429) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.queue_capacity = 0;
  options.admission.queue_timeout = std::chrono::milliseconds(50);
  StartServer(GroupedTable(40, 50, 4), options);

  // A heavy skyline query holds the only slot; concurrent distinct
  // queries (different SQL, so no cache collisions) must be rejected.
  const std::string heavy =
      "SELECT class FROM data GROUP BY class "
      "SKYLINE OF a0 MAX, a1 MAX GAMMA 0.9";

  std::atomic<int> ok{0}, rejected{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      // A distinct LIMIT per client defeats result-cache sharing.
      ClientResponse r = Exchange(
          port_, QueryRequest(heavy + " LIMIT " + std::to_string(40 + c)));
      if (r.status == 200) ok.fetch_add(1);
      else if (r.status == 429) rejected.fetch_add(1);
      else other.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(other.load(), 0);
}

TEST_F(ServerE2eTest, ComparisonBudgetDegradesTo206) {
  StartServer(GroupedTable(50, 100, 5));
  const std::string sql =
      "SELECT class FROM data GROUP BY class "
      "SKYLINE OF a0 MAX, a1 MAX GAMMA 0.9";

  // Budget far above the row-at-a-time pre-skyline charges (~2 per row for
  // 5000 rows) but far below what the skyline step over 100-record groups
  // needs: the trip lands inside the degradable skyline operator,
  // deterministically.
  ClientResponse degraded = Exchange(
      port_, QueryRequest(sql, "X-Galaxy-Max-Comparisons: 50000\r\n"));
  EXPECT_EQ(degraded.status, 206);
  EXPECT_NE(degraded.headers.find("X-Galaxy-Quality: approximate-superset"),
            std::string::npos);
  EXPECT_NE(degraded.body.find("\"degraded\": true"), std::string::npos);

  // Strict mode turns the same trip into a hard 408.
  ClientResponse strict = Exchange(
      port_, QueryRequest(sql, "X-Galaxy-Max-Comparisons: 50000\r\n"
                               "X-Galaxy-Strict: 1\r\n"));
  EXPECT_EQ(strict.status, 408);

  // The degraded answer is a sound superset of the exact one.
  ClientResponse exact = Exchange(port_, QueryRequest(sql));
  EXPECT_EQ(exact.status, 200);
  // Every group in the exact skyline appears in the degraded superset.
  for (int g = 0; g < 50; ++g) {
    std::string label = "\"g" + std::to_string(g) + "\"";
    if (exact.body.find(label) != std::string::npos) {
      EXPECT_NE(degraded.body.find(label), std::string::npos) << label;
    }
  }
}

TEST_F(ServerE2eTest, TinyWallDeadlineIsBoundedAndSound) {
  StartServer(GroupedTable(40, 60, 6));
  const std::string sql =
      "SELECT class FROM data GROUP BY class "
      "SKYLINE OF a0 MAX, a1 MAX GAMMA 0.9";
  // A 1ms wall deadline can trip inside the degradable skyline step (206),
  // before it in a non-degradable phase (408), or — on a fast machine —
  // not at all (200). All three are contract-conforming; what is not
  // allowed is a 5xx or a hang.
  ClientResponse r =
      Exchange(port_, QueryRequest(sql, "X-Galaxy-Timeout-Ms: 1\r\n"));
  EXPECT_TRUE(r.status == 200 || r.status == 206 || r.status == 408)
      << r.status;
  if (r.status == 206) {
    EXPECT_NE(r.body.find("\"degraded\": true"), std::string::npos);
  }
}

TEST_F(ServerE2eTest, CacheHitThenInvalidationAfterUpdate) {
  StartServer(GroupedTable(3, 3, 7));
  const std::string sql =
      "SELECT class, count(*) FROM data GROUP BY class ORDER BY class";

  ClientResponse miss = Exchange(port_, QueryRequest(sql));
  EXPECT_EQ(miss.status, 200);
  EXPECT_NE(miss.headers.find("X-Galaxy-Cache: miss"), std::string::npos);

  // Same statement, different whitespace/case: still a hit.
  ClientResponse hit = Exchange(
      port_,
      QueryRequest("select   class, COUNT(*) from DATA group by class "
                   "order by class"));
  EXPECT_EQ(hit.status, 200);
  EXPECT_NE(hit.headers.find("X-Galaxy-Cache: hit"), std::string::npos);
  EXPECT_EQ(hit.body, miss.body);

  // /update bumps the table version; the next lookup must recompute.
  const std::string row = "g0,0.5,0.5";
  ClientResponse update = Exchange(
      port_,
      "POST /update?table=data&op=insert HTTP/1.1\r\nContent-Length: " +
          std::to_string(row.size()) + "\r\n\r\n" + row);
  EXPECT_EQ(update.status, 200);
  EXPECT_NE(update.body.find("\"version\": "), std::string::npos);

  ClientResponse after = Exchange(port_, QueryRequest(sql));
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.headers.find("X-Galaxy-Cache: miss"), std::string::npos);
  EXPECT_NE(after.body.find("[\"g0\", 4]"), std::string::npos);  // 3 -> 4

  ResultCache::Stats stats = server_->cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.invalidations, 1u);
}

TEST_F(ServerE2eTest, UpdateValidation) {
  StartServer(GroupedTable(2, 2, 8));
  // Unknown table.
  EXPECT_EQ(Exchange(port_,
                     "POST /update?table=ghost HTTP/1.1\r\n"
                     "Content-Length: 10\r\n\r\ng0,0.1,0.2")
                .status,
            404);
  // Malformed row (arity).
  EXPECT_EQ(Exchange(port_,
                     "POST /update?table=data HTTP/1.1\r\n"
                     "Content-Length: 6\r\n\r\ng0,0.1")
                .status,
            400);
  // Bad op.
  EXPECT_EQ(Exchange(port_,
                     "POST /update?table=data&op=upsert HTTP/1.1\r\n"
                     "Content-Length: 10\r\n\r\ng0,0.1,0.2")
                .status,
            400);
  // Removing an absent row.
  EXPECT_EQ(Exchange(port_,
                     "POST /update?table=data&op=remove HTTP/1.1\r\n"
                     "Content-Length: 10\r\n\r\nzz,0.9,0.9")
                .status,
            404);
}

TEST_F(ServerE2eTest, SkylineViewMaintainedAcrossUpdates) {
  StartServer(GroupedTable(3, 5, 9));
  SkylineViewConfig view;
  view.table = "data";
  view.group_column = "class";
  view.attrs = {"a0", "a1"};
  view.gamma = 0.6;
  ASSERT_TRUE(server_->EnableSkylineView(view).ok());

  ClientResponse before = Exchange(port_, "GET /skyline HTTP/1.1\r\n\r\n");
  EXPECT_EQ(before.status, 200);
  EXPECT_NE(before.body.find("\"total_records\": 15"), std::string::npos);

  // Insert a group of dominant records; it must enter the skyline.
  for (int i = 0; i < 3; ++i) {
    const std::string row = "champ,9.0,9.0";
    ClientResponse update = Exchange(
        port_,
        "POST /update?table=data&op=insert HTTP/1.1\r\nContent-Length: " +
            std::to_string(row.size()) + "\r\n\r\n" + row);
    ASSERT_EQ(update.status, 200) << update.body;
  }
  ClientResponse after = Exchange(port_, "GET /skyline HTTP/1.1\r\n\r\n");
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"champ\""), std::string::npos);
  EXPECT_NE(after.body.find("\"total_records\": 18"), std::string::npos);

  // Removing the inserted records restores the original skyline size.
  for (int i = 0; i < 3; ++i) {
    const std::string row = "champ,9.0,9.0";
    ClientResponse update = Exchange(
        port_,
        "POST /update?table=data&op=remove HTTP/1.1\r\nContent-Length: " +
            std::to_string(row.size()) + "\r\n\r\n" + row);
    ASSERT_EQ(update.status, 200) << update.body;
  }
  ClientResponse restored = Exchange(port_, "GET /skyline HTTP/1.1\r\n\r\n");
  EXPECT_NE(restored.body.find("\"total_records\": 15"), std::string::npos);
  EXPECT_EQ(restored.body.find("\"champ\""), std::string::npos);
}

TEST_F(ServerE2eTest, MetricsEndpointReportsServingCounters) {
  StartServer(GroupedTable(2, 3, 10));
  const std::string sql = "SELECT count(*) FROM data";
  EXPECT_EQ(Exchange(port_, QueryRequest(sql)).status, 200);
  EXPECT_EQ(Exchange(port_, QueryRequest(sql)).status, 200);  // cache hit
  EXPECT_EQ(Exchange(port_, QueryRequest("garbage")).status, 400);

  ClientResponse metrics = Exchange(port_, "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  for (const char* needle :
       {"galaxy_queries_total 3", "galaxy_cache_hits_total 1",
        "galaxy_sql_parse_errors_total 1",
        "galaxy_http_responses_total{code=\"200\"}",
        "galaxy_http_responses_total{code=\"400\"} 1",
        "galaxy_query_latency_seconds_bucket",
        "galaxy_query_latency_seconds_p99", "galaxy_uptime_seconds",
        "galaxy_skyline_record_comparisons_total"}) {
    EXPECT_NE(metrics.body.find(needle), std::string::npos) << needle;
  }
}

TEST_F(ServerE2eTest, KeepAliveServesSequentialRequestsOnOneConnection) {
  StartServer(GroupedTable(2, 2, 11));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string buffer;
  char chunk[4096];
  for (int i = 0; i < 3; ++i) {
    const std::string request = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
    // "ok\n" is 3 bytes; read until the body arrives.
    while (buffer.find("ok\n") == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0);
      buffer.append(chunk, static_cast<size_t>(n));
    }
    buffer.clear();
  }
  ::close(fd);
}

TEST_F(ServerE2eTest, PipelinedRequestsAnsweredInOrder) {
  StartServer(GroupedTable(2, 2, 13));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Three requests in one write, no waiting in between: a liveness probe,
  // a query, and an unknown route. HTTP/1.1 pipelining requires the
  // responses back in exactly that order.
  const std::string sql = "SELECT count(*) FROM data";
  const std::string batch = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" +
                            QueryRequest(sql) +
                            "GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n";
  size_t sent = 0;
  while (sent < batch.size()) {
    ssize_t n =
        ::send(fd, batch.data() + sent, batch.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  char chunk[8192];
  std::vector<int> statuses;
  std::vector<std::string> bodies;
  while (statuses.size() < 3) {
    size_t header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      std::string headers = buffer.substr(0, header_end + 4);
      size_t content_length = 0;
      size_t cl = headers.find("Content-Length:");
      if (cl != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(headers.c_str() + cl + 15, nullptr, 10));
      }
      size_t total = header_end + 4 + content_length;
      if (buffer.size() >= total) {
        statuses.push_back(std::atoi(headers.c_str() + 9));
        bodies.push_back(buffer.substr(header_end + 4, content_length));
        buffer.erase(0, total);
        continue;
      }
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection closed after " << statuses.size()
                    << " responses";
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], 200);
  EXPECT_EQ(bodies[0], "ok\n");
  EXPECT_EQ(statuses[1], 200);
  EXPECT_NE(bodies[1].find("\"rows\""), std::string::npos);
  EXPECT_EQ(statuses[2], 404);
}

TEST_F(ServerE2eTest, RequestSplitIntoSingleByteWritesParses) {
  StartServer(GroupedTable(2, 2, 14));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Worst-case read fragmentation: every byte of the request is its own
  // TCP segment. The incremental parser must reassemble it exactly.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = QueryRequest("SELECT count(*) FROM data");
  for (char c : request) {
    ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
  }
  std::string buffer;
  char chunk[8192];
  while (buffer.find("\"rows\"") == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_NE(buffer.find("HTTP/1.1 200"), std::string::npos);
  ::close(fd);
}

TEST_F(ServerE2eTest, StalledHalfRequestIsIdleClosedAndCounted) {
  ServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(200);
  StartServer(GroupedTable(2, 2, 15), options);

  // A slowloris-style client: half a request, then silence. The server
  // must close the connection after the idle window and count it.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string half = "POST /query HTTP/1.1\r\nContent-Le";
  ASSERT_GT(::send(fd, half.data(), half.size(), MSG_NOSIGNAL), 0);

  // recv returns 0 (EOF) when the server closes; block until it does. The
  // 200ms window plus scheduling slack stays far under the test timeout.
  char chunk[256];
  ssize_t n;
  do {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "expected clean server-side close, got errno " << errno;
  ::close(fd);

  ClientResponse metrics = Exchange(port_, "GET /metrics HTTP/1.1\r\n\r\n");
  ASSERT_EQ(metrics.status, 200);
  // Anchor at line start: a bare find() would land on the # HELP line.
  size_t pos = metrics.body.find("\ngalaxy_connections_idle_closed ");
  ASSERT_NE(pos, std::string::npos);
  int closed = std::atoi(metrics.body.c_str() + pos +
                         std::strlen("\ngalaxy_connections_idle_closed "));
  EXPECT_GE(closed, 1);
}

TEST_F(ServerE2eTest, StopUnblocksOpenConnections) {
  StartServer(GroupedTable(2, 2, 12));
  // Open a connection, send nothing, then stop the server: Stop() must
  // return promptly (shutdown unblocks the connection's recv).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto start = std::chrono::steady_clock::now();
  server_->Stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  ::close(fd);
}

}  // namespace
}  // namespace galaxy::server
