#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

#include "server/http_fuzz.h"

namespace galaxy::server {
namespace {

HttpRequest MustParse(const std::string& wire) {
  HttpRequest request;
  HttpParseResult result = ParseHttpRequest(wire, &request);
  EXPECT_EQ(result.state, ParseState::kDone) << wire;
  EXPECT_EQ(result.consumed, wire.size());
  return request;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequest req = MustParse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_TRUE(req.body.empty());
  EXPECT_FALSE(req.WantsClose());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequest req = MustParse(
      "POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\nSELECT 1+1;");
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "SELECT 1+1;");
}

TEST(HttpParserTest, ToleratesBareLf) {
  HttpRequest req =
      MustParse("POST /u HTTP/1.1\nContent-Length: 3\n\nabc");
  EXPECT_EQ(req.body, "abc");
}

TEST(HttpParserTest, DecodesQueryParameters) {
  HttpRequest req = MustParse(
      "GET /update?table=my%20table&op=insert&flag HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.path, "/update");
  ASSERT_NE(req.FindParam("table"), nullptr);
  EXPECT_EQ(*req.FindParam("table"), "my table");
  ASSERT_NE(req.FindParam("op"), nullptr);
  EXPECT_EQ(*req.FindParam("op"), "insert");
  ASSERT_NE(req.FindParam("flag"), nullptr);
  EXPECT_EQ(*req.FindParam("flag"), "");
  EXPECT_EQ(req.FindParam("missing"), nullptr);
}

TEST(HttpParserTest, HeaderLookupIsCaseInsensitive) {
  HttpRequest req = MustParse(
      "GET / HTTP/1.1\r\ncOnTeNt-TyPe: text/plain\r\n\r\n");
  ASSERT_NE(req.FindHeader("Content-Type"), nullptr);
  EXPECT_EQ(*req.FindHeader("Content-Type"), "text/plain");
}

TEST(HttpParserTest, ConnectionCloseSemantics) {
  EXPECT_TRUE(
      MustParse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").WantsClose());
  EXPECT_TRUE(MustParse("GET / HTTP/1.0\r\n\r\n").WantsClose());
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .WantsClose());
}

TEST(HttpParserTest, IncrementalFeedAcrossEveryBoundary) {
  const std::string wire =
      "POST /query?fmt=json HTTP/1.1\r\nHost: a\r\nContent-Length: 6\r\n\r\n"
      "SELECT";
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpRequest req;
    HttpParseResult partial =
        ParseHttpRequest(std::string_view(wire).substr(0, cut), &req);
    EXPECT_NE(partial.state, ParseState::kDone) << "cut=" << cut;
  }
  MustParse(wire);
}

TEST(HttpParserTest, PipelinedRequestsConsumeExactly) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(first + second, &req);
  ASSERT_EQ(result.state, ParseState::kDone);
  EXPECT_EQ(result.consumed, first.size());
  EXPECT_EQ(req.path, "/a");
}

TEST(HttpParserTest, RejectsUnsupportedVersion) {
  HttpRequest req;
  HttpParseResult result =
      ParseHttpRequest("GET / HTTP/2.0\r\n\r\n", &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 505);
}

TEST(HttpParserTest, RejectsTransferEncoding) {
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 501);
}

TEST(HttpParserTest, RejectsDuplicateContentLength) {
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx",
      &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 400);
}

TEST(HttpParserTest, RejectsOversizedBodyDeclaration) {
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(
      "POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 413);
}

TEST(HttpParserTest, RejectsTooManyHeaders) {
  std::string wire = "GET / HTTP/1.1\r\n";
  for (size_t i = 0; i <= kMaxHeaderCount; ++i) {
    wire += "X-H" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(wire, &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 413);
}

TEST(HttpParserTest, RejectsEndlessRequestLine) {
  std::string wire(kMaxHeaderBytes + 2, 'a');  // no newline at all
  HttpRequest req;
  HttpParseResult result = ParseHttpRequest(wire, &req);
  ASSERT_EQ(result.state, ParseState::kError);
  EXPECT_EQ(result.http_status, 413);
}

TEST(HttpParserTest, RejectsMalformedRequestLines) {
  for (const char* wire :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/1.1 extra\r\n\r\n",
        "G@T / HTTP/1.1\r\n\r\n", " / HTTP/1.1\r\n\r\n"}) {
    HttpRequest req;
    HttpParseResult result = ParseHttpRequest(wire, &req);
    EXPECT_EQ(result.state, ParseState::kError) << wire;
    EXPECT_FALSE(result.error.ok()) << wire;
  }
}

TEST(HttpUtilTest, UrlDecodeHandlesEscapesAndMalformed) {
  EXPECT_EQ(UrlDecode("a+b%2Fc"), "a b/c");
  EXPECT_EQ(UrlDecode("%zz%"), "%zz%");  // malformed escapes kept literally
  EXPECT_EQ(UrlDecode("%41"), "A");
}

TEST(HttpUtilTest, JsonEscapeControlsAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(HttpUtilTest, SerializeResponseRoundTripsThroughHeaders) {
  HttpResponse response;
  response.status = 206;
  response.body = "hello";
  response.extra_headers.emplace_back("X-Galaxy-Quality",
                                      "approximate-superset");
  response.close = true;
  std::string wire = SerializeResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 206 Partial Content\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Galaxy-Quality: approximate-superset\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpFuzzTest, ShortCampaignHoldsTheContract) {
  HttpFuzzStats stats;
  std::string detail = FuzzHttp(/*seed=*/11, /*iterations=*/300, &stats);
  EXPECT_EQ(detail, "");
  EXPECT_GT(stats.inputs, 900u);
  EXPECT_GT(stats.parsed, 0u);
  EXPECT_GT(stats.errors, 0u);
}

}  // namespace
}  // namespace galaxy::server
