#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "sql/catalog.h"
#include "sql/parser.h"

namespace galaxy::server {
namespace {

Table TinyTable() {
  Schema schema({{"a", ValueType::kInt64}});
  return Table(schema, {{Value(int64_t{1})}});
}

TEST(NormalizeSqlTest, CollapsesWhitespaceAndFoldsCase) {
  EXPECT_EQ(NormalizeSql("SELECT  *\n FROM\tMovies"), "select * from movies");
  EXPECT_EQ(NormalizeSql("  select 1  "), "select 1");
}

TEST(NormalizeSqlTest, PreservesStringLiterals) {
  EXPECT_EQ(NormalizeSql("SELECT 'A  B' FROM t"), "select 'A  B' from t");
  // The '' escape stays inside the literal.
  EXPECT_EQ(NormalizeSql("SELECT 'It''S' FROM T"), "select 'It''S' from t");
}

TEST(NormalizeSqlTest, EquivalentSpellingsShareAKey) {
  EXPECT_EQ(NormalizeSql("SELECT * FROM t WHERE a > 1"),
            NormalizeSql("select  *  from T where A > 1"));
  EXPECT_NE(NormalizeSql("SELECT 'x' FROM t"),
            NormalizeSql("SELECT 'X' FROM t"));
}

std::vector<std::string> TablesOf(const std::string& sql) {
  auto stmt = sql::Parse(sql);
  EXPECT_TRUE(stmt.ok()) << sql;
  return CollectReferencedTables(**stmt);
}

TEST(CollectReferencedTablesTest, FindsFromSubqueryAndUnionTables) {
  EXPECT_EQ(TablesOf("SELECT * FROM Movies"),
            (std::vector<std::string>{"movies"}));
  EXPECT_EQ(TablesOf("SELECT * FROM a WHERE x IN (SELECT x FROM b)"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(TablesOf("SELECT x FROM a UNION SELECT x FROM b"),
            (std::vector<std::string>{"a", "b"}));
  // Duplicates collapse.
  EXPECT_EQ(TablesOf("SELECT * FROM t WHERE x IN (SELECT x FROM T)"),
            (std::vector<std::string>{"t"}));
}

TEST(ResultCacheTest, HitAfterInsertMissAfterVersionBump) {
  sql::Database db;
  uint64_t v1 = db.Register("t", TinyTable());
  ResultCache cache(/*max_entries=*/4, /*max_bytes=*/1 << 20);

  EXPECT_EQ(cache.Lookup("k", db), nullptr);  // cold miss
  cache.Insert("k", {{"t", v1}}, CachedResponse{"body", "application/json"});
  auto hit = cache.Lookup("k", db);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "body");

  db.Register("t", TinyTable());  // bump the version
  EXPECT_EQ(cache.Lookup("k", db), nullptr);
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);  // the stale entry was dropped
}

TEST(ResultCacheTest, MissingDependencyTableInvalidates) {
  sql::Database db;
  uint64_t v = db.Register("t", TinyTable());
  ResultCache cache(4, 1 << 20);
  cache.Insert("k", {{"gone", v}}, CachedResponse{"b", "text/csv"});
  EXPECT_EQ(cache.Lookup("k", db), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCacheTest, LruEvictionByEntryCount) {
  sql::Database db;
  uint64_t v = db.Register("t", TinyTable());
  ResultCache cache(/*max_entries=*/2, /*max_bytes=*/1 << 20);
  cache.Insert("a", {{"t", v}}, CachedResponse{"1", "x"});
  cache.Insert("b", {{"t", v}}, CachedResponse{"2", "x"});
  ASSERT_NE(cache.Lookup("a", db), nullptr);  // touch "a" -> "b" is LRU
  cache.Insert("c", {{"t", v}}, CachedResponse{"3", "x"});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("a", db), nullptr);
  EXPECT_EQ(cache.Lookup("b", db), nullptr);  // evicted
  EXPECT_NE(cache.Lookup("c", db), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, ByteBoundEvictsAndOversizeBodyIsNotCached) {
  sql::Database db;
  uint64_t v = db.Register("t", TinyTable());
  ResultCache cache(/*max_entries=*/100, /*max_bytes=*/100);
  cache.Insert("big", {{"t", v}},
               CachedResponse{std::string(101, 'x'), "x"});
  EXPECT_EQ(cache.size(), 0u);  // larger than the whole cache: skipped

  cache.Insert("a", {{"t", v}}, CachedResponse{std::string(60, 'a'), "x"});
  cache.Insert("b", {{"t", v}}, CachedResponse{std::string(60, 'b'), "x"});
  EXPECT_EQ(cache.size(), 1u);  // the byte bound forced "a" out
  EXPECT_EQ(cache.Lookup("a", db), nullptr);
  EXPECT_NE(cache.Lookup("b", db), nullptr);
}

TEST(ResultCacheTest, ReinsertReplacesExistingEntry) {
  sql::Database db;
  uint64_t v = db.Register("t", TinyTable());
  ResultCache cache(4, 1 << 20);
  cache.Insert("k", {{"t", v}}, CachedResponse{"old", "x"});
  cache.Insert("k", {{"t", v}}, CachedResponse{"new", "x"});
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup("k", db);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "new");
}

}  // namespace
}  // namespace galaxy::server
