// Fixture: analyzed under a src/core/algorithm_* path, so ScanAllPairs is
// a budget entry point. The nested loop reaches CountPairBlock — which has
// its own depth-2 loop and never charges — along a charge-free path that
// crosses into budget_helper_bad.cc.
void ScanAllPairs(int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      CountPairBlock(i, j);
    }
  }
}
