// Fixture: declared ACQUIRED_BEFORE order respected by the body; no
// finding.
#include "common/mutex.h"

class Ledger {
 public:
  void Update();

 private:
  common::Mutex first_mu_ ACQUIRED_BEFORE(second_mu_);
  common::Mutex second_mu_;
};

void Ledger::Update() {
  common::MutexLock first(&first_mu_);
  common::MutexLock second(&second_mu_);
}
