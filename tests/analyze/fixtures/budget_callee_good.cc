// Fixture: the nested scan itself never calls Charge, but every inner
// iteration goes through AccumulatePair, which does — charging in the
// callee satisfies the budget rule.
void AccumulatePair(ExecutionContext* exec, int i, int j) {
  if (!exec->Charge(1)) return;
  Consume(i, j);
}

void ScanCharged(ExecutionContext* exec, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      AccumulatePair(exec, i, j);
    }
  }
}
