// Fixture: the same uncharged nested loop as budget_deep_bad.cc, but the
// finding is suppressed by a comment block directly above the diagnosed
// (inner-loop) line.
void ScanSuppressed(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    // Bounded by a constant in the real-code analogue of this fixture.
    // galaxy-analyze: allow(budget-reach)
    for (int j = 0; j < n; ++j) {
      acc += i * j;
    }
  }
}
