// Fixture: cross-TU callee of budget_deep_bad.cc with an uncharged
// depth-2 loop. Not an entry file itself — only reachability from the
// algorithm entry makes it reportable.
int CountPairBlock(int a, int b) {
  int count = 0;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) {
      count += i * j;
    }
  }
  return count;
}
