// Fixture: the other half of the cross-TU cycle (see lock_cycle_a.cc).
#include "common/mutex.h"

common::Mutex g_second;

void SecondUnderFirst() {
  common::MutexLock lock(&g_second);
}

void TakeSecondThenFirst() {
  common::MutexLock lock(&g_second);
  TakeFirstInner();
}
