// Fixture: two TUs nesting the same locks in a CONSISTENT order; the
// linked acquisition graph is acyclic and must produce no finding.
#include "common/mutex.h"

common::Mutex g_outer;

void OuterThenInnerDirect() {
  common::MutexLock lock(&g_outer);
  InnerOnly();
}
