// Fixture: a reactor entry point (FdHandler-shaped OnReadable) that
// reaches a blocking primitive two calls deep, across TUs (the helpers
// live in blocking_deep.cc). OnHangup stays clean: the slow work escapes
// to a worker via Submit, so it never runs on the loop thread.
class SlowSink {
 public:
  void OnReadable();
  void OnHangup();

 private:
  WorkerPool* pool_ = nullptr;
};

void SlowSink::OnReadable() {
  StageOne();
}

void SlowSink::OnHangup() {
  pool_->Submit([] { StageOne(); });
}
