// Fixture: the body contradicts the declared ACQUIRED_BEFORE order — the
// derived edge slow_mu_ -> fast_mu_ closes a cycle with the declared
// fast_mu_ -> slow_mu_ edge.
#include "common/mutex.h"

class Registry {
 public:
  void Update();

 private:
  common::Mutex fast_mu_ ACQUIRED_BEFORE(slow_mu_);
  common::Mutex slow_mu_;
};

void Registry::Update() {
  common::MutexLock slow(&slow_mu_);
  common::MutexLock fast(&fast_mu_);
}
