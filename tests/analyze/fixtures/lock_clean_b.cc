// Fixture: consistent-order partner of lock_clean_a.cc.
#include "common/mutex.h"

common::Mutex g_inner;

void InnerOnly() {
  common::MutexLock lock(&g_inner);
}

void OuterThenInnerAgain() {
  common::MutexLock lock(&g_outer);
  common::MutexLock inner(&g_inner);
}
