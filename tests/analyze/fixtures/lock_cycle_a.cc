// Fixture: one half of a cross-TU lock-order cycle. This TU takes
// g_first, then calls into lock_cycle_b.cc while holding it; the other TU
// takes g_second before calling back into TakeFirstInner. Neither file is
// a deadlock on its own — only the linked graph shows the cycle.
#include "common/mutex.h"

common::Mutex g_first;

void TakeFirstThenSecond() {
  common::MutexLock lock(&g_first);
  SecondUnderFirst();
}

void TakeFirstInner() {
  common::MutexLock lock(&g_first);
}
