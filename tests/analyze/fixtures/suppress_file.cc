// Fixture: file-level suppression of the budget rule.
// galaxy-analyze: allow-file(budget-reach)
void ScanFileSuppressed(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      acc += i * j;
    }
  }
}
