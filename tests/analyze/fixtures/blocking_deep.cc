// Fixture: helpers for blocking_entry.cc — the blocking fsync sits two
// hops from the reactor entry, in a different TU.
void StageTwo(int fd) {
  fsync(fd);
}

void StageOne() {
  StageTwo(3);
}
