// Whole-program analyzer tests (tools/analyze/analyze.h). Every scenario
// here is cross-TU on purpose: fixtures are analyzed in pairs under
// synthetic paths, so the rules must flow facts through the linked call
// graph, not just within one file. The fixtures in fixtures/ are never
// compiled — they only need to satisfy the extractor's token grammar.
#include "analyze.h"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace galaxy::analyze {
namespace {

using lint::Diagnostic;

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(GALAXY_ANALYZE_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Analyzes fixtures as one program: (fixture file, synthetic path) pairs.
std::vector<Diagnostic> AnalyzeFixtures(
    const std::vector<std::pair<std::string, std::string>>& named) {
  std::vector<std::pair<std::string, std::string>> inputs;
  for (const auto& [fixture, path] : named) {
    inputs.emplace_back(path, ReadFixture(fixture));
  }
  return AnalyzeFiles(inputs);
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

bool AnyMessageContains(const std::vector<Diagnostic>& diags,
                        const std::string& rule, const std::string& text) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && d.message.find(text) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---- lock-order -----------------------------------------------------------

TEST(LockOrderRule, CrossTuCycleDetected) {
  auto diags = AnalyzeFixtures({
      {"lock_cycle_a.cc", "src/server/lock_cycle_a.cc"},
      {"lock_cycle_b.cc", "src/server/lock_cycle_b.cc"},
  });
  EXPECT_GE(CountRule(diags, "lock-order"), 1u);
  EXPECT_TRUE(AnyMessageContains(diags, "lock-order", "g_first"));
  EXPECT_TRUE(AnyMessageContains(diags, "lock-order", "g_second"));
}

TEST(LockOrderRule, EitherHalfAloneIsClean) {
  // The cycle only exists in the linked program; each TU in isolation
  // must be clean (no same-file inversion exists).
  for (const char* f : {"lock_cycle_a.cc", "lock_cycle_b.cc"}) {
    auto diags = AnalyzeFixtures({{f, std::string("src/server/") + f}});
    EXPECT_EQ(CountRule(diags, "lock-order"), 0u) << f;
  }
}

TEST(LockOrderRule, ConsistentCrossTuOrderIsClean) {
  auto diags = AnalyzeFixtures({
      {"lock_clean_a.cc", "src/server/lock_clean_a.cc"},
      {"lock_clean_b.cc", "src/server/lock_clean_b.cc"},
  });
  EXPECT_EQ(CountRule(diags, "lock-order"), 0u);
}

TEST(LockOrderRule, DeclaredOrderContradictionDetected) {
  auto diags =
      AnalyzeFixtures({{"order_mismatch.cc", "src/server/order_mismatch.cc"}});
  EXPECT_GE(CountRule(diags, "lock-order"), 1u);
  EXPECT_TRUE(AnyMessageContains(diags, "lock-order", "fast_mu_"));
}

TEST(LockOrderRule, DeclaredOrderRespectedIsClean) {
  auto diags =
      AnalyzeFixtures({{"order_match.cc", "src/server/order_match.cc"}});
  EXPECT_EQ(CountRule(diags, "lock-order"), 0u);
}

// ---- reactor-blocking -----------------------------------------------------

TEST(ReactorBlockingRule, BlockingTwoCallsDeepAcrossTus) {
  auto diags = AnalyzeFixtures({
      {"blocking_entry.cc", "src/server/slow_sink.cc"},
      {"blocking_deep.cc", "src/server/slow_stages.cc"},
  });
  // Exactly one finding: OnReadable -> StageOne -> StageTwo -> fsync. The
  // OnHangup path hands the same work to a worker via Submit and must NOT
  // be reported — worker threads may block.
  EXPECT_EQ(CountRule(diags, "reactor-blocking"), 1u);
  EXPECT_TRUE(AnyMessageContains(diags, "reactor-blocking", "fsync"));
  EXPECT_TRUE(AnyMessageContains(diags, "reactor-blocking", "OnReadable"));
  EXPECT_FALSE(AnyMessageContains(diags, "reactor-blocking", "OnHangup"));
}

TEST(ReactorBlockingRule, HelpersAloneAreClean) {
  // Without a reactor entry in the program, blocking helpers are fine.
  auto diags =
      AnalyzeFixtures({{"blocking_deep.cc", "src/server/slow_stages.cc"}});
  EXPECT_EQ(CountRule(diags, "reactor-blocking"), 0u);
}

// ---- budget-reach ---------------------------------------------------------

TEST(BudgetReachRule, UnchargedLoopsReachableAcrossTus) {
  auto diags = AnalyzeFixtures({
      {"budget_deep_bad.cc", "src/core/algorithm_fixture.cc"},
      {"budget_helper_bad.cc", "src/skyline/pair_block.cc"},
  });
  EXPECT_GE(CountRule(diags, "budget-reach"), 1u);
  // The cross-TU half: the helper's loop must be reported even though its
  // own file is not an entry point.
  EXPECT_TRUE(AnyMessageContains(diags, "budget-reach", "CountPairBlock"));
}

TEST(BudgetReachRule, HelperAloneIsClean) {
  auto diags =
      AnalyzeFixtures({{"budget_helper_bad.cc", "src/skyline/pair_block.cc"}});
  EXPECT_EQ(CountRule(diags, "budget-reach"), 0u);
}

TEST(BudgetReachRule, ChargeInCalleeSatisfiesTheRule) {
  auto diags = AnalyzeFixtures(
      {{"budget_callee_good.cc", "src/core/algorithm_charged.cc"}});
  EXPECT_EQ(CountRule(diags, "budget-reach"), 0u);
}

// ---- suppressions ---------------------------------------------------------

TEST(Suppressions, CommentBlockAboveTheDiagnosedLine) {
  auto diags = AnalyzeFixtures(
      {{"suppress_line.cc", "src/core/algorithm_suppressed.cc"}});
  EXPECT_EQ(CountRule(diags, "budget-reach"), 0u);
}

TEST(Suppressions, FileLevelAllow) {
  auto diags = AnalyzeFixtures(
      {{"suppress_file.cc", "src/core/algorithm_file_suppressed.cc"}});
  EXPECT_EQ(CountRule(diags, "budget-reach"), 0u);
}

TEST(Suppressions, UnsuppressedTwinStillFires) {
  // Guards against the suppression tests passing vacuously: the same loop
  // without the allow comment must fire.
  auto diags = AnalyzeFixtures(
      {{"budget_deep_bad.cc", "src/core/algorithm_fixture.cc"},
       {"budget_helper_bad.cc", "src/skyline/pair_block.cc"}});
  EXPECT_GE(CountRule(diags, "budget-reach"), 1u);
}

// ---- plumbing -------------------------------------------------------------

TEST(Plumbing, RuleNamesAreStable) {
  std::vector<std::string> names = RuleNames();
  EXPECT_EQ(names.size(), 3u);
  EXPECT_NE(std::find(names.begin(), names.end(), "lock-order"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "reactor-blocking"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "budget-reach"),
            names.end());
}

}  // namespace
}  // namespace galaxy::analyze
