#include "relation/table.h"

#include <gtest/gtest.h>

#include "datagen/movies.h"

namespace galaxy {
namespace {

Table SmallTable() {
  TableBuilder b{Schema({{"name", ValueType::kString},
                         {"score", ValueType::kDouble},
                         {"count", ValueType::kInt64}})};
  b.AddRow({"a", 1.5, 10}).AddRow({"b", 2.5, 20}).AddRow({"c", 3.5, 30});
  return b.Build();
}

TEST(TableTest, BasicShape) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.at(1, 0), Value("b"));
  EXPECT_EQ(t.at(2, 2), Value(30));
}

TEST(TableTest, NamedCellAccess) {
  Table t = SmallTable();
  EXPECT_EQ(t.at(0, "score").value(), Value(1.5));
  EXPECT_FALSE(t.at(0, "missing").ok());
  EXPECT_FALSE(t.at(99, "score").ok());
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  TableBuilder b{Schema({{"x", ValueType::kInt64}})};
  Status s = b.TryAddRow({Value(1), Value(2)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableBuilderTest, RejectsTypeMismatch) {
  TableBuilder b{Schema({{"x", ValueType::kInt64}})};
  EXPECT_EQ(b.TryAddRow({Value("nope")}).code(), StatusCode::kTypeError);
  // Double into int column is not widened.
  EXPECT_EQ(b.TryAddRow({Value(1.5)}).code(), StatusCode::kTypeError);
}

TEST(TableBuilderTest, WidensIntToDouble) {
  TableBuilder b{Schema({{"x", ValueType::kDouble}})};
  ASSERT_TRUE(b.TryAddRow({Value(3)}).ok());
  Table t = b.Build();
  EXPECT_EQ(t.at(0, 0).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(t.at(0, 0).AsDouble(), 3.0);
}

TEST(TableBuilderTest, AcceptsNulls) {
  TableBuilder b{Schema({{"x", ValueType::kInt64}})};
  ASSERT_TRUE(b.TryAddRow({Value::Null()}).ok());
  EXPECT_TRUE(b.Build().at(0, 0).is_null());
}

TEST(TableTest, ExtractNumeric) {
  Table t = SmallTable();
  auto points = t.ExtractNumeric({"score", "count"});
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0], (std::vector<double>{1.5, 10.0}));
  EXPECT_EQ((*points)[2], (std::vector<double>{3.5, 30.0}));
}

TEST(TableTest, ExtractNumericRejectsStrings) {
  Table t = SmallTable();
  EXPECT_FALSE(t.ExtractNumeric({"name"}).ok());
}

TEST(TableTest, ExtractNumericRejectsUnknownColumn) {
  Table t = SmallTable();
  EXPECT_FALSE(t.ExtractNumeric({"nope"}).ok());
}

TEST(TableTest, MovieTableMatchesFigure1) {
  Table t = datagen::MovieTable();
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.at(3, "Title").value(), Value("Pulp Fiction"));
  EXPECT_EQ(t.at(3, "Pop").value(), Value(557));
  EXPECT_EQ(t.at(6, "Qual").value(), Value(9.2));
  EXPECT_EQ(t.at(8, "Director").value(), Value("Wiseau"));
}

TEST(TableTest, ToStringContainsHeaderAndRows) {
  Table t = SmallTable();
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t = SmallTable();
  std::string s = t.ToString(/*max_rows=*/1);
  EXPECT_NE(s.find("2 more rows"), std::string::npos);
}

}  // namespace
}  // namespace galaxy
