// Adversarial inputs for the CSV reader: every malformed document must
// fail with kParseError naming the offending physical line — never crash,
// never buffer without bound, never smuggle garbage into a Table.

#include <string>

#include <gtest/gtest.h>

#include "relation/csv.h"

namespace galaxy {
namespace {

TEST(CsvMalformedTest, RaggedRowReportsPhysicalLine) {
  auto t = ReadCsvString("a,b\n1,2\n3\n4,5\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status();
  EXPECT_NE(t.status().message().find("expected 2"), std::string::npos);
}

TEST(CsvMalformedTest, RaggedRowTooManyFields) {
  auto t = ReadCsvString("a,b\n1,2,3\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(t.status().message().find("3 fields"), std::string::npos);
}

TEST(CsvMalformedTest, RaggedLineNumberSkipsBlankLines) {
  // The bad row sits on physical line 5 (line 3 is blank and skipped).
  auto t = ReadCsvString("a,b\n1,2\n\n3,4\n5\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 5"), std::string::npos)
      << t.status();
}

TEST(CsvMalformedTest, RaggedLineNumberAfterMultilineQuotedField) {
  // The quoted field spans physical lines 2-3, so the ragged row is on
  // line 4.
  auto t = ReadCsvString("a,b\n\"x\ny\",1\nonly_one\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 4"), std::string::npos)
      << t.status();
}

TEST(CsvMalformedTest, EmbeddedNulByteIsError) {
  std::string text = "a,b\n1,2\n3,4";
  text += '\0';
  text += "5\n";
  auto t = ReadCsvString(text);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("NUL"), std::string::npos);
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status();
}

TEST(CsvMalformedTest, NulInsideQuotedFieldIsError) {
  std::string text = "a\n\"x";
  text += '\0';
  text += "y\"\n";
  auto t = ReadCsvString(text);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("NUL"), std::string::npos);
}

TEST(CsvMalformedTest, OverlongRecordIsError) {
  CsvReadOptions options;
  options.max_record_bytes = 64;
  std::string text = "a\n" + std::string(1000, 'x') + "\n";
  auto t = ReadCsvString(text, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("max_record_bytes"), std::string::npos);
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos)
      << t.status();
}

TEST(CsvMalformedTest, OverlongUnterminatedQuoteIsBounded) {
  // An unclosed quote swallows the whole rest of the file into one record;
  // the byte cap must stop the buffering, not just the final quote check.
  CsvReadOptions options;
  options.max_record_bytes = 128;
  std::string text = "a\n\"" + std::string(10000, 'y');
  auto t = ReadCsvString(text, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(CsvMalformedTest, RecordCapZeroMeansUnlimited) {
  CsvReadOptions options;
  options.max_record_bytes = 0;
  std::string text = "a\n" + std::string(100000, 'x') + "\n";
  auto t = ReadCsvString(text, options);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvMalformedTest, UnterminatedQuoteNamesStartingLine) {
  auto t = ReadCsvString("a\nok\n\"oops\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos)
      << t.status();
  EXPECT_NE(t.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvMalformedTest, NonNumericCellsDegradeColumnToString) {
  // Partial numbers like "1.2.3" and "12x" must never half-parse into a
  // numeric column; the whole column falls back to strings losslessly.
  auto t = ReadCsvString("a,b\n1.2.3,1\n12x,2\n3,nan-ish\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->schema().column(0).type, ValueType::kString);
  EXPECT_EQ(t->at(0, 0), Value("1.2.3"));
  EXPECT_EQ(t->at(1, 0), Value("12x"));
}

TEST(CsvMalformedTest, ControlCharacterSoupDoesNotCrash) {
  std::string soup = "a,b\n";
  for (int c = 1; c < 32; ++c) {
    if (c == '\n' || c == '\r') continue;
    soup += static_cast<char>(c);
  }
  soup += ",1\n";
  auto t = ReadCsvString(soup);
  // Control characters are not an error per se (they are opaque string
  // bytes); the reader just must not crash or misreport arity.
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(CsvMalformedTest, HeaderOnlyRaggedDataRow) {
  auto t = ReadCsvString("a,b,c\n1,2\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace galaxy
