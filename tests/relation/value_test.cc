#include "relation/value.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3).AsInt64(), 3);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericEqualityPromotes) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_EQ(Value(3.0), Value(3));
  EXPECT_FALSE(Value(3) == Value(3.5));
}

TEST(ValueTest, EqualHashForEqualNumerics) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, StringsCompare) {
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_TRUE(Value("abc") < Value("abd"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, NullEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_FALSE(Value::Null() == Value(0));
}

TEST(ValueTest, CrossTypeOrderingNullNumericString) {
  EXPECT_TRUE(Value::Null() < Value(1));
  EXPECT_TRUE(Value(1) < Value("a"));
  EXPECT_TRUE(Value::Null() < Value("a"));
  EXPECT_FALSE(Value("a") < Value(1));
}

TEST(ValueTest, NumericOrdering) {
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value(1) < Value(1.5));
  EXPECT_TRUE(Value(-2.5) < Value(-2));
  EXPECT_FALSE(Value(2) < Value(2.0));
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Value(4).ToDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.5).ToDouble().value(), 4.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2");
  EXPECT_EQ(Value("text").ToString(), "text");
}

}  // namespace
}  // namespace galaxy
