// Round-trip and storage-layout tests for the column-major (SoA) Table:
// builder -> table -> CSV -> table equality including NULLs and int->double
// widening, validity-bitmap behavior across word boundaries, incremental
// type inference in ValueColumnBuilder, and the zero-copy contract of
// ExtractNumericColumns (double slices alias column storage directly).

#include <sstream>

#include <gtest/gtest.h>

#include "relation/column.h"
#include "relation/csv.h"
#include "relation/table.h"

namespace galaxy {
namespace {

// Cell-by-cell table equality with type identity (Value::operator== treats
// int 3 == double 3.0, which would mask widening bugs).
void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type)
        << "column " << a.schema().column(c).name;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      Value va = a.at(r, c);
      Value vb = b.at(r, c);
      EXPECT_EQ(va.type(), vb.type()) << "cell " << r << "," << c;
      EXPECT_EQ(va, vb) << "cell " << r << "," << c;
    }
  }
}

TEST(ColumnarRoundTrip, BuilderToTableStoresTypedColumns) {
  TableBuilder b{Schema({{"i", ValueType::kInt64},
                         {"d", ValueType::kDouble},
                         {"s", ValueType::kString}})};
  b.AddRow({1, 1.5, "a"})
      .AddRow({Value::Null(), 2.5, "b"})
      .AddRow({3, Value::Null(), Value::Null()});
  Table t = b.Build();

  const Column& i = t.column(0);
  EXPECT_EQ(i.type(), ValueType::kInt64);
  ASSERT_EQ(i.size(), 3u);
  EXPECT_EQ(i.null_count(), 1u);
  EXPECT_FALSE(i.is_null(0));
  EXPECT_TRUE(i.is_null(1));
  EXPECT_EQ(i.ints()[0], 1);
  EXPECT_EQ(i.ints()[2], 3);

  const Column& d = t.column(1);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(d.doubles()[1], 2.5);
  EXPECT_TRUE(d.is_null(2));

  const Column& s = t.column(2);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(s.strings()[1], "b");
  EXPECT_TRUE(s.is_null(2));
}

TEST(ColumnarRoundTrip, BuilderWidensIntIntoDoubleColumn) {
  TableBuilder b{Schema({{"d", ValueType::kDouble}})};
  b.AddRow({7}).AddRow({2.5});
  Table t = b.Build();
  EXPECT_EQ(t.column(0).type(), ValueType::kDouble);
  EXPECT_EQ(t.at(0, size_t{0}), Value(7.0));
  EXPECT_EQ(t.at(0, size_t{0}).type(), ValueType::kDouble);
}

TEST(ColumnarRoundTrip, CsvRoundTripPreservesCellsNullsAndTypes) {
  TableBuilder b{Schema({{"name", ValueType::kString},
                         {"year", ValueType::kInt64},
                         {"score", ValueType::kDouble}})};
  // score needs a non-integral double so the reader re-infers kDouble (the
  // CSV text for 9.0 is "9", which reads back as an int column).
  b.AddRow({"with, comma", 2001, 9.5})
      .AddRow({"plain", Value::Null(), 2})  // widened by the builder
      .AddRow({Value::Null(), 1999, Value::Null()});
  Table original = b.Build();

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());
  auto reread = ReadCsvString(out.str());
  ASSERT_TRUE(reread.ok()) << reread.status();
  ExpectTablesIdentical(original, *reread);
}

TEST(ColumnarRoundTrip, CsvRoundTripAllNullColumnSurvives) {
  // A column with no non-null cells has no payload to infer a type from;
  // both the builder (kNull fallback is the schema type) and the CSV
  // reader must agree the cells are NULL after the trip.
  TableBuilder b{Schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}})};
  b.AddRow({1, Value::Null()}).AddRow({2, Value::Null()});
  Table original = b.Build();

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());
  auto reread = ReadCsvString(out.str());
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->num_rows(), 2u);
  EXPECT_TRUE(reread->at(0, size_t{1}).is_null());
  EXPECT_TRUE(reread->at(1, size_t{1}).is_null());
}

TEST(ColumnarRoundTrip, ValidityBitmapAcrossWordBoundary) {
  // 130 rows spans three 64-bit validity words; every third row is NULL.
  Column col{ValueType::kInt64};
  size_t nulls = 0;
  for (size_t i = 0; i < 130; ++i) {
    if (i % 3 == 2) {
      col.AppendNull();
      ++nulls;
    } else {
      col.AppendInt64(static_cast<int64_t>(i));
    }
  }
  EXPECT_EQ(col.size(), 130u);
  EXPECT_EQ(col.null_count(), nulls);
  for (size_t i = 0; i < 130; ++i) {
    EXPECT_EQ(col.is_null(i), i % 3 == 2) << "row " << i;
    if (i % 3 != 2) {
      EXPECT_EQ(col.GetValue(i), Value(static_cast<int64_t>(i)));
    }
  }
}

TEST(ColumnarRoundTrip, LateFirstNullBackfillsValidity) {
  // The bitmap materializes lazily on the first NULL; earlier rows must
  // read back as valid, including past the first word.
  Column col{ValueType::kDouble};
  for (size_t i = 0; i < 70; ++i) col.AppendDouble(1.0);
  col.AppendNull();
  for (size_t i = 0; i < 70; ++i) EXPECT_FALSE(col.is_null(i)) << i;
  EXPECT_TRUE(col.is_null(70));
}

TEST(ColumnarRoundTrip, ValueColumnBuilderInfersFromFirstNonNull) {
  // NULL prefix, then a double: the prefix reboxes into the typed column.
  ValueColumnBuilder b{"c"};
  ASSERT_TRUE(b.Append(Value::Null()).ok());
  ASSERT_TRUE(b.Append(Value(2.5)).ok());
  EXPECT_EQ(b.type(), ValueType::kDouble);
  Column col = std::move(b).Build(ValueType::kInt64);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_TRUE(col.is_null(0));
  EXPECT_EQ(col.GetValue(1), Value(2.5));
}

TEST(ColumnarRoundTrip, ValueColumnBuilderWidensIntToDouble) {
  ValueColumnBuilder b{"c"};
  ASSERT_TRUE(b.Append(Value(1)).ok());
  ASSERT_TRUE(b.Append(Value::Null()).ok());
  ASSERT_TRUE(b.Append(Value(0.5)).ok());
  EXPECT_EQ(b.type(), ValueType::kDouble);
  Column col = std::move(b).Build(ValueType::kInt64);
  EXPECT_EQ(col.GetValue(0), Value(1.0));
  EXPECT_EQ(col.GetValue(0).type(), ValueType::kDouble);
  EXPECT_TRUE(col.is_null(1));
  EXPECT_EQ(col.GetValue(2), Value(0.5));
}

TEST(ColumnarRoundTrip, ValueColumnBuilderRejectsMixedTypes) {
  ValueColumnBuilder b{"tag"};
  ASSERT_TRUE(b.Append(Value("a")).ok());
  Status s = b.Append(Value(3));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("tag"), std::string::npos) << s;
}

TEST(ColumnarRoundTrip, ValueColumnBuilderAllNullTakesFallback) {
  ValueColumnBuilder b{"c"};
  ASSERT_TRUE(b.Append(Value::Null()).ok());
  ASSERT_TRUE(b.Append(Value::Null()).ok());
  Column col = std::move(b).Build(ValueType::kString);
  EXPECT_EQ(col.type(), ValueType::kString);
  EXPECT_EQ(col.null_count(), 2u);
}

// --- Zero-copy contract of the batch extraction path ---------------------

TEST(ExtractNumericColumns, DoubleSlicesAliasColumnStorage) {
  TableBuilder b{Schema({{"a", ValueType::kDouble},
                         {"n", ValueType::kInt64},
                         {"b", ValueType::kDouble}})};
  b.AddRow({1.0, 10, 4.0}).AddRow({2.0, 20, 5.0}).AddRow({3.0, 30, 6.0});
  Table t = b.Build();

  auto cols = t.ExtractNumericColumns({"a", "b", "n"});
  ASSERT_TRUE(cols.ok()) << cols.status();
  ASSERT_EQ(cols->slices.size(), 3u);

  // kDouble columns: the span must point INTO the table's own storage —
  // this is the property that makes the executor -> kernel handoff copyless.
  EXPECT_EQ(cols->slices[0].data(), t.column(0).doubles().data());
  EXPECT_EQ(cols->slices[1].data(), t.column(2).doubles().data());
  EXPECT_EQ(cols->slices[0].size(), t.num_rows());

  // kInt64 columns are converted exactly once into the owned backing store.
  EXPECT_NE(cols->slices[2].data(), nullptr);
  ASSERT_EQ(cols->owned.size(), 1u);
  EXPECT_EQ(cols->slices[2].data(), cols->owned[0].data());
  EXPECT_EQ(cols->slices[2][1], 20.0);
}

TEST(ExtractNumericColumns, EmptyTableYieldsEmptySlices) {
  Table t{Schema({{"a", ValueType::kDouble}}), std::vector<Row>{}};
  auto cols = t.ExtractNumericColumns({"a"});
  ASSERT_TRUE(cols.ok()) << cols.status();
  ASSERT_EQ(cols->slices.size(), 1u);
  EXPECT_EQ(cols->slices[0].size(), 0u);
}

TEST(ExtractNumericColumns, NullAndStringCellsFail) {
  TableBuilder b{Schema({{"a", ValueType::kDouble}, {"s", ValueType::kString}})};
  b.AddRow({1.0, "x"}).AddRow({Value::Null(), "y"});
  Table t = b.Build();
  EXPECT_FALSE(t.ExtractNumericColumns({"a"}).ok());  // NULL cell
  EXPECT_FALSE(t.ExtractNumericColumns({"s"}).ok());  // string column
  EXPECT_FALSE(t.ExtractNumericColumns({"zz"}).ok());  // unknown name
}

}  // namespace
}  // namespace galaxy
