#include "relation/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/movies.h"

namespace galaxy {
namespace {

TEST(CsvReadTest, BasicWithHeaderAndTypeInference) {
  auto t = ReadCsvString("name,year,score\nalpha,2001,1.5\nbeta,2002,2\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->schema().column(0).type, ValueType::kString);
  EXPECT_EQ(t->schema().column(1).type, ValueType::kInt64);
  // 2 in a column with 1.5 widens to double.
  EXPECT_EQ(t->schema().column(2).type, ValueType::kDouble);
  EXPECT_EQ(t->at(0, 0), Value("alpha"));
  EXPECT_EQ(t->at(1, 1), Value(2002));
  EXPECT_EQ(t->at(1, 2), Value(2.0));
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  CsvReadOptions options;
  options.has_header = false;
  auto t = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).name, "c0");
  EXPECT_EQ(t->schema().column(1).name, "c1");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto t = ReadCsvString(
      "title,note\n\"Hello, World\",plain\n\"She said \"\"hi\"\"\",x\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->at(0, 0), Value("Hello, World"));
  EXPECT_EQ(t->at(1, 0), Value("She said \"hi\""));
}

TEST(CsvReadTest, QuotedNewlines) {
  auto t = ReadCsvString("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, 0), Value("line1\nline2"));
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, 1), Value(2));
}

TEST(CsvReadTest, EmptyAndLiteralNullBecomeNulls) {
  auto t = ReadCsvString("x,y\n1,\n2,NULL\n3,7\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, 1).is_null());
  EXPECT_TRUE(t->at(1, 1).is_null());
  EXPECT_EQ(t->at(2, 1), Value(7));
  EXPECT_EQ(t->schema().column(1).type, ValueType::kInt64);
}

TEST(CsvReadTest, NullHandlingCanBeDisabled) {
  CsvReadOptions options;
  options.empty_is_null = false;
  auto t = ReadCsvString("x\nfoo\n\"\"\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(1, 0), Value(""));
}

TEST(CsvReadTest, NegativeAndScientificNumbers) {
  auto t = ReadCsvString("a,b\n-5,1e3\n7,-2.5e-2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(t->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(t->at(0, 0), Value(-5));
  EXPECT_DOUBLE_EQ(t->at(0, 1).AsDouble(), 1000.0);
}

TEST(CsvReadTest, MixedNumericAndTextFallsBackToString) {
  auto t = ReadCsvString("a\n1\ntwo\n3\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ValueType::kString);
  EXPECT_EQ(t->at(0, 0), Value("1"));
}

TEST(CsvReadTest, ArityMismatchIsError) {
  auto t = ReadCsvString("a,b\n1,2\n3\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, UnterminatedQuoteIsError) {
  auto t = ReadCsvString("a\n\"oops\n");
  ASSERT_FALSE(t.ok());
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  auto t = ReadCsvString("a;b\n1;2\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 1), Value(2));
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvRoundTripTest, MovieTableSurvives) {
  Table movies = datagen::MovieTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(movies, out).ok());
  auto back = ReadCsvString(out.str());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), movies.num_rows());
  ASSERT_EQ(back->num_columns(), movies.num_columns());
  for (size_t r = 0; r < movies.num_rows(); ++r) {
    for (size_t c = 0; c < movies.num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c), movies.at(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvRoundTripTest, QuotesAndNullsSurvive) {
  TableBuilder b{Schema({{"s", ValueType::kString},
                         {"n", ValueType::kInt64}})};
  b.AddRow({"comma, inside", 1})
      .AddRow({"quote \" inside", 2})
      .AddRow({Value::Null(), Value::Null()});
  Table t = b.Build();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  auto back = ReadCsvString(out.str());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0), Value("comma, inside"));
  EXPECT_EQ(back->at(1, 0), Value("quote \" inside"));
  EXPECT_TRUE(back->at(2, 0).is_null());
  EXPECT_TRUE(back->at(2, 1).is_null());
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/galaxy_csv_test.csv";
  Table movies = datagen::MovieTable();
  ASSERT_TRUE(WriteCsvFile(movies, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_rows(), 10u);
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  auto t = ReadCsvFile("/nonexistent/galaxy.csv");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace galaxy
