#include "relation/schema.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

Schema TestSchema() {
  return Schema({{"Title", ValueType::kString},
                 {"Year", ValueType::kInt64},
                 {"Qual", ValueType::kDouble}});
}

TEST(SchemaTest, BasicAccessors) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(0).name, "Title");
  EXPECT_EQ(s.column(1).type, ValueType::kInt64);
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("title").value(), 0u);
  EXPECT_EQ(s.IndexOf("YEAR").value(), 1u);
  EXPECT_EQ(s.IndexOf("Qual").value(), 2u);
}

TEST(SchemaTest, IndexOfMissingColumn) {
  Schema s = TestSchema();
  auto r = s.IndexOf("Pop");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, IndexOfAmbiguousColumn) {
  Schema s({{"a", ValueType::kInt64}, {"A", ValueType::kDouble}});
  auto r = s.IndexOf("a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, Contains) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.Contains("qual"));
  EXPECT_FALSE(s.Contains("pop"));
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(TestSchema(), TestSchema());
  Schema other({{"x", ValueType::kInt64}});
  EXPECT_FALSE(TestSchema() == other);
  EXPECT_EQ(other.ToString(), "(x INT64)");
}

}  // namespace
}  // namespace galaxy
