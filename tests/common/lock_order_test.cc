// Runtime lock-order validator tests (common/lock_order.h). The death
// tests assert the validator catches an inversion on the FIRST run even
// though the two critical sections never overlap — no actual deadlock is
// staged. The whole suite degrades to a skip when the validator is
// compiled out (the default build).
#include "common/mutex.h"

#include <thread>

#include <gtest/gtest.h>

namespace galaxy::common {
namespace {

#ifndef GALAXY_DEBUG_LOCK_ORDER

TEST(LockOrderTest, ValidatorCompiledOut) {
  GTEST_SKIP() << "built without -DGALAXY_DEBUG_LOCK_ORDER=ON";
}

#else

TEST(LockOrderTest, ConsistentOrderIsQuiet) {
  Mutex a;
  Mutex b;
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
}

TEST(LockOrderTest, DestroyPurgesStaleEdges) {
  Mutex a;
  // Record a -> b, destroy b, then lock a new mutex (plausibly at the
  // reused address) before a: without the destructor purge this could
  // report a cycle against the dead object's edges.
  {
    Mutex b;
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    Mutex c;
    MutexLock lc(&c);
    MutexLock la(&a);
  }
}

TEST(LockOrderTest, SharedAcquisitionsFeedTheGraph) {
  SharedMutex a;
  Mutex b;
  ReaderMutexLock la(&a);
  MutexLock lb(&b);
}

TEST(LockOrderDeathTest, InversionAborts) {
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);
        }
      },
      "acquisition-order cycle");
}

TEST(LockOrderDeathTest, ThreeLockCycleAborts) {
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        Mutex c;
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock lc(&c);
        }
        {
          MutexLock lc(&c);
          MutexLock la(&a);
        }
      },
      "acquisition-order cycle");
}

TEST(LockOrderDeathTest, RecursiveAcquireAborts) {
  EXPECT_DEATH(
      {
        Mutex a;
        a.Lock();
        a.Lock();
      },
      "recursive acquisition");
}

TEST(LockOrderDeathTest, CrossThreadEdgesMerge) {
  // Each thread's order is locally consistent; only the merged global
  // graph exposes the cycle. The second thread runs after the first
  // finished, so this cannot hang even when detection were broken.
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        std::thread t1([&] {
          MutexLock la(&a);
          MutexLock lb(&b);
        });
        t1.join();
        std::thread t2([&] {
          MutexLock lb(&b);
          MutexLock la(&a);
        });
        t2.join();
      },
      "acquisition-order cycle");
}

#endif  // GALAXY_DEBUG_LOCK_ORDER

}  // namespace
}  // namespace galaxy::common
