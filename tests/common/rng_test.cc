#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next32(), b.Next32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DifferentStreamsDiverge) {
  Rng a(1, 1), b(1, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(17);
  int counts[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.UniformInt(0, 9)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace galaxy
