#include "common/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (int64_t k = 1; k <= 100; ++k) total += zipf.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (int64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ProbabilityDecreasesWithRank) {
  ZipfSampler zipf(50, 1.2);
  for (int64_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.Probability(k), zipf.Probability(k + 1));
  }
}

TEST(ZipfTest, RatioMatchesPowerLaw) {
  ZipfSampler zipf(1000, 1.0);
  // P(1) / P(2) should be 2^theta = 2.
  EXPECT_NEAR(zipf.Probability(1) / zipf.Probability(2), 2.0, 1e-9);
  // P(1) / P(10) should be 10.
  EXPECT_NEAR(zipf.Probability(1) / zipf.Probability(10), 10.0, 1e-9);
}

TEST(ZipfTest, SampleRangeAndSkew) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(3);
  std::vector<int> counts(101, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    int64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    ++counts[static_cast<size_t>(v)];
  }
  // Empirical frequency of the top rank should match its probability.
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, zipf.Probability(1), 0.01);
  // Rank 1 should appear far more often than rank 100.
  EXPECT_GT(counts[1], counts[100] * 10);
}

TEST(ZipfTest, SingleOutcome) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 1);
  }
  EXPECT_NEAR(zipf.Probability(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace galaxy
