#include "common/timer.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

// Burns a little CPU; the returned value depends on every iteration so the
// loop cannot be optimized away.
double BurnCpu(int iterations) {
  double sink = 0;
  for (int i = 0; i < iterations; ++i) sink += i * 0.5;
  return sink;
}

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(BurnCpu(100000), 0.0);
  double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(timer.ElapsedMillis(), second * 1e3 * 0.99);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  EXPECT_GT(BurnCpu(1000000), 0.0);
  double before = timer.ElapsedSeconds();
  timer.Restart();
  double after = timer.ElapsedSeconds();
  EXPECT_LE(after, before + 1e-9);
}

}  // namespace
}  // namespace galaxy
