#include "common/status.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, FactoryFunctionsSetDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  GALAXY_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  GALAXY_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace galaxy
