#include "common/geometry.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(BoxTest, EmptyBoxIsEmpty) {
  Box b = Box::Empty(3);
  EXPECT_TRUE(b.IsEmpty());
  EXPECT_EQ(b.dims(), 3u);
}

TEST(BoxTest, ExpandWithPointSnapsCorners) {
  Box b = Box::Empty(2);
  b.Expand(Point{1.0, 2.0});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_EQ(b.min, (Point{1.0, 2.0}));
  EXPECT_EQ(b.max, (Point{1.0, 2.0}));
  b.Expand(Point{0.0, 5.0});
  EXPECT_EQ(b.min, (Point{0.0, 2.0}));
  EXPECT_EQ(b.max, (Point{1.0, 5.0}));
}

TEST(BoxTest, ExpandWithBox) {
  Box a({0, 0}, {1, 1});
  Box b({2, -1}, {3, 0.5});
  a.Expand(b);
  EXPECT_EQ(a.min, (Point{0.0, -1.0}));
  EXPECT_EQ(a.max, (Point{3.0, 1.0}));
}

TEST(BoxTest, ContainsIsInclusive) {
  Box b({0, 0}, {1, 1});
  EXPECT_TRUE(b.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(b.Contains(Point{1.0, 1.0}));
  EXPECT_TRUE(b.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(b.Contains(Point{1.0001, 0.5}));
  EXPECT_FALSE(b.Contains(Point{-0.0001, 0.5}));
}

TEST(BoxTest, IntersectsInclusiveBoundary) {
  Box a({0, 0}, {1, 1});
  EXPECT_TRUE(a.Intersects(Box({1, 1}, {2, 2})));    // corner touch
  EXPECT_TRUE(a.Intersects(Box({0.5, 0.5}, {2, 2})));
  EXPECT_FALSE(a.Intersects(Box({1.1, 0}, {2, 1})));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(BoxTest, VolumeAndMargin) {
  Box b({0, 0, 0}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(b.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 9.0);
  Box degenerate({0, 0, 0}, {2, 0, 4});
  EXPECT_DOUBLE_EQ(degenerate.Volume(), 0.0);
}

TEST(BoxTest, EnlargedVolume) {
  Box a({0, 0}, {1, 1});
  Box b({2, 2}, {3, 3});
  EXPECT_DOUBLE_EQ(a.EnlargedVolume(b), 9.0);
  EXPECT_DOUBLE_EQ(a.EnlargedVolume(a), 1.0);
}

TEST(BoxTest, CornerDistanceSum) {
  Box b({1, 2}, {3, 4});
  // |1| + |2| + |3| + |4| = 10.
  EXPECT_DOUBLE_EQ(b.CornerDistanceSum(), 10.0);
}

TEST(BoxTest, IntersectionVolume) {
  Box a({0, 0}, {2, 2});
  Box b({1, 1}, {3, 3});
  EXPECT_DOUBLE_EQ(IntersectionVolume(a, b), 1.0);
  Box c({5, 5}, {6, 6});
  EXPECT_DOUBLE_EQ(IntersectionVolume(a, c), 0.0);
  // Touching boundary has zero volume.
  Box d({2, 0}, {3, 2});
  EXPECT_DOUBLE_EQ(IntersectionVolume(a, d), 0.0);
}

TEST(BoxTest, ToStringRendersCorners) {
  Box b({0, 1.5}, {2, 3});
  EXPECT_EQ(b.ToString(), "[(0, 1.5), (2, 3)]");
}

}  // namespace
}  // namespace galaxy
