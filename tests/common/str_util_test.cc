#include "common/str_util.h"

#include <gtest/gtest.h>

namespace galaxy {
namespace {

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, AdjacentDelimitersYieldEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrSplitTest, EmptyInput) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrSplitTest, TrailingDelimiter) {
  EXPECT_EQ(StrSplit("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nhi"), "hi");
  EXPECT_EQ(StrTrim("hi"), "hi");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(CaseTest, LowerUpper) {
  EXPECT_EQ(AsciiLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiUpper("SeLeCt"), "SELECT");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Director", "DIRECTOR"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("skyline", "sky"));
  EXPECT_FALSE(StartsWith("sky", "skyline"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(8.30), "8.3");
  EXPECT_EQ(FormatDouble(5.0), "5");
  EXPECT_EQ(FormatDouble(0.9375, 4), "0.9375");
  EXPECT_EQ(FormatDouble(-1.50), "-1.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

}  // namespace
}  // namespace galaxy
