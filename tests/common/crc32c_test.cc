#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace galaxy::common {
namespace {

TEST(Crc32c, StandardVectors) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (iSCSI test vector, RFC 3720 B.4).
  unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
  unsigned char ones[32];
  std::memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62a8ab43u);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, SensitiveToEveryBit) {
  std::string data = "payload under test";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), base) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(Crc32c, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xe3069283u, 0xffffffffu, 0xdeadbeefu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);
  }
}

}  // namespace
}  // namespace galaxy::common
