#include "skyline/dominance.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace galaxy::skyline {
namespace {

TEST(DominanceTest, Definition1Basics) {
  PreferenceList prefs = AllMax(2);
  EXPECT_TRUE(Dominates(Point{2, 2}, Point{1, 1}, prefs));
  EXPECT_TRUE(Dominates(Point{2, 1}, Point{1, 1}, prefs));  // one strict
  EXPECT_FALSE(Dominates(Point{1, 1}, Point{1, 1}, prefs));  // equal
  EXPECT_FALSE(Dominates(Point{2, 0}, Point{1, 1}, prefs));  // incomparable
}

TEST(DominanceTest, PaperExampleGodfatherDominatesTheRoom) {
  // The Godfather (531, 9.2) dominates The Room (10, 3.2).
  EXPECT_TRUE(Dominates(Point{531, 9.2}, Point{10, 3.2}));
  EXPECT_FALSE(Dominates(Point{10, 3.2}, Point{531, 9.2}));
}

TEST(DominanceTest, PulpFictionAndGodfatherIncomparable) {
  // Pulp Fiction (557, 9.0) vs The Godfather (531, 9.2).
  EXPECT_FALSE(Dominates(Point{557, 9.0}, Point{531, 9.2}));
  EXPECT_FALSE(Dominates(Point{531, 9.2}, Point{557, 9.0}));
}

TEST(DominanceTest, MinPreferenceFlipsDirection) {
  PreferenceList prefs = {Preference::kMax, Preference::kMin};
  // Second attribute: lower is better.
  EXPECT_TRUE(Dominates(Point{2, 1}, Point{1, 3}, prefs));
  EXPECT_FALSE(Dominates(Point{2, 3}, Point{1, 1}, prefs));
}

TEST(DominanceTest, CompareDominanceAgreesWithDominates) {
  Rng rng(99);
  PreferenceList prefs = AllMax(3);
  for (int i = 0; i < 2000; ++i) {
    Point a{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    Point b{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    DominanceResult r = CompareDominance(a, b, prefs);
    EXPECT_EQ(r == DominanceResult::kLeftDominates, Dominates(a, b, prefs));
    EXPECT_EQ(r == DominanceResult::kRightDominates, Dominates(b, a, prefs));
  }
}

TEST(DominanceTest, PreferenceFreeOverloadMatches) {
  Rng rng(7);
  PreferenceList prefs = AllMax(4);
  for (int i = 0; i < 2000; ++i) {
    Point a{rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
            rng.NextDouble()};
    Point b{rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
            rng.NextDouble()};
    EXPECT_EQ(CompareDominance(a, b), CompareDominance(a, b, prefs));
  }
}

TEST(DominanceTest, EqualPoints) {
  Point p{1, 2, 3};
  EXPECT_EQ(CompareDominance(p, p), DominanceResult::kEqual);
}

// Dominance must be a strict partial order: irreflexive, asymmetric,
// transitive. Checked on random data.
TEST(DominanceTest, StrictPartialOrderProperties) {
  Rng rng(13);
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    // Coarse grid to force plenty of ties and dominations.
    pts.push_back(Point{static_cast<double>(rng.UniformInt(0, 4)),
                        static_cast<double>(rng.UniformInt(0, 4)),
                        static_cast<double>(rng.UniformInt(0, 4))});
  }
  for (const Point& a : pts) {
    EXPECT_FALSE(Dominates(a, a));
    for (const Point& b : pts) {
      if (Dominates(a, b)) {
        EXPECT_FALSE(Dominates(b, a));
      }
      for (const Point& c : pts) {
        if (Dominates(a, b) && Dominates(b, c)) {
          EXPECT_TRUE(Dominates(a, c));
        }
      }
    }
  }
}

TEST(MonotoneScoreTest, SumsOrientedValues) {
  PreferenceList prefs = {Preference::kMax, Preference::kMin};
  EXPECT_DOUBLE_EQ(MonotoneScore(Point{3, 2}, prefs), 1.0);
  EXPECT_DOUBLE_EQ(MonotoneScore(Point{3, -2}, prefs), 5.0);
}

TEST(MonotoneScoreTest, DominatingPointHasHigherScore) {
  Rng rng(21);
  PreferenceList prefs = AllMax(3);
  for (int i = 0; i < 1000; ++i) {
    Point a{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    Point b{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    if (Dominates(a, b, prefs)) {
      EXPECT_GT(MonotoneScore(a, prefs), MonotoneScore(b, prefs));
    }
  }
}

}  // namespace
}  // namespace galaxy::skyline
