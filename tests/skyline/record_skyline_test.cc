#include "skyline/skyline.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/distributions.h"
#include "datagen/movies.h"

namespace galaxy::skyline {
namespace {

// Exhaustive reference implementation.
std::vector<size_t> NaiveSkyline(const std::vector<std::vector<double>>& pts,
                                 const PreferenceList& prefs) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (j != i && Dominates(pts[j], pts[i], prefs)) dominated = true;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

TEST(RecordSkylineTest, Figure2MovieSkyline) {
  // Example 1: SELECT * FROM Movie SKYLINE OF Pop MAX, Qual MAX
  // returns Pulp Fiction and The Godfather.
  Table movies = datagen::MovieTable();
  auto result = ComputeOnTable(movies, {"Pop", "Qual"}, AllMax(2));
  ASSERT_TRUE(result.ok());
  std::vector<std::string> titles;
  for (size_t row : *result) {
    titles.push_back(movies.at(row, "Title").value().AsString());
  }
  EXPECT_EQ(titles,
            (std::vector<std::string>{"Pulp Fiction", "The Godfather"}));
}

TEST(RecordSkylineTest, EmptyInput) {
  EXPECT_TRUE(Compute({}, AllMax(2), Algorithm::kBnl).empty());
  EXPECT_TRUE(Compute({}, AllMax(2), Algorithm::kSfs).empty());
}

TEST(RecordSkylineTest, SinglePoint) {
  std::vector<std::vector<double>> pts = {{1, 2}};
  EXPECT_EQ(Compute(pts, AllMax(2)), (std::vector<size_t>{0}));
}

TEST(RecordSkylineTest, DuplicatePointsAllSurvive) {
  std::vector<std::vector<double>> pts = {{1, 1}, {1, 1}, {0, 0}};
  EXPECT_EQ(Compute(pts, AllMax(2), Algorithm::kBnl),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(Compute(pts, AllMax(2), Algorithm::kSfs),
            (std::vector<size_t>{0, 1}));
}

TEST(RecordSkylineTest, TotalOrderChainLeavesOnlyTop) {
  std::vector<std::vector<double>> pts = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  EXPECT_EQ(Compute(pts, AllMax(2)), (std::vector<size_t>{3}));
}

TEST(RecordSkylineTest, AntiChainKeepsEverything) {
  std::vector<std::vector<double>> pts = {{1, 4}, {2, 3}, {3, 2}, {4, 1}};
  EXPECT_EQ(Compute(pts, AllMax(2)), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(RecordSkylineTest, MinPreferences) {
  std::vector<std::vector<double>> pts = {{1, 1}, {2, 2}, {0.5, 3}};
  PreferenceList prefs = {Preference::kMin, Preference::kMin};
  EXPECT_EQ(Compute(pts, prefs), (std::vector<size_t>{0, 2}));
}

struct SkylineParam {
  datagen::Distribution distribution;
  size_t dims;
  size_t count;
};

class SkylineAgreementTest : public ::testing::TestWithParam<SkylineParam> {};

TEST_P(SkylineAgreementTest, AllAlgorithmsAgreeWithNaive) {
  const SkylineParam& p = GetParam();
  Rng rng(static_cast<uint64_t>(p.dims * 1000 + p.count));
  auto pts = datagen::SamplePoints(p.distribution, p.dims, p.count, rng);
  PreferenceList prefs = AllMax(p.dims);

  SkylineStats bnl_stats, sfs_stats, dc_stats;
  auto bnl = Compute(pts, prefs, Algorithm::kBnl, &bnl_stats);
  auto sfs = Compute(pts, prefs, Algorithm::kSfs, &sfs_stats);
  auto dc = Compute(pts, prefs, Algorithm::kDivideConquer, &dc_stats);
  auto naive = NaiveSkyline(pts, prefs);
  EXPECT_EQ(bnl, naive);
  EXPECT_EQ(sfs, naive);
  EXPECT_EQ(dc, naive);
  EXPECT_GT(bnl_stats.dominance_tests, 0u);
  EXPECT_GT(sfs_stats.dominance_tests, 0u);
  EXPECT_GT(dc_stats.dominance_tests, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, SkylineAgreementTest,
    ::testing::Values(
        SkylineParam{datagen::Distribution::kIndependent, 2, 300},
        SkylineParam{datagen::Distribution::kIndependent, 4, 300},
        SkylineParam{datagen::Distribution::kIndependent, 6, 200},
        SkylineParam{datagen::Distribution::kCorrelated, 3, 300},
        SkylineParam{datagen::Distribution::kCorrelated, 5, 200},
        SkylineParam{datagen::Distribution::kAntiCorrelated, 2, 300},
        SkylineParam{datagen::Distribution::kAntiCorrelated, 4, 200},
        SkylineParam{datagen::Distribution::kAntiCorrelated, 6, 150}));

TEST(RecordSkylineTest, AntiCorrelatedSkylineLargerThanCorrelated) {
  Rng rng1(5), rng2(5);
  auto anti = datagen::SamplePoints(datagen::Distribution::kAntiCorrelated, 4,
                                    2000, rng1);
  auto corr = datagen::SamplePoints(datagen::Distribution::kCorrelated, 4,
                                    2000, rng2);
  size_t anti_size = Compute(anti, AllMax(4)).size();
  size_t corr_size = Compute(corr, AllMax(4)).size();
  EXPECT_GT(anti_size, corr_size * 2);
}

TEST(RecordSkylineTest, SfsDoesFewerTestsThanBnlOnAverage) {
  Rng rng(77);
  auto pts = datagen::SamplePoints(datagen::Distribution::kIndependent, 4,
                                   3000, rng);
  SkylineStats bnl_stats, sfs_stats;
  Compute(pts, AllMax(4), Algorithm::kBnl, &bnl_stats);
  Compute(pts, AllMax(4), Algorithm::kSfs, &sfs_stats);
  // Presorting guarantees accepted points are final and tends to prune
  // faster; allow slack but expect no blow-up.
  EXPECT_LE(sfs_stats.dominance_tests, bnl_stats.dominance_tests * 2);
}

TEST(RecordSkylineTest, DivideConquerHandlesDimensionTies) {
  // Every point shares attribute 0: the partition is degenerate and the
  // algorithm must fall back gracefully.
  std::vector<std::vector<double>> pts;
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    pts.push_back({0.5, rng.NextDouble(), rng.NextDouble()});
  }
  PreferenceList prefs = AllMax(3);
  EXPECT_EQ(Compute(pts, prefs, Algorithm::kDivideConquer),
            NaiveSkyline(pts, prefs));
}

TEST(RecordSkylineTest, DivideConquerManyDuplicatePoints) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({static_cast<double>(i % 3), static_cast<double>(2 - i % 3)});
  }
  PreferenceList prefs = AllMax(2);
  EXPECT_EQ(Compute(pts, prefs, Algorithm::kDivideConquer),
            NaiveSkyline(pts, prefs));
}

TEST(RecordSkylineTest, DivideConquerWithMinPreferences) {
  Rng rng(33);
  auto pts = datagen::SamplePoints(datagen::Distribution::kIndependent, 3,
                                   500, rng);
  PreferenceList prefs = {Preference::kMin, Preference::kMax,
                          Preference::kMin};
  EXPECT_EQ(Compute(pts, prefs, Algorithm::kDivideConquer),
            NaiveSkyline(pts, prefs));
}

TEST(RecordSkylineTest, ComputeOnTableValidatesArity) {
  Table movies = datagen::MovieTable();
  EXPECT_FALSE(ComputeOnTable(movies, {"Pop"}, AllMax(2)).ok());
  EXPECT_FALSE(ComputeOnTable(movies, {"Title", "Pop"}, AllMax(2)).ok());
}

}  // namespace
}  // namespace galaxy::skyline
