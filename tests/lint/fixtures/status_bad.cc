// Known-bad fixture: a Status-returning function declared in this file is
// called as a bare statement and the result is dropped.

#include "common/status.h"

namespace demo {

Status Flush(int fd);

void Dropper(int fd) {
  Flush(fd);
}

Status Checker(int fd) {
  Status s = Flush(fd);
  if (!s.ok()) return s;
  return Flush(fd);
}

}  // namespace demo
