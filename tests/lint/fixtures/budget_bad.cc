// Known-bad fixture: a record-pair kernel with nested loops and no budget
// evidence. Linted under a synthetic src/core/algorithm_*.cc path.

namespace demo {

int CountPairs(const double* a, const double* b, int n1, int n2, int dims) {
  int count = 0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      bool dominated = true;
      for (int k = 0; k < dims; ++k) {
        if (a[i * dims + k] < b[j * dims + k]) dominated = false;
      }
      if (dominated) ++count;
    }
  }
  return count;
}

}  // namespace demo
