// Known-bad fixture: write-side file I/O the raw-file-io rule must catch
// outside src/storage/.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

void BadSyscalls(const std::string& path, const char* data, size_t size) {
  int fd = open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // flagged
  (void)::write(fd, data, size);                          // flagged
  (void)fsync(fd);                                        // flagged
  (void)fdatasync(fd);                                    // flagged
  (void)ftruncate(fd, 0);                                 // flagged
  close(fd);
}

void BadStdio(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");  // flagged
  if (f != nullptr) std::fclose(f);
}

void BadStreams(const std::string& path) {
  std::ofstream out(path);  // flagged
  out << "x";
}

void NotFlagged(const std::string& path) {
  // Read-side I/O is unrestricted.
  std::ifstream in(path);
  // Member calls named like syscalls are a different function.
  in.open(path);
  struct Sink {
    void write(const char*, size_t) {}
  } sink;
  sink.write("x", 1);
}

namespace reviewed {
// A reviewed suppression on the offending line.
void Allowed(int fd, const char* data, size_t size) {
  (void)::write(fd, data, size);  // galaxy-lint: allow(raw-file-io)
}
}  // namespace reviewed
