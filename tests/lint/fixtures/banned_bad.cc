// Known-bad fixture: every banned call the rule should catch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

void Bad(char* dst, const char* src) {
  int r = rand();
  strcpy(dst, src);
  sprintf(dst, "%d", r);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void NotBanned() {
  // Member calls with banned names are fine: different function.
  struct Gen {
    int rand() { return 4; }
  } gen;
  (void)gen.rand();
}
