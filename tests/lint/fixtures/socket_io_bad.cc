// Known-bad fixture: raw socket I/O the blocking-socket-io rule must
// catch outside src/server/event_loop.*.

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

void BadSocketCalls(int fd, char* buf, size_t size, const sockaddr* addr,
                    socklen_t len) {
  (void)::recv(fd, buf, size, 0);       // flagged
  (void)::send(fd, buf, size, 0);       // flagged
  (void)recvfrom(fd, buf, size, 0, nullptr, nullptr);  // flagged
  (void)sendto(fd, buf, size, 0, addr, len);           // flagged
  (void)::accept(fd, nullptr, nullptr);                // flagged
  (void)::connect(fd, addr, len);                      // flagged
}

void NotFlagged(int fd, const char* data, size_t size) {
  // Member calls named like syscalls are a different function.
  struct Channel {
    void send(const char*, size_t) {}
    void connect(int) {}
  } chan;
  chan.send(data, size);
  chan.connect(fd);
}

// `ssize_t recv(...)` is a declaration, not a call.
ssize_t recv(int fd, void* buf, size_t len, int flags);

namespace reviewed {
// A reviewed suppression on the offending line: the fd is non-blocking
// and drained until EAGAIN under the event loop.
void Allowed(int fd, char* buf, size_t size) {
  (void)::recv(fd, buf, size, 0);  // galaxy-lint: allow(blocking-socket-io)
}
}  // namespace reviewed
