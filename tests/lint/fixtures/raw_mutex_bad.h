#pragma once

// Known-bad fixture: raw std:: synchronization primitives as members.

#include <mutex>

class Registry {
 public:
  void Add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    last_ = v;
  }

 private:
  std::mutex mu_;
  int last_ = 0;
};
