// Known-bad fixture: an unsuppressed naked new.

struct Node {
  int value = 0;
};

Node* Make() { return new Node(); }
