// Known-bad fixture: <iostream> in a core translation unit. Linted under a
// synthetic src/core/ path.

#include <iostream>

void Debug(int v) { std::cout << v << "\n"; }
