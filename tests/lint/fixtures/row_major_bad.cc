// Fixture for the row-major-access rule: boxed row materialization on an
// execution path. Both calls below must be flagged outside src/relation/
// and tests/; the suppressed one must not.
#include "relation/table.h"

namespace demo {

galaxy::Value First(const galaxy::Table& t) {
  galaxy::Row row = t.MaterializeRow(0);  // flagged
  return row[0];
}

size_t CountCells(const galaxy::Table& t) {
  size_t n = 0;
  for (const galaxy::Row& row : t.DebugRows()) n += row.size();  // flagged
  return n;
}

size_t Seed(const galaxy::Table& t) {
  // One-time seeding, off the hot path.
  // galaxy-lint: allow(row-major-access)
  return t.MaterializeRow(0).size();
}

}  // namespace demo
