// Clean fixture: the same nested-loop shape, but the function charges the
// ExecutionContext budget per pair.

namespace demo {

struct Ctx {
  bool Charge(int n);
};

int CountPairs(Ctx* ctx, const double* a, const double* b, int n1, int n2) {
  int count = 0;
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      if (!ctx->Charge(1)) return count;
      if (a[i] >= b[j]) ++count;
    }
  }
  return count;
}

}  // namespace demo
