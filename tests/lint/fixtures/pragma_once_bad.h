#ifndef GALAXY_TESTS_LINT_FIXTURES_PRAGMA_ONCE_BAD_H_
#define GALAXY_TESTS_LINT_FIXTURES_PRAGMA_ONCE_BAD_H_

// Known-bad fixture: a header with an include guard but no #pragma once.

inline int Answer() { return 42; }

#endif  // GALAXY_TESTS_LINT_FIXTURES_PRAGMA_ONCE_BAD_H_
