// Fixture: every suppression form silences the naked-new rule.

struct Node {
  int value = 0;
};

Node* SameLine() {
  return new Node();  // galaxy-lint: allow(naked-new) — ownership documented
}

Node* PrecedingLine() {
  // galaxy-lint: allow(naked-new) — the caller adopts this allocation and
  // the comment block may span several lines above the offending one.
  return new Node();
}
