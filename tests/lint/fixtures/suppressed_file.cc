// Fixture: a file-level suppression disables a rule everywhere in the file.
// galaxy-lint: allow-file(naked-new)

struct Node {
  int value = 0;
};

Node* First() { return new Node(); }
Node* Second() { return new Node(); }
