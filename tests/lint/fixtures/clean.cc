// Fixture: a realistic file no rule should fire on. Banned identifiers in
// comments (strcpy, new) and strings must be ignored by the lexer.

#include <memory>
#include <string>
#include <vector>

namespace demo {

struct Item {
  std::string name;  // not "new" memory: owned by the vector
  int weight = 0;
};

std::unique_ptr<std::vector<Item>> MakeItems() {
  auto items = std::make_unique<std::vector<Item>>();
  items->push_back({"strcpy is banned, says this string", 1});
  for (int i = 0; i < 4; ++i) {
    items->push_back({std::to_string(i), i});
  }
  return items;
}

}  // namespace demo
