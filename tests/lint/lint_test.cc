#include "lint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace galaxy::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(GALAXY_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Diagnostic> LintFixture(const std::string& name,
                                    const std::string& synthetic_path) {
  return LintFile(synthetic_path, ReadFixture(name));
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

std::set<size_t> LinesOfRule(const std::vector<Diagnostic>& diags,
                             const std::string& rule) {
  std::set<size_t> lines;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) lines.insert(d.line);
  }
  return lines;
}

// ---- per-rule fixtures ----------------------------------------------------

TEST(LintRules, RawMutexFlagsStdPrimitives) {
  auto diags = LintFixture("raw_mutex_bad.h", "src/server/raw_mutex_bad.h");
  EXPECT_GE(CountRule(diags, "raw-mutex"), 2u);  // lock_guard/mutex + member
  EXPECT_TRUE(LinesOfRule(diags, "raw-mutex").count(15))
      << "the std::mutex member declaration must be flagged";
}

TEST(LintRules, RawMutexExemptsTheWrapperItself) {
  auto diags =
      LintFixture("raw_mutex_bad.h", "src/common/mutex.h");
  EXPECT_EQ(CountRule(diags, "raw-mutex"), 0u);
}

TEST(LintRules, BudgetChargeFlagsUnchargedNestedLoops) {
  auto diags = LintFixture("budget_bad.cc", "src/core/algorithm_demo.cc");
  ASSERT_EQ(CountRule(diags, "budget-charge"), 1u);
  EXPECT_EQ(*LinesOfRule(diags, "budget-charge").begin(), 9u)
      << "diagnostic anchors where nesting first reaches depth 2";
}

TEST(LintRules, BudgetChargeAcceptsChargingFunction) {
  auto diags = LintFixture("budget_good.cc", "src/core/algorithm_demo.cc");
  EXPECT_EQ(CountRule(diags, "budget-charge"), 0u);
}

TEST(LintRules, BudgetChargeOnlyAppliesToKernelFiles) {
  auto diags = LintFixture("budget_bad.cc", "src/core/other_file.cc");
  EXPECT_EQ(CountRule(diags, "budget-charge"), 0u);
}

TEST(LintRules, BannedCallsFlagged) {
  auto diags = LintFixture("banned_bad.cc", "src/server/banned_bad.cc");
  // rand, strcpy, sprintf, sleep_for — but not the member gen.rand().
  EXPECT_EQ(CountRule(diags, "banned-call"), 4u);
}

TEST(LintRules, SleepForAllowedInTestsAndBench) {
  auto diags = LintFixture("banned_bad.cc", "tests/server/banned_bad.cc");
  EXPECT_EQ(CountRule(diags, "banned-call"), 3u);  // sleep_for tolerated
  diags = LintFixture("banned_bad.cc", "bench/banned_bad.cc");
  EXPECT_EQ(CountRule(diags, "banned-call"), 3u);
}

TEST(LintRules, RawFileIoFlagsWriteSideCalls) {
  auto diags =
      LintFixture("raw_file_io_bad.cc", "src/server/raw_file_io_bad.cc");
  // open, ::write, fsync, fdatasync, ftruncate, std::fopen, std::ofstream —
  // not the read-side ifstream, member calls, or the suppressed ::write.
  EXPECT_EQ(CountRule(diags, "raw-file-io"), 7u);
}

TEST(LintRules, RawFileIoExemptsStorageTestsAndBench) {
  for (const char* path : {"src/storage/raw_file_io_bad.cc",
                           "tests/storage/raw_file_io_bad.cc",
                           "bench/raw_file_io_bad.cc"}) {
    auto diags = LintFixture("raw_file_io_bad.cc", path);
    EXPECT_EQ(CountRule(diags, "raw-file-io"), 0u) << path;
  }
}

TEST(LintRules, BlockingSocketIoFlagsRawSocketCalls) {
  auto diags = LintFixture("socket_io_bad.cc", "src/server/socket_io_bad.cc");
  // ::recv, ::send, recvfrom, sendto, ::accept, ::connect — not the member
  // calls, the declaration, or the suppressed ::recv.
  EXPECT_EQ(CountRule(diags, "blocking-socket-io"), 6u);
}

TEST(LintRules, BlockingSocketIoExemptsEventLoopTestsAndBench) {
  for (const char* path : {"src/server/event_loop.cc",
                           "tests/server/socket_io_bad.cc",
                           "bench/socket_io_bad.cc"}) {
    auto diags = LintFixture("socket_io_bad.cc", path);
    EXPECT_EQ(CountRule(diags, "blocking-socket-io"), 0u) << path;
  }
}

TEST(LintRules, RowMajorAccessFlagsBoxedRowCalls) {
  auto diags = LintFixture("row_major_bad.cc", "src/sql/row_major_bad.cc");
  // MaterializeRow + DebugRows; the suppressed seeding call is exempt.
  EXPECT_EQ(CountRule(diags, "row-major-access"), 2u);
  EXPECT_TRUE(LinesOfRule(diags, "row-major-access").count(9));
  EXPECT_TRUE(LinesOfRule(diags, "row-major-access").count(15));
}

TEST(LintRules, RowMajorAccessExemptsRelationAndTests) {
  for (const char* path : {"src/relation/row_major_bad.cc",
                           "tests/sql/row_major_bad.cc"}) {
    auto diags = LintFixture("row_major_bad.cc", path);
    EXPECT_EQ(CountRule(diags, "row-major-access"), 0u) << path;
  }
}

TEST(LintRules, NakedNewFlagged) {
  auto diags = LintFixture("naked_new_bad.cc", "src/core/naked_new_bad.cc");
  EXPECT_EQ(CountRule(diags, "naked-new"), 1u);
}

TEST(LintRules, StatusConsumedFlagsDroppedSameFileCall) {
  auto diags = LintFixture("status_bad.cc", "src/sql/status_bad.cc");
  ASSERT_EQ(CountRule(diags, "status-consumed"), 1u);
  EXPECT_EQ(*LinesOfRule(diags, "status-consumed").begin(), 11u)
      << "only the bare Flush(fd); statement is a drop; the assignment and "
         "the return are consumers";
}

TEST(LintRules, PragmaOnceRequiredInHeaders) {
  auto diags = LintFixture("pragma_once_bad.h", "src/sql/pragma_once_bad.h");
  EXPECT_EQ(CountRule(diags, "pragma-once"), 1u);
  // The same content as a .cc file is not a header: no finding.
  diags = LintFile("src/sql/not_a_header.cc", ReadFixture("pragma_once_bad.h"));
  EXPECT_EQ(CountRule(diags, "pragma-once"), 0u);
}

TEST(LintRules, IostreamBannedInCoreOnly) {
  auto diags = LintFixture("iostream_bad.cc", "src/core/iostream_bad.cc");
  EXPECT_EQ(CountRule(diags, "iostream-core"), 1u);
  diags = LintFixture("iostream_bad.cc", "src/sql/iostream_bad.cc");
  EXPECT_EQ(CountRule(diags, "iostream-core"), 0u);
}

// ---- suppressions ---------------------------------------------------------

TEST(LintSuppressions, SameLineAndPrecedingCommentBlock) {
  auto diags = LintFixture("suppressed.cc", "src/core/suppressed.cc");
  EXPECT_EQ(CountRule(diags, "naked-new"), 0u);
}

TEST(LintSuppressions, FileLevelAllow) {
  auto diags = LintFixture("suppressed_file.cc", "src/core/suppressed_file.cc");
  EXPECT_EQ(CountRule(diags, "naked-new"), 0u);
}

TEST(LintSuppressions, SuppressionIsPerRule) {
  // An allow() for one rule must not silence another on the same line.
  std::string src =
      "struct N {};\n"
      "N* f() { return new N(); }  // galaxy-lint: allow(banned-call)\n";
  auto diags = LintFile("src/core/x.cc", src);
  EXPECT_EQ(CountRule(diags, "naked-new"), 1u);
}

// ---- clean file and lexer behaviour ---------------------------------------

TEST(LintClean, RealisticFileIsClean) {
  auto diags = LintFixture("clean.cc", "src/core/clean.cc");
  EXPECT_TRUE(diags.empty())
      << (diags.empty() ? std::string() : diags[0].ToString());
}

TEST(LintLexer, IgnoresStringsCommentsAndRawStrings) {
  std::string src =
      "// strcpy(a, b) in a comment\n"
      "/* new int in a block comment */\n"
      "const char* s = \"rand() sprintf() new\";\n"
      "const char* r = R\"(strcpy(x, y) new int)\";\n"
      "char c = 'n';\n";
  auto diags = LintFile("src/core/lexer_probe.cc", src);
  EXPECT_TRUE(diags.empty());
}

TEST(LintLexer, DiagnosticFormat) {
  std::string src = "struct N {};\nN* f() { return new N(); }\n";
  auto diags = LintFile("src/core/fmt.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].ToString().rfind("src/core/fmt.cc:2: error: [naked-new]",
                                      0),
            0u);
}

TEST(LintApi, RuleNamesStable) {
  auto names = RuleNames();
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace galaxy::lint
