#include "spatial/rtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace galaxy::spatial {
namespace {

std::vector<Point> RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p(dims);
    for (size_t d = 0; d < dims; ++d) p[d] = rng.NextDouble();
    pts.push_back(std::move(p));
  }
  return pts;
}

std::vector<uint32_t> NaiveWindow(const std::vector<Point>& pts,
                                  const Box& window) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (window.Contains(pts[i])) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  std::vector<uint32_t> out;
  tree.WindowQuery(Box({0, 0}, {1, 1}), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleInsertAndQuery) {
  RTree tree(2);
  tree.Insert({0.5, 0.5}, 7);
  EXPECT_EQ(tree.size(), 1u);
  std::vector<uint32_t> out;
  tree.WindowQuery(Box({0, 0}, {1, 1}), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7}));
  out.clear();
  tree.WindowQuery(Box({0.6, 0.6}, {1, 1}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, WindowBoundariesAreInclusive) {
  RTree tree(2);
  tree.Insert({1.0, 1.0}, 1);
  std::vector<uint32_t> out;
  tree.WindowQuery(Box({1.0, 1.0}, {2.0, 2.0}), &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  tree.WindowQuery(Box({0.0, 0.0}, {1.0, 1.0}), &out);
  EXPECT_EQ(out.size(), 1u);
}

class RTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, bool>> {};

TEST_P(RTreeRandomTest, MatchesLinearScan) {
  auto [n, dims, bulk] = GetParam();
  auto pts = RandomPoints(n, dims, 42 + n + dims);
  RTree tree(dims, 8);
  if (bulk) {
    tree.BulkLoad(pts);
  } else {
    for (uint32_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  }
  EXPECT_EQ(tree.size(), n);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;

  Rng rng(1234);
  for (int q = 0; q < 50; ++q) {
    Point lo(dims), hi(dims);
    for (size_t d = 0; d < dims; ++d) {
      double a = rng.NextDouble();
      double b = rng.NextDouble();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    Box window(lo, hi);
    std::vector<uint32_t> got;
    tree.WindowQuery(window, &got);
    EXPECT_EQ(Sorted(got), NaiveWindow(pts, window));
    EXPECT_EQ(tree.WindowCount(window), NaiveWindow(pts, window).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreeRandomTest,
    ::testing::Combine(::testing::Values<size_t>(10, 100, 1000, 5000),
                       ::testing::Values<size_t>(2, 3, 5),
                       ::testing::Bool()));

TEST(RTreeTest, BulkLoadWithExplicitIds) {
  auto pts = RandomPoints(100, 2, 9);
  std::vector<uint32_t> ids(100);
  for (uint32_t i = 0; i < 100; ++i) ids[i] = 1000 + i;
  RTree tree(2);
  tree.BulkLoad(pts, ids);
  std::vector<uint32_t> out;
  tree.WindowQuery(Box({0, 0}, {1, 1}), &out);
  ASSERT_EQ(out.size(), 100u);
  for (uint32_t id : out) {
    EXPECT_GE(id, 1000u);
    EXPECT_LT(id, 1100u);
  }
}

TEST(RTreeTest, VisitorEarlyStop) {
  auto pts = RandomPoints(500, 2, 10);
  RTree tree(2);
  tree.BulkLoad(pts);
  size_t visits = 0;
  tree.WindowQuery(Box({0, 0}, {1, 1}), [&](uint32_t, const Point&) {
    ++visits;
    return visits < 5;  // stop after 5
  });
  EXPECT_EQ(visits, 5u);
}

TEST(RTreeTest, DuplicatePointsAreAllReturned) {
  RTree tree(2);
  for (uint32_t i = 0; i < 40; ++i) tree.Insert({0.5, 0.5}, i);
  std::vector<uint32_t> out;
  tree.WindowQuery(Box({0.5, 0.5}, {0.5, 0.5}), &out);
  EXPECT_EQ(out.size(), 40u);
}

TEST(RTreeTest, StatsReflectGrowth) {
  RTree tree(2, 8);
  auto pts = RandomPoints(2000, 2, 11);
  for (uint32_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  RTree::Stats stats = tree.GetStats();
  EXPECT_EQ(stats.size, 2000u);
  EXPECT_GT(stats.height, 2u);
  EXPECT_GT(stats.nodes, 100u);
}

TEST(RTreeTest, BulkLoadIsShallowerOrEqual) {
  auto pts = RandomPoints(5000, 3, 12);
  RTree incremental(3, 8);
  for (uint32_t i = 0; i < pts.size(); ++i) incremental.Insert(pts[i], i);
  RTree bulk(3, 8);
  bulk.BulkLoad(pts);
  EXPECT_LE(bulk.GetStats().height, incremental.GetStats().height);
  EXPECT_LE(bulk.GetStats().nodes, incremental.GetStats().nodes);
}

TEST(RTreeTest, InfiniteWindowCorner) {
  // The indexed skyline algorithm queries [min, +inf)^d windows.
  auto pts = RandomPoints(300, 3, 13);
  RTree tree(3);
  tree.BulkLoad(pts);
  Box window(Point{0.5, 0.5, 0.5},
             Point(3, std::numeric_limits<double>::infinity()));
  std::vector<uint32_t> got;
  tree.WindowQuery(window, &got);
  EXPECT_EQ(Sorted(got), NaiveWindow(pts, window));
}

TEST(RTreeTest, MoveSemantics) {
  RTree a(2);
  a.Insert({0.1, 0.2}, 3);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  std::vector<uint32_t> out;
  b.WindowQuery(Box({0, 0}, {1, 1}), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{3}));
}

}  // namespace
}  // namespace galaxy::spatial
