#include "nba/nba_gen.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/group.h"

namespace galaxy::nba {
namespace {

TEST(NbaGenTest, TargetRecordCount) {
  NbaConfig config;
  config.target_records = 2000;
  auto seasons = GenerateLeagueHistory(config);
  EXPECT_EQ(seasons.size(), 2000u);
}

TEST(NbaGenTest, YearsWithinRange) {
  NbaConfig config;
  config.target_records = 3000;
  auto seasons = GenerateLeagueHistory(config);
  for (const PlayerSeason& ps : seasons) {
    EXPECT_GE(ps.year, config.first_year);
    EXPECT_LE(ps.year, config.last_year);
  }
}

TEST(NbaGenTest, StatsAreNonNegativeAndPlausible) {
  NbaConfig config;
  config.target_records = 5000;
  auto seasons = GenerateLeagueHistory(config);
  for (const PlayerSeason& ps : seasons) {
    EXPECT_GE(ps.points, 0.0);
    EXPECT_LT(ps.points, 60.0);  // nobody averages 60
    EXPECT_GE(ps.rebounds, 0.0);
    EXPECT_LT(ps.rebounds, 30.0);
    EXPECT_GE(ps.assists, 0.0);
    EXPECT_LT(ps.assists, 25.0);
    EXPECT_GE(ps.three_points, 0.0);
  }
}

TEST(NbaGenTest, PositionsShapeStatProfiles) {
  NbaConfig config;
  config.target_records = 10000;
  auto seasons = GenerateLeagueHistory(config);
  std::map<std::string, std::pair<double, int>> reb, ast;
  for (const PlayerSeason& ps : seasons) {
    reb[ps.position].first += ps.rebounds;
    reb[ps.position].second += 1;
    ast[ps.position].first += ps.assists;
    ast[ps.position].second += 1;
  }
  auto avg = [](const std::pair<double, int>& p) {
    return p.first / p.second;
  };
  EXPECT_GT(avg(reb["C"]), avg(reb["G"]));  // centers rebound more
  EXPECT_GT(avg(ast["G"]), avg(ast["C"]));  // guards assist more
}

TEST(NbaGenTest, ThreePointEraRampsUp) {
  NbaConfig config;
  config.target_records = 12000;
  auto seasons = GenerateLeagueHistory(config);
  double early = 0, late = 0;
  int early_n = 0, late_n = 0;
  for (const PlayerSeason& ps : seasons) {
    if (ps.year <= 1985) {
      early += ps.three_points;
      ++early_n;
    } else if (ps.year >= 2005) {
      late += ps.three_points;
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 100);
  ASSERT_GT(late_n, 100);
  EXPECT_GT(late / late_n, 2.0 * (early / early_n));
}

TEST(NbaGenTest, PlayersHaveMultiSeasonCareers) {
  NbaConfig config;
  config.target_records = 8000;
  auto seasons = GenerateLeagueHistory(config);
  std::map<std::string, int> career;
  for (const PlayerSeason& ps : seasons) ++career[ps.player];
  int multi = 0;
  for (const auto& [name, n] : career) {
    if (n > 1) ++multi;
  }
  // Grouping by player should produce many small multi-record groups.
  EXPECT_GT(multi, static_cast<int>(career.size()) / 2);
  // Roughly the paper's structure: thousands of players for ~15k records.
  EXPECT_GT(career.size(), 1000u);
}

TEST(NbaGenTest, Deterministic) {
  NbaConfig config;
  config.target_records = 500;
  auto a = GenerateLeagueHistory(config);
  auto b = GenerateLeagueHistory(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].player, b[i].player);
    EXPECT_EQ(a[i].points, b[i].points);
  }
}

TEST(NbaGenTest, ToTableShapeAndGrouping) {
  NbaConfig config;
  config.target_records = 3000;
  auto seasons = GenerateLeagueHistory(config);
  Table t = ToTable(seasons);
  EXPECT_EQ(t.num_rows(), 3000u);
  EXPECT_EQ(t.num_columns(), 4u + StatColumns().size());
  // The table can be grouped on every grouping attribute the bench uses.
  for (const char* key : {"player", "team", "year", "pos"}) {
    auto ds = core::GroupedDataset::FromTable(t, {key}, StatColumns());
    ASSERT_TRUE(ds.ok()) << key;
    EXPECT_EQ(ds->total_records(), 3000u);
  }
  auto by_team_year =
      core::GroupedDataset::FromTable(t, {"team", "year"}, StatColumns());
  ASSERT_TRUE(by_team_year.ok());
  EXPECT_GT(by_team_year->num_groups(), 100u);
}

TEST(NbaGenTest, TeamsComeFromConfiguredPool) {
  NbaConfig config;
  config.target_records = 2000;
  config.num_teams = 10;
  auto seasons = GenerateLeagueHistory(config);
  std::set<std::string> teams;
  for (const PlayerSeason& ps : seasons) teams.insert(ps.team);
  EXPECT_LE(teams.size(), 10u);
  EXPECT_GT(teams.size(), 5u);
}

}  // namespace
}  // namespace galaxy::nba
