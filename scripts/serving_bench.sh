#!/usr/bin/env bash
# Connection-scaling benchmark for the serving layer.
#
# Boots galaxy_served (event-driven engine) on the bundled movie dataset,
# drives an open-loop galaxy_bench_client run at each connection count, and
# merges the per-run reports into BENCH_serving.json (schema
# galaxy-serving-bench-v2):
#
#   serving_event_c<N>  — qps, p50/p99/p999 ms, errors
#
# Usage: scripts/serving_bench.sh [quick|full] [build_dir]
#   quick: 100/1000 connections, 5 s per point   (CI)
#   full:  100/1000/10000 connections, 10 s per point
set -uo pipefail

PROFILE="${1:-quick}"
BUILD_DIR="${2:-build}"
SERVED="$BUILD_DIR/tools/galaxy_served"
CLIENT="$BUILD_DIR/tools/galaxy_bench_client"
CSV="galaxy_movies.csv"
SQL="SELECT Director FROM movies GROUP BY Director SKYLINE OF Pop MAX, Qual MAX GAMMA 0.6"
OUT="BENCH_serving.json"

# Each point runs TRIALS times and the merge keeps the best-throughput
# trial: open-loop qps on a shared machine is noisy (scheduler, cache),
# and gated floors would otherwise flap.
case "$PROFILE" in
  quick) CONNS=(100 1000); DURATION=5; TRIALS=2 ;;
  full)  CONNS=(100 1000 10000); DURATION=10; TRIALS=2 ;;
  *) echo "serving_bench: profile must be quick|full" >&2; exit 2 ;;
esac

for f in "$SERVED" "$CLIENT" "$CSV"; do
  if [[ ! -e "$f" ]]; then
    echo "serving_bench: missing $f (build the tools and run from the repo root)" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

start_server() {
  local log="$WORK_DIR/served.log"
  "$SERVED" --csv "$CSV" --table movies --port 0 \
    --view "movies:Director:Pop,Qual:0.6" >"$log" 2>&1 &
  SERVER_PID=$!
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$log")"
    [[ -n "$port" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "serving_bench: galaxy_served exited during startup:" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  [[ -n "$port" ]] || { echo "serving_bench: no port from server" >&2; return 1; }
  echo "$port"
}

stop_server() {
  kill -TERM "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

PORT="$(start_server)" || exit 1
echo "serving_bench: server up on port $PORT" >&2
for conns in "${CONNS[@]}"; do
  for trial in $(seq 1 "$TRIALS"); do
    report="$WORK_DIR/event_c${conns}_t${trial}.json"
    echo "serving_bench: $conns connections, ${DURATION}s (trial $trial/$TRIALS) ..." >&2
    if ! "$CLIENT" --port "$PORT" --open-loop --connections "$conns" \
        --duration-s "$DURATION" --sql "$SQL" --out "$report"; then
      # Report written with transport errors, or the run collapsed
      # entirely: keep going, the merge step records the failure.
      echo "serving_bench: $conns connections trial $trial reported errors" >&2
      [[ -s "$report" ]] || echo '{"qps": 0, "failed": true}' >"$report"
    fi
  done
done
stop_server

python3 - "$WORK_DIR" "$OUT" "$PROFILE" "$TRIALS" "${CONNS[@]}" <<'EOF'
import json, os, sys

work_dir, out_path, profile = sys.argv[1], sys.argv[2], sys.argv[3]
trials = int(sys.argv[4])
conns = [int(c) for c in sys.argv[5:]]

def effective_qps(report):
    if report.get("failed") or report.get("transport_errors", 0) > 0:
        return 0.0
    return report.get("qps", 0.0)

entries = []
for c in conns:
    reports = [
        json.load(open(os.path.join(work_dir, f"event_c{c}_t{t}.json")))
        for t in range(1, trials + 1)
    ]
    report = max(reports, key=effective_qps)  # best trial
    failed = effective_qps(report) == 0.0
    lat = report.get("latency_ms", {})
    entry = {
        "name": f"serving_event_c{c}",
        "qps": effective_qps(report),
        "p50_ms": lat.get("p50", 0.0),
        "p99_ms": lat.get("p99", 0.0),
        "p999_ms": lat.get("p999", 0.0),
        "transport_errors": report.get("transport_errors", 0),
    }
    if failed:
        entry["failed"] = True
    entries.append(entry)

json.dump({"schema": "galaxy-serving-bench-v2",
           "quick": profile == "quick",
           "entries": entries},
          open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"serving_bench: wrote {out_path}")
for entry in entries:
    print(" ", json.dumps(entry))
EOF
