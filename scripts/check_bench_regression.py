#!/usr/bin/env python3
"""Gates CI on kernel-microbench regressions.

Usage:
    python3 scripts/check_bench_regression.py BASELINE.json CANDIDATE.json

Both files are kernel_microbench reports (schema galaxy-kernel-bench-v1).
Only *ratio* metrics are compared — speedups of one code path over another
measured in the same process — because they are stable across machines,
unlike absolute times or pairs/sec. A candidate fails when:

  * a ratio metric drops more than TOLERANCE below the baseline value, or
  * an absolute floor is violated (the ISSUE acceptance criterion:
    >= 3x single-thread counting throughput on independent d=4 data).

Entries present only in one report are noted but never fatal, so adding or
removing a bench section does not require touching the baseline in the
same commit.
"""

import json
import sys

# Relative drop allowed on each ratio metric before the gate trips.
TOLERANCE = 0.25

# Metric keys that are cross-hardware-stable ratios; everything else
# (seconds, pairs/sec, comparison counts) is informational only.
RATIO_KEYS = {"speedup", "speedup_vs_scalar", "speedup_vs_tiled"}

# (entry name, metric, minimum value): hard floors independent of the
# baseline. parallel_speedup is exempt everywhere — single-core CI runners
# legitimately report ~1.0.
FLOORS = [
    ("count_block_d4_indep", "speedup", 3.0),
]


def load(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "galaxy-kernel-bench-v1":
        sys.exit(f"{path}: unexpected schema {report.get('schema')!r}")
    return {entry["name"]: entry for entry in report["entries"]}


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json CANDIDATE.json")
    baseline = load(sys.argv[1])
    candidate = load(sys.argv[2])

    failures = []
    checked = 0

    for name, base_entry in sorted(baseline.items()):
        cand_entry = candidate.get(name)
        if cand_entry is None:
            print(f"note: {name}: in baseline only, skipped")
            continue
        for key, base_value in base_entry.items():
            if key not in RATIO_KEYS:
                continue
            cand_value = cand_entry.get(key)
            if cand_value is None:
                print(f"note: {name}.{key}: missing from candidate, skipped")
                continue
            checked += 1
            limit = base_value * (1.0 - TOLERANCE)
            status = "ok" if cand_value >= limit else "FAIL"
            print(f"{status}: {name}.{key}: baseline {base_value:.3f} "
                  f"candidate {cand_value:.3f} (limit {limit:.3f})")
            if cand_value < limit:
                failures.append(
                    f"{name}.{key} dropped {base_value:.3f} -> "
                    f"{cand_value:.3f} (> {TOLERANCE:.0%} regression)")

    for name in sorted(set(candidate) - set(baseline)):
        print(f"note: {name}: in candidate only, skipped")

    for name, key, minimum in FLOORS:
        entry = candidate.get(name)
        value = entry.get(key) if entry else None
        if value is None:
            failures.append(f"floor check impossible: {name}.{key} missing")
            continue
        checked += 1
        status = "ok" if value >= minimum else "FAIL"
        print(f"{status}: floor {name}.{key}: {value:.3f} >= {minimum}")
        if value < minimum:
            failures.append(
                f"{name}.{key} = {value:.3f} below hard floor {minimum}")

    if checked == 0:
        failures.append("no comparable ratio metrics found — wrong files?")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {checked} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
