#!/usr/bin/env python3
"""Gates CI on benchmark regressions.

Usage:
    python3 scripts/check_bench_regression.py BASELINE.json CANDIDATE.json

Both files are bench reports of the same schema — the kernel
microbenchmark (galaxy-kernel-bench-v1, bench/kernel_microbench), the
parallel-scaling trajectory (galaxy-parallel-bench-v1,
bench/parallel_scaling) or the SQL end-to-end latency report
(galaxy-sql-bench-v1, bench/fig08_sql_scalability). The serving
connection-scaling report (galaxy-serving-bench-v2,
scripts/serving_bench.sh) is deliberately not gated: with the legacy
thread-per-connection path retired it carries only absolute qps/latency,
which does not transfer between machines. Only *ratio* metrics
are compared — speedups of
one code path over another measured in the same process — because they are
stable across machines, unlike absolute times or pairs/sec. A candidate
fails when:

  * a ratio metric drops more than TOLERANCE below the baseline value, or
  * an absolute floor is violated: >= 3x single-thread counting throughput
    on independent d=4 data (kernel schema), >= 3x parallel speedup at
    8 threads on the Zipf d=4 shape (parallel schema, the ISSUE 6
    acceptance criterion), and >= 2x batch-over-scalar speedup on the
    scan- and GROUP-BY-dominated SQL shapes (sql schema, the ISSUE 8
    acceptance criterion).

Parallel-speedup ratios depend on the machine's core count, so in the
parallel schema both the baseline comparison and the floors are
conditional on hardware: entries are compared only when the baseline and
candidate report the same hardware_threads *and* that machine has more
than one (on a single core every "speedup" is scheduling noise around
1.0, far wider than the tolerance), and a floor on a t<N> entry applies
only when the candidate machine exposes >= N hardware threads
(single-core CI runners legitimately report ~1.0 everywhere and are
exempt, mirroring the kernel report's parallel_speedup exemption).

Entries present only in one report are noted but never fatal, so adding or
removing a bench section does not require touching the baseline in the
same commit.
"""

import json
import sys

# Relative drop allowed on each ratio metric before the gate trips.
TOLERANCE = 0.25

# Per-schema gate configuration:
#   ratio_keys — metric keys that are cross-hardware-stable ratios;
#                everything else (seconds, pairs/sec, counts) is
#                informational only.
#   floors     — (entry name, metric, minimum, min hardware threads):
#                hard minima independent of the baseline; the hardware
#                bound (0 = unconditional) keeps thread-scaling floors
#                from tripping on machines too small to ever meet them.
SCHEMAS = {
    "galaxy-kernel-bench-v1": {
        # parallel_speedup is deliberately absent: single-core CI runners
        # legitimately report ~1.0 (the scaling gate lives in the
        # galaxy-parallel-bench-v1 schema, conditioned on hardware).
        "ratio_keys": {"speedup", "speedup_vs_scalar", "speedup_vs_tiled"},
        "floors": [
            ("count_block_d4_indep", "speedup", 3.0, 0),
        ],
    },
    "galaxy-parallel-bench-v1": {
        "ratio_keys": {"speedup"},
        "floors": [
            ("scaling_zipf_d4_t8", "speedup", 3.0, 8),
        ],
    },
    "galaxy-sql-bench-v1": {
        # In-process ratio of the scalar tuple-at-a-time pipeline over the
        # batch columnar pipeline on the same query (bench/
        # fig08_sql_scalability). sql_over_native is deliberately absent:
        # it shrinks whenever the SQL engine improves, which must never
        # trip a regression gate.
        "ratio_keys": {"speedup_vs_scalar"},
        "floors": [
            # ISSUE 8 acceptance: >=2x end-to-end on a scan-dominated and
            # a GROUP-BY-dominated shape, on any hardware.
            ("sql_scan_filter", "speedup_vs_scalar", 2.0, 0),
            ("sql_group_agg", "speedup_vs_scalar", 2.0, 0),
        ],
    },
}


def load(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    schema = report.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return schema, {entry["name"]: entry for entry in report["entries"]}


def hardware_threads(entries):
    """The machine size recorded in the report (0 when not recorded)."""
    for entry in entries.values():
        if "hardware_threads" in entry:
            return int(entry["hardware_threads"])
    return 0


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json CANDIDATE.json")
    base_schema, baseline = load(sys.argv[1])
    cand_schema, candidate = load(sys.argv[2])
    if base_schema != cand_schema:
        sys.exit(f"schema mismatch: baseline {base_schema!r} "
                 f"vs candidate {cand_schema!r}")
    config = SCHEMAS[base_schema]
    ratio_keys = config["ratio_keys"]

    # Thread-scaling ratios only transfer between same-sized machines,
    # and carry no signal at all on a single core.
    hardware_gated = base_schema == "galaxy-parallel-bench-v1"
    base_hw = hardware_threads(baseline)
    cand_hw = hardware_threads(candidate)
    compare_ratios = not hardware_gated or (base_hw == cand_hw
                                            and cand_hw > 1)
    if not compare_ratios:
        if base_hw != cand_hw:
            print(f"note: baseline ran on {base_hw} hardware threads, "
                  f"candidate on {cand_hw}; ratio comparison skipped "
                  f"(floors still apply)")
        else:
            print("note: single-core machine — thread-scaling ratios are "
                  "noise around 1.0; ratio comparison skipped "
                  "(floors still apply)")

    failures = []
    checked = 0

    if compare_ratios:
        for name, base_entry in sorted(baseline.items()):
            cand_entry = candidate.get(name)
            if cand_entry is None:
                print(f"note: {name}: in baseline only, skipped")
                continue
            for key, base_value in base_entry.items():
                if key not in ratio_keys:
                    continue
                cand_value = cand_entry.get(key)
                if cand_value is None:
                    print(f"note: {name}.{key}: missing from candidate, "
                          f"skipped")
                    continue
                checked += 1
                limit = base_value * (1.0 - TOLERANCE)
                status = "ok" if cand_value >= limit else "FAIL"
                print(f"{status}: {name}.{key}: baseline {base_value:.3f} "
                      f"candidate {cand_value:.3f} (limit {limit:.3f})")
                if cand_value < limit:
                    failures.append(
                        f"{name}.{key} dropped {base_value:.3f} -> "
                        f"{cand_value:.3f} (> {TOLERANCE:.0%} regression)")

        for name in sorted(set(candidate) - set(baseline)):
            print(f"note: {name}: in candidate only, skipped")

    for name, key, minimum, min_hw in config["floors"]:
        if min_hw and cand_hw < min_hw:
            print(f"note: floor {name}.{key} needs >= {min_hw} hardware "
                  f"threads (candidate has {cand_hw}), skipped")
            continue
        entry = candidate.get(name)
        value = entry.get(key) if entry else None
        if value is None:
            failures.append(f"floor check impossible: {name}.{key} missing")
            continue
        checked += 1
        status = "ok" if value >= minimum else "FAIL"
        print(f"{status}: floor {name}.{key}: {value:.3f} >= {minimum}")
        if value < minimum:
            failures.append(
                f"{name}.{key} = {value:.3f} below hard floor {minimum}")

    if checked == 0 and compare_ratios:
        failures.append("no comparable ratio metrics found — wrong files?")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {checked} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
