#!/usr/bin/env python3
"""Converts galaxy bench output into tidy CSV for plotting.

Usage:
    python3 scripts/bench_to_csv.py bench_output.txt > results.csv
    ./build/bench/fig10_dimensionality | python3 scripts/bench_to_csv.py -
    ./build/tools/galaxy_bench_client --port 8080 | \
        python3 scripts/bench_to_csv.py -

Two input formats are auto-detected:

1. google-benchmark console output. Each row like

       fig10/anti/d=5/IN    69.1 ms    66.1 ms    10 groups=100 rec_cmps=5.5M

   becomes a CSV row with the slash-separated name parts split into
   columns (name, part0, part1, ...), the wall/CPU times normalized to
   milliseconds, and every UserCounter as its own column.

2. galaxy_bench_client JSON (input starting with '{'). Emitted as
   long-form CSV with columns kind,key,value: one `summary` row per
   scalar (requests, qps, latency_ms_p50, ...), one `status` row per
   HTTP status code, and one `bucket` row per latency-histogram bucket
   (key = upper bound in microseconds, value = count).
"""

import csv
import json
import re
import sys

ROW = re.compile(
    r"^(?P<name>\S+)\s+(?P<time>[0-9.]+)\s+(?P<time_unit>ns|us|ms|s)\s+"
    r"(?P<cpu>[0-9.]+)\s+(?P<cpu_unit>ns|us|ms|s)\s+(?P<iters>\d+)"
    r"(?P<rest>.*)$"
)
COUNTER = re.compile(r"([\w><]+)=([0-9.]+[kMG]?)")

UNIT_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}


def parse_value(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def convert_bench_client_json(text):
    """Tidies a galaxy_bench_client report: summary + status + buckets."""
    report = json.loads(text)
    writer = csv.writer(sys.stdout)
    writer.writerow(["kind", "key", "value"])
    for key in ("requests", "transport_errors", "cache_hits", "degraded",
                "duration_s", "qps"):
        if key in report:
            writer.writerow(["summary", key, report[key]])
    for name, value in sorted(report.get("latency_ms", {}).items()):
        writer.writerow(["summary", f"latency_ms_{name}", value])
    for code, count in sorted(report.get("status", {}).items()):
        writer.writerow(["status", code, count])
    for bucket in report.get("histogram_us", []):
        writer.writerow(["bucket", bucket["le"], bucket["count"]])
    return 0


def main():
    source = sys.stdin if len(sys.argv) < 2 or sys.argv[1] == "-" else open(
        sys.argv[1], encoding="utf-8")
    text = source.read()
    if text.lstrip().startswith("{"):
        return convert_bench_client_json(text)
    rows = []
    counters = set()
    max_parts = 0
    for line in text.splitlines():
        match = ROW.match(line.strip())
        if not match:
            continue
        name = match.group("name")
        # Strip trailing /iterations:N and /real_time decorations.
        name = re.sub(r"/(iterations:\d+|real_time)", "", name)
        parts = name.split("/")
        max_parts = max(max_parts, len(parts))
        row = {
            "name": name,
            "time_ms": float(match.group("time")) *
                       UNIT_MS[match.group("time_unit")],
            "cpu_ms": float(match.group("cpu")) *
                      UNIT_MS[match.group("cpu_unit")],
            "iterations": int(match.group("iters")),
        }
        for i, part in enumerate(parts):
            row[f"part{i}"] = part
        for key, value in COUNTER.findall(match.group("rest")):
            row[key] = parse_value(value)
            counters.add(key)
        rows.append(row)

    if not rows:
        print("no benchmark rows found", file=sys.stderr)
        return 1

    fields = (["name", "time_ms", "cpu_ms", "iterations"] +
              [f"part{i}" for i in range(max_parts)] + sorted(counters))
    writer = csv.DictWriter(sys.stdout, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
