#!/usr/bin/env bash
# Runs clang-tidy with the repository profile (.clang-tidy) against the
# compilation database exported by CMake.
#
# Usage:
#   scripts/run_clang_tidy.sh [build-dir] [--all]
#
# Default mode lints only files changed relative to origin/main (falling
# back to --all when there is no such ref, e.g. a fresh shallow clone).
# Exits 0 with a notice when clang-tidy is not installed, so local builds
# on machines without LLVM are not blocked; CI installs clang-tidy and
# treats findings as errors per the WarningsAsErrors list in .clang-tidy.
set -euo pipefail

BUILD_DIR=build
ALL=0
for arg in "$@"; do
  case "$arg" in
    --all) ALL=1 ;;
    -*) echo "usage: $0 [build-dir] [--all]" >&2; exit 2 ;;
    *) BUILD_DIR=$arg ;;
  esac
done

cd "$(dirname "$0")/.."

TIDY=
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY=$cand
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install" \
       "LLVM or rely on the CI job)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# Pick the files to lint: changed vs origin/main, or the whole tree.
declare -a FILES
if [[ "$ALL" == 0 ]] && git rev-parse --verify -q origin/main >/dev/null; then
  mapfile -t FILES < <(git diff --name-only --diff-filter=ACMR origin/main -- \
                         'src/*.cc' 'src/*.h' 'tools/*.cc' 'tools/*.cpp' \
                         'tools/*.h' 'bench/*.cc' 'bench/*.h')
else
  mapfile -t FILES < <(git ls-files 'src/*.cc' 'tools/*.cc' 'tools/*.cpp' \
                         'bench/*.cc')
fi
# Headers are covered via HeaderFilterRegex when their including .cc runs;
# drop them from the direct list (no compile command of their own).
declare -a TUS
for f in "${FILES[@]:-}"; do
  [[ "$f" == *.cc || "$f" == *.cpp ]] && TUS+=("$f")
done

if [[ ${#TUS[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no translation units to lint" >&2
  exit 0
fi

echo "run_clang_tidy: $TIDY over ${#TUS[@]} file(s)" >&2
"$TIDY" -p "$BUILD_DIR" --quiet "${TUS[@]}"
