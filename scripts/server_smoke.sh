#!/usr/bin/env bash
# End-to-end smoke test for the serving layer.
#
# Starts galaxy_served (event-driven engine) on the bundled movie dataset,
# drives a short closed-loop burst with galaxy_bench_client (repeated
# skyline queries plus periodic /update inserts), scrapes /metrics, and
# asserts:
#   - the bench client saw zero transport errors and zero 5xx responses,
#   - the result cache produced hits (galaxy_cache_hits_total > 0),
#   - the server shuts down cleanly on SIGTERM.
#
# Usage: scripts/server_smoke.sh [build_dir]   (run from the repo root)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVED="$BUILD_DIR/tools/galaxy_served"
CLIENT="$BUILD_DIR/tools/galaxy_bench_client"
CSV="galaxy_movies.csv"

# The bundled dataset is generated, not checked in; build it on demand.
if [[ ! -e "$CSV" && -x "$BUILD_DIR/examples/csv_workflow" ]]; then
  "$BUILD_DIR/examples/csv_workflow" > /dev/null
fi

for f in "$SERVED" "$CLIENT" "$CSV"; do
  if [[ ! -e "$f" ]]; then
    echo "server_smoke: missing $f (build the tools and run from the repo root)" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

SERVER_LOG="$WORK_DIR/served.log"
REPORT="$WORK_DIR/report.json"

# --port 0 binds an ephemeral port; parse it from the startup line.
"$SERVED" --csv "$CSV" --table movies --port 0 \
  --view "movies:Director:Pop,Qual:0.6" >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$SERVER_LOG")"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server_smoke: galaxy_served exited during startup:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "server_smoke: server never reported its port:" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "server_smoke: galaxy_served up on port $PORT"

http_get() {
  python3 - "$1" <<'EOF'
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as r:
    sys.stdout.write(r.read().decode())
EOF
}

[[ "$(http_get "http://127.0.0.1:$PORT/healthz")" == "ok" ]] || {
  echo "server_smoke: /healthz did not answer ok" >&2
  exit 1
}

# Closed-loop burst: 4 connections x 100 requests of the same skyline
# query (exercising the result cache), with an insert every 50th request
# routed through /update (exercising incremental view maintenance and
# cache invalidation). The schema is Title,Year,Director,Pop,Qual with
# integer Pop/Qual.
"$CLIENT" --port "$PORT" --connections 4 --requests 400 \
  --sql "SELECT Director FROM movies GROUP BY Director SKYLINE OF Pop MAX, Qual MAX GAMMA 0.6" \
  --update-every 50 --update-table movies \
  --update-body "Smoke Movie,2024,Smoke,9,8" \
  --seed 42 --out "$REPORT"

# Exercise the JSON branch of the CSV converter on the real report.
python3 scripts/bench_to_csv.py "$REPORT" >/dev/null

python3 - "$REPORT" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
errors = []
if report["transport_errors"] != 0:
    errors.append(f"transport_errors={report['transport_errors']}")
fives = {c: n for c, n in report["status"].items() if c.startswith("5")}
if fives:
    errors.append(f"5xx responses: {fives}")
if report["requests"] < 400:
    errors.append(f"only {report['requests']} requests completed")
if errors:
    sys.exit("server_smoke: bench report failed checks: " + "; ".join(errors))
print(f"server_smoke: {report['requests']} requests, "
      f"qps={report['qps']:.0f}, p99={report['latency_ms']['p99']:.2f}ms, "
      f"cache_hits={report['cache_hits']}, status={report['status']}")
EOF

METRICS="$(http_get "http://127.0.0.1:$PORT/metrics")"
CACHE_HITS="$(printf '%s\n' "$METRICS" \
  | sed -n 's/^galaxy_cache_hits_total \([0-9][0-9]*\)$/\1/p')"
if [[ -z "$CACHE_HITS" || "$CACHE_HITS" -eq 0 ]]; then
  echo "server_smoke: expected nonzero galaxy_cache_hits_total, got '${CACHE_HITS:-missing}'" >&2
  printf '%s\n' "$METRICS" | head -40 >&2
  exit 1
fi
if printf '%s\n' "$METRICS" \
  | grep -E '^galaxy_responses_total\{code="5[0-9]{2}"\} [1-9]' >/dev/null; then
  echo "server_smoke: server-side 5xx counters are nonzero" >&2
  printf '%s\n' "$METRICS" | grep '^galaxy_responses_total' >&2
  exit 1
fi
echo "server_smoke: metrics ok (galaxy_cache_hits_total=$CACHE_HITS)"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
if [[ "$STATUS" -ne 0 ]]; then
  echo "server_smoke: server exited with status $STATUS on SIGTERM" >&2
  exit 1
fi
echo "server_smoke: PASS"
