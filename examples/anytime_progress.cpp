// Anytime aggregate skyline: watch the answer converge under a budget.
//
// Interactive systems cannot always afford the full quadratic comparison
// cost before showing results. The anytime operator (core/anytime.h)
// maintains a sound over-approximation ("possible") that only shrinks and
// a confirmed subset that only grows; this example prints the progress
// curve on a default-sized synthetic workload.

#include <cstdio>

#include "core/anytime.h"
#include "datagen/groups.h"

int main() {
  galaxy::datagen::GroupedWorkloadConfig config;
  config.num_records = 10000;
  config.avg_records_per_group = 100;
  config.dims = 5;
  config.seed = 2013;
  auto dataset = galaxy::datagen::GenerateGrouped(config);
  std::printf("workload: %zu records in %zu groups, d=%zu\n",
              dataset.total_records(), dataset.num_groups(), dataset.dims());

  galaxy::core::AnytimeAggregateSkyline::Options options;
  options.gamma = 0.5;
  galaxy::core::AnytimeAggregateSkyline engine(dataset, options);

  std::printf("\n%14s %10s %10s %14s\n", "comparisons", "possible",
              "confirmed", "pairs decided");
  auto report = [&](const galaxy::core::AnytimeAggregateSkyline::Snapshot& s) {
    std::printf("%14llu %10zu %10zu %7llu/%llu\n",
                static_cast<unsigned long long>(s.comparisons_used),
                s.possible.size(), s.confirmed.size(),
                static_cast<unsigned long long>(s.pairs_decided),
                static_cast<unsigned long long>(s.pairs_total));
  };
  report(engine.Current());
  const uint64_t step = 500000;
  while (!engine.complete()) {
    report(engine.Advance(step));
  }
  auto final_state = engine.Current();
  std::printf("\nconverged: %zu skyline groups, all confirmed (%s)\n",
              final_state.possible.size(),
              final_state.complete ? "complete" : "incomplete");
  return 0;
}
