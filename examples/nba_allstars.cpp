// NBA all-stars: aggregate skylines over a synthetic league history.
//
// Mirrors the paper's real-data experiment (Section 4.2): ~15 000
// player-season stat lines since 1979 with eight per-game skyline
// attributes. Answers "who are the most interesting careers?" (group by
// player), "which franchises had the best rosters?" (group by team), and
// "which team-seasons were legendary?" (group by team and year).

#include <cstdio>

#include "common/timer.h"
#include "core/aggregate_skyline.h"
#include "nba/nba_gen.h"

using galaxy::Table;
using galaxy::core::AggregateSkylineOptions;
using galaxy::core::AggregateSkylineResult;
using galaxy::core::Algorithm;
using galaxy::core::ComputeAggregateSkyline;
using galaxy::core::GroupedDataset;

namespace {

void RunQuery(const Table& table, const std::vector<std::string>& group_by,
              const std::vector<std::string>& attrs, const char* question) {
  auto grouped = GroupedDataset::FromTable(table, group_by, attrs);
  if (!grouped.ok()) {
    std::fprintf(stderr, "grouping failed: %s\n",
                 grouped.status().ToString().c_str());
    return;
  }
  AggregateSkylineOptions options;
  options.gamma = 0.5;
  options.algorithm = Algorithm::kIndexedBbox;
  galaxy::WallTimer timer;
  AggregateSkylineResult result = ComputeAggregateSkyline(*grouped, options);
  std::printf("\n== %s ==\n", question);
  std::printf("groups=%zu skyline=%zu time=%.3fs\n", grouped->num_groups(),
              result.skyline.size(), timer.ElapsedSeconds());
  size_t shown = 0;
  for (const std::string& label : result.Labels(*grouped)) {
    std::printf("  %s\n", label.c_str());
    if (++shown >= 12) {
      std::printf("  ... and %zu more\n", result.skyline.size() - shown);
      break;
    }
  }
}

}  // namespace

int main() {
  galaxy::nba::NbaConfig config;
  auto seasons = galaxy::nba::GenerateLeagueHistory(config);
  Table table = galaxy::nba::ToTable(seasons);
  std::printf("generated %zu player-season records (%lld-%lld)\n",
              table.num_rows(), static_cast<long long>(config.first_year),
              static_cast<long long>(config.last_year));

  const std::vector<std::string>& stats = galaxy::nba::StatColumns();

  // Full eight-attribute skyline grouped by player: the careers no other
  // player's body of work dominates.
  RunQuery(table, {"player"}, stats,
           "Most interesting careers (all 8 stats, group by player)");

  // Two-attribute variant: scoring and playmaking only.
  RunQuery(table, {"player"}, {"pts", "ast"},
           "Best scorer-playmakers (pts+ast, group by player)");

  // Franchises: which teams' rosters are not dominated.
  RunQuery(table, {"team"}, {"pts", "reb", "ast", "stl"},
           "Strongest franchises (4 stats, group by team)");

  // Team-seasons: fine-grained groups, many of them.
  RunQuery(table, {"team", "year"}, {"pts", "reb", "ast"},
           "Legendary team-seasons (3 stats, group by team+year)");
  return 0;
}
