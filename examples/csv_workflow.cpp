// CSV workflow: the adoption path for a downstream user with their own
// data. Loads a CSV (a bundled movie file is generated if no path is
// given), runs SQL over it, and computes record and aggregate skylines.
//
// Usage: csv_workflow [file.csv group_column value_column...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/aggregate_skyline.h"
#include "datagen/movies.h"
#include "relation/csv.h"
#include "sql/catalog.h"

using galaxy::Table;

int main(int argc, char** argv) {
  std::string path;
  std::string group_column = "Director";
  std::vector<std::string> value_columns = {"Pop", "Qual"};

  if (argc >= 4) {
    path = argv[1];
    group_column = argv[2];
    value_columns.assign(argv + 3, argv + argc);
  } else {
    // No input given: write the paper's movie table next to us and use it.
    path = "galaxy_movies.csv";
    galaxy::Status s =
        galaxy::WriteCsvFile(galaxy::datagen::MovieTable(), path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write sample CSV: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("no input given; wrote sample data to %s\n\n", path.c_str());
  }

  auto table = galaxy::ReadCsvFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows, schema %s\n\n", table->num_rows(),
              table->schema().ToString().c_str());

  // SQL over the loaded data.
  galaxy::sql::Database db;
  db.Register("data", *table);
  std::string attrs;
  for (size_t i = 0; i < value_columns.size(); ++i) {
    if (i > 0) attrs += ", ";
    attrs += value_columns[i] + " MAX";
  }
  auto record_skyline =
      db.Query("SELECT * FROM data SKYLINE OF " + attrs + " LIMIT 20");
  if (!record_skyline.ok()) {
    std::fprintf(stderr, "record skyline failed: %s\n",
                 record_skyline.status().ToString().c_str());
    return 1;
  }
  std::printf("== record skyline (%s) ==\n%s\n", attrs.c_str(),
              record_skyline->ToString().c_str());

  auto grouped = galaxy::core::GroupedDataset::FromTable(
      *table, {group_column}, value_columns);
  if (!grouped.ok()) {
    std::fprintf(stderr, "grouping failed: %s\n",
                 grouped.status().ToString().c_str());
    return 1;
  }
  galaxy::core::AggregateSkylineOptions options;
  options.algorithm = galaxy::core::Algorithm::kAuto;
  auto result = galaxy::core::ComputeAggregateSkyline(*grouped, options);
  std::printf("== aggregate skyline by %s (gamma=0.5, algorithm %s) ==\n",
              group_column.c_str(),
              galaxy::core::AlgorithmToString(result.algorithm_used));
  for (const std::string& label : result.Labels(*grouped)) {
    std::printf("  %s\n", label.c_str());
  }
  return 0;
}
