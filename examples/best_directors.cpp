// Best directors at IMDB scale: the paper's Section 1 question ("what are
// the most interesting directors, judged by their movies?") on a synthetic
// 20 000-movie corpus with heavy-tailed filmographies, answered by the
// native operator, the adaptive planner, and the gamma ranking.

#include <cstdio>

#include "common/timer.h"
#include "core/adaptive.h"
#include "core/aggregate_skyline.h"
#include "datagen/imdb_gen.h"
#include "sql/catalog.h"

using galaxy::Table;
using galaxy::core::AggregateSkylineOptions;
using galaxy::core::Algorithm;
using galaxy::core::GroupedDataset;

int main() {
  galaxy::datagen::ImdbConfig config;
  auto corpus = galaxy::datagen::GenerateImdbCorpus(config);
  Table table = galaxy::datagen::ToTable(corpus);
  std::printf("corpus: %zu movies\n", table.num_rows());

  auto directors =
      GroupedDataset::FromTable(table, {"Director"}, {"Pop", "Qual"});
  if (!directors.ok()) {
    std::fprintf(stderr, "grouping failed: %s\n",
                 directors.status().ToString().c_str());
    return 1;
  }
  std::printf("directors: %zu (largest filmography: ", directors->num_groups());
  size_t largest = 0;
  for (const auto& g : directors->groups()) {
    largest = std::max(largest, g.size());
  }
  std::printf("%zu movies)\n", largest);
  std::printf("workload profile: %s\n",
              galaxy::core::ProfileWorkload(*directors).ToString().c_str());

  AggregateSkylineOptions options;
  options.algorithm = Algorithm::kAuto;
  galaxy::WallTimer timer;
  auto result = galaxy::core::ComputeAggregateSkyline(*directors, options);
  std::printf("\n== aggregate skyline directors (gamma=.5, %s, %.3fs) ==\n",
              galaxy::core::AlgorithmToString(result.algorithm_used),
              timer.ElapsedSeconds());
  size_t shown = 0;
  for (const std::string& label : result.Labels(*directors)) {
    std::printf("  %s\n", label.c_str());
    if (++shown >= 10) {
      std::printf("  ... and %zu more\n", result.skyline.size() - shown);
      break;
    }
  }

  // Genre leaderboard through the SQL front end.
  galaxy::sql::Database db;
  db.Register("movies", table);
  auto genres = db.Query(
      "SELECT Genre FROM movies GROUP BY Genre "
      "SKYLINE OF Pop MAX, Qual MAX ORDER BY Genre");
  if (genres.ok()) {
    std::printf("\n== genres in the aggregate skyline ==\n%s",
                genres->ToString().c_str());
  }
  return 0;
}
