// Quickstart: the paper's running example end to end.
//
// Reproduces Figures 1-4 of "From Stars to Galaxies" on the verbatim Movie
// table: the record skyline (Example 1), a classical aggregate query
// (Example 2), and the aggregate skyline (Example 3) via both the native
// operator and the SQL front end.

#include <cstdio>

#include "core/aggregate_skyline.h"
#include "datagen/movies.h"
#include "skyline/skyline.h"
#include "sql/catalog.h"

using galaxy::Table;
using galaxy::core::AggregateSkylineOptions;
using galaxy::core::AggregateSkylineResult;
using galaxy::core::Algorithm;
using galaxy::core::ComputeAggregateSkyline;
using galaxy::core::GroupedDataset;

int main() {
  Table movies = galaxy::datagen::MovieTable();
  std::printf("== Figure 1: the Movie table ==\n%s\n",
              movies.ToString().c_str());

  // --- Example 1: record skyline (Figure 2). ---------------------------
  auto skyline_rows = galaxy::skyline::ComputeOnTable(
      movies, {"Pop", "Qual"}, galaxy::skyline::AllMax(2));
  if (!skyline_rows.ok()) {
    std::fprintf(stderr, "skyline failed: %s\n",
                 skyline_rows.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 2: SKYLINE OF Pop MAX, Qual MAX ==\n");
  for (size_t row : *skyline_rows) {
    std::printf("  %s (%s votes-k, rated %s)\n",
                movies.at(row, "Title").value().ToString().c_str(),
                movies.at(row, "Pop").value().ToString().c_str(),
                movies.at(row, "Qual").value().ToString().c_str());
  }

  // --- Example 2: aggregate query (Figure 3), via the SQL engine. ------
  galaxy::sql::Database db;
  db.Register("Movie", movies);
  auto figure3 = db.Query(
      "SELECT Director, max(Pop) AS MaxPop, max(Qual) AS MaxQual "
      "FROM Movie GROUP BY Director HAVING max(Qual) >= 8.0 "
      "ORDER BY Director");
  if (!figure3.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 figure3.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Figure 3: GROUP BY Director HAVING max(Qual) >= 8 ==\n%s\n",
              figure3->ToString().c_str());

  // --- Example 3: aggregate skyline (Figure 4(b)), native operator. ----
  auto grouped = GroupedDataset::FromTable(movies, {"Director"},
                                           {"Pop", "Qual"});
  if (!grouped.ok()) {
    std::fprintf(stderr, "grouping failed: %s\n",
                 grouped.status().ToString().c_str());
    return 1;
  }
  AggregateSkylineOptions options;
  options.gamma = 0.5;
  options.algorithm = Algorithm::kNestedLoop;
  AggregateSkylineResult result = ComputeAggregateSkyline(*grouped, options);
  std::printf("== Figure 4(b): aggregate skyline directors (gamma=0.5) ==\n");
  for (const std::string& director : result.Labels(*grouped)) {
    std::printf("  %s\n", director.c_str());
  }
  std::printf("  [%s]\n", result.stats.ToString().c_str());

  // --- The same query in the paper's SQL syntax. ------------------------
  auto figure4 = db.Query(
      "SELECT Director FROM Movie GROUP BY Director "
      "SKYLINE OF Pop MAX, Qual MAX ORDER BY Director");
  if (!figure4.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 figure4.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Example 3 via SQL: GROUP BY ... SKYLINE OF ... ==\n%s\n",
              figure4->ToString().c_str());
  return 0;
}
