// Gamma tuning: the result-size knob of Section 2.2.
//
// gamma = 0.5 is the most selective (smallest) aggregate skyline; raising
// gamma towards 1 admits more groups, and RankByGamma orders every group by
// the smallest gamma at which it enters the skyline — the "sorted output"
// mode the paper suggests for parameter-free exploration.

#include <cstdio>

#include "core/aggregate_skyline.h"
#include "datagen/groups.h"
#include "datagen/movies.h"

using galaxy::core::AggregateSkylineOptions;
using galaxy::core::Algorithm;
using galaxy::core::ComputeAggregateSkyline;
using galaxy::core::RankByGamma;
using galaxy::core::RankedGroup;

int main() {
  // --- Synthetic sweep: skyline size as a function of gamma. ------------
  galaxy::datagen::GroupedWorkloadConfig config;
  config.num_records = 5000;
  config.avg_records_per_group = 50;
  config.dims = 4;
  config.seed = 2013;
  auto dataset = galaxy::datagen::GenerateGrouped(config);

  std::printf("== Result size vs gamma (%zu groups, %zu records) ==\n",
              dataset.num_groups(), dataset.total_records());
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    AggregateSkylineOptions options;
    options.gamma = gamma;
    options.algorithm = Algorithm::kNestedLoop;
    auto result = ComputeAggregateSkyline(dataset, options);
    std::printf("  gamma %.2f -> %3zu skyline groups   (record cmps: %llu)\n",
                gamma, result.skyline.size(),
                static_cast<unsigned long long>(
                    result.stats.record_comparisons));
  }

  // --- Ranked movie directors. -------------------------------------------
  auto movies = galaxy::core::GroupedDataset::FromTable(
      galaxy::datagen::MovieTable(), {"Director"}, {"Pop", "Qual"});
  if (!movies.ok()) {
    std::fprintf(stderr, "grouping failed: %s\n",
                 movies.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Directors ranked by minimal gamma ==\n");
  for (const RankedGroup& rg : RankByGamma(*movies)) {
    if (rg.always_dominated) {
      std::printf("  %-10s  never in a skyline (strictly dominated)\n",
                  rg.label.c_str());
    } else {
      std::printf("  %-10s  enters the skyline at gamma >= %.3f\n",
                  rg.label.c_str(), rg.min_gamma);
    }
  }
  return 0;
}
