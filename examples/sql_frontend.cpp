// SQL front end demo: the same aggregate skyline computed three ways —
// the paper's direct SQL formulation (Algorithm 1) executed by the
// from-scratch SQL engine, the SKYLINE OF syntax extension, and the native
// operator — with wall-clock times showing why the paper bothered to build
// dedicated algorithms (Figure 8's point).

#include <cstdio>

#include "common/timer.h"
#include "core/aggregate_skyline.h"
#include "datagen/groups.h"
#include "sql/catalog.h"
#include "sql/skyline_query.h"

using galaxy::Table;
using galaxy::core::AggregateSkylineOptions;
using galaxy::core::Algorithm;

int main() {
  // A modest workload: 1 500 records in 50 classes, 2 attributes (the
  // SQL baseline is quadratic in records, so keep it demo-sized).
  galaxy::datagen::GroupedWorkloadConfig config;
  config.num_records = 1500;
  config.avg_records_per_group = 30;
  config.dims = 2;
  config.seed = 7;
  auto dataset = galaxy::datagen::GenerateGrouped(config);
  Table table = galaxy::datagen::GroupedDatasetToTable(dataset);

  galaxy::sql::Database db;
  db.Register("data", table);

  // --- 1. Algorithm 1: the direct SQL formulation. ----------------------
  std::string algorithm1 = galaxy::sql::BuildAggregateSkylineSql(
      "data", "class", "num", {"a0", "a1"}, 0.5);
  std::printf("Algorithm 1 SQL:\n  %s\n\n", algorithm1.c_str());

  galaxy::WallTimer t1;
  auto sql_result = db.Query(algorithm1);
  double sql_seconds = t1.ElapsedSeconds();
  if (!sql_result.ok()) {
    std::fprintf(stderr, "SQL failed: %s\n",
                 sql_result.status().ToString().c_str());
    return 1;
  }

  // --- 2. The SKYLINE OF extension (native operator behind SQL). --------
  galaxy::WallTimer t2;
  auto ext_result = db.Query(
      "SELECT class FROM data GROUP BY class SKYLINE OF a0 MAX, a1 MAX");
  double ext_seconds = t2.ElapsedSeconds();
  if (!ext_result.ok()) {
    std::fprintf(stderr, "SKYLINE OF failed: %s\n",
                 ext_result.status().ToString().c_str());
    return 1;
  }

  // --- 3. The native operator on the grouped dataset. -------------------
  AggregateSkylineOptions options;
  options.algorithm = Algorithm::kIndexed;
  galaxy::WallTimer t3;
  auto native = galaxy::core::ComputeAggregateSkyline(dataset, options);
  double native_seconds = t3.ElapsedSeconds();

  std::printf("results: SQL=%zu rows, SKYLINE OF=%zu rows, native=%zu "
              "groups (must all agree)\n",
              sql_result->num_rows(), ext_result->num_rows(),
              native.skyline.size());
  std::printf("timing:  SQL=%.3fs   SKYLINE OF=%.3fs   native(IN)=%.4fs\n",
              sql_seconds, ext_seconds, native_seconds);
  std::printf("speedup of the native operator over direct SQL: %.0fx\n",
              sql_seconds / (native_seconds > 0 ? native_seconds : 1e-9));
  return 0;
}
