// galaxy_served — the standalone query server (src/server/).
//
//   galaxy_served --csv data.csv [--table data] [--host 127.0.0.1]
//                 [--port 8080]
//                 [--io-workers N] [--idle-timeout-ms N]
//                 [--max-concurrent N] [--queue-capacity N]
//                 [--queue-timeout-ms N] [--cache-entries N]
//                 [--default-timeout-ms N]
//                 [--view table:group_col:attrs[:gamma]]
//                 [--data-dir DIR] [--fsync always|interval|never]
//                 [--fsync-interval-ms N] [--snapshot-every N]
//
// Loads the CSV into an in-memory catalog, serves POST /query, POST
// /update, GET /skyline, GET /metrics and GET /healthz (see README
// "Serving" for the endpoint contract), and runs until SIGINT/SIGTERM.
//
// --view installs the incrementally maintained aggregate-skyline view;
// `attrs` is comma-separated and a leading '-' minimizes that attribute,
// e.g. --view "movies:Director:Pop,Qual:0.6".
//
// --data-dir makes /update durable (README "Durability"): on a fresh
// directory the CSV seeds the catalog and is snapshotted; on restart the
// directory is recovered (latest snapshot + WAL replay, --csv then
// ignored) and every acked update is guaranteed present.
//
// Exit status: 0 on clean shutdown, 1 on runtime errors (bad CSV, port in
// use), 2 on usage errors — the same contract as galaxy_cli.

#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "relation/csv.h"
#include "server/server.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace {

using galaxy::Status;
using galaxy::Table;

// Minimal --flag value parser (same contract as galaxy_cli's).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";
        }
      } else {
        error_ = "unexpected argument: " + arg;
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool CheckAllowed(std::initializer_list<const char*> allowed) {
    std::set<std::string> names(allowed.begin(), allowed.end());
    for (const auto& [name, value] : values_) {
      if (names.count(name) == 0) {
        error_ = "unknown flag: --" + name;
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  galaxy::Result<int64_t> GetInt(const std::string& name,
                                 int64_t fallback) const {
    if (!Has(name)) return fallback;
    const std::string& text = values_.at(name);
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("--" + name +
                                     " expects an integer, got: " + text);
    }
    return static_cast<int64_t>(v);
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

// Event mode holds one fd per open connection; at C10K the default soft
// limit (often 1024) exhausts immediately, so raise it to the hard cap.
void RaiseFdLimit() {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galaxy_served --csv data.csv [--table data]\n"
      "                     [--host 127.0.0.1] [--port 8080]\n"
      "                     [--io-workers N] [--idle-timeout-ms N]\n"
      "                     [--max-concurrent N] [--queue-capacity N]\n"
      "                     [--queue-timeout-ms N] [--cache-entries N]\n"
      "                     [--default-timeout-ms N]\n"
      "                     [--view table:group_col:attrs[:gamma]]\n"
      "                     [--data-dir DIR] "
      "[--fsync always|interval|never]\n"
      "                     [--fsync-interval-ms N] [--snapshot-every N]\n");
  return 2;
}

// Parses "table:group_col:a,b,-c[:gamma]".
galaxy::Result<galaxy::server::SkylineViewConfig> ParseView(
    const std::string& spec) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) {
    return Status::InvalidArgument(
        "--view expects table:group_col:attrs[:gamma], got: " + spec);
  }
  galaxy::server::SkylineViewConfig config;
  config.table = parts[0];
  config.group_column = parts[1];
  start = 0;
  while (start <= parts[2].size()) {
    size_t comma = parts[2].find(',', start);
    std::string attr = parts[2].substr(start, comma - start);
    if (!attr.empty()) config.attrs.push_back(attr);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (config.table.empty() || config.group_column.empty() ||
      config.attrs.empty()) {
    return Status::InvalidArgument("--view has empty components: " + spec);
  }
  if (parts.size() == 4) {
    char* end = nullptr;
    errno = 0;
    config.gamma = std::strtod(parts[3].c_str(), &end);
    if (errno != 0 || end != parts[3].c_str() + parts[3].size() ||
        parts[3].empty()) {
      return Status::InvalidArgument("--view gamma is not a number: " +
                                     parts[3]);
    }
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!flags.ok() ||
      !flags.CheckAllowed({"csv", "table", "host", "port",
                           "io-workers", "idle-timeout-ms", "max-concurrent",
                           "queue-capacity", "queue-timeout-ms",
                           "cache-entries", "default-timeout-ms", "view",
                           "data-dir", "fsync", "fsync-interval-ms",
                           "snapshot-every"})) {
    std::fprintf(stderr, "galaxy_served: %s\n", flags.error().c_str());
    return Usage();
  }
  // Without a data directory the CSV is the only source of tables; with
  // one a restart recovers them from disk instead.
  if (!flags.Has("csv") && !flags.Has("data-dir")) {
    std::fprintf(stderr, "galaxy_served: --csv is required\n");
    return Usage();
  }
  for (const char* name : {"fsync", "fsync-interval-ms", "snapshot-every"}) {
    if (flags.Has(name) && !flags.Has("data-dir")) {
      std::fprintf(stderr, "galaxy_served: --%s requires --data-dir\n", name);
      return Usage();
    }
  }

  auto port = flags.GetInt("port", 8080);
  // Event-mode worker default scales with the machine: extra workers on a
  // small core count only add context switches between the loop thread and
  // the pool (measurably so at 1k+ connections on one core).
  unsigned hw = std::thread::hardware_concurrency();
  int64_t default_workers =
      static_cast<int64_t>(hw == 0 ? 4 : (hw < 4 ? hw : 4));
  auto io_workers = flags.GetInt("io-workers", default_workers);
  auto idle_timeout = flags.GetInt("idle-timeout-ms", 10000);
  auto max_concurrent = flags.GetInt("max-concurrent", 4);
  auto queue_capacity = flags.GetInt("queue-capacity", 64);
  auto queue_timeout = flags.GetInt("queue-timeout-ms", 2000);
  auto cache_entries = flags.GetInt("cache-entries", 256);
  auto default_timeout = flags.GetInt("default-timeout-ms", 0);
  auto fsync_interval = flags.GetInt("fsync-interval-ms", 100);
  auto snapshot_every = flags.GetInt("snapshot-every", 0);
  for (const auto* v :
       {&port, &io_workers, &idle_timeout, &max_concurrent, &queue_capacity,
        &queue_timeout, &cache_entries, &default_timeout, &fsync_interval,
        &snapshot_every}) {
    if (!v->ok()) {
      std::fprintf(stderr, "galaxy_served: %s\n",
                   v->status().message().c_str());
      return 2;
    }
  }
  if (*port < 0 || *port > 65535) {
    std::fprintf(stderr, "galaxy_served: --port out of range\n");
    return 2;
  }
  if (*io_workers <= 0 || *idle_timeout <= 0) {
    std::fprintf(stderr,
                 "galaxy_served: --io-workers/--idle-timeout-ms must be "
                 "positive\n");
    return 2;
  }
  if (*fsync_interval < 0 || *snapshot_every < 0) {
    std::fprintf(stderr,
                 "galaxy_served: --fsync-interval-ms/--snapshot-every must "
                 "be non-negative\n");
    return 2;
  }
  galaxy::storage::DurabilityOptions durability_options;
  if (flags.Has("fsync")) {
    auto policy = galaxy::storage::ParseFsyncPolicy(flags.Get("fsync"));
    if (!policy.ok()) {
      std::fprintf(stderr, "galaxy_served: %s\n",
                   policy.status().message().c_str());
      return 2;
    }
    durability_options.wal.policy = *policy;
  }
  durability_options.wal.fsync_interval =
      std::chrono::milliseconds(*fsync_interval);

  galaxy::sql::Database db;
  std::string table_name = flags.Get("table", "data");

  RaiseFdLimit();

  galaxy::server::ServerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(*port);
  options.io_workers = static_cast<size_t>(*io_workers);
  options.idle_timeout = std::chrono::milliseconds(*idle_timeout);
  options.admission.max_concurrent = static_cast<size_t>(*max_concurrent);
  options.admission.queue_capacity = static_cast<size_t>(*queue_capacity);
  options.admission.queue_timeout = std::chrono::milliseconds(*queue_timeout);
  options.cache_entries = static_cast<size_t>(*cache_entries);
  options.default_timeout = std::chrono::milliseconds(*default_timeout);
  options.snapshot_every = static_cast<uint64_t>(*snapshot_every);

  // Declared before the server so it outlives it (connection threads read
  // the attached pointer until Stop()).
  std::unique_ptr<galaxy::storage::DurabilityManager> durability;
  galaxy::server::Server server(&db, options);

  size_t num_rows = 0;
  if (flags.Has("data-dir")) {
    auto opened = galaxy::storage::DurabilityManager::Open(
        galaxy::storage::Env::Default(), flags.Get("data-dir"), &db,
        durability_options, server.DurabilityHooks());
    if (!opened.ok()) {
      std::fprintf(stderr, "galaxy_served: opening --data-dir: %s\n",
                   opened.status().message().c_str());
      return 1;
    }
    durability = std::move(*opened);
    const galaxy::storage::RecoveryInfo& info = durability->recovery_info();
    for (const std::string& warning : info.warnings) {
      std::fprintf(stderr, "galaxy_served: recovery: %s\n", warning.c_str());
    }
    if (db.num_tables() == 0) {
      // Fresh directory: seed from --csv (if given) and persist the seed
      // as the first snapshot so the next start recovers it.
      if (flags.Has("csv")) {
        auto table = galaxy::ReadCsvFile(flags.Get("csv"));
        if (!table.ok()) {
          std::fprintf(stderr, "galaxy_served: %s\n",
                       table.status().message().c_str());
          return 1;
        }
        num_rows = table->num_rows();
        db.Register(table_name, *std::move(table));
      }
      Status bootstrapped = durability->Bootstrap();
      if (!bootstrapped.ok()) {
        std::fprintf(stderr, "galaxy_served: bootstrap snapshot: %s\n",
                     bootstrapped.message().c_str());
        return 1;
      }
    } else {
      std::printf(
          "galaxy_served: recovered generation %llu (%zu tables, %llu WAL "
          "records replayed%s)\n",
          static_cast<unsigned long long>(info.generation),
          info.tables_restored,
          static_cast<unsigned long long>(info.replayed_records),
          info.wal_tail_truncated ? ", torn tail truncated" : "");
      if (flags.Has("csv")) {
        std::fprintf(stderr,
                     "galaxy_served: --csv ignored (tables recovered from "
                     "--data-dir)\n");
      }
      auto recovered = db.GetTable(table_name);
      if (recovered.ok()) num_rows = (*recovered)->num_rows();
    }
    server.AttachDurability(durability.get());
  } else {
    auto table = galaxy::ReadCsvFile(flags.Get("csv"));
    if (!table.ok()) {
      std::fprintf(stderr, "galaxy_served: %s\n",
                   table.status().message().c_str());
      return 1;
    }
    num_rows = table->num_rows();
    db.Register(table_name, *std::move(table));
  }

  if (flags.Has("view")) {
    auto view = ParseView(flags.Get("view"));
    if (!view.ok()) {
      std::fprintf(stderr, "galaxy_served: %s\n",
                   view.status().message().c_str());
      return 2;
    }
    Status installed = server.EnableSkylineView(*view);
    if (!installed.ok()) {
      std::fprintf(stderr, "galaxy_served: %s\n",
                   installed.message().c_str());
      return 1;
    }
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "galaxy_served: %s\n", started.message().c_str());
    return 1;
  }
  std::printf(
      "galaxy_served listening on %s:%u (table \"%s\", %zu rows, "
      "%zu workers)\n",
      options.host.c_str(), server.port(), table_name.c_str(), num_rows,
      options.io_workers);
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM; the event engine runs on its own threads.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  int got = 0;
  sigwait(&signals, &got);
  std::printf("galaxy_served: received signal %d, shutting down\n", got);
  server.Stop();
  return 0;
}
