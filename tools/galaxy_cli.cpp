// galaxy_cli — command-line front end for the galaxy library.
//
//   galaxy_cli query    --csv data.csv --sql "SELECT ..." [--table data]
//                       [--timeout-ms N] [--max-comparisons N] [--strict]
//   galaxy_cli skyline  --csv data.csv --group-by col --attrs a,b[,c...]
//                       [--gamma 0.5] [--algorithm NL|TR|SI|IN|LO|BF|PAR|AUTO]
//                       [--rank] [--representatives K]
//                       [--timeout-ms N] [--max-comparisons N] [--strict]
//   galaxy_cli profile  --csv data.csv --group-by col --attrs a,b
//   galaxy_cli generate --type imdb|nba|grouped --out out.csv
//                       [--records N] [--seed S]
//
// --timeout-ms / --max-comparisons bound the run through the execution
// control plane; by default an interrupted skyline degrades to a sound
// over-approximation (reported as "# quality: approximate-superset"),
// while --strict turns any trip into a non-zero-exit error instead.
//
// Exit status: 0 on success, 1 on execution errors, 2 on usage errors
// (unknown flag, malformed number, out-of-range gamma).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/adaptive.h"
#include "core/aggregate_skyline.h"
#include "core/exec_context.h"
#include "core/representative.h"
#include "datagen/groups.h"
#include "datagen/imdb_gen.h"
#include "nba/nba_gen.h"
#include "relation/csv.h"
#include "sql/catalog.h"
#include "sql/executor.h"

namespace {

using galaxy::Status;
using galaxy::Table;

// Minimal --flag value parser; flags may appear in any order. Numeric
// accessors parse strictly (whole string must be a number) and fail with a
// usage error instead of throwing.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";  // boolean flag
        }
      } else {
        error_ = "unexpected argument: " + arg;
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// One-line diagnostic + exit 2 on a flag not in `allowed`.
  bool CheckAllowed(std::initializer_list<const char*> allowed) {
    std::set<std::string> names(allowed.begin(), allowed.end());
    for (const auto& [name, value] : values_) {
      if (names.count(name) == 0) {
        error_ = "unknown flag: --" + name;
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  galaxy::Result<double> GetDouble(const std::string& name,
                                   double fallback) const {
    if (!Has(name)) return fallback;
    const std::string& text = values_.at(name);
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("--" + name +
                                     " expects a number, got: " + text);
    }
    return v;
  }

  galaxy::Result<int64_t> GetInt(const std::string& name,
                                 int64_t fallback) const {
    if (!Has(name)) return fallback;
    const std::string& text = values_.at(name);
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("--" + name +
                                     " expects an integer, got: " + text);
    }
    return static_cast<int64_t>(v);
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

int Usage() {
  std::fprintf(stderr,
               "usage: galaxy_cli <query|skyline|profile|generate> "
               "[--flags]\n(see the header of tools/galaxy_cli.cpp)\n");
  return 2;
}

galaxy::Result<Table> LoadCsv(const Flags& flags) {
  if (!flags.Has("csv")) {
    return Status::InvalidArgument("--csv FILE is required");
  }
  return galaxy::ReadCsvFile(flags.Get("csv"));
}

// Shared --timeout-ms / --max-comparisons / --strict handling. Parsing is
// split from arming so the deadline clock starts right before execution,
// not while the CSV is still loading.
struct ControlPlaneFlags {
  int64_t timeout_ms = 0;
  int64_t max_comparisons = 0;
  bool allow_approximate = true;

  // Returns the configured context, or null when no bound was requested
  // (keeping the null-exec fast path active).
  galaxy::core::ExecutionContext* Arm(
      galaxy::core::ExecutionContext* storage) const {
    galaxy::core::ExecutionContext* exec = nullptr;
    if (timeout_ms > 0) {
      storage->set_timeout(std::chrono::milliseconds(timeout_ms));
      exec = storage;
    }
    if (max_comparisons > 0) {
      storage->set_max_comparisons(static_cast<uint64_t>(max_comparisons));
      exec = storage;
    }
    return exec;
  }
};

galaxy::Result<ControlPlaneFlags> ParseControlPlane(const Flags& flags) {
  ControlPlaneFlags out;
  GALAXY_ASSIGN_OR_RETURN(out.timeout_ms, flags.GetInt("timeout-ms", 0));
  GALAXY_ASSIGN_OR_RETURN(out.max_comparisons,
                          flags.GetInt("max-comparisons", 0));
  if (out.timeout_ms < 0) {
    return Status::InvalidArgument("--timeout-ms must be non-negative");
  }
  if (out.max_comparisons < 0) {
    return Status::InvalidArgument("--max-comparisons must be non-negative");
  }
  out.allow_approximate = !flags.Has("strict");
  return out;
}

int RunQuery(Flags& flags) {
  if (!flags.CheckAllowed({"csv", "sql", "table", "timeout-ms",
                           "max-comparisons", "strict"})) {
    return UsageError(flags.error());
  }
  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  if (!flags.Has("sql")) {
    return Fail(Status::InvalidArgument("--sql \"SELECT ...\" is required"));
  }
  auto control = ParseControlPlane(flags);
  if (!control.ok()) return UsageError(control.status().message());

  galaxy::sql::Database db;
  db.Register(flags.Get("table", "data"), *table);

  galaxy::core::ExecutionContext exec_storage;
  galaxy::sql::ExecOptions exec_options;
  exec_options.exec = control->Arm(&exec_storage);
  exec_options.allow_approximate = control->allow_approximate;

  galaxy::sql::ExecStats stats;
  auto result = db.Query(flags.Get("sql"), exec_options, &stats);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result->ToString(/*max_rows=*/1000).c_str());
  std::printf("(%zu rows)\n", result->num_rows());
  if (exec_options.exec != nullptr) {
    std::printf("# quality: %s\n",
                galaxy::core::ResultQualityToString(stats.skyline_quality));
  }
  return 0;
}

galaxy::Result<galaxy::core::Algorithm> ParseAlgorithm(
    const std::string& name) {
  std::string upper = galaxy::AsciiUpper(name);
  if (upper == "BF") return galaxy::core::Algorithm::kBruteForce;
  if (upper == "NL") return galaxy::core::Algorithm::kNestedLoop;
  if (upper == "TR") return galaxy::core::Algorithm::kTransitive;
  if (upper == "SI") return galaxy::core::Algorithm::kSorted;
  if (upper == "IN") return galaxy::core::Algorithm::kIndexed;
  if (upper == "LO") return galaxy::core::Algorithm::kIndexedBbox;
  if (upper == "PAR") return galaxy::core::Algorithm::kParallel;
  if (upper == "AUTO") return galaxy::core::Algorithm::kAuto;
  return Status::InvalidArgument("unknown algorithm: " + name);
}

galaxy::Result<galaxy::core::GroupedDataset> BuildGrouping(
    const Flags& flags, const Table& table) {
  if (!flags.Has("group-by") || !flags.Has("attrs")) {
    return Status::InvalidArgument(
        "--group-by COL and --attrs a,b[,c...] are required");
  }
  std::vector<std::string> group_cols =
      galaxy::StrSplit(flags.Get("group-by"), ',');
  std::vector<std::string> attrs = galaxy::StrSplit(flags.Get("attrs"), ',');
  // Attributes prefixed with '-' are minimized.
  galaxy::skyline::PreferenceList prefs;
  for (std::string& a : attrs) {
    if (!a.empty() && a[0] == '-') {
      prefs.push_back(galaxy::skyline::Preference::kMin);
      a = a.substr(1);
    } else {
      prefs.push_back(galaxy::skyline::Preference::kMax);
    }
  }
  return galaxy::core::GroupedDataset::FromTable(table, group_cols, attrs,
                                                 prefs);
}

int RunSkyline(Flags& flags) {
  if (!flags.CheckAllowed({"csv", "group-by", "attrs", "gamma", "algorithm",
                           "rank", "representatives", "timeout-ms",
                           "max-comparisons", "strict"})) {
    return UsageError(flags.error());
  }
  // Validate all flag values before touching the filesystem so a bad
  // --gamma is a usage error even when the CSV is also bad.
  galaxy::core::AggregateSkylineOptions options;
  auto gamma = flags.GetDouble("gamma", 0.5);
  if (!gamma.ok()) return UsageError(gamma.status().message());
  if (*gamma < 0.5 || *gamma > 1.0) {
    return UsageError("--gamma must be in [0.5, 1], got " +
                      flags.Get("gamma"));
  }
  options.gamma = *gamma;
  auto algorithm = ParseAlgorithm(flags.Get("algorithm", "AUTO"));
  if (!algorithm.ok()) return UsageError(algorithm.status().message());
  options.algorithm = *algorithm;

  auto control = ParseControlPlane(flags);
  if (!control.ok()) return UsageError(control.status().message());
  options.allow_approximate = control->allow_approximate;

  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  auto dataset = BuildGrouping(flags, *table);
  if (!dataset.ok()) return Fail(dataset.status());

  // Arm the deadline only now: CSV parsing must not eat the budget.
  galaxy::core::ExecutionContext exec_storage;
  options.exec = control->Arm(&exec_storage);

  auto bounded = galaxy::core::ComputeAggregateSkylineBounded(*dataset,
                                                              options);
  if (!bounded.ok()) return Fail(bounded.status());
  const galaxy::core::AggregateSkylineResult& result = *bounded;
  std::printf("# %zu groups, gamma=%.3f, algorithm=%s\n",
              dataset->num_groups(), options.gamma,
              galaxy::core::AlgorithmToString(result.algorithm_used));
  if (options.exec != nullptr) {
    std::printf("# quality: %s\n",
                galaxy::core::ResultQualityToString(result.quality));
  }
  std::printf("# skyline size: %zu\n", result.skyline.size());
  for (const std::string& label : result.Labels(*dataset)) {
    std::printf("%s\n", label.c_str());
  }

  if (flags.Has("rank")) {
    std::printf("\n# groups ranked by minimal gamma\n");
    for (const auto& rg : galaxy::core::RankByGamma(*dataset)) {
      if (rg.always_dominated) {
        std::printf("%-30s never\n", rg.label.c_str());
      } else {
        std::printf("%-30s %.4f\n", rg.label.c_str(), rg.min_gamma);
      }
    }
  }
  if (flags.Has("representatives")) {
    auto k_flag = flags.GetInt("representatives", 3);
    if (!k_flag.ok()) return UsageError(k_flag.status().message());
    size_t k = static_cast<size_t>(*k_flag);
    auto reps = galaxy::core::SelectRepresentatives(*dataset, k,
                                                    options.gamma);
    std::printf("\n# top-%zu representative skyline groups "
                "(cover %zu of %zu dominated groups)\n",
                k, reps.covered, reps.dominated_total);
    for (const auto& rep : reps.representatives) {
      std::printf("%-30s +%zu\n", dataset->group(rep.id).label().c_str(),
                  rep.marginal_coverage);
    }
  }
  return 0;
}

int RunProfile(Flags& flags) {
  if (!flags.CheckAllowed({"csv", "group-by", "attrs"})) {
    return UsageError(flags.error());
  }
  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  auto dataset = BuildGrouping(flags, *table);
  if (!dataset.ok()) return Fail(dataset.status());
  galaxy::core::WorkloadProfile profile =
      galaxy::core::ProfileWorkload(*dataset);
  std::printf("%s\n", profile.ToString().c_str());
  galaxy::core::AdaptiveChoice choice =
      galaxy::core::ChooseAlgorithm(profile);
  std::printf("planner choice: %s, ordering %s\n",
              galaxy::core::AlgorithmToString(choice.algorithm),
              galaxy::core::GroupOrderingToString(choice.ordering));
  return 0;
}

int RunGenerate(Flags& flags) {
  if (!flags.CheckAllowed({"out", "type", "records", "seed"})) {
    return UsageError(flags.error());
  }
  if (!flags.Has("out")) {
    return Fail(Status::InvalidArgument("--out FILE is required"));
  }
  auto records_flag = flags.GetInt("records", 0);
  if (!records_flag.ok()) return UsageError(records_flag.status().message());
  auto seed_flag = flags.GetInt("seed", 0);
  if (!seed_flag.ok()) return UsageError(seed_flag.status().message());
  auto records = [&](int64_t fallback) {
    return static_cast<size_t>(flags.Has("records") ? *records_flag
                                                    : fallback);
  };
  auto seed = [&](int64_t fallback) {
    return static_cast<uint64_t>(flags.Has("seed") ? *seed_flag : fallback);
  };
  std::string type = flags.Get("type", "imdb");
  Table table;
  if (type == "imdb") {
    galaxy::datagen::ImdbConfig config;
    config.target_movies = records(20000);
    config.seed = seed(1894);
    table = galaxy::datagen::ToTable(
        galaxy::datagen::GenerateImdbCorpus(config));
  } else if (type == "nba") {
    galaxy::nba::NbaConfig config;
    config.target_records = records(15000);
    config.seed = seed(1979);
    table = galaxy::nba::ToTable(galaxy::nba::GenerateLeagueHistory(config));
  } else if (type == "grouped") {
    galaxy::datagen::GroupedWorkloadConfig config;
    config.num_records = records(10000);
    config.seed = seed(42);
    table = galaxy::datagen::GroupedDatasetToTable(
        galaxy::datagen::GenerateGrouped(config));
  } else {
    return Fail(Status::InvalidArgument("unknown --type: " + type));
  }
  Status status = galaxy::WriteCsvFile(table, flags.Get("out"));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu rows to %s\n", table.num_rows(),
              flags.Get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return UsageError(flags.error());
  if (command == "query") return RunQuery(flags);
  if (command == "skyline") return RunSkyline(flags);
  if (command == "profile") return RunProfile(flags);
  if (command == "generate") return RunGenerate(flags);
  return UsageError("unknown command: " + command);
}
