// galaxy_cli — command-line front end for the galaxy library.
//
//   galaxy_cli query    --csv data.csv --sql "SELECT ..." [--table data]
//   galaxy_cli skyline  --csv data.csv --group-by col --attrs a,b[,c...]
//                       [--gamma 0.5] [--algorithm NL|TR|SI|IN|LO|BF|AUTO]
//                       [--rank] [--representatives K]
//   galaxy_cli profile  --csv data.csv --group-by col --attrs a,b
//   galaxy_cli generate --type imdb|nba|grouped --out out.csv
//                       [--records N] [--seed S]
//
// Exit status: 0 on success, 1 on usage or execution errors.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/adaptive.h"
#include "core/aggregate_skyline.h"
#include "core/representative.h"
#include "datagen/groups.h"
#include "datagen/imdb_gen.h"
#include "nba/nba_gen.h"
#include "relation/csv.h"
#include "sql/catalog.h"

namespace {

using galaxy::Status;
using galaxy::Table;

// Minimal --flag value parser; flags may appear in any order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";  // boolean flag
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::stod(Get(name)) : fallback;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    return Has(name) ? std::stoll(Get(name)) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: galaxy_cli <query|skyline|profile|generate> "
               "[--flags]\n(see the header of tools/galaxy_cli.cpp)\n");
  return 1;
}

galaxy::Result<Table> LoadCsv(const Flags& flags) {
  if (!flags.Has("csv")) {
    return Status::InvalidArgument("--csv FILE is required");
  }
  return galaxy::ReadCsvFile(flags.Get("csv"));
}

int RunQuery(const Flags& flags) {
  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  if (!flags.Has("sql")) {
    return Fail(Status::InvalidArgument("--sql \"SELECT ...\" is required"));
  }
  galaxy::sql::Database db;
  db.Register(flags.Get("table", "data"), *table);
  auto result = db.Query(flags.Get("sql"));
  if (!result.ok()) return Fail(result.status());
  std::printf("%s", result->ToString(/*max_rows=*/1000).c_str());
  std::printf("(%zu rows)\n", result->num_rows());
  return 0;
}

galaxy::Result<galaxy::core::Algorithm> ParseAlgorithm(
    const std::string& name) {
  std::string upper = galaxy::AsciiUpper(name);
  if (upper == "BF") return galaxy::core::Algorithm::kBruteForce;
  if (upper == "NL") return galaxy::core::Algorithm::kNestedLoop;
  if (upper == "TR") return galaxy::core::Algorithm::kTransitive;
  if (upper == "SI") return galaxy::core::Algorithm::kSorted;
  if (upper == "IN") return galaxy::core::Algorithm::kIndexed;
  if (upper == "LO") return galaxy::core::Algorithm::kIndexedBbox;
  if (upper == "PAR") return galaxy::core::Algorithm::kParallel;
  if (upper == "AUTO") return galaxy::core::Algorithm::kAuto;
  return Status::InvalidArgument("unknown algorithm: " + name);
}

galaxy::Result<galaxy::core::GroupedDataset> BuildGrouping(
    const Flags& flags, const Table& table) {
  if (!flags.Has("group-by") || !flags.Has("attrs")) {
    return Status::InvalidArgument(
        "--group-by COL and --attrs a,b[,c...] are required");
  }
  std::vector<std::string> group_cols =
      galaxy::StrSplit(flags.Get("group-by"), ',');
  std::vector<std::string> attrs = galaxy::StrSplit(flags.Get("attrs"), ',');
  // Attributes prefixed with '-' are minimized.
  galaxy::skyline::PreferenceList prefs;
  for (std::string& a : attrs) {
    if (!a.empty() && a[0] == '-') {
      prefs.push_back(galaxy::skyline::Preference::kMin);
      a = a.substr(1);
    } else {
      prefs.push_back(galaxy::skyline::Preference::kMax);
    }
  }
  return galaxy::core::GroupedDataset::FromTable(table, group_cols, attrs,
                                                 prefs);
}

int RunSkyline(const Flags& flags) {
  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  auto dataset = BuildGrouping(flags, *table);
  if (!dataset.ok()) return Fail(dataset.status());

  galaxy::core::AggregateSkylineOptions options;
  options.gamma = flags.GetDouble("gamma", 0.5);
  auto algorithm = ParseAlgorithm(flags.Get("algorithm", "AUTO"));
  if (!algorithm.ok()) return Fail(algorithm.status());
  options.algorithm = *algorithm;

  auto result = galaxy::core::ComputeAggregateSkyline(*dataset, options);
  std::printf("# %zu groups, gamma=%.3f, algorithm=%s\n",
              dataset->num_groups(), options.gamma,
              galaxy::core::AlgorithmToString(result.algorithm_used));
  std::printf("# skyline size: %zu\n", result.skyline.size());
  for (const std::string& label : result.Labels(*dataset)) {
    std::printf("%s\n", label.c_str());
  }

  if (flags.Has("rank")) {
    std::printf("\n# groups ranked by minimal gamma\n");
    for (const auto& rg : galaxy::core::RankByGamma(*dataset)) {
      if (rg.always_dominated) {
        std::printf("%-30s never\n", rg.label.c_str());
      } else {
        std::printf("%-30s %.4f\n", rg.label.c_str(), rg.min_gamma);
      }
    }
  }
  if (flags.Has("representatives")) {
    size_t k = static_cast<size_t>(flags.GetInt("representatives", 3));
    auto reps = galaxy::core::SelectRepresentatives(*dataset, k,
                                                    options.gamma);
    std::printf("\n# top-%zu representative skyline groups "
                "(cover %zu of %zu dominated groups)\n",
                k, reps.covered, reps.dominated_total);
    for (const auto& rep : reps.representatives) {
      std::printf("%-30s +%zu\n", dataset->group(rep.id).label().c_str(),
                  rep.marginal_coverage);
    }
  }
  return 0;
}

int RunProfile(const Flags& flags) {
  auto table = LoadCsv(flags);
  if (!table.ok()) return Fail(table.status());
  auto dataset = BuildGrouping(flags, *table);
  if (!dataset.ok()) return Fail(dataset.status());
  galaxy::core::WorkloadProfile profile =
      galaxy::core::ProfileWorkload(*dataset);
  std::printf("%s\n", profile.ToString().c_str());
  galaxy::core::AdaptiveChoice choice =
      galaxy::core::ChooseAlgorithm(profile);
  std::printf("planner choice: %s, ordering %s\n",
              galaxy::core::AlgorithmToString(choice.algorithm),
              galaxy::core::GroupOrderingToString(choice.ordering));
  return 0;
}

int RunGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    return Fail(Status::InvalidArgument("--out FILE is required"));
  }
  std::string type = flags.Get("type", "imdb");
  Table table;
  if (type == "imdb") {
    galaxy::datagen::ImdbConfig config;
    config.target_movies =
        static_cast<size_t>(flags.GetInt("records", 20000));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1894));
    table = galaxy::datagen::ToTable(
        galaxy::datagen::GenerateImdbCorpus(config));
  } else if (type == "nba") {
    galaxy::nba::NbaConfig config;
    config.target_records =
        static_cast<size_t>(flags.GetInt("records", 15000));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1979));
    table = galaxy::nba::ToTable(galaxy::nba::GenerateLeagueHistory(config));
  } else if (type == "grouped") {
    galaxy::datagen::GroupedWorkloadConfig config;
    config.num_records = static_cast<size_t>(flags.GetInt("records", 10000));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    table = galaxy::datagen::GroupedDatasetToTable(
        galaxy::datagen::GenerateGrouped(config));
  } else {
    return Fail(Status::InvalidArgument("unknown --type: " + type));
  }
  Status status = galaxy::WriteCsvFile(table, flags.Get("out"));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu rows to %s\n", table.num_rows(),
              flags.Get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return Usage();
  if (command == "query") return RunQuery(flags);
  if (command == "skyline") return RunSkyline(flags);
  if (command == "profile") return RunProfile(flags);
  if (command == "generate") return RunGenerate(flags);
  return Usage();
}
