// galaxy_analyze — whole-program static analyzer CLI.
//
//   galaxy_analyze [paths...]     analyze files / directory trees together
//   galaxy_analyze --list-rules   print rule names
//
// All named files form ONE program: per-TU models are linked into a
// cross-TU call graph before the rules run, so findings can span files.
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/// Directory-walk skip list: build trees, VCS metadata, vendored code, and
/// the deliberately-broken analyzer/lint test fixtures.
bool SkippedComponent(const fs::path& p) {
  for (const auto& part : p) {
    std::string s = part.string();
    if (s == "build" || s == ".git" || s == "third_party" ||
        s == "fixtures" || s.rfind("build-", 0) == 0) {
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: galaxy_analyze [--list-rules] [paths...]\n"
               "       analyzes the named files/trees as one program\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : galaxy::analyze::RuleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') return Usage();
    roots.push_back(arg);
  }
  if (roots.empty()) return Usage();

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && IsSourceFile(it->path()) &&
            !SkippedComponent(it->path())) {
          files.push_back(it->path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "galaxy_analyze: error walking %s: %s\n",
                     root.c_str(), ec.message().c_str());
        return 2;
      }
    } else {
      files.push_back(root);  // explicitly named files are always analyzed
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> inputs;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "galaxy_analyze: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    inputs.emplace_back(path, buf.str());
  }

  std::vector<galaxy::lint::Diagnostic> diags =
      galaxy::analyze::AnalyzeFiles(inputs);
  for (const auto& d : diags) {
    std::printf("%s\n", d.ToString().c_str());
  }
  std::fprintf(stderr, "galaxy_analyze: %zu file(s), %zu finding(s)\n",
               inputs.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
