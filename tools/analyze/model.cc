#include "analyze.h"

#include <algorithm>
#include <set>

/// Model extraction: one linear walk over the galaxy_lint token stream with
/// an explicit scope stack (namespace / class / function / loop / control
/// blocks), speculative function-header scanning at class and namespace
/// scope, and RAII / explicit lock-scope tracking inside function bodies.
/// This is a heuristic token parser, not a compiler: macros are not
/// expanded, and anything it cannot shape-match it skips conservatively
/// (see the limits note in analyze.h).
namespace galaxy::analyze {
namespace {

using lint::LexedFile;
using lint::Token;
using lint::TokenKind;

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

const std::set<std::string>& RaiiLockTypes() {
  static const std::set<std::string> kTypes = {
      "MutexLock", "WriterMutexLock", "ReaderMutexLock", "SharedMutexLock"};
  return kTypes;
}

/// Identifiers that look like calls but are statements/operators.
const std::set<std::string>& NonCallKeywords() {
  static const std::set<std::string> kWords = {
      "if",       "for",     "while",    "switch",   "catch",  "return",
      "sizeof",   "alignof", "decltype", "typeid",   "new",    "delete",
      "throw",    "case",    "goto",     "else",     "do",     "co_return",
      "co_await", "static_assert"};
  return kWords;
}

/// Evidence that a function participates in ExecutionContext budgeting —
/// the same set galaxy_lint's local budget-charge rule accepts.
const std::set<std::string>& ChargeEvidence() {
  static const std::set<std::string> kNames = {
      "Charge",      "ChargeBatched",  "Compare", "CheckInterrupt",
      "interrupted", "stopped",        "ShouldStop"};
  return kNames;
}

/// Qualifier-ish tokens allowed between a function header's `)` and its
/// body / terminating `;`.
const std::set<std::string>& HeaderQualifiers() {
  static const std::set<std::string> kWords = {"const", "noexcept", "override",
                                               "final", "mutable", "try"};
  return kWords;
}

/// Thread-safety macros that may trail a function header. REQUIRES /
/// REQUIRES_SHARED arguments are captured; the rest are skipped.
const std::set<std::string>& HeaderAnnotations() {
  static const std::set<std::string> kWords = {
      "REQUIRES",        "REQUIRES_SHARED",  "EXCLUDES",
      "ACQUIRE",         "ACQUIRE_SHARED",   "RELEASE",
      "RELEASE_SHARED",  "RELEASE_GENERIC",  "TRY_ACQUIRE",
      "TRY_ACQUIRE_SHARED", "RETURN_CAPABILITY",
      "NO_THREAD_SAFETY_ANALYSIS", "ASSERT_CAPABILITY"};
  return kWords;
}

/// Thread-safety macros that trail a member declaration.
const std::set<std::string>& MemberAnnotations() {
  static const std::set<std::string> kWords = {
      "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "GUARDED_BY", "PT_GUARDED_BY"};
  return kWords;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kLoop, kControl, kPlain };
  Kind kind = kPlain;
  std::string name;      ///< class name for kClass
  int func = -1;         ///< funcs_ index for kFunction
  size_t held_base = 0;  ///< held-lock stack size on entry
};

struct ParenInfo {
  enum Kind { kCall, kControl, kLoopHead, kGroup };
  Kind kind = kGroup;
  std::string call_name;
};

struct HeldLock {
  std::string lock;
  size_t func_depth = 0;  ///< #function scopes on the stack at acquisition
};

class Extractor {
 public:
  Extractor(std::string path, const std::string& content) {
    model_.path = std::move(path);
    std::replace(model_.path.begin(), model_.path.end(), '\\', '/');
    model_.lexed = lint::Lex(content);
  }

  FileModel Run() {
    const std::vector<Token>& toks = model_.lexed.tokens;
    for (i_ = 0; i_ < toks.size(); ++i_) {
      const Token& t = toks[i_];
      if (t.kind == TokenKind::kPreproc) continue;
      if (IsPunct(t, "{")) {
        OpenBrace(t);
        continue;
      }
      if (IsPunct(t, "}")) {
        CloseBrace();
        continue;
      }
      if (IsPunct(t, "(")) {
        if (InClassScope() && CurFunc() == nullptr) member_buf_.push_back(t);
        OpenParen();
        continue;
      }
      if (IsPunct(t, ")")) {
        if (InClassScope() && CurFunc() == nullptr) member_buf_.push_back(t);
        CloseParen();
        continue;
      }
      if (IsPunct(t, ";") && parens_.empty()) {
        pending_ = Pending::kNone;
        FlushMemberDecl();
        continue;
      }
      if (IsPunct(t, "[") && CurFunc() != nullptr) {
        MaybeLambda();
        continue;
      }
      if (IsIdent(t)) {
        HandleIdent(t);
      }
      if (InClassScope() && CurFunc() == nullptr) member_buf_.push_back(t);
    }
    return std::move(model_);
  }

 private:
  enum class Pending { kNone, kNamespace, kClass, kLoop, kControl, kFunction };

  const std::vector<Token>& Toks() const { return model_.lexed.tokens; }

  /// Previous non-preproc token before index `at` (or `i_`).
  const Token* Prev(size_t back = 1) const {
    size_t seen = 0;
    for (size_t j = i_; j > 0; --j) {
      const Token& t = Toks()[j - 1];
      if (t.kind == TokenKind::kPreproc) continue;
      if (++seen == back) return &t;
    }
    return nullptr;
  }

  Function* CurFunc() {
    if (func_stack_.empty()) return nullptr;
    return &model_.functions[func_stack_.back()];
  }

  bool InClassScope() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kClass;
  }

  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kFunction) break;  // member fns carry their own
    }
    if (!func_stack_.empty()) return model_.functions[func_stack_.back()].cls;
    return "";
  }

  size_t LoopDepth() const {
    size_t depth = 0;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) break;
      if (it->kind == Scope::kLoop) ++depth;
    }
    return depth;
  }

  std::vector<std::string> HeldNow() const {
    std::vector<std::string> out;
    for (const HeldLock& h : held_) {
      if (h.func_depth == func_stack_.size()) out.push_back(h.lock);
    }
    return out;
  }

  /// Canonical lock id for a receiver/argument expression: strips `&` and
  /// `this->`, and qualifies by the enclosing class so `mutex_` in two
  /// classes stays two distinct locks.
  std::string CanonLock(std::string expr) const {
    if (!expr.empty() && expr.front() == '&') expr.erase(0, 1);
    if (expr.rfind("this->", 0) == 0) expr.erase(0, 6);
    if (expr.empty()) return expr;
    std::string cls = EnclosingClass();
    if (cls.empty()) return expr;
    return cls + "::" + expr;
  }

  // ---- braces / scopes ----------------------------------------------------

  void OpenBrace(const Token& t) {
    Scope s;
    s.held_base = held_.size();
    switch (pending_) {
      case Pending::kNamespace:
        s.kind = Scope::kNamespace;
        break;
      case Pending::kClass:
        s.kind = Scope::kClass;
        s.name = pending_name_;
        break;
      case Pending::kLoop: {
        s.kind = Scope::kLoop;
        break;
      }
      case Pending::kControl:
        s.kind = Scope::kControl;
        break;
      case Pending::kFunction:
        s.kind = Scope::kFunction;
        s.func = pending_func_;
        break;
      case Pending::kNone:
        s.kind = Scope::kPlain;
        break;
    }
    pending_ = Pending::kNone;
    pending_name_.clear();
    scopes_.push_back(s);
    if (s.kind == Scope::kFunction) func_stack_.push_back(s.func);
    if (s.kind == Scope::kLoop) {
      if (Function* f = CurFunc()) {
        size_t depth = LoopDepth();
        f->max_loop_depth = std::max(f->max_loop_depth, depth);
        if (depth >= 2 && f->deep_loop_line == 0) f->deep_loop_line = t.line;
      }
    }
    member_buf_.clear();
  }

  void CloseBrace() {
    if (scopes_.empty()) return;
    Scope s = scopes_.back();
    scopes_.pop_back();
    held_.resize(std::min(held_.size(), s.held_base));
    if (s.kind == Scope::kFunction && !func_stack_.empty()) {
      func_stack_.pop_back();
    }
    member_buf_.clear();
    pending_ = Pending::kNone;
  }

  // ---- identifiers --------------------------------------------------------

  void HandleIdent(const Token& t) {
    const std::string& s = t.text;
    if (s == "namespace") {
      pending_ = Pending::kNamespace;
      return;
    }
    if (s == "class" || s == "struct") {
      const Token* p = Prev();
      if (p != nullptr && IsIdent(*p) && p->text == "enum") return;
      pending_ = Pending::kClass;
      pending_name_.clear();
      return;
    }
    if (pending_ == Pending::kClass && pending_name_.empty()) {
      pending_name_ = s;
      return;
    }
    if (s == "do") {
      pending_ = Pending::kLoop;
      return;
    }
    if (s == "else" || s == "try") {
      pending_ = Pending::kControl;
      return;
    }
    if (Function* f = CurFunc()) {
      if (ChargeEvidence().count(s) != 0) f->has_charge = true;
    }
  }

  // ---- parens: control heads, calls, lock scopes, function headers --------

  void OpenParen() {
    const Token* p = Prev();
    ParenInfo info;
    if (p != nullptr && IsIdent(*p)) {
      const std::string& name = p->text;
      if (name == "if" || name == "switch" || name == "catch") {
        info.kind = ParenInfo::kControl;
      } else if (name == "for" || name == "while") {
        info.kind = ParenInfo::kLoopHead;
      } else if (NonCallKeywords().count(name) != 0 ||
                 HeaderAnnotations().count(name) != 0 ||
                 MemberAnnotations().count(name) != 0) {
        // Member annotations would otherwise speculative-parse as a method
        // declaration named ACQUIRED_BEFORE / GUARDED_BY, swallowing the
        // member declaration they belong to.
        info.kind = ParenInfo::kGroup;
      } else if (CurFunc() == nullptr) {
        if (TryFunctionHeader()) return;  // consumed through body `{` or `;`
        info.kind = ParenInfo::kGroup;
      } else {
        const Token* pp = Prev(2);
        // `LockType var(&mu)` — a RAII lock scope declaration.
        if (pp != nullptr && IsIdent(*pp) &&
            RaiiLockTypes().count(pp->text) != 0) {
          RaiiLockDecl(p->line);
          return;  // consumed through the matching `)`
        }
        // `Type var(args)` — local declaration; remember the type.
        if (pp != nullptr && IsIdent(*pp) &&
            NonCallKeywords().count(pp->text) == 0) {
          CurFunc()->var_types[name] = pp->text;
          info.kind = ParenInfo::kGroup;
        } else {
          info.kind = ParenInfo::kCall;
          info.call_name = name;
          RecordCall(*p);
        }
      }
    }
    parens_.push_back(info);
  }

  void CloseParen() {
    if (parens_.empty()) return;
    ParenInfo info = parens_.back();
    parens_.pop_back();
    if (info.kind == ParenInfo::kControl) pending_ = Pending::kControl;
    if (info.kind == ParenInfo::kLoopHead) pending_ = Pending::kLoop;
  }

  /// Walks back from a call-name token collecting a `a->b.c` receiver chain.
  /// Returns the receiver expression ("" for a free call) and the explicit
  /// `Cls::` qualification, if any.
  void ReceiverOf(size_t name_idx, std::string* receiver, std::string* cls) {
    receiver->clear();
    cls->clear();
    size_t j = name_idx;
    const std::vector<Token>& toks = Toks();
    if (j >= 1 && IsPunct(toks[j - 1], "::")) {
      if (j >= 2 && IsIdent(toks[j - 2])) *cls = toks[j - 2].text;
      return;
    }
    // Chain `a->b.name(`: pairs of (separator, identifier) walking left; the
    // separator nearest the call name is dropped from the receiver text.
    std::vector<std::pair<std::string, std::string>> parts;
    while (j >= 2 &&
           (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->")) &&
           IsIdent(toks[j - 2])) {
      parts.emplace_back(toks[j - 1].text, toks[j - 2].text);
      j -= 2;
    }
    for (size_t k = parts.size(); k > 0; --k) {
      *receiver += parts[k - 1].second;
      if (k > 1) *receiver += parts[k - 1].first;
    }
  }

  void RecordCall(const Token& name_tok) {
    Function* f = CurFunc();
    if (f == nullptr) return;
    Call c;
    c.name = name_tok.text;
    c.line = name_tok.line;
    c.loop_depth = LoopDepth();
    c.held = HeldNow();
    size_t name_idx = i_ - 1;
    while (name_idx > 0 && Toks()[name_idx].kind == TokenKind::kPreproc) {
      --name_idx;
    }
    ReceiverOf(name_idx, &c.receiver, &c.cls);
    // Explicit lock / unlock calls become lock-scope events as well.
    if (!c.receiver.empty()) {
      const std::string& expr = c.receiver;
      if (c.name == "Lock" || c.name == "ReaderLock" || c.name == "TryLock" ||
          c.name == "ReaderTryLock" || c.name == "WriterLock") {
        std::string id = CanonLock(expr);
        Acquire a{id, c.line, HeldNow()};
        f->acquires.push_back(a);
        held_.push_back({id, func_stack_.size()});
      } else if (c.name == "Unlock" || c.name == "ReaderUnlock" ||
                 c.name == "WriterUnlock") {
        ReleaseLock(CanonLock(expr));
      }
    }
    f->calls.push_back(std::move(c));
  }

  void ReleaseLock(const std::string& id) {
    for (size_t j = held_.size(); j > 0; --j) {
      if (held_[j - 1].lock == id &&
          held_[j - 1].func_depth == func_stack_.size()) {
        held_.erase(held_.begin() + static_cast<long>(j - 1));
        return;
      }
    }
  }

  /// At `LockType var(` — consumes through the matching `)`, records the
  /// acquisition, and holds the lock until the enclosing scope closes.
  void RaiiLockDecl(size_t line) {
    const std::vector<Token>& toks = Toks();
    std::string expr;
    size_t depth = 1;
    size_t j = i_ + 1;
    for (; j < toks.size() && depth > 0; ++j) {
      const Token& t = toks[j];
      if (IsPunct(t, "(")) ++depth;
      if (IsPunct(t, ")") && --depth == 0) break;
      if (IsPunct(t, ",") && depth == 1) break;  // first ctor arg only
      expr += t.text;
    }
    while (j < toks.size() && !IsPunct(toks[j], ")")) ++j;  // skip extra args
    i_ = j;
    Function* f = CurFunc();
    if (f == nullptr || expr.empty()) return;
    std::string id = CanonLock(expr);
    f->acquires.push_back({id, line, HeldNow()});
    held_.push_back({id, func_stack_.size()});
  }

  // ---- function headers at class / namespace scope ------------------------

  /// Speculatively parses `Name(params) quals... {` / `;` starting at the
  /// current `(`. On success records the function (and consumes tokens up
  /// to the body `{`, which the main loop then opens, or past the `;`) and
  /// returns true. On failure consumes nothing.
  bool TryFunctionHeader() {
    const std::vector<Token>& toks = Toks();
    size_t name_idx = i_ - 1;
    const Token& name_tok = toks[name_idx];
    Function fn;
    fn.unqualified = name_tok.text;
    fn.file = model_.path;
    fn.line = name_tok.line;
    size_t j = name_idx;
    if (j >= 1 && IsPunct(toks[j - 1], "~")) fn.unqualified = "~" + fn.unqualified;
    // `Cls::Name` (possibly `ns::Cls::Name`): the nearest qualifier is the
    // class.
    if (j >= 2 && IsPunct(toks[j - 1], "::") && IsIdent(toks[j - 2])) {
      fn.cls = toks[j - 2].text;
    } else {
      fn.cls = EnclosingClass();
    }
    // Parameter list: match the parens, remember `Type name` pairs.
    size_t depth = 1;
    size_t k = i_ + 1;
    std::vector<Token> param;
    auto flush_param = [&]() {
      std::vector<std::string> idents;
      for (const Token& t : param) {
        if (IsIdent(t) && t.text != "const" && t.text != "struct") {
          idents.push_back(t.text);
        }
      }
      if (idents.size() >= 2) {
        fn.var_types[idents.back()] = idents[idents.size() - 2];
      }
      param.clear();
    };
    for (; k < toks.size() && depth > 0; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokenKind::kPreproc) continue;
      if (IsPunct(t, "(")) ++depth;
      if (IsPunct(t, ")")) {
        if (--depth == 0) break;
      }
      if (IsPunct(t, ",") && depth == 1) {
        flush_param();
        continue;
      }
      param.push_back(t);
    }
    if (k >= toks.size()) return false;
    flush_param();
    // Qualifiers / annotations / ctor-initializers until `{` or `;`.
    size_t q = k + 1;
    bool is_def = false;
    while (q < toks.size()) {
      const Token& t = toks[q];
      if (t.kind == TokenKind::kPreproc) {
        ++q;
        continue;
      }
      if (IsPunct(t, "{")) {
        is_def = true;
        break;
      }
      if (IsPunct(t, ";")) break;
      if (IsIdent(t) && HeaderQualifiers().count(t.text) != 0) {
        ++q;
        continue;
      }
      if (IsIdent(t) && HeaderAnnotations().count(t.text) != 0) {
        bool is_requires =
            t.text == "REQUIRES" || t.text == "REQUIRES_SHARED";
        ++q;
        if (q < toks.size() && IsPunct(toks[q], "(")) {
          size_t d = 1;
          std::string arg;
          for (++q; q < toks.size() && d > 0; ++q) {
            if (IsPunct(toks[q], "(")) ++d;
            if (IsPunct(toks[q], ")") && --d == 0) break;
            if (IsPunct(toks[q], ",") && d == 1) {
              if (is_requires && !arg.empty()) {
                fn.requires_locks.push_back(QualifyAnnotationLock(arg, fn.cls));
              }
              arg.clear();
              continue;
            }
            arg += toks[q].text;
          }
          if (is_requires && !arg.empty()) {
            fn.requires_locks.push_back(QualifyAnnotationLock(arg, fn.cls));
          }
          ++q;  // past `)`
        }
        continue;
      }
      if (IsPunct(t, "=")) {  // `= default`, `= delete`, `= 0`
        while (q < toks.size() && !IsPunct(toks[q], ";")) ++q;
        break;
      }
      if (IsPunct(t, ":")) {  // ctor initializer list
        size_t body = FindCtorBody(q + 1);
        if (body == 0) return false;
        is_def = true;
        q = body;
        break;
      }
      if (IsPunct(t, "->") || IsPunct(t, "::") || IsPunct(t, "*") ||
          IsPunct(t, "&") || IsIdent(t)) {  // trailing return type
        ++q;
        continue;
      }
      return false;  // not a function header after all
    }
    if (q >= toks.size()) return false;
    fn.is_definition = is_def;
    if (!fn.cls.empty()) fn.name = fn.cls + "::" + fn.unqualified;
    else fn.name = fn.unqualified;
    model_.functions.push_back(fn);
    member_buf_.clear();
    if (is_def) {
      pending_ = Pending::kFunction;
      pending_func_ = static_cast<int>(model_.functions.size() - 1);
      i_ = q - 1;  // main loop advances onto the `{`
    } else {
      i_ = q;  // past the `;`
      pending_ = Pending::kNone;
    }
    return true;
  }

  /// From just past the `:` of a ctor initializer list, returns the index
  /// of the body `{` (0 when the shape cannot be a ctor). Braced member
  /// inits `b_{2}` follow an identifier or `>`; the body brace does not.
  size_t FindCtorBody(size_t from) {
    const std::vector<Token>& toks = Toks();
    size_t pdepth = 0;
    for (size_t j = from; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (IsPunct(t, "(")) ++pdepth;
      if (IsPunct(t, ")") && pdepth > 0) --pdepth;
      if (IsPunct(t, ";") && pdepth == 0) return 0;
      if (IsPunct(t, "{") && pdepth == 0) {
        const Token& before = toks[j - 1];
        if (IsIdent(before) || IsPunct(before, ">")) {
          size_t bd = 1;
          for (++j; j < toks.size() && bd > 0; ++j) {
            if (IsPunct(toks[j], "{")) ++bd;
            if (IsPunct(toks[j], "}")) --bd;
          }
          --j;
          continue;
        }
        return j;
      }
    }
    return 0;
  }

  std::string QualifyAnnotationLock(const std::string& arg,
                                    const std::string& cls) const {
    std::string a = arg;
    if (!a.empty() && a.front() == '&') a.erase(0, 1);
    if (a.rfind("this->", 0) == 0) a.erase(0, 6);
    bool simple = !a.empty();
    for (char ch : a) {
      if (!(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')) {
        simple = false;
        break;
      }
    }
    if (simple && !cls.empty()) return cls + "::" + a;
    return a;
  }

  // ---- class-scope member declarations ------------------------------------

  /// Flushes the buffered class-scope declaration at a `;`: records the
  /// member's inferred type and any declared ACQUIRED_BEFORE/AFTER edges.
  void FlushMemberDecl() {
    std::vector<Token> buf;
    buf.swap(member_buf_);
    if (!InClassScope() || buf.empty()) return;
    std::string cls = scopes_.back().name;
    if (cls.empty()) return;
    // Locate annotation macros and the member name (the identifier before
    // the first annotation, `=`, or the `;`).
    size_t first_ann = buf.size();
    for (size_t j = 0; j < buf.size(); ++j) {
      if (IsIdent(buf[j]) && MemberAnnotations().count(buf[j].text) != 0) {
        first_ann = j;
        break;
      }
      if (IsPunct(buf[j], "=")) {
        first_ann = j;
        break;
      }
    }
    std::string member;
    std::string type;
    for (size_t j = first_ann; j > 0; --j) {
      if (IsIdent(buf[j - 1])) {
        if (member.empty()) {
          member = buf[j - 1].text;
        } else if (type.empty()) {
          const std::string& s = buf[j - 1].text;
          if (s != "const" && s != "static" && s != "mutable" &&
              s != "inline" && s != "constexpr") {
            type = s;
          }
        }
        if (!member.empty() && !type.empty()) break;
      }
    }
    if (member.empty()) return;
    if (!type.empty()) model_.members[cls][member] = type;
    // Declared ordering edges.
    for (size_t j = first_ann; j < buf.size(); ++j) {
      if (!IsIdent(buf[j])) continue;
      bool before = buf[j].text == "ACQUIRED_BEFORE";
      bool after = buf[j].text == "ACQUIRED_AFTER";
      if (!before && !after) continue;
      size_t line = buf[j].line;
      if (j + 1 >= buf.size() || !IsPunct(buf[j + 1], "(")) continue;
      size_t d = 1;
      std::string arg;
      auto emit = [&]() {
        if (arg.empty()) return;
        DeclaredEdge e;
        std::string other = cls + "::" + arg;
        std::string self = cls + "::" + member;
        e.before = before ? self : other;
        e.after = before ? other : self;
        e.file = model_.path;
        e.line = line;
        model_.declared_order.push_back(e);
        arg.clear();
      };
      for (size_t k = j + 2; k < buf.size() && d > 0; ++k) {
        if (IsPunct(buf[k], "(")) ++d;
        if (IsPunct(buf[k], ")") && --d == 0) break;
        if (IsPunct(buf[k], ",") && d == 1) {
          emit();
          continue;
        }
        arg += buf[k].text;
      }
      emit();
    }
  }

  // ---- lambdas ------------------------------------------------------------

  /// At `[` inside a function: if this is a lambda introducer, consumes the
  /// capture list / params / specifiers and opens a synthetic function for
  /// the body. The innermost pending call decides how the lambda runs:
  /// an argument to `Submit` escapes to the worker pool, an argument to
  /// `Post` / `SetTimerCallback` re-enters the loop thread, anything else
  /// is modeled as a direct call from the enclosing function.
  void MaybeLambda() {
    const std::vector<Token>& toks = Toks();
    const Token* p = Prev();
    if (p != nullptr) {
      bool callable_before =
          (IsIdent(*p) && NonCallKeywords().count(p->text) == 0) ||
          IsPunct(*p, ")") || IsPunct(*p, "]");
      if (callable_before) return;  // subscript
    }
    if (i_ + 1 < toks.size() && IsPunct(toks[i_ + 1], "[")) return;  // [[attr]]
    // Capture list.
    size_t d = 1;
    size_t j = i_ + 1;
    for (; j < toks.size() && d > 0; ++j) {
      if (IsPunct(toks[j], "[")) ++d;
      if (IsPunct(toks[j], "]")) --d;
    }
    if (d != 0) return;
    Function fn;
    Function* outer = CurFunc();
    fn.unqualified = "<lambda:" + std::to_string(toks[i_].line) + ">";
    fn.name = outer->name + "::" + fn.unqualified;
    fn.cls = outer->cls;
    fn.file = model_.path;
    fn.line = toks[i_].line;
    fn.is_definition = true;
    // Optional parameter list.
    if (j < toks.size() && IsPunct(toks[j], "(")) {
      size_t pd = 1;
      std::vector<std::string> idents;
      auto flush = [&]() {
        if (idents.size() >= 2) {
          fn.var_types[idents.back()] = idents[idents.size() - 2];
        }
        idents.clear();
      };
      for (++j; j < toks.size() && pd > 0; ++j) {
        if (IsPunct(toks[j], "(")) ++pd;
        if (IsPunct(toks[j], ")") && --pd == 0) break;
        if (IsPunct(toks[j], ",") && pd == 1) {
          flush();
          continue;
        }
        if (IsIdent(toks[j]) && toks[j].text != "const") {
          idents.push_back(toks[j].text);
        }
      }
      flush();
      ++j;  // past `)`
    }
    // Specifiers / trailing return until the body `{` (or give up).
    while (j < toks.size() && !IsPunct(toks[j], "{")) {
      const Token& t = toks[j];
      if (IsIdent(t) || IsPunct(t, "->") || IsPunct(t, "::") ||
          IsPunct(t, "*") || IsPunct(t, "&")) {
        ++j;
        continue;
      }
      return;  // not a lambda body after all
    }
    if (j >= toks.size()) return;
    fn.lambda_role = LambdaRole::kPlain;
    for (auto it = parens_.rbegin(); it != parens_.rend(); ++it) {
      if (it->kind != ParenInfo::kCall) continue;
      if (it->call_name == "Submit") fn.lambda_role = LambdaRole::kWorker;
      else if (it->call_name == "Post" || it->call_name == "SetTimerCallback") {
        fn.lambda_role = LambdaRole::kReactor;
      }
      break;
    }
    if (fn.lambda_role == LambdaRole::kPlain) {
      Call c;
      c.name = fn.name;  // qualified; linked by exact name within this file
      c.line = fn.line;
      c.loop_depth = LoopDepth();
      c.held = HeldNow();
      outer->calls.push_back(c);
    }
    model_.functions.push_back(fn);
    pending_ = Pending::kFunction;
    pending_func_ = static_cast<int>(model_.functions.size() - 1);
    i_ = j - 1;  // main loop advances onto the `{`
  }

  FileModel model_;
  size_t i_ = 0;
  std::vector<Scope> scopes_;
  std::vector<int> func_stack_;
  std::vector<ParenInfo> parens_;
  std::vector<HeldLock> held_;
  std::vector<Token> member_buf_;
  Pending pending_ = Pending::kNone;
  std::string pending_name_;
  int pending_func_ = -1;
};

}  // namespace

FileModel ExtractModel(const std::string& path, const std::string& content) {
  return Extractor(path, content).Run();
}

}  // namespace galaxy::analyze
