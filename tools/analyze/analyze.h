#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

/// galaxy_analyze — a dependency-free whole-program static analyzer. It
/// reuses the galaxy_lint lexer to extract, per translation unit, a
/// lightweight semantic model (function definitions, call sites, lock
/// scopes, thread-safety annotations, ExecutionContext charge evidence),
/// links the per-TU models into a cross-TU call graph, and runs three
/// reachability rules over it:
///
///   lock-order        derives the global lock acquisition graph from
///                     nested lock scopes flattened through the call graph,
///                     reports cycles (potential deadlocks), and
///                     cross-checks derived order against the declared
///                     ACQUIRED_BEFORE edges.
///   reactor-blocking  from EventLoop / FdHandler / Post- and
///                     timer-callback entry points, flags any reachable
///                     blocking primitive (fsync, WalWriter::Append,
///                     CondVar::Wait, ThreadPool::Run, sleep_for, blocking
///                     socket I/O). Poller::Wait is the designed block and
///                     exempt; src/server/event_loop.* and
///                     src/server/connection.* do non-blocking socket I/O
///                     by construction and are exempt from the socket set.
///   budget-reach      nested loops in code reachable from executor /
///                     algorithm entry points along a charge-free path,
///                     where neither the function nor anything it calls
///                     from inside a loop charges the ExecutionContext
///                     budget — the whole-program generalization of
///                     galaxy_lint's per-file budget-charge rule.
///
/// Model-extraction limits (documented in tools/README.md): the extractor
/// is a token-stream heuristic, not a compiler. Preprocessor macros are not
/// expanded; calls through function pointers / std::function values link to
/// nothing (mitigated by treating every registered-callback shape as an
/// entry point); virtual dispatch (receiver type resolved to an interface
/// with no body of its own) and calls whose receiver type cannot be
/// inferred from member / parameter / local declarations link only to a
/// globally unique CamelCase definition of that name and are otherwise
/// dropped (under-approximation — ubiquitous names like `size` or
/// `ToString` would otherwise fabricate cross-class paths).
///
/// Suppressions use the shared comment machinery with the tag
/// `galaxy-analyze:` — `// galaxy-analyze: allow(rule) — reason` on or
/// directly above the diagnosed line, `allow-file(rule)` for the file.
namespace galaxy::analyze {

/// One call site inside a function body.
struct Call {
  std::string name;      ///< unqualified callee name
  std::string receiver;  ///< receiver expression text ("" = free call)
  std::string cls;       ///< explicit `Cls::name(...)` qualification, if any
  size_t line = 0;
  size_t loop_depth = 0;          ///< loop nesting at the call site
  std::vector<std::string> held;  ///< lock ids held at the call site
};

/// One lock acquisition (RAII locker or explicit .Lock()).
struct Acquire {
  std::string lock;  ///< canonical lock id, e.g. "Server::view_mutex_"
  size_t line = 0;
  std::vector<std::string> held;  ///< lock ids already held when acquired
};

/// How a lambda reaches execution, decided by the call it is passed to.
enum class LambdaRole {
  kNone,     ///< not a lambda
  kReactor,  ///< passed to EventLoop::Post / SetTimerCallback: loop thread
  kWorker,   ///< passed to WorkerPool::Submit: worker thread
  kPlain,    ///< anything else: modeled as called by the enclosing function
};

struct Function {
  std::string name;         ///< qualified: "Cls::F", "F", "Outer::<lambda:N>"
  std::string unqualified;  ///< "F" / "<lambda:N>"
  std::string cls;          ///< enclosing or explicit class ("" for free)
  std::string file;
  size_t line = 0;
  bool is_definition = false;
  LambdaRole lambda_role = LambdaRole::kNone;
  std::vector<std::string> requires_locks;  ///< REQUIRES(...) lock ids
  std::vector<Call> calls;
  std::vector<Acquire> acquires;
  /// parameter / local variable name -> inferred class type.
  std::map<std::string, std::string> var_types;
  bool has_charge = false;     ///< ExecutionContext budget evidence in body
  size_t max_loop_depth = 0;   ///< deepest loop nesting in the body
  size_t deep_loop_line = 0;   ///< line where nesting first reached 2
};

/// A declared `ACQUIRED_BEFORE` / `ACQUIRED_AFTER` edge, normalized so
/// `before` must be acquired before `after`.
struct DeclaredEdge {
  std::string before;
  std::string after;
  std::string file;
  size_t line = 0;
};

/// The per-TU semantic model.
struct FileModel {
  std::string path;  ///< normalized (forward slashes)
  std::vector<Function> functions;
  /// class name -> member name -> inferred class type.
  std::map<std::string, std::map<std::string, std::string>> members;
  std::vector<DeclaredEdge> declared_order;
  lint::LexedFile lexed;  ///< kept for suppression lookups
};

/// Extracts the semantic model of one file.
FileModel ExtractModel(const std::string& path, const std::string& content);

/// Links the models and runs all whole-program rules. Diagnostics carry the
/// same `path:line: error: [rule] message` shape as galaxy_lint.
std::vector<lint::Diagnostic> Analyze(const std::vector<FileModel>& models);

/// Convenience: extract + link + analyze (path, content) pairs.
std::vector<lint::Diagnostic> AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files);

/// The names of every implemented rule, for `--list-rules` and tests.
std::vector<std::string> RuleNames();

}  // namespace galaxy::analyze
