#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

/// Linking and the three whole-program rules. The call graph links by
/// name: explicit `Cls::f` and receiver expressions resolved through the
/// merged member / parameter / local type maps give exact targets; every
/// other shape (virtual dispatch through an interface with no body of its
/// own, unresolved receivers, unknown free calls) links only when the name
/// is globally unambiguous and CamelCase (repo method convention —
/// lowercase names are STL / libc calls); otherwise it is dropped. Calls
/// through std::function values link to nothing — every
/// registered-callback shape (FdHandler methods, Post / timer lambdas) is
/// an entry point instead.
namespace galaxy::analyze {
namespace {

using lint::Diagnostic;

struct Program {
  std::vector<const Function*> defs;
  std::map<std::string, std::vector<size_t>> by_name;  ///< unqualified
  std::map<std::string, std::vector<size_t>> by_qual;  ///< qualified
  /// REQUIRES(...) merged across declarations and definitions.
  std::map<std::string, std::set<std::string>> requires_of;
  std::map<std::string, std::map<std::string, std::string>> members;
  std::vector<DeclaredEdge> declared;
  std::map<std::string, const lint::LexedFile*> lexed;
};

bool SimpleIdent(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      return false;
    }
  }
  return true;
}

std::string Basename(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Program Link(const std::vector<FileModel>& models) {
  Program p;
  for (const FileModel& m : models) {
    p.lexed.emplace(m.path, &m.lexed);
    for (const auto& [cls, mem] : m.members) {
      for (const auto& [name, type] : mem) p.members[cls][name] = type;
    }
    for (const DeclaredEdge& e : m.declared_order) p.declared.push_back(e);
    for (const Function& f : m.functions) {
      if (!f.requires_locks.empty()) {
        p.requires_of[f.name].insert(f.requires_locks.begin(),
                                     f.requires_locks.end());
      }
      if (!f.is_definition) continue;
      size_t idx = p.defs.size();
      p.defs.push_back(&f);
      p.by_name[f.unqualified].push_back(idx);
      p.by_qual[f.name].push_back(idx);
    }
  }
  return p;
}

/// Infers the class type of a receiver expression inside `f`: `this`,
/// locals / parameters, members of the enclosing class, and one `a->b` /
/// `a.b` hop through the merged member maps.
std::string ReceiverType(const Program& p, const Function& f,
                         std::string recv) {
  if (recv.empty()) return "";
  if (recv == "this") return f.cls;
  if (recv.rfind("this->", 0) == 0) recv.erase(0, 6);
  auto type_of = [&](const std::string& name) -> std::string {
    auto vit = f.var_types.find(name);
    if (vit != f.var_types.end()) return vit->second;
    auto cit = p.members.find(f.cls);
    if (cit != p.members.end()) {
      auto mit = cit->second.find(name);
      if (mit != cit->second.end()) return mit->second;
    }
    return "";
  };
  if (SimpleIdent(recv)) return type_of(recv);
  size_t sep = recv.find("->");
  size_t len = 2;
  size_t dot = recv.find('.');
  if (dot != std::string::npos && (sep == std::string::npos || dot < sep)) {
    sep = dot;
    len = 1;
  }
  if (sep == std::string::npos) return "";
  std::string base = recv.substr(0, sep);
  std::string rest = recv.substr(sep + len);
  if (!SimpleIdent(base) || !SimpleIdent(rest)) return "";
  std::string t1 = type_of(base);
  if (t1.empty()) return "";
  auto cit = p.members.find(t1);
  if (cit == p.members.end()) return "";
  auto mit = cit->second.find(rest);
  return mit == cit->second.end() ? "" : mit->second;
}

/// `Type::name` when the receiver type or explicit qualification is known,
/// "" otherwise.
std::string QualifiedCallName(const Program& p, const Function& f,
                              const Call& c) {
  if (!c.cls.empty()) return c.cls + "::" + c.name;
  std::string t = ReceiverType(p, f, c.receiver);
  if (!t.empty()) return t + "::" + c.name;
  return "";
}

std::vector<size_t> Callees(const Program& p, const Function& f,
                            const Call& c) {
  if (c.name.find("<lambda:") != std::string::npos) {
    auto it = p.by_qual.find(c.name);
    if (it == p.by_qual.end()) return {};
    std::vector<size_t> out;
    for (size_t idx : it->second) {
      if (p.defs[idx]->file == f.file) out.push_back(idx);
    }
    return out;
  }
  auto named = p.by_name.find(c.name);
  if (named == p.by_name.end()) return {};
  auto with_cls = [&](const std::string& cls) {
    std::vector<size_t> out;
    for (size_t idx : named->second) {
      if (p.defs[idx]->cls == cls) out.push_back(idx);
    }
    return out;
  };
  // Ambiguity guard for every by-name fallback below: linking each
  // same-name method would wire the graph through ubiquitous names
  // (`size`, `ToString`) and fabricate cross-class paths. A fallback link
  // is taken only when the name is globally unambiguous and follows the
  // repo's CamelCase method convention (lowercase names are STL / libc
  // calls); otherwise the call is dropped — a documented
  // under-approximation (analyze.h). Genuine virtual dispatch through an
  // interface (Poller::Wait) survives when the override is unique; an
  // ambiguous one is handled by the rules' entry-point / exemption sets.
  auto unambiguous = [&]() -> std::vector<size_t> {
    if (named->second.size() == 1 &&
        std::isupper(static_cast<unsigned char>(c.name[0])) != 0) {
      return named->second;
    }
    return {};
  };
  if (!c.cls.empty()) return with_cls(c.cls);  // explicit: exact or nothing
  std::string t = ReceiverType(p, f, c.receiver);
  if (!t.empty()) {
    std::vector<size_t> exact = with_cls(t);
    if (!exact.empty()) return exact;
    return unambiguous();  // interface type with no body of its own
  }
  if (c.receiver.empty()) {
    std::vector<size_t> same_cls = with_cls(f.cls);
    if (!f.cls.empty() && !same_cls.empty()) return same_cls;
    std::vector<size_t> free_fns = with_cls("");
    if (!free_fns.empty()) return free_fns;
  }
  return unambiguous();
}

void Emit(const Program& p, const std::string& file, size_t line,
          const std::string& rule, std::string msg,
          std::vector<Diagnostic>* out) {
  auto it = p.lexed.find(file);
  if (it != p.lexed.end() && lint::Suppressed(*it->second, line, rule)) return;
  out->push_back({file, line, rule, std::move(msg)});
}

std::string PathString(const Program& p,
                       const std::map<size_t, size_t>& parent, size_t idx) {
  std::vector<std::string> names;
  for (size_t at = idx;;) {
    names.push_back(p.defs[at]->name);
    auto it = parent.find(at);
    if (it == parent.end() || it->second == at) break;
    at = it->second;
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += *it;
  }
  return out;
}

// ---- rule: reactor-blocking ------------------------------------------------

const std::set<std::string>& FreeBlockingCalls() {
  static const std::set<std::string> kCalls = {
      "fsync", "fdatasync", "sleep_for", "usleep", "nanosleep"};
  return kCalls;
}

const std::set<std::string>& BlockingSocketCalls() {
  static const std::set<std::string> kCalls = {
      "recv", "recvfrom", "recvmsg", "send",    "sendto",
      "sendmsg", "accept", "accept4", "connect"};
  return kCalls;
}

const std::set<std::string>& QualifiedBlockingCalls() {
  static const std::set<std::string> kCalls = {
      "CondVar::Wait", "CondVar::WaitUntil", "ThreadPool::Run",
      "WalWriter::Append", "WalWriter::Sync"};
  return kCalls;
}

/// Poller::Wait is the reactor's one designed block.
const std::set<std::string>& ExemptBlockingCalls() {
  static const std::set<std::string> kCalls = {
      "Poller::Wait", "EpollPoller::Wait", "PollPoller::Wait"};
  return kCalls;
}

/// Files whose raw socket calls run on fds that are non-blocking by
/// construction (the event-driven I/O core).
bool NonBlockingIoFile(const std::string& path) {
  return path.find("src/server/event_loop.") != std::string::npos ||
         path.find("src/server/connection.") != std::string::npos;
}

/// "" when the call does not block; otherwise a human-readable label.
std::string BlockingLabel(const Program& p, const Function& f, const Call& c) {
  if (c.receiver.empty()) {
    if (FreeBlockingCalls().count(c.name) != 0) return c.name;
    if (BlockingSocketCalls().count(c.name) != 0 && c.cls.empty() &&
        !NonBlockingIoFile(f.file)) {
      return c.name + " (blocking socket I/O)";
    }
  }
  std::string q = QualifiedCallName(p, f, c);
  if (q.empty()) return "";
  if (ExemptBlockingCalls().count(q) != 0) return "";
  if (QualifiedBlockingCalls().count(q) != 0) return q;
  return "";
}

bool IsReactorEntry(const Function& f) {
  if (f.lambda_role == LambdaRole::kReactor) return true;
  if (f.name == "EventLoop::Run") return true;
  return f.unqualified == "OnReadable" || f.unqualified == "OnWritable" ||
         f.unqualified == "OnHangup";
}

void ReactorBlockingRule(const Program& p, std::vector<Diagnostic>* out) {
  std::map<size_t, size_t> parent;
  std::deque<size_t> queue;
  for (size_t i = 0; i < p.defs.size(); ++i) {
    if (IsReactorEntry(*p.defs[i])) {
      parent.emplace(i, i);
      queue.push_back(i);
    }
  }
  std::set<std::string> reported;
  while (!queue.empty()) {
    size_t at = queue.front();
    queue.pop_front();
    const Function& f = *p.defs[at];
    for (const Call& c : f.calls) {
      std::string label = BlockingLabel(p, f, c);
      if (!label.empty()) {
        std::string key = f.file + ":" + std::to_string(c.line) + ":" + label;
        if (reported.insert(key).second) {
          std::ostringstream msg;
          msg << "blocking call `" << label
              << "` is reachable on the event-loop thread (path: "
              << PathString(p, parent, at) << " -> " << c.name
              << "); blocking work must run on the worker pool";
          Emit(p, f.file, c.line, "reactor-blocking", msg.str(), out);
        }
      }
      for (size_t callee : Callees(p, f, c)) {
        if (parent.emplace(callee, at).second) queue.push_back(callee);
      }
    }
  }
}

// ---- rule: budget-reach ----------------------------------------------------

/// Entry files of the execution engine. count_kernel.cc is deliberately not
/// an entry: its kernels are branch-free inner tiles whose callers charge
/// per tile (the documented design since PR 5); the kernels are still
/// checked when reached over a charge-free path from a real entry.
bool IsBudgetEntryFile(const std::string& path) {
  std::string base = Basename(path);
  if (path.find("src/core/") != std::string::npos) {
    if (base.rfind("algorithm_", 0) == 0) return true;
    return base == "parallel.cc" || base == "anytime.cc" ||
           base == "incremental.cc" || base == "adaptive.cc" ||
           base == "aggregate_skyline.cc";
  }
  return path.find("src/sql/executor.cc") != std::string::npos;
}

/// True when `idx` (or anything it calls) shows budget evidence.
bool ChargesTransitively(const Program& p, size_t idx,
                         std::map<size_t, int>* memo) {
  auto it = memo->find(idx);
  if (it != memo->end()) return it->second == 1;
  (*memo)[idx] = 0;  // in progress: cycles do not charge
  const Function& f = *p.defs[idx];
  bool charges = f.has_charge;
  if (!charges) {
    for (const Call& c : f.calls) {
      for (size_t callee : Callees(p, f, c)) {
        if (ChargesTransitively(p, callee, memo)) {
          charges = true;
          break;
        }
      }
      if (charges) break;
    }
  }
  (*memo)[idx] = charges ? 1 : 0;
  return charges;
}

void BudgetReachRule(const Program& p, std::vector<Diagnostic>* out) {
  std::map<size_t, size_t> parent;
  std::deque<size_t> queue;
  for (size_t i = 0; i < p.defs.size(); ++i) {
    if (IsBudgetEntryFile(p.defs[i]->file)) {
      parent.emplace(i, i);
      queue.push_back(i);
    }
  }
  // Reachability along charge-free paths: a charging function bounds all
  // the work below it, so traversal stops there.
  while (!queue.empty()) {
    size_t at = queue.front();
    queue.pop_front();
    const Function& f = *p.defs[at];
    if (f.has_charge) continue;
    for (const Call& c : f.calls) {
      for (size_t callee : Callees(p, f, c)) {
        if (parent.emplace(callee, at).second) queue.push_back(callee);
      }
    }
  }
  std::map<size_t, int> memo;
  for (const auto& [idx, from] : parent) {
    const Function& f = *p.defs[idx];
    if (f.max_loop_depth < 2 || f.deep_loop_line == 0) continue;
    if (f.has_charge) continue;
    // Charge in a callee invoked from inside a loop also counts.
    bool charged_via_callee = false;
    for (const Call& c : f.calls) {
      if (c.loop_depth == 0) continue;
      for (size_t callee : Callees(p, f, c)) {
        if (ChargesTransitively(p, callee, &memo)) {
          charged_via_callee = true;
          break;
        }
      }
      if (charged_via_callee) break;
    }
    if (charged_via_callee) continue;
    std::ostringstream msg;
    msg << "function `" << f.name << "` has nested loops (depth "
        << f.max_loop_depth
        << ") with no ExecutionContext charge on the path "
        << PathString(p, parent, idx)
        << "; uncancellable work escapes the budget control plane";
    Emit(p, f.file, f.deep_loop_line, "budget-reach", msg.str(), out);
  }
}

// ---- rule: lock-order ------------------------------------------------------

struct OrderEdge {
  std::string file;
  size_t line = 0;
  std::string via;  ///< function whose body creates the edge
  bool declared = false;
};

std::set<std::string> EffectiveRequires(const Program& p, const Function& f) {
  std::set<std::string> r(f.requires_locks.begin(), f.requires_locks.end());
  auto it = p.requires_of.find(f.name);
  if (it != p.requires_of.end()) r.insert(it->second.begin(), it->second.end());
  // A REQUIRES lock the body explicitly unlocks (the unlock-around-body
  // idiom) is not reliably held at any given event; drop it rather than
  // derive false edges / false recursive acquisitions.
  for (const Call& c : f.calls) {
    if ((c.name == "Unlock" || c.name == "ReaderUnlock") &&
        !c.receiver.empty()) {
      std::string expr = c.receiver;
      if (expr.rfind("this->", 0) == 0) expr.erase(0, 6);
      if (SimpleIdent(expr) && !f.cls.empty()) expr = f.cls + "::" + expr;
      r.erase(expr);
    }
  }
  return r;
}

void LockOrderRule(const Program& p, std::vector<Diagnostic>* out) {
  // Transitive acquire sets, to fixpoint (the graph is small).
  std::vector<std::set<std::string>> ta(p.defs.size());
  std::vector<std::set<std::string>> req(p.defs.size());
  for (size_t i = 0; i < p.defs.size(); ++i) {
    req[i] = EffectiveRequires(p, *p.defs[i]);
    for (const Acquire& a : p.defs[i]->acquires) ta[i].insert(a.lock);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < p.defs.size(); ++i) {
      for (const Call& c : p.defs[i]->calls) {
        for (size_t callee : Callees(p, *p.defs[i], c)) {
          for (const std::string& l : ta[callee]) {
            if (req[callee].count(l) != 0) continue;  // caller's own lock
            if (ta[i].insert(l).second) changed = true;
          }
        }
      }
    }
  }
  // Acquisition-order edges.
  std::map<std::pair<std::string, std::string>, OrderEdge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, size_t line,
                      const std::string& via, bool declared) {
    if (from == to) return;
    edges.emplace(std::make_pair(from, to),
                  OrderEdge{file, line, via, declared});
  };
  for (size_t i = 0; i < p.defs.size(); ++i) {
    const Function& f = *p.defs[i];
    for (const Acquire& a : f.acquires) {
      std::set<std::string> held(a.held.begin(), a.held.end());
      held.insert(req[i].begin(), req[i].end());
      if (held.count(a.lock) != 0) {
        Emit(p, f.file, a.line, "lock-order",
             "lock `" + a.lock + "` acquired in `" + f.name +
                 "` while already held (recursive acquisition deadlocks "
                 "common::Mutex)",
             out);
        continue;
      }
      for (const std::string& h : held) {
        add_edge(h, a.lock, f.file, a.line, f.name, false);
      }
    }
    for (const Call& c : f.calls) {
      std::set<std::string> held(c.held.begin(), c.held.end());
      held.insert(req[i].begin(), req[i].end());
      if (held.empty()) continue;
      for (size_t callee : Callees(p, f, c)) {
        for (const std::string& l : ta[callee]) {
          if (req[callee].count(l) != 0) continue;
          for (const std::string& h : held) {
            add_edge(h, l, f.file, c.line, f.name + " -> " + c.name, false);
          }
        }
      }
    }
  }
  std::map<std::pair<std::string, std::string>, OrderEdge> derived = edges;
  for (const DeclaredEdge& e : p.declared) {
    add_edge(e.before, e.after, e.file, e.line, "ACQUIRED_BEFORE", true);
  }
  // Adjacency over the combined graph.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, edge] : edges) adj[key.first].insert(key.second);
  // Cycle detection: iterative DFS with colors; report each cycle once,
  // anchored at the first derived edge on it.
  std::set<std::set<std::string>> reported_cycles;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::map<std::string, std::string> on_path_prev;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        // Found a cycle v -> ... -> u -> v on the grey stack.
        std::vector<std::string> cycle;
        for (size_t k = stack.size(); k > 0; --k) {
          cycle.push_back(stack[k - 1]);
          if (stack[k - 1] == v) break;
        }
        std::reverse(cycle.begin(), cycle.end());
        std::set<std::string> key(cycle.begin(), cycle.end());
        if (reported_cycles.insert(key).second) {
          std::ostringstream msg;
          msg << "lock acquisition cycle: ";
          const OrderEdge* anchor = nullptr;
          for (size_t k = 0; k < cycle.size(); ++k) {
            const std::string& a = cycle[k];
            const std::string& b = cycle[(k + 1) % cycle.size()];
            auto it = edges.find({a, b});
            if (k != 0) msg << ", ";
            msg << a << " -> " << b;
            if (it != edges.end()) {
              msg << " (" << (it->second.declared ? "declared at " : "via ")
                  << (it->second.declared
                          ? it->second.file + ":" +
                                std::to_string(it->second.line)
                          : it->second.via + " at " + it->second.file + ":" +
                                std::to_string(it->second.line))
                  << ")";
              if (anchor == nullptr && !it->second.declared) {
                anchor = &it->second;
              }
            }
          }
          msg << "; two threads interleaving these acquisitions deadlock";
          if (anchor == nullptr) {
            // Purely declared cycle: anchor at the first declaration.
            auto it = edges.find({cycle[0], cycle[1 % cycle.size()]});
            if (it != edges.end()) anchor = &it->second;
          }
          if (anchor != nullptr) {
            Emit(p, anchor->file, anchor->line, "lock-order", msg.str(), out);
          }
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, unused] : adj) {
    (void)unused;
    if (color[node] == 0) dfs(node);
  }
  // Declared-vs-derived cross-check: a declared a-before-b contradicted by
  // a derived path b ~> a.
  std::map<std::string, std::set<std::string>> dadj;
  for (const auto& [key, edge] : derived) dadj[key.first].insert(key.second);
  for (const DeclaredEdge& e : p.declared) {
    // BFS from e.after looking for e.before.
    std::map<std::string, std::string> prev;
    std::deque<std::string> q;
    q.push_back(e.after);
    prev.emplace(e.after, e.after);
    bool found = false;
    while (!q.empty() && !found) {
      std::string u = q.front();
      q.pop_front();
      for (const std::string& v : dadj[u]) {
        if (prev.emplace(v, u).second) {
          if (v == e.before) {
            found = true;
            break;
          }
          q.push_back(v);
        }
      }
    }
    if (!found) continue;
    // Reconstruct the path for the message; anchor at its first edge.
    std::vector<std::string> path;
    for (std::string at = e.before; ; at = prev[at]) {
      path.push_back(at);
      if (at == e.after) break;
    }
    std::reverse(path.begin(), path.end());
    auto first_edge = derived.find({path[0], path[1]});
    std::ostringstream msg;
    msg << "derived acquisition order ";
    for (size_t k = 0; k < path.size(); ++k) {
      if (k != 0) msg << " -> ";
      msg << path[k];
    }
    msg << " contradicts `" << e.before << "` ACQUIRED_BEFORE `" << e.after
        << "` declared at " << e.file << ":" << e.line;
    if (first_edge != derived.end()) {
      Emit(p, first_edge->second.file, first_edge->second.line, "lock-order",
           msg.str(), out);
    }
  }
}

}  // namespace

std::vector<Diagnostic> Analyze(const std::vector<FileModel>& models) {
  Program p = Link(models);
  std::vector<Diagnostic> out;
  LockOrderRule(p, &out);
  ReactorBlockingRule(p, &out);
  BudgetReachRule(p, &out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return a.path == b.path && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Diagnostic> AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [path, content] : files) {
    models.push_back(ExtractModel(path, content));
  }
  return Analyze(models);
}

std::vector<std::string> RuleNames() {
  return {"budget-reach", "lock-order", "reactor-blocking"};
}

}  // namespace galaxy::analyze
