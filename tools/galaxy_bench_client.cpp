// galaxy_bench_client — load generator for galaxy_served.
//
//   galaxy_bench_client --port 8080 [--host 127.0.0.1]
//                       [--sql "SELECT ..."] [--connections 4]
//                       [--requests 1000 | --duration-s 10] [--qps 0]
//                       [--deadline-ms 0] [--deadline-dist fixed|exp]
//                       [--update-every 0] [--update-table T]
//                       [--update-body "csv,row"] [--accept json|csv]
//                       [--open-loop] [--ramp-batch 512]
//                       [--seed 1] [--out results.json]
//
// Reviewed: a load generator lives on raw sockets by definition — the
// closed-loop workers block on purpose (one request outstanding each) and
// the open-loop engine runs every socket non-blocking under poll(2).
// galaxy-lint: allow-file(blocking-socket-io)
//
// Default (closed-loop) mode: each connection gets a thread running send
// POST /query, wait for the full response, record the latency, repeat —
// optionally paced to --qps (split evenly across connections) and
// optionally interleaving a POST /update every --update-every requests
// (which exercises cache invalidation on the server). --deadline-ms
// attaches X-Galaxy-Timeout-Ms to each request; with --deadline-dist exp
// the per-request deadline is drawn from an exponential distribution with
// that mean, which produces a mix of exact (200) and degraded (206)
// answers.
//
// --open-loop holds --connections (10k+ works) concurrent sockets from a
// SINGLE thread: non-blocking connects ramped --ramp-batch at a time (so
// the SYN burst never overruns the server's listen backlog), a poll(2)
// readiness loop, and a per-connection send/read state machine issuing
// back-to-back requests. This is the C10K harness for `galaxy_served`'s
// event engine; thread-per-connection clients cannot reach these
// counts. Open-loop requires --duration-s and ignores
// --qps/--update-every/--requests.
//
// The JSON report (stdout, or --out) contains per-status counts, latency
// mean/p50/p90/p99 in milliseconds, and the full power-of-two latency
// histogram in microseconds — the same bucket layout the server's
// /metrics histogram uses, and the format scripts/bench_to_csv.py
// accepts.
//
// Exit status: 0 when every request got an HTTP response (any status),
// 1 on transport errors, 2 on usage errors.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <map>
#include <random>
#include <string_view>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace {

using galaxy::Status;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";
        }
      } else {
        error_ = "unexpected argument: " + arg;
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool CheckAllowed(std::initializer_list<const char*> allowed) {
    std::set<std::string> names(allowed.begin(), allowed.end());
    for (const auto& [name, value] : values_) {
      if (names.count(name) == 0) {
        error_ = "unknown flag: --" + name;
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  galaxy::Result<int64_t> GetInt(const std::string& name,
                                 int64_t fallback) const {
    if (!Has(name)) return fallback;
    const std::string& text = values_.at(name);
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("--" + name +
                                     " expects an integer, got: " + text);
    }
    return static_cast<int64_t>(v);
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

struct BenchConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string sql = "SELECT * FROM data";
  std::string accept = "application/json";
  int connections = 4;
  int64_t requests = 1000;   // total across connections; 0 = duration mode
  int64_t duration_s = 0;    // 0 = request-count mode
  double qps = 0;            // 0 = unthrottled
  int64_t deadline_ms = 0;   // 0 = no deadline header
  bool deadline_exp = false;
  int64_t update_every = 0;  // 0 = queries only
  std::string update_table;
  std::string update_body;
  bool open_loop = false;
  int64_t ramp_batch = 512;  // open-loop: concurrent connect attempts
  uint64_t seed = 1;
};

struct WorkerResult {
  std::map<int, uint64_t> status_counts;
  std::vector<uint64_t> latencies_us;
  uint64_t transport_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t degraded = 0;
  size_t peak_open = 0;  // open-loop only: connections open at run end
};

// Blocking connect to the bench target; -1 on failure.
int Connect(const BenchConfig& config) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads one HTTP response off `fd` using `buffer` as the connection's
// carry-over. Returns the status code (0 on transport error) and whether
// the X-Galaxy-Cache / degraded markers were present.
int ReadResponse(int fd, std::string* buffer, bool* cache_hit,
                 bool* degraded, bool* close_after) {
  *cache_hit = false;
  *degraded = false;
  *close_after = false;
  char chunk[8192];
  while (true) {
    size_t header_end = buffer->find("\r\n\r\n");
    if (header_end != std::string::npos) {
      std::string headers = buffer->substr(0, header_end + 4);
      if (headers.size() < 12 || headers.compare(0, 5, "HTTP/") != 0) {
        return 0;
      }
      int status = std::atoi(headers.c_str() + 9);
      size_t content_length = 0;
      // Case matters not: the server emits canonical header casing.
      size_t cl = headers.find("Content-Length:");
      if (cl == std::string::npos) cl = headers.find("content-length:");
      if (cl != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(headers.c_str() + cl + 15, nullptr, 10));
      }
      if (headers.find("X-Galaxy-Cache: hit") != std::string::npos) {
        *cache_hit = true;
      }
      if (status == 206 ||
          headers.find("approximate-superset") != std::string::npos) {
        *degraded = true;
      }
      if (headers.find("Connection: close") != std::string::npos) {
        *close_after = true;
      }
      size_t total = header_end + 4 + content_length;
      while (buffer->size() < total) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return 0;
        buffer->append(chunk, static_cast<size_t>(n));
      }
      buffer->erase(0, total);
      return status;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void RunWorker(const BenchConfig& config, int worker_id,
               std::atomic<int64_t>* remaining,
               std::chrono::steady_clock::time_point stop_at,
               WorkerResult* out) {
  std::mt19937_64 rng(config.seed * 0x9e3779b97f4a7c15ULL +
                      static_cast<uint64_t>(worker_id));
  std::exponential_distribution<double> exp_dist(
      config.deadline_ms > 0 ? 1.0 / static_cast<double>(config.deadline_ms)
                             : 1.0);

  double per_worker_qps =
      config.qps > 0 ? config.qps / config.connections : 0;
  auto next_send = std::chrono::steady_clock::now();

  int fd = Connect(config);
  std::string buffer;
  uint64_t sent_count = 0;

  while (true) {
    if (config.requests > 0) {
      if (remaining->fetch_sub(1) <= 0) break;
    } else if (std::chrono::steady_clock::now() >= stop_at) {
      break;
    }

    if (per_worker_qps > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::microseconds(
          static_cast<int64_t>(1e6 / per_worker_qps));
    }

    if (fd < 0) {
      fd = Connect(config);
      if (fd < 0) {
        ++out->transport_errors;
        continue;
      }
      buffer.clear();
    }

    bool is_update = config.update_every > 0 && !config.update_table.empty() &&
                     sent_count > 0 &&
                     sent_count % static_cast<uint64_t>(config.update_every) ==
                         0;
    ++sent_count;

    std::string request;
    if (is_update) {
      request = "POST /update?table=" + config.update_table +
                "&op=insert HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
                std::to_string(config.update_body.size()) + "\r\n\r\n" +
                config.update_body;
    } else {
      request = "POST /query HTTP/1.1\r\nHost: bench\r\nAccept: " +
                config.accept + "\r\n";
      if (config.deadline_ms > 0) {
        int64_t deadline = config.deadline_ms;
        if (config.deadline_exp) {
          deadline = std::max<int64_t>(
              1, static_cast<int64_t>(exp_dist(rng)));
        }
        request += "X-Galaxy-Timeout-Ms: " + std::to_string(deadline) + "\r\n";
      }
      request += "Content-Length: " + std::to_string(config.sql.size()) +
                 "\r\n\r\n" + config.sql;
    }

    auto start = std::chrono::steady_clock::now();
    bool cache_hit = false, degraded = false, close_after = false;
    int status = 0;
    if (SendAll(fd, request)) {
      status = ReadResponse(fd, &buffer, &cache_hit, &degraded, &close_after);
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);

    if (status == 0) {
      ++out->transport_errors;
      ::close(fd);
      fd = -1;
      continue;
    }
    ++out->status_counts[status];
    if (!is_update) {
      out->latencies_us.push_back(
          static_cast<uint64_t>(elapsed.count()));
    }
    if (cache_hit) ++out->cache_hits;
    if (degraded) ++out->degraded;
    if (close_after) {
      ::close(fd);
      fd = -1;
    }
  }
  if (fd >= 0) ::close(fd);
}

// Non-blocking variant of ReadResponse's scan: if `buffer` starts with one
// complete response, consumes it and returns true.
bool TryConsumeResponse(std::string* buffer, int* status, bool* cache_hit,
                        bool* degraded, bool* close_after) {
  size_t header_end = buffer->find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  std::string_view headers(buffer->data(), header_end + 4);
  if (headers.size() < 12 || headers.compare(0, 5, "HTTP/") != 0) {
    *status = 0;  // Garbage on the wire; caller treats as transport error.
    return true;
  }
  size_t content_length = 0;
  size_t cl = headers.find("Content-Length:");
  if (cl != std::string::npos) {
    content_length = static_cast<size_t>(
        std::strtoull(buffer->c_str() + cl + 15, nullptr, 10));
  }
  size_t total = header_end + 4 + content_length;
  if (buffer->size() < total) return false;
  *status = std::atoi(buffer->c_str() + 9);
  *cache_hit = headers.find("X-Galaxy-Cache: hit") != std::string_view::npos;
  *degraded = *status == 206 ||
              headers.find("approximate-superset") != std::string_view::npos;
  *close_after = headers.find("Connection: close") != std::string_view::npos;
  buffer->erase(0, total);
  return true;
}

// Raises RLIMIT_NOFILE to the hard cap so 10k+ sockets fit. Best effort.
void RaiseFdLimit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

// ---- Open-loop engine ------------------------------------------------------
//
// One thread, N non-blocking sockets, poll(2) readiness. Each connection
// cycles kConnecting -> kSending -> kReading -> kSending ... issuing
// back-to-back requests; latency is measured from first request byte to
// last response byte. Failed or server-closed connections reconnect, so
// the target concurrency is held for the whole run.
struct OpenConn {
  enum class State { kIdle, kConnecting, kSending, kReading };
  int fd = -1;
  State state = State::kIdle;
  size_t send_offset = 0;
  std::string inbuf;
  std::chrono::steady_clock::time_point sent_at;
};

void OpenConnClose(OpenConn* conn) {
  if (conn->fd >= 0) ::close(conn->fd);
  conn->fd = -1;
  conn->state = OpenConn::State::kIdle;
  conn->send_offset = 0;
  conn->inbuf.clear();
}

// Starts a non-blocking connect; the poll loop completes it via POLLOUT.
bool OpenConnStart(const BenchConfig& config, const sockaddr_in& addr,
                   OpenConn* conn) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  (void)config;
  conn->fd = fd;
  conn->state = OpenConn::State::kConnecting;
  conn->send_offset = 0;
  conn->inbuf.clear();
  return true;
}

void RunOpenLoop(const BenchConfig& config, const std::string& request,
                 std::chrono::steady_clock::time_point stop_at,
                 WorkerResult* out) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ++out->transport_errors;
    return;
  }

  const size_t target = static_cast<size_t>(config.connections);
  std::vector<OpenConn> conns(target);
  std::vector<pollfd> pfds;
  pfds.reserve(target);
  out->latencies_us.reserve(1 << 20);

  auto now = std::chrono::steady_clock::now();
  while (now < stop_at) {
    // Ramp: keep at most --ramp-batch connects in flight so the SYN burst
    // stays inside the server's listen backlog.
    size_t connecting = 0;
    for (const OpenConn& c : conns) {
      if (c.state == OpenConn::State::kConnecting) ++connecting;
    }
    for (OpenConn& c : conns) {
      if (connecting >= static_cast<size_t>(config.ramp_batch)) break;
      if (c.state != OpenConn::State::kIdle) continue;
      if (OpenConnStart(config, addr, &c)) {
        ++connecting;
      } else {
        ++out->transport_errors;
      }
    }

    pfds.clear();
    for (OpenConn& c : conns) {
      if (c.fd < 0) continue;
      short events = 0;
      switch (c.state) {
        case OpenConn::State::kConnecting:
          events = POLLOUT;
          break;
        case OpenConn::State::kSending:
          events = POLLOUT;
          break;
        case OpenConn::State::kReading:
          events = POLLIN;
          break;
        case OpenConn::State::kIdle:
          continue;
      }
      pfds.push_back(pollfd{c.fd, events, 0});
    }
    if (pfds.empty()) {
      ++out->transport_errors;
      return;  // Nothing connectable at all — give up instead of spinning.
    }
    ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);

    // Index connections by fd for the (sparse) ready subset.
    std::map<int, OpenConn*> by_fd;
    for (OpenConn& c : conns) {
      if (c.fd >= 0) by_fd[c.fd] = &c;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      OpenConn* c = by_fd[p.fd];
      if (c == nullptr) continue;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          c->state == OpenConn::State::kConnecting) {
        ++out->transport_errors;
        OpenConnClose(c);
        continue;
      }
      if (c->state == OpenConn::State::kConnecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          ++out->transport_errors;
          OpenConnClose(c);
          continue;
        }
        c->state = OpenConn::State::kSending;
        c->sent_at = std::chrono::steady_clock::now();
      }
      if (c->state == OpenConn::State::kSending &&
          (p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        while (c->send_offset < request.size()) {
          ssize_t n = ::send(c->fd, request.data() + c->send_offset,
                             request.size() - c->send_offset, MSG_NOSIGNAL);
          if (n > 0) {
            c->send_offset += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          ++out->transport_errors;
          OpenConnClose(c);
          break;
        }
        if (c->fd >= 0 && c->send_offset == request.size()) {
          c->state = OpenConn::State::kReading;
        }
      }
      if (c->fd >= 0 && c->state == OpenConn::State::kReading &&
          (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[8192];
        bool closed = false;
        for (;;) {
          ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
          if (n > 0) {
            c->inbuf.append(chunk, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof(chunk)) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          closed = true;
          break;
        }
        int status = 0;
        bool cache_hit = false, degraded = false, close_after = false;
        if (TryConsumeResponse(&c->inbuf, &status, &cache_hit, &degraded,
                               &close_after)) {
          if (status == 0) {
            ++out->transport_errors;
            OpenConnClose(c);
            continue;
          }
          auto elapsed =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - c->sent_at);
          out->latencies_us.push_back(static_cast<uint64_t>(elapsed.count()));
          ++out->status_counts[status];
          if (cache_hit) ++out->cache_hits;
          if (degraded) ++out->degraded;
          if (close_after) {
            OpenConnClose(c);  // Reconnects on the next ramp pass.
          } else {
            // Next request, back to back.
            c->state = OpenConn::State::kSending;
            c->send_offset = 0;
            c->sent_at = std::chrono::steady_clock::now();
          }
          continue;
        }
        if (closed) {
          // EOF mid-response (idle-closed by the server under overload, or
          // shutdown): a dropped in-flight request is a transport error.
          if (c->send_offset > 0) ++out->transport_errors;
          OpenConnClose(c);
        }
      }
    }
    now = std::chrono::steady_clock::now();
  }
  size_t still_open = 0;
  for (OpenConn& c : conns) {
    if (c.fd >= 0) ++still_open;
    OpenConnClose(&c);
  }
  out->peak_open = still_open;
}

double Quantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!flags.ok() ||
      !flags.CheckAllowed({"host", "port", "sql", "accept", "connections",
                           "requests", "duration-s", "qps", "deadline-ms",
                           "deadline-dist", "update-every", "update-table",
                           "update-body", "seed", "out", "open-loop",
                           "ramp-batch"})) {
    std::fprintf(stderr, "galaxy_bench_client: %s\n", flags.error().c_str());
    return 2;
  }
  if (!flags.Has("port")) {
    std::fprintf(stderr, "galaxy_bench_client: --port is required\n");
    return 2;
  }

  BenchConfig config;
  config.host = flags.Get("host", "127.0.0.1");
  config.sql = flags.Get("sql", "SELECT * FROM data");
  config.accept = flags.Get("accept") == "csv" ? "text/csv"
                                               : "application/json";
  config.update_table = flags.Get("update-table");
  config.update_body = flags.Get("update-body");
  std::string dist = flags.Get("deadline-dist", "fixed");
  if (dist != "fixed" && dist != "exp") {
    std::fprintf(stderr,
                 "galaxy_bench_client: --deadline-dist must be fixed|exp\n");
    return 2;
  }
  config.deadline_exp = dist == "exp";

  auto port = flags.GetInt("port", 0);
  auto connections = flags.GetInt("connections", 4);
  auto requests = flags.GetInt("requests", 1000);
  auto duration_s = flags.GetInt("duration-s", 0);
  auto qps = flags.GetInt("qps", 0);
  auto deadline_ms = flags.GetInt("deadline-ms", 0);
  auto update_every = flags.GetInt("update-every", 0);
  auto seed = flags.GetInt("seed", 1);
  auto ramp_batch = flags.GetInt("ramp-batch", 512);
  for (const auto* v : {&port, &connections, &requests, &duration_s, &qps,
                        &deadline_ms, &update_every, &seed, &ramp_batch}) {
    if (!v->ok()) {
      std::fprintf(stderr, "galaxy_bench_client: %s\n",
                   v->status().message().c_str());
      return 2;
    }
  }
  if (*port <= 0 || *port > 65535 || *connections <= 0) {
    std::fprintf(stderr, "galaxy_bench_client: bad --port/--connections\n");
    return 2;
  }
  config.port = static_cast<uint16_t>(*port);
  config.connections = static_cast<int>(*connections);
  config.duration_s = *duration_s;
  config.requests = *duration_s > 0 ? 0 : *requests;
  config.qps = static_cast<double>(*qps);
  config.deadline_ms = *deadline_ms;
  config.update_every = *update_every;
  config.seed = static_cast<uint64_t>(*seed);
  config.open_loop = flags.Has("open-loop") && flags.Get("open-loop") != "false";
  config.ramp_batch = *ramp_batch;
  if (config.ramp_batch <= 0) {
    std::fprintf(stderr, "galaxy_bench_client: --ramp-batch must be > 0\n");
    return 2;
  }
  if (config.open_loop && config.duration_s <= 0) {
    std::fprintf(stderr,
                 "galaxy_bench_client: --open-loop requires --duration-s\n");
    return 2;
  }

  std::atomic<int64_t> remaining{config.requests};
  auto start = std::chrono::steady_clock::now();
  auto stop_at = start + std::chrono::seconds(
                             config.duration_s > 0 ? config.duration_s : 0);

  std::vector<WorkerResult> results;
  if (config.open_loop) {
    RaiseFdLimit();
    // A thread per connection does not scale to C10K; the open-loop engine
    // multiplexes every socket on one poll(2) loop instead.
    results.resize(1);
    std::string request =
        "POST /query HTTP/1.1\r\nHost: bench\r\nAccept: " + config.accept +
        "\r\nContent-Length: " + std::to_string(config.sql.size()) + "\r\n\r\n" +
        config.sql;
    RunOpenLoop(config, request, stop_at, &results[0]);
  } else {
    results.resize(static_cast<size_t>(config.connections));
    std::vector<std::thread> workers;
    for (int i = 0; i < config.connections; ++i) {
      workers.emplace_back(RunWorker, std::cref(config), i, &remaining,
                           stop_at, &results[static_cast<size_t>(i)]);
    }
    for (std::thread& t : workers) t.join();
  }
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  // ---- Merge. --------------------------------------------------------------
  std::map<int, uint64_t> status_counts;
  std::vector<uint64_t> latencies;
  uint64_t transport_errors = 0, cache_hits = 0, degraded = 0;
  for (const WorkerResult& r : results) {
    for (const auto& [code, n] : r.status_counts) status_counts[code] += n;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    transport_errors += r.transport_errors;
    cache_hits += r.cache_hits;
    degraded += r.degraded;
  }
  std::sort(latencies.begin(), latencies.end());

  uint64_t total = 0, sum_us = 0;
  for (const auto& [code, n] : status_counts) total += n;
  for (uint64_t us : latencies) sum_us += us;

  // Power-of-two microsecond buckets, the layout server/metrics.h uses.
  std::map<uint64_t, uint64_t> histogram;
  for (uint64_t us : latencies) {
    int bucket = us <= 1 ? 0 : std::bit_width(us - 1);
    histogram[uint64_t{1} << bucket] += 1;
  }

  std::string json = "{\n";
  json += std::string("  \"mode\": \"") +
          (config.open_loop ? "open-loop" : "closed-loop") + "\",\n";
  json += "  \"connections\": " + std::to_string(config.connections) + ",\n";
  json += "  \"requests\": " + std::to_string(total) + ",\n";
  json += "  \"transport_errors\": " + std::to_string(transport_errors) +
          ",\n";
  json += "  \"cache_hits\": " + std::to_string(cache_hits) + ",\n";
  json += "  \"degraded\": " + std::to_string(degraded) + ",\n";
  json += "  \"duration_s\": " + std::to_string(wall_s) + ",\n";
  json += "  \"qps\": " +
          std::to_string(wall_s > 0 ? static_cast<double>(total) / wall_s
                                    : 0) +
          ",\n";
  json += "  \"status\": {";
  bool first = true;
  for (const auto& [code, n] : status_counts) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + std::to_string(code) + "\": " + std::to_string(n);
  }
  json += "},\n";
  char num[64];
  std::snprintf(num, sizeof(num), "%.3f",
                latencies.empty()
                    ? 0.0
                    : static_cast<double>(sum_us) /
                          static_cast<double>(latencies.size()) / 1000.0);
  json += "  \"latency_ms\": {\"mean\": " + std::string(num);
  for (const auto& [name, q] :
       std::vector<std::pair<const char*, double>>{
           {"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}, {"p999", 0.999}}) {
    std::snprintf(num, sizeof(num), "%.3f", Quantile(latencies, q) / 1000.0);
    json += std::string(", \"") + name + "\": " + num;
  }
  json += "},\n";
  json += "  \"histogram_us\": [";
  first = true;
  for (const auto& [le, n] : histogram) {
    if (!first) json += ", ";
    first = false;
    json += "{\"le\": " + std::to_string(le) +
            ", \"count\": " + std::to_string(n) + "}";
  }
  json += "]\n}\n";

  if (flags.Has("out")) {
    // Benchmark result JSON, not durable server state.
    // galaxy-lint: allow(raw-file-io)
    std::ofstream out(flags.Get("out"));
    out << json;
    if (!out) {
      std::fprintf(stderr, "galaxy_bench_client: cannot write %s\n",
                   flags.Get("out").c_str());
      return 1;
    }
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return transport_errors == 0 ? 0 : 1;
}
