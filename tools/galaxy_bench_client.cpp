// galaxy_bench_client — closed-loop load generator for galaxy_served.
//
//   galaxy_bench_client --port 8080 [--host 127.0.0.1]
//                       [--sql "SELECT ..."] [--connections 4]
//                       [--requests 1000 | --duration-s 10] [--qps 0]
//                       [--deadline-ms 0] [--deadline-dist fixed|exp]
//                       [--update-every 0] [--update-table T]
//                       [--update-body "csv,row"] [--accept json|csv]
//                       [--seed 1] [--out results.json]
//
// Each connection thread runs a closed loop: send POST /query, wait for
// the full response, record the latency, repeat — optionally paced to
// --qps (split evenly across connections) and optionally interleaving a
// POST /update every --update-every requests (which exercises cache
// invalidation on the server). --deadline-ms attaches X-Galaxy-Timeout-Ms
// to each request; with --deadline-dist exp the per-request deadline is
// drawn from an exponential distribution with that mean, which produces a
// mix of exact (200) and degraded (206) answers.
//
// The JSON report (stdout, or --out) contains per-status counts, latency
// mean/p50/p90/p99 in milliseconds, and the full power-of-two latency
// histogram in microseconds — the same bucket layout the server's
// /metrics histogram uses, and the format scripts/bench_to_csv.py
// accepts.
//
// Exit status: 0 when every request got an HTTP response (any status),
// 1 on transport errors, 2 on usage errors.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace {

using galaxy::Status;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";
        }
      } else {
        error_ = "unexpected argument: " + arg;
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool CheckAllowed(std::initializer_list<const char*> allowed) {
    std::set<std::string> names(allowed.begin(), allowed.end());
    for (const auto& [name, value] : values_) {
      if (names.count(name) == 0) {
        error_ = "unknown flag: --" + name;
        return false;
      }
    }
    return true;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  galaxy::Result<int64_t> GetInt(const std::string& name,
                                 int64_t fallback) const {
    if (!Has(name)) return fallback;
    const std::string& text = values_.at(name);
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("--" + name +
                                     " expects an integer, got: " + text);
    }
    return static_cast<int64_t>(v);
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

struct BenchConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string sql = "SELECT * FROM data";
  std::string accept = "application/json";
  int connections = 4;
  int64_t requests = 1000;   // total across connections; 0 = duration mode
  int64_t duration_s = 0;    // 0 = request-count mode
  double qps = 0;            // 0 = unthrottled
  int64_t deadline_ms = 0;   // 0 = no deadline header
  bool deadline_exp = false;
  int64_t update_every = 0;  // 0 = queries only
  std::string update_table;
  std::string update_body;
  uint64_t seed = 1;
};

struct WorkerResult {
  std::map<int, uint64_t> status_counts;
  std::vector<uint64_t> latencies_us;
  uint64_t transport_errors = 0;
  uint64_t cache_hits = 0;
  uint64_t degraded = 0;
};

// Blocking connect to the bench target; -1 on failure.
int Connect(const BenchConfig& config) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads one HTTP response off `fd` using `buffer` as the connection's
// carry-over. Returns the status code (0 on transport error) and whether
// the X-Galaxy-Cache / degraded markers were present.
int ReadResponse(int fd, std::string* buffer, bool* cache_hit,
                 bool* degraded, bool* close_after) {
  *cache_hit = false;
  *degraded = false;
  *close_after = false;
  char chunk[8192];
  while (true) {
    size_t header_end = buffer->find("\r\n\r\n");
    if (header_end != std::string::npos) {
      std::string headers = buffer->substr(0, header_end + 4);
      if (headers.size() < 12 || headers.compare(0, 5, "HTTP/") != 0) {
        return 0;
      }
      int status = std::atoi(headers.c_str() + 9);
      size_t content_length = 0;
      // Case matters not: the server emits canonical header casing.
      size_t cl = headers.find("Content-Length:");
      if (cl == std::string::npos) cl = headers.find("content-length:");
      if (cl != std::string::npos) {
        content_length = static_cast<size_t>(
            std::strtoull(headers.c_str() + cl + 15, nullptr, 10));
      }
      if (headers.find("X-Galaxy-Cache: hit") != std::string::npos) {
        *cache_hit = true;
      }
      if (status == 206 ||
          headers.find("approximate-superset") != std::string::npos) {
        *degraded = true;
      }
      if (headers.find("Connection: close") != std::string::npos) {
        *close_after = true;
      }
      size_t total = header_end + 4 + content_length;
      while (buffer->size() < total) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return 0;
        buffer->append(chunk, static_cast<size_t>(n));
      }
      buffer->erase(0, total);
      return status;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void RunWorker(const BenchConfig& config, int worker_id,
               std::atomic<int64_t>* remaining,
               std::chrono::steady_clock::time_point stop_at,
               WorkerResult* out) {
  std::mt19937_64 rng(config.seed * 0x9e3779b97f4a7c15ULL +
                      static_cast<uint64_t>(worker_id));
  std::exponential_distribution<double> exp_dist(
      config.deadline_ms > 0 ? 1.0 / static_cast<double>(config.deadline_ms)
                             : 1.0);

  double per_worker_qps =
      config.qps > 0 ? config.qps / config.connections : 0;
  auto next_send = std::chrono::steady_clock::now();

  int fd = Connect(config);
  std::string buffer;
  uint64_t sent_count = 0;

  while (true) {
    if (config.requests > 0) {
      if (remaining->fetch_sub(1) <= 0) break;
    } else if (std::chrono::steady_clock::now() >= stop_at) {
      break;
    }

    if (per_worker_qps > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::microseconds(
          static_cast<int64_t>(1e6 / per_worker_qps));
    }

    if (fd < 0) {
      fd = Connect(config);
      if (fd < 0) {
        ++out->transport_errors;
        continue;
      }
      buffer.clear();
    }

    bool is_update = config.update_every > 0 && !config.update_table.empty() &&
                     sent_count > 0 &&
                     sent_count % static_cast<uint64_t>(config.update_every) ==
                         0;
    ++sent_count;

    std::string request;
    if (is_update) {
      request = "POST /update?table=" + config.update_table +
                "&op=insert HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
                std::to_string(config.update_body.size()) + "\r\n\r\n" +
                config.update_body;
    } else {
      request = "POST /query HTTP/1.1\r\nHost: bench\r\nAccept: " +
                config.accept + "\r\n";
      if (config.deadline_ms > 0) {
        int64_t deadline = config.deadline_ms;
        if (config.deadline_exp) {
          deadline = std::max<int64_t>(
              1, static_cast<int64_t>(exp_dist(rng)));
        }
        request += "X-Galaxy-Timeout-Ms: " + std::to_string(deadline) + "\r\n";
      }
      request += "Content-Length: " + std::to_string(config.sql.size()) +
                 "\r\n\r\n" + config.sql;
    }

    auto start = std::chrono::steady_clock::now();
    bool cache_hit = false, degraded = false, close_after = false;
    int status = 0;
    if (SendAll(fd, request)) {
      status = ReadResponse(fd, &buffer, &cache_hit, &degraded, &close_after);
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);

    if (status == 0) {
      ++out->transport_errors;
      ::close(fd);
      fd = -1;
      continue;
    }
    ++out->status_counts[status];
    if (!is_update) {
      out->latencies_us.push_back(
          static_cast<uint64_t>(elapsed.count()));
    }
    if (cache_hit) ++out->cache_hits;
    if (degraded) ++out->degraded;
    if (close_after) {
      ::close(fd);
      fd = -1;
    }
  }
  if (fd >= 0) ::close(fd);
}

double Quantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!flags.ok() ||
      !flags.CheckAllowed({"host", "port", "sql", "accept", "connections",
                           "requests", "duration-s", "qps", "deadline-ms",
                           "deadline-dist", "update-every", "update-table",
                           "update-body", "seed", "out"})) {
    std::fprintf(stderr, "galaxy_bench_client: %s\n", flags.error().c_str());
    return 2;
  }
  if (!flags.Has("port")) {
    std::fprintf(stderr, "galaxy_bench_client: --port is required\n");
    return 2;
  }

  BenchConfig config;
  config.host = flags.Get("host", "127.0.0.1");
  config.sql = flags.Get("sql", "SELECT * FROM data");
  config.accept = flags.Get("accept") == "csv" ? "text/csv"
                                               : "application/json";
  config.update_table = flags.Get("update-table");
  config.update_body = flags.Get("update-body");
  std::string dist = flags.Get("deadline-dist", "fixed");
  if (dist != "fixed" && dist != "exp") {
    std::fprintf(stderr,
                 "galaxy_bench_client: --deadline-dist must be fixed|exp\n");
    return 2;
  }
  config.deadline_exp = dist == "exp";

  auto port = flags.GetInt("port", 0);
  auto connections = flags.GetInt("connections", 4);
  auto requests = flags.GetInt("requests", 1000);
  auto duration_s = flags.GetInt("duration-s", 0);
  auto qps = flags.GetInt("qps", 0);
  auto deadline_ms = flags.GetInt("deadline-ms", 0);
  auto update_every = flags.GetInt("update-every", 0);
  auto seed = flags.GetInt("seed", 1);
  for (const auto* v : {&port, &connections, &requests, &duration_s, &qps,
                        &deadline_ms, &update_every, &seed}) {
    if (!v->ok()) {
      std::fprintf(stderr, "galaxy_bench_client: %s\n",
                   v->status().message().c_str());
      return 2;
    }
  }
  if (*port <= 0 || *port > 65535 || *connections <= 0) {
    std::fprintf(stderr, "galaxy_bench_client: bad --port/--connections\n");
    return 2;
  }
  config.port = static_cast<uint16_t>(*port);
  config.connections = static_cast<int>(*connections);
  config.duration_s = *duration_s;
  config.requests = *duration_s > 0 ? 0 : *requests;
  config.qps = static_cast<double>(*qps);
  config.deadline_ms = *deadline_ms;
  config.update_every = *update_every;
  config.seed = static_cast<uint64_t>(*seed);

  std::atomic<int64_t> remaining{config.requests};
  auto start = std::chrono::steady_clock::now();
  auto stop_at = start + std::chrono::seconds(
                             config.duration_s > 0 ? config.duration_s : 0);

  std::vector<WorkerResult> results(
      static_cast<size_t>(config.connections));
  std::vector<std::thread> workers;
  for (int i = 0; i < config.connections; ++i) {
    workers.emplace_back(RunWorker, std::cref(config), i, &remaining, stop_at,
                         &results[static_cast<size_t>(i)]);
  }
  for (std::thread& t : workers) t.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  // ---- Merge. --------------------------------------------------------------
  std::map<int, uint64_t> status_counts;
  std::vector<uint64_t> latencies;
  uint64_t transport_errors = 0, cache_hits = 0, degraded = 0;
  for (const WorkerResult& r : results) {
    for (const auto& [code, n] : r.status_counts) status_counts[code] += n;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    transport_errors += r.transport_errors;
    cache_hits += r.cache_hits;
    degraded += r.degraded;
  }
  std::sort(latencies.begin(), latencies.end());

  uint64_t total = 0, sum_us = 0;
  for (const auto& [code, n] : status_counts) total += n;
  for (uint64_t us : latencies) sum_us += us;

  // Power-of-two microsecond buckets, the layout server/metrics.h uses.
  std::map<uint64_t, uint64_t> histogram;
  for (uint64_t us : latencies) {
    int bucket = us <= 1 ? 0 : std::bit_width(us - 1);
    histogram[uint64_t{1} << bucket] += 1;
  }

  std::string json = "{\n";
  json += "  \"requests\": " + std::to_string(total) + ",\n";
  json += "  \"transport_errors\": " + std::to_string(transport_errors) +
          ",\n";
  json += "  \"cache_hits\": " + std::to_string(cache_hits) + ",\n";
  json += "  \"degraded\": " + std::to_string(degraded) + ",\n";
  json += "  \"duration_s\": " + std::to_string(wall_s) + ",\n";
  json += "  \"qps\": " +
          std::to_string(wall_s > 0 ? static_cast<double>(total) / wall_s
                                    : 0) +
          ",\n";
  json += "  \"status\": {";
  bool first = true;
  for (const auto& [code, n] : status_counts) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + std::to_string(code) + "\": " + std::to_string(n);
  }
  json += "},\n";
  char num[64];
  std::snprintf(num, sizeof(num), "%.3f",
                latencies.empty()
                    ? 0.0
                    : static_cast<double>(sum_us) /
                          static_cast<double>(latencies.size()) / 1000.0);
  json += "  \"latency_ms\": {\"mean\": " + std::string(num);
  for (const auto& [name, q] :
       std::vector<std::pair<const char*, double>>{
           {"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}}) {
    std::snprintf(num, sizeof(num), "%.3f", Quantile(latencies, q) / 1000.0);
    json += std::string(", \"") + name + "\": " + num;
  }
  json += "},\n";
  json += "  \"histogram_us\": [";
  first = true;
  for (const auto& [le, n] : histogram) {
    if (!first) json += ", ";
    first = false;
    json += "{\"le\": " + std::to_string(le) +
            ", \"count\": " + std::to_string(n) + "}";
  }
  json += "]\n}\n";

  if (flags.Has("out")) {
    // Benchmark result JSON, not durable server state.
    // galaxy-lint: allow(raw-file-io)
    std::ofstream out(flags.Get("out"));
    out << json;
    if (!out) {
      std::fprintf(stderr, "galaxy_bench_client: cannot write %s\n",
                   flags.Get("out").c_str());
      return 1;
    }
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return transport_errors == 0 ? 0 : 1;
}
