#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// galaxy_lint — a dependency-free C++ source checker for the invariants
/// this repository cares about but no compiler enforces. It lexes each
/// translation unit into a token stream (comments, string/char literals and
/// preprocessor lines are recognised, so rules never fire inside them) and
/// runs a set of small per-rule matchers over the stream.
///
/// Rules (see tools/README.md for the full catalog and rationale):
///   raw-mutex        std:: synchronization primitives outside the annotated
///                    wrapper in src/common/mutex.h.
///   budget-charge    nested record-pair loops in src/core/algorithm_*.cc /
///                    count_kernel.cc whose function shows no evidence of
///                    charging the ExecutionContext budget.
///   banned-call      rand, strcpy, strcat, sprintf, vsprintf, gets; plus
///                    std::this_thread::sleep_for outside tests/ and bench/.
///   raw-file-io      write-side file I/O (fopen/open/write/fsync/...,
///                    std::ofstream/std::fstream) outside src/storage/ —
///                    durable writes must go through the storage Env seam.
///                    tests/ and bench/ are exempt.
///   blocking-socket-io
///                    raw socket calls (recv/send/accept/connect families)
///                    outside src/server/event_loop.* — socket I/O must run
///                    non-blocking on the EventLoop; the event engine's own
///                    call sites carry reviewed allow-file suppressions.
///                    tests/ and bench/ are exempt.
///   row-major-access Table::MaterializeRow / Table::DebugRows outside
///                    src/relation/ and tests/ — the Table is column-major;
///                    execution paths must read typed columns, not boxed
///                    rows.
///   naked-new        a `new` expression (own memory with containers or
///                    std::make_unique instead).
///   status-consumed  a statement that calls a Status-returning function
///                    declared in the same file and drops the result.
///   pragma-once      a header without `#pragma once`.
///   iostream-core    `#include <iostream>` inside src/core/.
///
/// Suppressions: `// galaxy-lint: allow(rule)` on the offending line or in
/// the comment block directly above it; `// galaxy-lint: allow-file(rule)`
/// anywhere in the file disables the rule for the whole file. Both forms
/// also accept a comma-separated rule list.
namespace galaxy::lint {

/// One finding: `path:line: error: [rule] message`.
struct Diagnostic {
  std::string path;
  size_t line = 0;
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// Token kinds produced by the lexer. Comments are not emitted as tokens;
/// they are collected separately for suppression handling.
enum class TokenKind {
  kIdentifier,   ///< identifiers and keywords (no keyword table needed)
  kNumber,       ///< numeric literal
  kString,       ///< string literal (including raw strings), text dropped
  kCharLiteral,  ///< character literal, text dropped
  kPunct,        ///< one operator/punctuator, longest-match ("::", "->", ...)
  kPreproc,      ///< one full preprocessor directive, continuations joined
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t line = 0;  ///< 1-based line where the token starts
};

/// The lexed form of one file: the token stream plus the side tables the
/// suppression mechanism needs.
struct LexedFile {
  std::vector<Token> tokens;
  /// line -> rules allowed on that line (from `galaxy-lint: allow(...)`).
  /// Parallel arrays keep this dependency-free and cheap for small files.
  std::vector<std::pair<size_t, std::string>> allow;
  /// Rules disabled for the entire file (from `allow-file(...)`).
  std::vector<std::string> allow_file;
  /// Lines that contain only comment text / whitespace. Used to let a
  /// suppression comment block sit above the offending line.
  std::vector<bool> comment_only_line;
  /// Lines that contain any code token.
  std::vector<bool> code_line;
  size_t num_lines = 0;
};

/// Lexes `content` (the text of the file at `path`).
LexedFile Lex(const std::string& content);

/// True when a diagnostic at `line` for `rule` is suppressed in `lexed`:
/// file-level allow, same-line allow, or an allow in the comment block
/// directly above. Shared with tools/galaxy_analyze, whose
/// `galaxy-analyze:` comment tag feeds the same allow tables.
bool Suppressed(const LexedFile& lexed, size_t line, const std::string& rule);

/// Runs every applicable rule over one file. `path` should be the path as
/// the user named it; rules that scope by location match on its normalized
/// (forward-slash) form, e.g. "src/core/", "tests/", basenames.
std::vector<Diagnostic> LintFile(const std::string& path,
                                 const std::string& content);

/// Reads and lints one file from disk. Returns false (and appends a
/// Diagnostic with rule "io") if the file cannot be read.
bool LintPath(const std::string& path, std::vector<Diagnostic>* out);

/// The names of every implemented rule, for `--list-rules` and tests.
std::vector<std::string> RuleNames();

}  // namespace galaxy::lint
