#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace galaxy::lint {

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << path << ":" << line << ": error: [" << rule << "] " << message;
  return os.str();
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scans one comment's text for `galaxy-lint: allow(...)` /
/// `allow-file(...)` annotations. `first_line` is the line the comment
/// starts on; annotations inside multi-line comments attach to the line
/// they appear on. The whole-program analyzer (`tools/galaxy_analyze`)
/// shares the lexer, so its `galaxy-analyze:` tag feeds the same allow
/// tables; rule names are globally unique across the two tools.
void ScanCommentForAllowsTag(const std::string& tag, const std::string& text,
                             size_t first_line, LexedFile* out) {
  size_t line = first_line;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string row = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    size_t at = 0;
    while ((at = row.find(tag, at)) != std::string::npos) {
      size_t p = at + tag.size();
      while (p < row.size() && row[p] == ' ') ++p;
      bool file_scope = false;
      if (row.compare(p, 11, "allow-file(") == 0) {
        file_scope = true;
        p += 11;
      } else if (row.compare(p, 6, "allow(") == 0) {
        p += 6;
      } else {
        ++at;
        continue;
      }
      size_t close = row.find(')', p);
      if (close == std::string::npos) break;
      std::string rules = row.substr(p, close - p);
      size_t start = 0;
      while (start < rules.size()) {
        size_t comma = rules.find(',', start);
        std::string rule = rules.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        while (!rule.empty() && rule.front() == ' ') rule.erase(0, 1);
        while (!rule.empty() && rule.back() == ' ') rule.pop_back();
        if (!rule.empty()) {
          if (file_scope) {
            out->allow_file.push_back(rule);
          } else {
            out->allow.emplace_back(line, rule);
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      at = close;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
}

void ScanCommentForAllows(const std::string& text, size_t first_line,
                          LexedFile* out) {
  ScanCommentForAllowsTag("galaxy-lint:", text, first_line, out);
  ScanCommentForAllowsTag("galaxy-analyze:", text, first_line, out);
}

void MarkLines(std::vector<bool>* lines, size_t from, size_t to) {
  if (lines->size() <= to) lines->resize(to + 1, false);
  for (size_t l = from; l <= to; ++l) (*lines)[l] = true;
}

}  // namespace

LexedFile Lex(const std::string& content) {
  LexedFile out;
  std::vector<bool> comment_lines;  // lines touched by any comment
  size_t i = 0;
  size_t line = 1;
  const size_t n = content.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto push = [&](TokenKind kind, std::string text, size_t tok_line) {
    out.tokens.push_back({kind, std::move(text), tok_line});
    MarkLines(&out.code_line, tok_line, tok_line);
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' first on the line; consume the logical
    // line including backslash continuations.
    if (c == '#' && at_line_start) {
      size_t start_line = line;
      std::string text;
      while (i < n) {
        char d = content[i];
        if (d == '\\' && i + 1 < n && content[i + 1] == '\n') {
          i += 2;
          ++line;
          text += ' ';
          continue;
        }
        if (d == '\n') break;
        // A trailing // comment inside a directive ends the directive text.
        if (d == '/' && i + 1 < n && content[i + 1] == '/') break;
        text += d;
        ++i;
      }
      push(TokenKind::kPreproc, std::move(text), start_line);
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t start_line = line;
      size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      std::string text = content.substr(start, i - start);
      MarkLines(&comment_lines, start_line, start_line);
      ScanCommentForAllows(text, start_line, &out);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      size_t start_line = line;
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      std::string text = content.substr(start, i - start);
      MarkLines(&comment_lines, start_line, line);
      ScanCommentForAllows(text, start_line, &out);
      continue;
    }
    // Identifier (and string-literal prefixes).
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      std::string id = content.substr(start, i - start);
      // Raw string literal: R"delim( ... )delim".
      if ((id == "R" || id == "u8R" || id == "uR" || id == "LR") && i < n &&
          content[i] == '"') {
        size_t tok_line = line;
        ++i;  // consume '"'
        std::string delim;
        while (i < n && content[i] != '(') delim += content[i++];
        ++i;  // consume '('
        std::string closer = ")" + delim + "\"";
        size_t end = content.find(closer, i);
        if (end == std::string::npos) end = n;
        for (size_t k = i; k < end && k < n; ++k) {
          if (content[k] == '\n') ++line;
        }
        i = std::min(n, end + closer.size());
        push(TokenKind::kString, "", tok_line);
        continue;
      }
      // Prefixed ordinary string / char literal: u8"..", u'.', L"..".
      if ((id == "u8" || id == "u" || id == "L") && i < n &&
          (content[i] == '"' || content[i] == '\'')) {
        // Fall through to the literal scanners below by not emitting the
        // prefix as an identifier.
      } else {
        push(TokenKind::kIdentifier, std::move(id), line);
        continue;
      }
      c = content[i];
    }
    // String literal.
    if (c == '"') {
      size_t tok_line = line;
      ++i;
      while (i < n && content[i] != '"') {
        if (content[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (content[i] == '\n') ++line;  // ill-formed, but keep counting
        ++i;
      }
      if (i < n) ++i;
      push(TokenKind::kString, "", tok_line);
      continue;
    }
    // Character literal.
    if (c == '\'') {
      size_t tok_line = line;
      ++i;
      while (i < n && content[i] != '\'') {
        if (content[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        ++i;
      }
      if (i < n) ++i;
      push(TokenKind::kCharLiteral, "", tok_line);
      continue;
    }
    // Number (handles digit separators and exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      size_t start = i;
      ++i;
      while (i < n) {
        char d = content[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
          continue;
        }
        if (d == '\'' && i + 1 < n && IsIdentChar(content[i + 1])) {
          i += 2;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          char prev = content[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      push(TokenKind::kNumber, content.substr(start, i - start), line);
      continue;
    }
    // Punctuation: longest match for the two-char operators rules care
    // about, one char otherwise.
    static const char* kTwoChar[] = {"::", "->", "++", "--", "<<", ">>",
                                     "<=", ">=", "==", "!=", "&&", "||",
                                     "+=", "-=", "*=", "/=", "|=", "&=",
                                     "^=", "%="};
    std::string punct(1, c);
    if (i + 1 < n) {
      std::string two = content.substr(i, 2);
      for (const char* t : kTwoChar) {
        if (two == t) {
          punct = two;
          break;
        }
      }
    }
    i += punct.size();
    push(TokenKind::kPunct, std::move(punct), line);
  }

  out.num_lines = line;
  out.code_line.resize(line + 1, false);
  comment_lines.resize(line + 1, false);
  out.comment_only_line.assign(line + 1, false);
  for (size_t l = 1; l <= line; ++l) {
    out.comment_only_line[l] = comment_lines[l] && !out.code_line[l];
  }
  return out;
}

/// True when the diagnostic at `line` for `rule` is suppressed: file-level
/// allow, same-line allow, or an allow in the comment block directly above.
bool Suppressed(const LexedFile& lexed, size_t line, const std::string& rule) {
  for (const std::string& r : lexed.allow_file) {
    if (r == rule) return true;
  }
  auto allowed_at = [&](size_t l) {
    for (const auto& [al, ar] : lexed.allow) {
      if (al == l && ar == rule) return true;
    }
    return false;
  };
  if (allowed_at(line)) return true;
  size_t l = line;
  while (l > 1) {
    --l;
    if (l >= lexed.comment_only_line.size() || !lexed.comment_only_line[l]) {
      break;
    }
    if (allowed_at(l)) return true;
  }
  return false;
}

namespace {

struct PathInfo {
  std::string normalized;  ///< forward slashes
  std::string basename;
  bool in_tests = false;
  bool in_bench = false;
  bool in_src_core = false;
  bool in_storage = false;
  bool in_relation = false;
  bool is_mutex_wrapper = false;
  bool is_event_loop = false;
  bool is_header = false;
};

PathInfo ClassifyPath(const std::string& path) {
  PathInfo info;
  info.normalized = path;
  std::replace(info.normalized.begin(), info.normalized.end(), '\\', '/');
  size_t slash = info.normalized.rfind('/');
  info.basename = slash == std::string::npos
                      ? info.normalized
                      : info.normalized.substr(slash + 1);
  const std::string& p = info.normalized;
  info.in_tests = p.find("tests/") != std::string::npos;
  info.in_bench = p.find("bench/") != std::string::npos;
  info.in_src_core = p.find("src/core/") != std::string::npos;
  info.in_storage = p.find("src/storage/") != std::string::npos;
  info.in_relation = p.find("src/relation/") != std::string::npos;
  info.is_mutex_wrapper = p.find("common/mutex.h") != std::string::npos;
  info.is_event_loop = p.find("src/server/event_loop.") != std::string::npos;
  info.is_header = p.size() >= 2 && p.compare(p.size() - 2, 2, ".h") == 0;
  return info;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

class Linter {
 public:
  Linter(const std::string& path, const LexedFile& lexed)
      : path_(path), info_(ClassifyPath(path)), lexed_(lexed) {}

  std::vector<Diagnostic> Run() {
    RawMutex();
    BannedCall();
    RawFileIo();
    BlockingSocketIo();
    RowMajorAccess();
    NakedNew();
    StatusConsumed();
    PragmaOnce();
    IostreamCore();
    BudgetCharge();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.line < b.line;
              });
    return std::move(diags_);
  }

 private:
  void Report(size_t line, const std::string& rule, std::string message) {
    if (Suppressed(lexed_, line, rule)) return;
    diags_.push_back({path_, line, rule, std::move(message)});
  }

  const std::vector<Token>& toks() const { return lexed_.tokens; }

  /// Index of the previous non-preprocessor token, or npos.
  size_t Prev(size_t i) const {
    while (i > 0) {
      --i;
      if (toks()[i].kind != TokenKind::kPreproc) return i;
    }
    return std::string::npos;
  }
  size_t Next(size_t i) const {
    for (++i; i < toks().size(); ++i) {
      if (toks()[i].kind != TokenKind::kPreproc) return i;
    }
    return std::string::npos;
  }
  bool IsPunct(size_t i, const char* p) const {
    return i != std::string::npos && i < toks().size() &&
           toks()[i].kind == TokenKind::kPunct && toks()[i].text == p;
  }
  bool IsIdent(size_t i) const {
    return i != std::string::npos && i < toks().size() &&
           toks()[i].kind == TokenKind::kIdentifier;
  }
  bool IsIdent(size_t i, const char* name) const {
    return IsIdent(i) && toks()[i].text == name;
  }

  // ---- raw-mutex --------------------------------------------------------
  // std:: synchronization primitives must not appear outside the annotated
  // wrapper (src/common/mutex.h): the clang thread-safety analysis can only
  // reason about capabilities, and libstdc++'s types carry none.
  void RawMutex() {
    if (info_.is_mutex_wrapper) return;
    static const char* kRaw[] = {
        "mutex",          "shared_mutex",       "recursive_mutex",
        "timed_mutex",    "recursive_timed_mutex",
        "condition_variable", "condition_variable_any",
        "lock_guard",     "unique_lock",        "scoped_lock",
        "shared_lock"};
    for (size_t i = 0; i + 2 < toks().size(); ++i) {
      if (!IsIdent(i, "std")) continue;
      size_t colon = Next(i);
      if (!IsPunct(colon, "::")) continue;
      size_t name = Next(colon);
      if (!IsIdent(name)) continue;
      for (const char* raw : kRaw) {
        if (toks()[name].text == raw) {
          Report(toks()[i].line, "raw-mutex",
                 "std::" + toks()[name].text +
                     " outside common/mutex.h; use the annotated "
                     "common::Mutex / SharedMutex / CondVar wrappers so "
                     "-Wthread-safety can see the capability");
          break;
        }
      }
    }
  }

  // ---- banned-call ------------------------------------------------------
  void BannedCall() {
    struct Banned {
      const char* name;
      const char* hint;
    };
    static const Banned kBanned[] = {
        {"rand", "use <random> engines (seedable, thread-safe by ownership)"},
        {"strcpy", "use std::string or std::snprintf"},
        {"strcat", "use std::string"},
        {"sprintf", "use std::snprintf or std::ostringstream"},
        {"vsprintf", "use std::vsnprintf"},
        {"gets", "use std::getline"},
    };
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i)) continue;
      size_t next = Next(i);
      if (!IsPunct(next, "(")) continue;
      size_t prev = Prev(i);
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      // `int rand() { ... }` is a declaration, not a call; but calls can
      // directly follow flow keywords (`return rand();`).
      if (IsIdent(prev) && !IsIdent(prev, "return") &&
          !IsIdent(prev, "throw") && !IsIdent(prev, "co_return") &&
          !IsIdent(prev, "co_await") && !IsIdent(prev, "co_yield")) {
        continue;
      }
      bool qualified = IsPunct(prev, "::");
      size_t qualifier = qualified ? Prev(prev) : std::string::npos;
      if (qualified && !IsIdent(qualifier, "std")) {
        // Allow `std::this_thread::sleep_for` through to the check below;
        // any other non-std qualification is a different function.
        if (!(toks()[i].text == "sleep_for" &&
              IsIdent(qualifier, "this_thread"))) {
          continue;
        }
      }
      for (const Banned& b : kBanned) {
        if (toks()[i].text == b.name) {
          Report(toks()[i].line, "banned-call",
                 std::string(b.name) + "() is banned; " + b.hint);
          break;
        }
      }
      if (toks()[i].text == "sleep_for" && !info_.in_tests &&
          !info_.in_bench) {
        Report(toks()[i].line, "banned-call",
               "sleep_for() outside tests/bench; wait on a "
               "common::CondVar or a deadline instead of sleeping");
      }
    }
  }

  // ---- raw-file-io ------------------------------------------------------
  // Durable state must be written through the storage Env seam
  // (src/storage/env.h): a raw write-side syscall / FILE* / ofstream
  // anywhere else bypasses the WAL's crash-safety contract and the fault
  // injection the torture tests rely on. Read-side I/O (ifstream, fread)
  // stays unrestricted; tests/ and bench/ are exempt.
  void RawFileIo() {
    if (info_.in_storage || info_.in_tests || info_.in_bench) return;
    static const char* kWriteCalls[] = {
        "fopen",  "freopen", "open",      "openat",    "creat", "write",
        "pwrite", "writev",  "pwritev",   "fsync",     "fdatasync",
        "ftruncate"};
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i)) continue;
      const std::string& name = toks()[i].text;

      // std::ofstream / std::fstream as a type is already a violation —
      // the object exists only to write a file.
      if (name == "ofstream" || name == "fstream") {
        size_t prev = Prev(i);
        if (IsPunct(prev, "::") && IsIdent(Prev(prev), "std")) {
          Report(toks()[i].line, "raw-file-io",
                 "std::" + name +
                     " outside src/storage/; write files through the "
                     "storage Env seam (storage/env.h) so crash safety "
                     "and fault injection apply");
        }
        continue;
      }

      bool banned = false;
      for (const char* call : kWriteCalls) {
        if (name == call) {
          banned = true;
          break;
        }
      }
      if (!banned) continue;
      size_t next = Next(i);
      if (!IsPunct(next, "(")) continue;
      size_t prev = Prev(i);
      // Member calls (stream.write(...), file->open(...)) are a different
      // function; flagged only via their ofstream/fstream type above.
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      // `ssize_t write(...)` is a declaration, not a call.
      if (IsIdent(prev) && !IsIdent(prev, "return") &&
          !IsIdent(prev, "throw")) {
        continue;
      }
      if (IsPunct(prev, "::")) {
        // `SomeClass::write(` is a different function; `::write(` (global
        // scope — no identifier before ::) and `std::fopen(` are the real
        // syscall / libc call.
        size_t qualifier = Prev(prev);
        if (IsIdent(qualifier) && !IsIdent(qualifier, "std")) continue;
      }
      Report(toks()[i].line, "raw-file-io",
             name +
                 "() outside src/storage/; go through the storage Env "
                 "seam (storage/env.h) so durability, crash recovery and "
                 "fault injection see the write");
    }
  }

  // ---- blocking-socket-io ------------------------------------------------
  // Socket I/O belongs on the event loop: a raw recv/send/accept call site
  // anywhere else is either a blocking call that can stall a whole thread
  // on one slow peer, or a second hand-rolled readiness loop drifting from
  // the reactor's semantics. The event engine's own (non-blocking) call
  // sites carry reviewed allow-file suppressions justifying themselves;
  // tests/ and bench/ are exempt.
  void BlockingSocketIo() {
    if (info_.in_tests || info_.in_bench || info_.is_event_loop) return;
    static const char* kSocketCalls[] = {
        "recv",    "recvfrom", "recvmsg", "send",   "sendto",
        "sendmsg", "accept",   "accept4", "connect"};
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i)) continue;
      const std::string& name = toks()[i].text;
      bool banned = false;
      for (const char* call : kSocketCalls) {
        if (name == call) {
          banned = true;
          break;
        }
      }
      if (!banned) continue;
      size_t next = Next(i);
      if (!IsPunct(next, "(")) continue;
      size_t prev = Prev(i);
      // Member calls (socket.send(...), sig.connect(...)) are a different
      // function.
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      // `ssize_t recv(...)` is a declaration, not a call.
      if (IsIdent(prev) && !IsIdent(prev, "return") &&
          !IsIdent(prev, "throw")) {
        continue;
      }
      if (IsPunct(prev, "::")) {
        // `SomeClass::connect(` is a different function; `::recv(` (global
        // scope) is the real syscall.
        size_t qualifier = Prev(prev);
        if (IsIdent(qualifier)) continue;
      }
      Report(toks()[i].line, "blocking-socket-io",
             name +
                 "() outside src/server/event_loop; socket I/O must run "
                 "non-blocking on the EventLoop (server/event_loop.h), or "
                 "carry a reviewed suppression explaining why this call "
                 "site cannot stall");
    }
  }

  // ---- row-major-access -------------------------------------------------
  // MaterializeRow()/DebugRows() box every cell they touch; since the
  // Table moved to column-major storage they exist only for debug, test
  // and seeding paths. Outside src/relation/ (the implementation) and
  // tests/ a call means new code is being written against the old
  // row-major interface — hot paths must read typed columns
  // (Table::column + ints()/doubles()/strings()) instead.
  void RowMajorAccess() {
    if (info_.in_relation || info_.in_tests) return;
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i)) continue;
      const std::string& name = toks()[i].text;
      if (name != "MaterializeRow" && name != "DebugRows") continue;
      if (!IsPunct(Next(i), "(")) continue;
      Report(toks()[i].line, "row-major-access",
             name +
                 "() boxes whole rows; read typed columns "
                 "(Table::column) on execution paths, or suppress with a "
                 "comment explaining why boxing is off the hot path");
    }
  }

  // ---- naked-new --------------------------------------------------------
  void NakedNew() {
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i, "new")) continue;
      size_t prev = Prev(i);
      if (IsIdent(prev, "operator")) continue;  // operator new declarations
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      Report(toks()[i].line, "naked-new",
             "naked new; use std::make_unique / containers, or suppress "
             "with a comment explaining the ownership transfer");
    }
  }

  // ---- status-consumed --------------------------------------------------
  // Same-file heuristic: collect names of functions declared with return
  // type Status, then flag bare expression statements that call one and
  // drop the result. Cross-file cases are the compiler's job via the
  // [[nodiscard]] attribute on Status itself.
  void StatusConsumed() {
    std::vector<std::string> status_fns;
    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i, "Status")) continue;
      size_t prev = Prev(i);
      if (IsPunct(prev, ".") || IsPunct(prev, "->")) continue;
      if (IsIdent(prev, "return") || IsIdent(prev, "class") ||
          IsIdent(prev, "struct")) {
        continue;
      }
      // Walk (identifier ::)* NAME ( — qualified definitions included.
      size_t j = Next(i);
      while (IsIdent(j) && IsPunct(Next(j), "::")) j = Next(Next(j));
      if (!IsIdent(j)) continue;
      if (IsPunct(Next(j), "(")) status_fns.push_back(toks()[j].text);
    }
    if (status_fns.empty()) return;

    for (size_t i = 0; i < toks().size(); ++i) {
      if (!IsIdent(i)) continue;
      bool known = false;
      for (const std::string& fn : status_fns) {
        if (toks()[i].text == fn) {
          known = true;
          break;
        }
      }
      if (!known) continue;
      size_t open = Next(i);
      if (!IsPunct(open, "(")) continue;
      // Find the matching close paren.
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t k = open; k < toks().size(); ++k) {
        if (toks()[k].kind != TokenKind::kPunct) continue;
        if (toks()[k].text == "(") ++depth;
        if (toks()[k].text == ")" && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos || !IsPunct(Next(close), ";")) continue;
      // Walk back the receiver chain: (identifier (. | -> | ::))* NAME.
      size_t head = i;
      while (true) {
        size_t sep = Prev(head);
        if (!(IsPunct(sep, ".") || IsPunct(sep, "->") ||
              IsPunct(sep, "::"))) {
          break;
        }
        size_t recv = Prev(sep);
        if (!IsIdent(recv)) break;
        head = recv;
      }
      size_t before = Prev(head);
      bool stmt_start = before == std::string::npos ||
                        IsPunct(before, ";") || IsPunct(before, "{") ||
                        IsPunct(before, "}");
      if (!stmt_start) continue;
      Report(toks()[i].line, "status-consumed",
             "result of Status-returning " + toks()[i].text +
                 "() is dropped; check it, GALAXY_RETURN_IF_ERROR it, or "
                 "cast to (void) with a comment");
    }
  }

  // ---- pragma-once ------------------------------------------------------
  void PragmaOnce() {
    if (!info_.is_header) return;
    for (const Token& t : toks()) {
      if (t.kind != TokenKind::kPreproc) continue;
      if (t.text.find("pragma") != std::string::npos &&
          t.text.find("once") != std::string::npos) {
        return;
      }
    }
    Report(1, "pragma-once", "header is missing #pragma once");
  }

  // ---- iostream-core ----------------------------------------------------
  void IostreamCore() {
    if (!info_.in_src_core) return;
    for (const Token& t : toks()) {
      if (t.kind != TokenKind::kPreproc) continue;
      if (t.text.find("include") != std::string::npos &&
          t.text.find("<iostream>") != std::string::npos) {
        Report(t.line, "iostream-core",
               "<iostream> in src/core pulls static iostream initializers "
               "into the hot library; use common/logging.h");
      }
    }
  }

  // ---- budget-charge ----------------------------------------------------
  // In the dominance-counting translation units, any function that runs
  // nested (record-pair) loops must show evidence of charging the
  // ExecutionContext comparison budget — otherwise a query over it cannot
  // be cancelled or deadline-bounded.
  void BudgetCharge() {
    bool applies = (StartsWith(info_.basename, "algorithm_") &&
                    EndsWith(info_.basename, ".cc")) ||
                   info_.basename == "count_kernel.cc";
    if (!applies) return;

    static const char* kEvidence[] = {"Charge",    "ChargeBatched",
                                      "Compare",   "CheckInterrupt",
                                      "interrupted", "stopped",
                                      "ShouldStop"};

    struct FnFrame {
      int loop_depth = 0;
      int max_loop_depth = 0;
      bool evidence = false;
      size_t flag_line = 0;  // where nesting first hit 2
    };
    enum class BraceKind { kPlain, kFunction, kLoop };
    enum class Pending { kNone, kFnCandidate, kLoopBody, kPlainBlock };

    std::vector<FnFrame> fns;
    std::vector<BraceKind> braces;
    std::vector<bool> paren_is_control;  // per open paren
    std::vector<bool> paren_is_loop;     // the control keyword was for/while
    Pending pending = Pending::kNone;

    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == TokenKind::kPreproc) continue;
      if (t.kind == TokenKind::kIdentifier) {
        if (!fns.empty()) {
          for (const char* ev : kEvidence) {
            if (t.text == ev) {
              fns.back().evidence = true;
              break;
            }
          }
        }
        continue;
      }
      if (t.kind != TokenKind::kPunct) continue;
      const std::string& p = t.text;
      if (p == "(") {
        size_t prev = Prev(i);
        bool control = IsIdent(prev, "if") || IsIdent(prev, "for") ||
                       IsIdent(prev, "while") || IsIdent(prev, "switch") ||
                       IsIdent(prev, "catch");
        bool loop = IsIdent(prev, "for") || IsIdent(prev, "while");
        paren_is_control.push_back(control);
        paren_is_loop.push_back(loop);
        continue;
      }
      if (p == ")") {
        if (paren_is_control.empty()) continue;
        bool control = paren_is_control.back();
        bool loop = paren_is_loop.back();
        paren_is_control.pop_back();
        paren_is_loop.pop_back();
        if (!paren_is_control.empty()) continue;  // still inside parens
        pending = loop      ? Pending::kLoopBody
                  : control ? Pending::kPlainBlock
                            : Pending::kFnCandidate;
        continue;
      }
      if (p == ";") {
        pending = Pending::kNone;
        continue;
      }
      if (p == "{") {
        size_t prev = Prev(i);
        BraceKind kind = BraceKind::kPlain;
        if (IsIdent(prev, "do") || pending == Pending::kLoopBody) {
          kind = BraceKind::kLoop;
        } else if (pending == Pending::kFnCandidate) {
          kind = BraceKind::kFunction;
        }
        pending = Pending::kNone;
        braces.push_back(kind);
        if (kind == BraceKind::kFunction) {
          fns.emplace_back();
        } else if (kind == BraceKind::kLoop && !fns.empty()) {
          FnFrame& fn = fns.back();
          ++fn.loop_depth;
          if (fn.loop_depth > fn.max_loop_depth) {
            fn.max_loop_depth = fn.loop_depth;
            if (fn.max_loop_depth == 2 && fn.flag_line == 0) {
              fn.flag_line = t.line;
            }
          }
        }
        continue;
      }
      if (p == "}") {
        if (braces.empty()) continue;
        BraceKind kind = braces.back();
        braces.pop_back();
        if (kind == BraceKind::kLoop && !fns.empty()) {
          --fns.back().loop_depth;
        } else if (kind == BraceKind::kFunction && !fns.empty()) {
          FnFrame done = fns.back();
          fns.pop_back();
          if (done.max_loop_depth >= 2 && !done.evidence) {
            Report(done.flag_line, "budget-charge",
                   "nested record-pair loop never charges the "
                   "ExecutionContext budget (no Charge/Compare/interrupted "
                   "in this function); unbudgeted scans cannot be "
                   "cancelled or deadline-bounded");
          }
          // A charging lambda inside an outer loop is evidence for the
          // enclosing function too.
          if (done.evidence && !fns.empty()) fns.back().evidence = true;
        }
        continue;
      }
    }
  }

  const std::string path_;
  const PathInfo info_;
  const LexedFile& lexed_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> LintFile(const std::string& path,
                                 const std::string& content) {
  LexedFile lexed = Lex(content);
  return Linter(path, lexed).Run();
}

bool LintPath(const std::string& path, std::vector<Diagnostic>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->push_back({path, 0, "io", "cannot read file"});
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Diagnostic> diags = LintFile(path, buf.str());
  out->insert(out->end(), diags.begin(), diags.end());
  return true;
}

std::vector<std::string> RuleNames() {
  return {"raw-mutex",          "budget-charge",    "banned-call",
          "raw-file-io",        "blocking-socket-io", "row-major-access",
          "naked-new",          "status-consumed",  "pragma-once",
          "iostream-core"};
}

}  // namespace galaxy::lint
