// galaxy_lint — repository invariant checker. See tools/lint/lint.h for the
// rule set and tools/README.md for the catalog.
//
// Usage: galaxy_lint [--list-rules] <file-or-directory>...
// Exit:  0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/// Directory components never linted when walking a directory (explicitly
/// named files are always linted): build output, VCS metadata, and the lint
/// test fixtures, which are known-bad on purpose.
bool SkippedComponent(const fs::path& p) {
  for (const fs::path& part : p) {
    const std::string s = part.string();
    if (s == "build" || s == ".git" || s == "third_party" ||
        s == "fixtures") {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : galaxy::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: galaxy_lint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "galaxy_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    inputs.push_back(std::move(arg));
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: galaxy_lint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && IsSourceFile(it->path()) &&
            !SkippedComponent(it->path())) {
          files.push_back(it->path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "galaxy_lint: error walking %s: %s\n",
                     input.c_str(), ec.message().c_str());
        return 2;
      }
    } else if (fs::exists(input, ec)) {
      files.push_back(input);
    } else {
      std::fprintf(stderr, "galaxy_lint: no such file or directory: %s\n",
                   input.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<galaxy::lint::Diagnostic> diags;
  bool io_ok = true;
  for (const std::string& file : files) {
    io_ok &= galaxy::lint::LintPath(file, &diags);
  }
  for (const galaxy::lint::Diagnostic& d : diags) {
    std::printf("%s\n", d.ToString().c_str());
  }
  std::fprintf(stderr, "galaxy_lint: %zu file(s), %zu finding(s)\n",
               files.size(), diags.size());
  if (!io_ok) return 2;
  return diags.empty() ? 0 : 1;
}
