// galaxy_crashtest — crash-recovery torture for the durability subsystem.
//
//   galaxy_crashtest [--cycles N] [--seed S] [--data-dir DIR] [--verbose]
//
// Each cycle forks a child server (this binary re-executed with --child)
// over the same data directory, verifies the recovered state against an
// in-memory oracle, then fires randomized /update traffic at it over
// loopback HTTP until the child dies — by parent SIGKILL at a random
// instant (sometimes mid-request) or by a crash point injected into the
// child's FaultInjectionEnv (die during the Nth WAL append / fsync /
// snapshot rename / WAL truncation, possibly after a torn partial write).
//
// The oracle replays exactly the updates the child ACKED (HTTP 200). The
// invariant under test: after every crash + recovery, the catalog and the
// aggregate skyline equal the oracle — except that the single in-flight
// update whose response never arrived may be either present or absent
// (the crash can land between durable-log and ack).
//
// Exit status: 0 when every cycle verified, 1 on the first divergence
// (with a dump of both states), 2 on usage errors.
//
// Reviewed: the torture harness speaks loopback HTTP to its child over
// plain blocking sockets — a stalled child is itself a failure the
// per-request SO_RCVTIMEO converts into a divergence report.
// galaxy-lint: allow-file(blocking-socket-io)

#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "server/http.h"
#include "server/server.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/wal.h"

namespace {

using galaxy::ColumnDef;
using galaxy::Schema;
using galaxy::Status;
using galaxy::Table;
using galaxy::TableBuilder;
using galaxy::ValueType;

// The torture table. The child seeds it on a fresh data directory; the
// parent's oracle starts from the same rows.
const char* const kSeedRows[] = {"g0,10,1.5", "g1,20,2.5", "g2,5,9.5"};

Schema TortureSchema() {
  return Schema({ColumnDef{"g", ValueType::kString},
                 ColumnDef{"x", ValueType::kInt64},
                 ColumnDef{"y", ValueType::kDouble}});
}

galaxy::server::SkylineViewConfig TortureView() {
  galaxy::server::SkylineViewConfig config;
  config.table = "t";
  config.group_column = "g";
  config.attrs = {"x", "y"};
  config.gamma = 0.5;
  return config;
}

// Deterministic splitmix64 stream (same generator as the fuzz targets).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

// ---- child mode ------------------------------------------------------------

// Crash-fault spec, parent -> child: "op:nth[:partial]".
struct FaultSpec {
  galaxy::storage::FaultInjectionEnv::Op op;
  uint64_t nth = 1;
  size_t partial_bytes = 0;
};

const std::map<std::string, galaxy::storage::FaultInjectionEnv::Op>&
FaultOpNames() {
  using Op = galaxy::storage::FaultInjectionEnv::Op;
  static const std::map<std::string, Op> names{
      {"create", Op::kCreate},   {"append", Op::kAppend},
      {"sync", Op::kSync},       {"rename", Op::kRename},
      {"remove", Op::kRemove},   {"truncate", Op::kTruncate},
      {"syncdir", Op::kSyncDir}};
  return names;
}

std::optional<FaultSpec> ParseFaultSpec(const std::string& text) {
  size_t c1 = text.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  size_t c2 = text.find(':', c1 + 1);
  auto it = FaultOpNames().find(text.substr(0, c1));
  if (it == FaultOpNames().end()) return std::nullopt;
  FaultSpec spec;
  spec.op = it->second;
  spec.nth = std::strtoull(text.c_str() + c1 + 1, nullptr, 10);
  if (c2 != std::string::npos) {
    spec.partial_bytes =
        static_cast<size_t>(std::strtoull(text.c_str() + c2 + 1, nullptr, 10));
  }
  return spec.nth == 0 ? std::nullopt : std::optional<FaultSpec>(spec);
}

// The child: a real server over the (possibly fault-injected) posix Env.
// Reports its port on `port_fd` once serving, then parks until killed.
int RunChild(const std::string& dir, const std::string& fault_text,
             const std::string& fsync_policy, uint64_t snapshot_every,
             int port_fd) {
  galaxy::storage::FaultInjectionEnv env(galaxy::storage::Env::Default());
  if (!fault_text.empty()) {
    std::optional<FaultSpec> spec = ParseFaultSpec(fault_text);
    if (!spec.has_value()) {
      std::fprintf(stderr, "galaxy_crashtest(child): bad --fault %s\n",
                   fault_text.c_str());
      return 2;
    }
    galaxy::storage::FaultInjectionEnv::Fault fault;
    fault.op = spec->op;
    fault.nth = spec->nth;
    fault.partial_bytes = spec->partial_bytes;
    fault.crash = true;
    env.InjectFault(fault);
  }

  galaxy::storage::DurabilityOptions durability_options;
  auto policy = galaxy::storage::ParseFsyncPolicy(fsync_policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "galaxy_crashtest(child): %s\n",
                 policy.status().message().c_str());
    return 2;
  }
  durability_options.wal.policy = *policy;
  durability_options.wal.fsync_interval = std::chrono::milliseconds(5);

  galaxy::sql::Database db;
  galaxy::server::ServerOptions options;
  options.port = 0;  // ephemeral
  options.snapshot_every = snapshot_every;

  std::unique_ptr<galaxy::storage::DurabilityManager> durability;
  galaxy::server::Server server(&db, options);
  {
    auto opened = galaxy::storage::DurabilityManager::Open(
        &env, dir, &db, durability_options, server.DurabilityHooks());
    if (!opened.ok()) {
      std::fprintf(stderr, "galaxy_crashtest(child): open: %s\n",
                   opened.status().message().c_str());
      return 1;
    }
    durability = std::move(*opened);
  }
  if (db.num_tables() == 0) {
    // Fresh directory: seed and persist as the first snapshot.
    TableBuilder builder(TortureSchema());
    for (const char* row : kSeedRows) {
      auto parsed = galaxy::ParseCsvRowForSchema(TortureSchema(), row);
      if (!parsed.ok()) return 1;
      builder.AddRow(*std::move(parsed));
    }
    db.Register("t", builder.Build());
    Status bootstrapped = durability->Bootstrap();
    if (!bootstrapped.ok()) {
      std::fprintf(stderr, "galaxy_crashtest(child): bootstrap: %s\n",
                   bootstrapped.message().c_str());
      return 1;
    }
  }
  server.AttachDurability(durability.get());
  Status view = server.EnableSkylineView(TortureView());
  if (!view.ok()) {
    std::fprintf(stderr, "galaxy_crashtest(child): view: %s\n",
                 view.message().c_str());
    return 1;
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "galaxy_crashtest(child): start: %s\n",
                 started.message().c_str());
    return 1;
  }

  std::string line = "PORT " + std::to_string(server.port()) + "\n";
  // The port handoff pipe inherited from the parent; not a data file, so
  // outside the Env seam by design.
  // galaxy-lint: allow(raw-file-io)
  ssize_t written = ::write(port_fd, line.data(), line.size());
  if (written != static_cast<ssize_t>(line.size())) return 1;
  ::close(port_fd);

  // Park until the parent kills us (SIGKILL) or a crash point fires on a
  // connection thread.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  int got = 0;
  sigwait(&signals, &got);
  server.Stop();
  return 0;
}

// ---- loopback HTTP client --------------------------------------------------

struct ClientResponse {
  bool transport_ok = false;  ///< a complete response arrived
  int status = 0;
  std::string body;
};

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads one full "Connection: close" response (until EOF).
ClientResponse ReadResponse(int fd) {
  ClientResponse out;
  std::string buffer;
  char chunk[8192];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos || buffer.size() < 12) return out;
  out.transport_ok = true;
  out.status = std::atoi(buffer.c_str() + 9);
  out.body = buffer.substr(header_end + 4);
  return out;
}

std::string BuildRequest(const std::string& method, const std::string& target,
                         const std::string& body,
                         const std::string& extra_headers = "") {
  return method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n" +
         "Connection: close\r\n" + extra_headers +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

ClientResponse Exchange(uint16_t port, const std::string& request) {
  ClientResponse out;
  int fd = ConnectLoopback(port);
  if (fd < 0) return out;
  if (SendAll(fd, request)) out = ReadResponse(fd);
  ::close(fd);
  return out;
}

// ---- oracle-side expected state --------------------------------------------

void EraseOne(std::vector<std::string>* rows, const std::string& row) {
  auto it = std::find(rows->begin(), rows->end(), row);
  if (it != rows->end()) rows->erase(it);
}

std::vector<std::string> SortedLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

// Extracts the string elements of the "skyline": [...] JSON array, sorted.
std::vector<std::string> SkylineLabels(const std::string& json) {
  std::vector<std::string> labels;
  size_t key = json.find("\"skyline\"");
  if (key == std::string::npos) return labels;
  size_t open = json.find('[', key);
  size_t close = json.find(']', key);
  if (open == std::string::npos || close == std::string::npos) return labels;
  size_t pos = open;
  while (true) {
    size_t quote = json.find('"', pos + 1);
    if (quote == std::string::npos || quote > close) break;
    size_t end = json.find('"', quote + 1);
    if (end == std::string::npos || end > close) break;
    labels.push_back(json.substr(quote + 1, end - quote - 1));
    pos = end;
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Computes the expected skyline of `rows` through the same serving-layer
// code the child runs (in-process Handle, no sockets).
std::vector<std::string> OracleSkyline(const std::vector<std::string>& rows) {
  TableBuilder builder(TortureSchema());
  for (const std::string& row : rows) {
    auto parsed = galaxy::ParseCsvRowForSchema(TortureSchema(), row);
    if (!parsed.ok()) {
      std::fprintf(stderr, "galaxy_crashtest: oracle row unparseable: %s\n",
                   row.c_str());
      std::exit(1);
    }
    builder.AddRow(*std::move(parsed));
  }
  galaxy::sql::Database db;
  db.Register("t", builder.Build());
  galaxy::server::ServerOptions options;
  galaxy::server::Server server(&db, options);
  Status view = server.EnableSkylineView(TortureView());
  if (!view.ok()) {
    std::fprintf(stderr, "galaxy_crashtest: oracle view: %s\n",
                 view.message().c_str());
    std::exit(1);
  }
  galaxy::server::HttpRequest request;
  request.method = "GET";
  request.target = "/skyline";
  request.version = "HTTP/1.1";
  request.path = "/skyline";
  return SkylineLabels(server.Handle(request).body);
}

// One pending mutation: applied to the oracle only once acked.
struct Mutation {
  bool insert = true;
  std::string row;
};

void Apply(std::vector<std::string>* rows, const Mutation& mutation) {
  if (mutation.insert) {
    rows->push_back(mutation.row);
  } else {
    EraseOne(rows, mutation.row);
  }
}

// ---- parent / torture loop -------------------------------------------------

struct ChildHandle {
  pid_t pid = -1;
  uint16_t port = 0;
  bool port_ok = false;
};

ChildHandle SpawnChild(const char* self, const std::string& dir,
                       const std::string& fault, const std::string& fsync,
                       uint64_t snapshot_every) {
  ChildHandle child;
  int fds[2];
  if (::pipe(fds) != 0) return child;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return child;
  }
  if (pid == 0) {
    ::close(fds[0]);
    std::string port_fd = std::to_string(fds[1]);
    std::string snap = std::to_string(snapshot_every);
    // Re-exec ourselves in child mode: fork+exec keeps the child's address
    // space clean of the parent's threads and lets the FaultInjectionEnv
    // count this process's operations from zero.
    ::execl(self, self, "--child", "true", "--data-dir", dir.c_str(),
            "--port-fd", port_fd.c_str(), "--fsync", fsync.c_str(),
            "--snapshot-every", snap.c_str(), "--fault", fault.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(fds[1]);
  child.pid = pid;
  std::string line;
  char c;
  while (true) {
    // galaxy-lint: allow(raw-file-io) — port handoff pipe, not a data file.
    ssize_t n = ::read(fds[0], &c, 1);
    if (n <= 0) break;  // EOF: the child died before serving
    if (c == '\n') {
      if (line.rfind("PORT ", 0) == 0) {
        child.port = static_cast<uint16_t>(std::atoi(line.c_str() + 5));
        child.port_ok = child.port != 0;
      }
      break;
    }
    line.push_back(c);
  }
  ::close(fds[0]);
  return child;
}

int ReapChild(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

int FailState(const char* what, const std::vector<std::string>& actual,
              const std::vector<std::string>& expected_a,
              const std::vector<std::string>& expected_b) {
  std::fprintf(stderr, "galaxy_crashtest: FAIL: recovered %s diverged\n",
               what);
  auto dump = [](const char* name, const std::vector<std::string>& rows) {
    std::fprintf(stderr, "  %s (%zu):\n", name, rows.size());
    for (const std::string& row : rows) {
      std::fprintf(stderr, "    %s\n", row.c_str());
    }
  };
  dump("actual", actual);
  dump("expected", expected_a);
  dump("expected-with-inflight", expected_b);
  return 1;
}

std::string RandomFault(Rng& rng) {
  // Occurrence bounds matched to how often each op actually runs in one
  // child's lifetime (recovery + a burst of updates + a few rotations), so
  // most armed crash points really fire.
  struct OpRange {
    const char* op;
    uint64_t max_nth;
  };
  static const OpRange kOps[] = {{"append", 25}, {"sync", 20}, {"rename", 4},
                                 {"create", 4},  {"remove", 4}, {"truncate", 2},
                                 {"syncdir", 4}};
  const OpRange& pick = kOps[rng.Below(7)];
  std::string spec = std::string(pick.op) + ":" +
                     std::to_string(1 + rng.Below(pick.max_nth));
  if (std::strcmp(pick.op, "append") == 0 && rng.Below(2) == 0) {
    spec += ":" + std::to_string(rng.Below(12));  // torn partial write
  }
  return spec;
}

int RunTorture(const char* self, const std::string& dir, uint64_t seed,
               int cycles, bool verbose) {
  // The oracle: surface-form CSV rows the child has durably acked, plus at
  // most one unresolved in-flight mutation from the previous cycle.
  std::vector<std::string> oracle(kSeedRows, kSeedRows + 3);
  std::optional<Mutation> inflight;
  int kills = 0, injected_crashes = 0, startup_crashes = 0;

  static const char* const kPolicies[] = {"always", "interval", "never"};

  for (int cycle = 0; cycle < cycles; ++cycle) {
    Rng rng(seed + static_cast<uint64_t>(cycle) * 0x9e3779b97f4a7c15ULL);
    // Half the cycles crash via an injected fault at a random disk
    // operation; the other half die by parent SIGKILL at a random moment.
    const bool inject = rng.Below(2) == 0;
    const std::string fault = inject ? RandomFault(rng) : std::string();
    const std::string fsync = kPolicies[rng.Below(3)];
    const uint64_t snapshot_every = 2 + rng.Below(9);

    ChildHandle child = SpawnChild(self, dir, fault, fsync, snapshot_every);
    if (child.pid < 0) {
      std::fprintf(stderr, "galaxy_crashtest: fork failed\n");
      return 1;
    }
    if (!child.port_ok) {
      // Died before serving: legal only when a crash point could fire
      // during recovery/bootstrap. The directory must still recover, the
      // oracle is unchanged (nothing was acked).
      int status = ReapChild(child.pid);
      const bool crashed =
          WIFEXITED(status) &&
          WEXITSTATUS(status) ==
              galaxy::storage::FaultInjectionEnv::kCrashExitStatus;
      if (!inject || !crashed) {
        std::fprintf(stderr,
                     "galaxy_crashtest: child died before serving "
                     "(cycle %d, fault=%s, wait status %d)\n",
                     cycle, fault.c_str(), status);
        return 1;
      }
      ++startup_crashes;
      continue;
    }

    // ---- verify the recovered state against the oracle. ----
    ClientResponse table_response = Exchange(
        child.port, BuildRequest("POST", "/query", "SELECT * FROM t",
                                 "Accept: text/csv\r\n"));
    ClientResponse skyline_response =
        Exchange(child.port, BuildRequest("GET", "/skyline", ""));
    if (!table_response.transport_ok || table_response.status != 200 ||
        !skyline_response.transport_ok || skyline_response.status != 200) {
      // The injected crash point can fire during these reads' WAL-free
      // window only at snapshot time — but reads never log. A dead child
      // here means the fault fired during recovery *after* the port write
      // (not possible) — treat as failure unless injected.
      int status = ReapChild(child.pid);
      const bool crashed =
          WIFEXITED(status) &&
          WEXITSTATUS(status) ==
              galaxy::storage::FaultInjectionEnv::kCrashExitStatus;
      if (!inject || !crashed) {
        std::fprintf(stderr,
                     "galaxy_crashtest: verification reads failed "
                     "(cycle %d, wait status %d)\n",
                     cycle, status);
        return 1;
      }
      ++startup_crashes;
      continue;
    }

    std::vector<std::string> actual = SortedLines(table_response.body);
    EraseOne(&actual, "g,x,y");  // CSV header line
    std::vector<std::string> expected_a = oracle;
    std::vector<std::string> expected_b = oracle;
    if (inflight.has_value()) Apply(&expected_b, *inflight);
    std::vector<std::string> sorted_a = expected_a;
    std::vector<std::string> sorted_b = expected_b;
    std::sort(sorted_a.begin(), sorted_a.end());
    std::sort(sorted_b.begin(), sorted_b.end());
    if (actual == sorted_a) {
      oracle = expected_a;
    } else if (actual == sorted_b) {
      oracle = expected_b;
    } else {
      ReapChild(child.pid);
      return FailState("table", actual, sorted_a, sorted_b);
    }
    inflight.reset();

    std::vector<std::string> actual_sky =
        SkylineLabels(skyline_response.body);
    std::vector<std::string> expected_sky = OracleSkyline(oracle);
    if (actual_sky != expected_sky) {
      ReapChild(child.pid);
      return FailState("skyline", actual_sky, expected_sky, expected_sky);
    }

    // ---- randomized update traffic until the child dies. ----
    const uint64_t planned = 3 + rng.Below(25);
    const uint64_t kill_after = rng.Below(planned + 1);
    bool child_down = false;
    for (uint64_t i = 0; i < planned; ++i) {
      if (!inject && i == kill_after) {
        // Sometimes mid-request: fire the request, kill before the ack.
        if (rng.Below(2) == 0 && !oracle.empty()) {
          Mutation mutation;
          mutation.insert = true;
          mutation.row = "g" + std::to_string(rng.Below(6)) + "," +
                         std::to_string(rng.Below(1000)) + "," +
                         std::to_string(rng.Below(1000)) + ".5";
          int fd = ConnectLoopback(child.port);
          if (fd >= 0) {
            SendAll(fd, BuildRequest("POST", "/update?table=t&op=insert",
                                     mutation.row));
            ::kill(child.pid, SIGKILL);
            ::close(fd);
            inflight = mutation;
          } else {
            ::kill(child.pid, SIGKILL);
          }
        } else {
          ::kill(child.pid, SIGKILL);
        }
        ++kills;
        child_down = true;
        break;
      }

      Mutation mutation;
      const uint64_t kind = rng.Below(10);
      std::string target = "/update?table=t&op=insert";
      std::string body;
      bool effective = true;  // should mutate state when acked
      if (kind < 6 || oracle.empty()) {
        mutation.insert = true;
        mutation.row = "g" + std::to_string(rng.Below(6)) + "," +
                       std::to_string(rng.Below(1000)) + "," +
                       std::to_string(rng.Below(1000)) + ".5";
        body = mutation.row;
      } else if (kind < 8) {
        mutation.insert = false;
        mutation.row = oracle[rng.Below(oracle.size())];
        target = "/update?table=t&op=remove";
        body = mutation.row;
      } else if (kind == 8) {
        // Remove of a never-inserted row: the server must 404 and log
        // nothing.
        target = "/update?table=t&op=remove";
        body = "zz-missing,1,1.5";
        effective = false;
      } else {
        // Malformed row: 400, nothing logged.
        body = "bad,row";
        effective = false;
      }

      ClientResponse response =
          Exchange(child.port, BuildRequest("POST", target, body));
      if (!response.transport_ok) {
        // The child crashed under us (injected fault). The last request is
        // in flight: logged-but-unacked is allowed.
        if (effective) inflight = mutation;
        child_down = true;
        break;
      }
      if (effective) {
        if (response.status != 200) {
          std::fprintf(stderr,
                       "galaxy_crashtest: update rejected with %d "
                       "(cycle %d): %s\n",
                       response.status, cycle, response.body.c_str());
          ::kill(child.pid, SIGKILL);
          ReapChild(child.pid);
          return 1;
        }
        Apply(&oracle, mutation);
      } else if (response.status == 200) {
        std::fprintf(stderr,
                     "galaxy_crashtest: invalid update was acked "
                     "(cycle %d)\n",
                     cycle);
        ::kill(child.pid, SIGKILL);
        ReapChild(child.pid);
        return 1;
      }

      // Occasionally read the skyline mid-burst so view-delta draining
      // runs under fire too.
      if (rng.Below(6) == 0) {
        ClientResponse sky =
            Exchange(child.port, BuildRequest("GET", "/skyline", ""));
        if (sky.transport_ok && sky.status != 200) {
          std::fprintf(stderr,
                       "galaxy_crashtest: /skyline failed with %d "
                       "(cycle %d)\n",
                       sky.status, cycle);
          ::kill(child.pid, SIGKILL);
          ReapChild(child.pid);
          return 1;
        }
      }
    }

    if (!child_down) {
      ::kill(child.pid, SIGKILL);
      ++kills;
    } else if (inject) {
      ++injected_crashes;
    }
    int status = ReapChild(child.pid);
    (void)status;
    if (verbose) {
      std::fprintf(stderr,
                   "cycle %d: fsync=%s fault=%s oracle=%zu rows%s\n", cycle,
                   fsync.c_str(), inject ? fault.c_str() : "(sigkill)",
                   oracle.size(), inflight.has_value() ? " +inflight" : "");
    }
  }

  // Final clean restart: everything acked across the whole run must be
  // there.
  ChildHandle child = SpawnChild(self, dir, "", "always", 8);
  if (!child.port_ok) {
    std::fprintf(stderr, "galaxy_crashtest: final restart failed\n");
    return 1;
  }
  ClientResponse table_response = Exchange(
      child.port,
      BuildRequest("POST", "/query", "SELECT * FROM t", "Accept: text/csv\r\n"));
  std::vector<std::string> actual = SortedLines(table_response.body);
  EraseOne(&actual, "g,x,y");  // CSV header line
  std::vector<std::string> expected_a = oracle;
  std::vector<std::string> expected_b = oracle;
  if (inflight.has_value()) Apply(&expected_b, *inflight);
  std::sort(expected_a.begin(), expected_a.end());
  std::sort(expected_b.begin(), expected_b.end());
  ::kill(child.pid, SIGKILL);
  ReapChild(child.pid);
  if (actual != expected_a && actual != expected_b) {
    return FailState("final table", actual, expected_a, expected_b);
  }

  std::printf(
      "galaxy_crashtest: %d cycles OK (%d sigkills, %d injected crashes, "
      "%d startup crashes, final state %zu rows)\n",
      cycles, kills, injected_crashes, startup_crashes, expected_a.size());
  return 0;
}

// Minimal --flag value parser (same contract as galaxy_served's).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";
        }
      } else {
        error_ = "unexpected argument: " + arg;
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "galaxy_crashtest: %s\n", flags.error().c_str());
    return 2;
  }

  if (flags.Has("child")) {
    return RunChild(flags.Get("data-dir"), flags.Get("fault"),
                    flags.Get("fsync", "always"),
                    std::strtoull(flags.Get("snapshot-every", "8").c_str(),
                                  nullptr, 10),
                    std::atoi(flags.Get("port-fd", "-1").c_str()));
  }

  const int cycles = std::atoi(flags.Get("cycles", "200").c_str());
  const uint64_t seed =
      std::strtoull(flags.Get("seed", "1").c_str(), nullptr, 10);
  if (cycles <= 0) {
    std::fprintf(stderr, "galaxy_crashtest: --cycles must be positive\n");
    return 2;
  }
  std::string dir = flags.Get("data-dir");
  std::string scratch;
  if (dir.empty()) {
    scratch = "galaxy-crashtest-" + std::to_string(::getpid());
    const char* tmp = std::getenv("TMPDIR");
    dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + scratch;
  }

  // Resolve our own binary for fork+exec of child servers.
  const char* self = "/proc/self/exe";

  int result = RunTorture(self, dir, seed, cycles, flags.Has("verbose"));

  if (!scratch.empty()) {
    // Best-effort scratch cleanup through the Env seam.
    galaxy::storage::Env* env = galaxy::storage::Env::Default();
    auto entries = env->ListDir(dir);
    if (entries.ok()) {
      for (const std::string& name : *entries) {
        (void)env->RemoveFile(dir + "/" + name);
      }
    }
    ::rmdir(dir.c_str());
  }
  return result;
}
