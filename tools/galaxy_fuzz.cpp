// Fuzzing front-end with three targets:
//
//   galaxy_fuzz [--target=diff|sql|faults|http|conn|wal] [--seed N]
//               [--runs N] [--max-seconds S] [--verbose]
//
//   diff    (default) drives every aggregate-skyline configuration against
//           the exhaustive oracle on adversarial generated datasets;
//   sql     feeds mutated SKYLINE OF statements through the full lexer ->
//           parser -> executor pipeline, asserting clean Status objects;
//   faults  injects cancellation / deadline / budget trips at randomized
//           comparison counts across the differential matrix and checks
//           the control-plane contract (bounded unwind, sound supersets);
//   http    feeds generated/mutated/garbage byte strings through the
//           serving layer's HTTP request parser, asserting round-trips on
//           valid requests and definite verdicts everywhere else;
//   conn    feeds pipelined request streams through the event engine's
//           per-connection state machine across randomized read-boundary
//           splits, asserting in-order extraction, no fabricated requests
//           from partial prefixes, and sticky poisoning after a framing
//           error;
//   wal     feeds clean/truncated/flipped/garbage log images through the
//           write-ahead-log decoder and full crash recovery, asserting the
//           decoder never accepts a record whose checksum failed and
//           recovery never refuses to start on a torn tail.
//
// Each run derives a per-dataset seed from the base seed, so any failure is
// replayable in isolation with --seed <dataset seed> --runs 1. On a
// divergence the input is shrunk to a local minimum (diff target) and
// printed as a ready-to-paste gtest case (see README "Correctness
// testing"); the process exits 1.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "server/http_fuzz.h"
#include "storage/wal_fuzz.h"
#include "testing/differential.h"
#include "testing/fault_injection.h"
#include "testing/oracle.h"
#include "testing/property_gen.h"
#include "testing/sql_fuzz.h"

namespace {

struct FuzzOptions {
  std::string target = "diff";
  uint64_t seed = 1;
  uint64_t runs = 1000;
  double max_seconds = 0.0;  // 0 = unbounded
  bool verbose = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: galaxy_fuzz [--target=diff|sql|faults|http|conn|wal] "
               "[--seed N] [--runs N] [--max-seconds S] [--verbose]\n");
}

bool ParseFlags(int argc, char** argv, FuzzOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs") {
      const char* v = next();
      if (v == nullptr) return false;
      options->runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-seconds") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_seconds = std::strtod(v, nullptr);
    } else if (arg == "--target") {
      const char* v = next();
      if (v == nullptr) return false;
      options->target = v;
    } else if (arg.rfind("--target=", 0) == 0) {
      options->target = arg.substr(9);
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->target != "diff" && options->target != "sql" &&
      options->target != "faults" && options->target != "http" &&
      options->target != "conn" && options->target != "wal") {
    std::fprintf(stderr, "unknown --target: %s\n", options->target.c_str());
    return false;
  }
  return true;
}

int RunSqlTarget(const FuzzOptions& options) {
  std::printf("galaxy_fuzz: target=sql seed=%llu runs=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs));
  galaxy::testing::SqlFuzzStats stats;
  std::string detail = galaxy::testing::FuzzSql(
      options.seed, static_cast<int>(options.runs), &stats);
  std::printf(
      "galaxy_fuzz: %llu statements (%llu ok, %llu parse errors, %llu "
      "exec errors)\n",
      static_cast<unsigned long long>(stats.executed),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.parse_errors),
      static_cast<unsigned long long>(stats.exec_errors));
  if (!detail.empty()) {
    std::printf("\nSQL FUZZ FAILURE: %s\n", detail.c_str());
    return 1;
  }
  std::printf("galaxy_fuzz: OK — every statement produced a clean Status\n");
  return 0;
}

int RunFaultsTarget(const FuzzOptions& options) {
  std::printf("galaxy_fuzz: target=faults seed=%llu runs=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs));
  uint64_t points = 0;
  galaxy::testing::FaultDivergence divergence = galaxy::testing::FuzzFaults(
      options.seed, static_cast<int>(options.runs), &points);
  std::printf("galaxy_fuzz: %llu fault points checked\n",
              static_cast<unsigned long long>(points));
  if (divergence.found) {
    std::printf(
        "\nFAULT DIVERGENCE (dataset seed %llu, gamma %.17g)\n"
        "  config: %s\n  plan:   %s\n  detail: %s\n",
        static_cast<unsigned long long>(divergence.dataset_seed),
        divergence.gamma, divergence.config.Name().c_str(),
        divergence.plan.Name().c_str(), divergence.detail.c_str());
    return 1;
  }
  std::printf("galaxy_fuzz: OK — control-plane contract held everywhere\n");
  return 0;
}

int RunHttpTarget(const FuzzOptions& options) {
  std::printf("galaxy_fuzz: target=http seed=%llu runs=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs));
  galaxy::server::HttpFuzzStats stats;
  std::string detail = galaxy::server::FuzzHttp(
      options.seed, static_cast<int>(options.runs), &stats);
  std::printf(
      "galaxy_fuzz: %llu inputs (%llu parsed, %llu incomplete, %llu "
      "rejected)\n",
      static_cast<unsigned long long>(stats.inputs),
      static_cast<unsigned long long>(stats.parsed),
      static_cast<unsigned long long>(stats.need_more),
      static_cast<unsigned long long>(stats.errors));
  if (!detail.empty()) {
    std::printf("\nHTTP FUZZ FAILURE: %s\n", detail.c_str());
    return 1;
  }
  std::printf("galaxy_fuzz: OK — the parser contract held everywhere\n");
  return 0;
}

int RunConnTarget(const FuzzOptions& options) {
  std::printf("galaxy_fuzz: target=conn seed=%llu runs=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs));
  galaxy::server::ConnFuzzStats stats;
  std::string detail = galaxy::server::FuzzConnection(
      options.seed, static_cast<int>(options.runs), &stats);
  std::printf(
      "galaxy_fuzz: %llu streams in %llu chunks (%llu requests extracted, "
      "%llu poisoned)\n",
      static_cast<unsigned long long>(stats.streams),
      static_cast<unsigned long long>(stats.chunks),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.poisoned));
  if (!detail.empty()) {
    std::printf("\nCONN FUZZ FAILURE: %s\n", detail.c_str());
    return 1;
  }
  std::printf(
      "galaxy_fuzz: OK — the connection state machine contract held "
      "everywhere\n");
  return 0;
}

int RunWalTarget(const FuzzOptions& options) {
  std::printf("galaxy_fuzz: target=wal seed=%llu runs=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs));
  galaxy::storage::WalFuzzStats stats;
  std::string detail = galaxy::storage::FuzzWal(
      options.seed, static_cast<int>(options.runs), &stats);
  std::printf(
      "galaxy_fuzz: %llu log images (%llu records decoded, %llu torn tails, "
      "%llu recoveries)\n",
      static_cast<unsigned long long>(stats.inputs),
      static_cast<unsigned long long>(stats.records_decoded),
      static_cast<unsigned long long>(stats.torn_tails),
      static_cast<unsigned long long>(stats.recoveries));
  if (!detail.empty()) {
    std::printf("\nWAL FUZZ FAILURE: %s\n", detail.c_str());
    return 1;
  }
  std::printf(
      "galaxy_fuzz: OK — decode and recovery contracts held everywhere\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  if (!ParseFlags(argc, argv, &options)) {
    Usage();
    return 2;
  }

  if (options.target == "sql") return RunSqlTarget(options);
  if (options.target == "faults") return RunFaultsTarget(options);
  if (options.target == "http") return RunHttpTarget(options);
  if (options.target == "conn") return RunConnTarget(options);
  if (options.target == "wal") return RunWalTarget(options);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  const size_t num_configs = galaxy::testing::AllConfigurations().size();
  std::printf("galaxy_fuzz: seed=%llu runs=%llu configs=%zu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.runs), num_configs);

  uint64_t completed = 0;
  for (uint64_t run = 0; run < options.runs; ++run) {
    if (options.max_seconds > 0.0 && elapsed() >= options.max_seconds) {
      std::printf("galaxy_fuzz: time budget reached after %llu datasets\n",
                  static_cast<unsigned long long>(completed));
      break;
    }
    // Independent per-dataset seed: failures replay without re-running the
    // whole campaign.
    const uint64_t dataset_seed = options.seed + run * 0x9e3779b97f4a7c15ull;
    galaxy::Rng rng(dataset_seed);
    galaxy::testing::PointGroups points =
        galaxy::testing::GenerateAdversarialPoints(rng);
    const double gamma = galaxy::testing::PickAdversarialGamma(rng);
    galaxy::core::GroupedDataset dataset =
        galaxy::testing::PointsToDataset(points);

    if (options.verbose) {
      std::printf("  run %llu: seed=%llu groups=%zu dims=%zu gamma=%.12g\n",
                  static_cast<unsigned long long>(run),
                  static_cast<unsigned long long>(dataset_seed),
                  dataset.num_groups(), dataset.dims(), gamma);
    }

    galaxy::testing::Divergence divergence =
        galaxy::testing::CheckDataset(dataset, gamma);
    if (divergence.found) {
      std::printf(
          "\nDIVERGENCE at run %llu (dataset seed %llu, gamma %.17g)\n"
          "  config: %s\n  detail: %s\n\nshrinking...\n",
          static_cast<unsigned long long>(run),
          static_cast<unsigned long long>(dataset_seed), gamma,
          divergence.config.Name().c_str(), divergence.detail.c_str());
      galaxy::testing::Reproducer repro =
          galaxy::testing::Shrink(points, gamma, divergence.config);
      repro.dataset_seed = dataset_seed;
      std::printf("shrunk reproducer (%s):\n\n%s\n",
                  repro.detail.empty() ? "did not re-fail; unshrunk input"
                                       : repro.detail.c_str(),
                  galaxy::testing::ReproducerToCpp(repro).c_str());
      return 1;
    }
    ++completed;
  }

  std::printf("galaxy_fuzz: OK — %llu datasets, %.1fs, no divergence\n",
              static_cast<unsigned long long>(completed), elapsed());
  return 0;
}
