#include "sql/value_ops.h"

#include <cmath>

namespace galaxy::sql {

namespace {

Result<bool> Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return Status::TypeError("string used in a boolean context: '" +
                               v.AsString() + "'");
  }
  return false;
}

Result<Value> Arithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError("arithmetic requires numeric operands");
  }
  bool integral =
      l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
  if (integral) {
    int64_t a = l.AsInt64();
    int64_t b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);  // integer division, sqlite-style
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default:
        break;
    }
  } else {
    double a = l.ToDouble().value();
    double b = r.ToDouble().value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case BinaryOp::kMod:
        if (b == 0.0) return Status::InvalidArgument("modulo by zero");
        return Value(std::fmod(a, b));
      default:
        break;
    }
  }
  return Status::Internal("non-arithmetic op in Arithmetic");
}

Result<Value> Comparison(BinaryOp op, const Value& l, const Value& r) {
  bool comparable = (l.is_numeric() && r.is_numeric()) ||
                    (l.type() == ValueType::kString &&
                     r.type() == ValueType::kString);
  if (!comparable) {
    return Status::TypeError("cannot compare " +
                             std::string(ValueTypeToString(l.type())) +
                             " with " + ValueTypeToString(r.type()));
  }
  bool lt = l < r;
  bool gt = r < l;
  bool eq = !lt && !gt;
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = eq;
      break;
    case BinaryOp::kNotEq:
      result = !eq;
      break;
    case BinaryOp::kLt:
      result = lt;
      break;
    case BinaryOp::kLtEq:
      result = lt || eq;
      break;
    case BinaryOp::kGt:
      result = gt;
      break;
    case BinaryOp::kGtEq:
      result = gt || eq;
      break;
    default:
      return Status::Internal("non-comparison op in Comparison");
  }
  return Value(result ? int64_t{1} : int64_t{0});
}

}  // namespace

Result<bool> ValueIsTrue(const Value& v) { return Truthy(v); }

Result<Value> EvalBinary(BinaryOp op, const Value& left, const Value& right) {
  switch (op) {
    case BinaryOp::kAnd: {
      // SQL three-valued logic: FALSE AND NULL = FALSE, NULL AND TRUE = NULL.
      if (!left.is_null()) {
        GALAXY_ASSIGN_OR_RETURN(bool l, Truthy(left));
        if (!l) return Value(int64_t{0});
      }
      if (!right.is_null()) {
        GALAXY_ASSIGN_OR_RETURN(bool r, Truthy(right));
        if (!r) return Value(int64_t{0});
      }
      if (left.is_null() || right.is_null()) return Value::Null();
      return Value(int64_t{1});
    }
    case BinaryOp::kOr: {
      if (!left.is_null()) {
        GALAXY_ASSIGN_OR_RETURN(bool l, Truthy(left));
        if (l) return Value(int64_t{1});
      }
      if (!right.is_null()) {
        GALAXY_ASSIGN_OR_RETURN(bool r, Truthy(right));
        if (r) return Value(int64_t{1});
      }
      if (left.is_null() || right.is_null()) return Value::Null();
      return Value(int64_t{0});
    }
    default:
      break;
  }
  if (left.is_null() || right.is_null()) return Value::Null();
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return Arithmetic(op, left, right);
    default:
      return Comparison(op, left, right);
  }
}

Result<Value> EvalUnary(UnaryOp op, const Value& operand) {
  if (operand.is_null()) return Value::Null();
  switch (op) {
    case UnaryOp::kNot: {
      GALAXY_ASSIGN_OR_RETURN(bool v, Truthy(operand));
      return Value(v ? int64_t{0} : int64_t{1});
    }
    case UnaryOp::kNegate:
      if (operand.type() == ValueType::kInt64) {
        return Value(-operand.AsInt64());
      }
      if (operand.type() == ValueType::kDouble) {
        return Value(-operand.AsDouble());
      }
      return Status::TypeError("cannot negate a string");
  }
  return Status::Internal("unknown unary op");
}

}  // namespace galaxy::sql
