#include "sql/parser.h"

#include <utility>
#include <vector>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace galaxy::sql {

namespace {

/// Recursive-descent parser over the token stream. Expression precedence
/// (low to high): OR, AND, NOT, comparison / IN / IS NULL, additive,
/// multiplicative, unary minus, primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                            ParseSelectChain());
    if (Check(TokenType::kSemicolon)) Advance();
    if (!Check(TokenType::kEnd)) {
      return Unexpected("end of statement");
    }
    return stmt;
  }

  /// Parses a SELECT optionally followed by UNION [ALL] members (the form
  /// allowed at statement level and inside subquery parentheses).
  Result<std::unique_ptr<SelectStmt>> ParseSelectChain() {
    GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect());
    SelectStmt* tail = stmt.get();
    while (MatchKeyword("UNION")) {
      bool all = MatchKeyword("ALL");
      GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> next, ParseSelect());
      tail->union_all = all;
      tail->union_next = std::move(next);
      tail = tail->union_next.get();
    }
    if (stmt->union_next != nullptr) {
      // ORDER BY / LIMIT on union members is not supported.
      for (SelectStmt* member = stmt.get(); member != nullptr;
           member = member->union_next.get()) {
        if (!member->order_by.empty() || member->limit.has_value()) {
          return Status::Unimplemented(
              "ORDER BY / LIMIT are not supported with UNION");
        }
      }
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool Match(TokenType type) {
    if (Check(type)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenType type, const char* what) {
    if (Match(type)) return Status::OK();
    return Status::ParseError(std::string("expected ") + what + " but found '" +
                              Peek().ToString() + "' at offset " +
                              std::to_string(Peek().position));
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError(std::string("expected ") + kw + " but found '" +
                              Peek().ToString() + "' at offset " +
                              std::to_string(Peek().position));
  }
  Status Unexpected(const char* what) {
    return Status::ParseError(std::string("expected ") + what +
                              " but found '" + Peek().ToString() +
                              "' at offset " + std::to_string(Peek().position));
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    GALAXY_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    // ON predicates accumulate per SELECT level; save the enclosing
    // statement's pending ones across a nested (subquery) parse.
    std::vector<ExprPtr> saved_filters = std::move(join_filters_);
    join_filters_.clear();
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = MatchKeyword("DISTINCT");
    if (MatchKeyword("ALL")) stmt->distinct = false;

    // Select list.
    do {
      SelectItem item;
      if (Match(TokenType::kStar)) {
        item.star = true;
      } else {
        GALAXY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          if (!Check(TokenType::kIdentifier)) return Unexpected("alias");
          item.alias = Peek().text;
          Advance();
        } else if (Check(TokenType::kIdentifier)) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt->items.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    GALAXY_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    // Comma joins and explicit CROSS/INNER JOIN ... ON are normalized to a
    // cross product with the ON predicates folded into WHERE.
    while (true) {
      TableRef ref;
      if (!Check(TokenType::kIdentifier)) return Unexpected("table name");
      ref.table_name = Peek().text;
      Advance();
      if (MatchKeyword("AS")) {
        if (!Check(TokenType::kIdentifier)) return Unexpected("alias");
        ref.alias = Peek().text;
        Advance();
      } else if (Check(TokenType::kIdentifier)) {
        ref.alias = Peek().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
      if (MatchKeyword("ON")) {
        GALAXY_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
        join_filters_.push_back(std::move(on));
      }
      if (Match(TokenType::kComma)) continue;
      if (MatchKeyword("CROSS") || MatchKeyword("INNER")) {
        GALAXY_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        continue;
      }
      if (MatchKeyword("JOIN")) continue;
      break;
    }

    if (MatchKeyword("WHERE")) {
      GALAXY_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    // Fold ON predicates into WHERE.
    for (ExprPtr& on : join_filters_) {
      stmt->where = stmt->where
                        ? MakeBinary(BinaryOp::kAnd, std::move(stmt->where),
                                     std::move(on))
                        : std::move(on);
    }
    join_filters_.clear();

    if (MatchKeyword("GROUP")) {
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        GALAXY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("HAVING")) {
      GALAXY_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("SKYLINE")) {
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("OF"));
      do {
        SkylineItem item;
        GALAXY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("MAX")) {
          item.maximize = true;
        } else if (MatchKeyword("MIN")) {
          item.maximize = false;
        } else {
          return Unexpected("MAX or MIN after skyline attribute");
        }
        stmt->skyline.push_back(std::move(item));
      } while (Match(TokenType::kComma));
      if (MatchKeyword("GAMMA")) {
        if (Check(TokenType::kFloat)) {
          stmt->skyline_gamma = Peek().float_value;
          Advance();
        } else if (Check(TokenType::kInteger)) {
          stmt->skyline_gamma = static_cast<double>(Peek().int_value);
          Advance();
        } else if (Check(TokenType::kIdentifier) &&
                   EqualsIgnoreCase(Peek().text, "RANK")) {
          stmt->skyline_rank = true;
          Advance();
        } else {
          return Unexpected("numeric GAMMA value or RANK");
        }
      }
    }
    if (MatchKeyword("ORDER")) {
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        GALAXY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (!Check(TokenType::kInteger)) return Unexpected("LIMIT count");
      stmt->limit = Peek().int_value;
      Advance();
    }
    join_filters_ = std::move(saved_filters);
    return stmt;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GALAXY_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    GALAXY_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (MatchKeyword("AND")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GALAXY_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->left = std::move(left);
      e->negated = negated;
      return ExprPtr(std::move(e));
    }
    // [NOT] LIKE / [NOT] IN (...)
    bool negated_in = false;
    bool negated_like = false;
    if (CheckKeyword("NOT")) {
      // Look ahead: NOT IN / NOT LIKE.
      size_t save = pos_;
      Advance();
      if (MatchKeyword("IN")) {
        negated_in = true;
      } else if (MatchKeyword("LIKE")) {
        negated_like = true;
      } else {
        pos_ = save;
      }
    }
    if (negated_like || MatchKeyword("LIKE")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->left = std::move(left);
      e->right = std::move(pattern);
      e->negated = negated_like;
      return ExprPtr(std::move(e));
    }
    if (negated_in || MatchKeyword("IN")) {
      GALAXY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      auto e = std::make_unique<Expr>();
      e->left = std::move(left);
      e->negated = negated_in;
      if (CheckKeyword("SELECT")) {
        GALAXY_ASSIGN_OR_RETURN(e->subquery, ParseSelectChain());
        e->kind = ExprKind::kInSubquery;
      } else {
        e->kind = ExprKind::kInList;
        do {
          GALAXY_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          e->in_list.push_back(std::move(v));
        } while (Match(TokenType::kComma));
      }
      GALAXY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::move(e));
    }
    // BETWEEN a AND b  =>  (left >= a AND left <= b); no NOT BETWEEN.
    if (MatchKeyword("BETWEEN")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("AND"));
      GALAXY_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr left_copy = CloneColumnOrFail(left.get());
      if (left_copy == nullptr) {
        return Status::Unimplemented(
            "BETWEEN is supported only on plain column references");
      }
      ExprPtr ge =
          MakeBinary(BinaryOp::kGtEq, std::move(left), std::move(lo));
      ExprPtr le =
          MakeBinary(BinaryOp::kLtEq, std::move(left_copy), std::move(hi));
      return MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }
    // Plain comparison operators.
    BinaryOp op;
    if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNotEq)) {
      op = BinaryOp::kNotEq;
    } else if (Match(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenType::kLtEq)) {
      op = BinaryOp::kLtEq;
    } else if (Match(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenType::kGtEq)) {
      op = BinaryOp::kGtEq;
    } else {
      return left;
    }
    GALAXY_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    GALAXY_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      GALAXY_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    GALAXY_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      GALAXY_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    if (Match(TokenType::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        Advance();
        return MakeLiteral(Value(Previous().int_value));
      }
      case TokenType::kFloat: {
        Advance();
        return MakeLiteral(Value(Previous().float_value));
      }
      case TokenType::kString: {
        Advance();
        return MakeLiteral(Value(Previous().text));
      }
      case TokenType::kLParen: {
        Advance();
        GALAXY_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        GALAXY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword:
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        // MIN/MAX double as aggregate function names.
        if (t.text == "MIN" || t.text == "MAX") {
          Advance();
          return ParseFunctionCall(Previous().text);
        }
        if (t.text == "CASE") {
          Advance();
          return ParseCase();
        }
        if (t.text == "EXISTS") {
          Advance();
          GALAXY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kExists;
          GALAXY_ASSIGN_OR_RETURN(e->subquery, ParseSelectChain());
          GALAXY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(std::move(e));
        }
        return Unexpected("expression");
      case TokenType::kIdentifier: {
        Advance();
        std::string first = Previous().text;
        if (Check(TokenType::kLParen)) {
          return ParseFunctionCall(first);
        }
        if (Match(TokenType::kDot)) {
          if (Check(TokenType::kIdentifier)) {
            std::string column = Peek().text;
            Advance();
            return MakeColumnRef(first, column);
          }
          // Allow keywords as column names after a qualifier (e.g. X.MIN).
          if (Check(TokenType::kKeyword)) {
            std::string column = Peek().text;
            Advance();
            return MakeColumnRef(first, column);
          }
          return Unexpected("column name after '.'");
        }
        return MakeColumnRef("", first);
      }
      default:
        return Unexpected("expression");
    }
  }

  // CASE [base] WHEN c THEN v [WHEN c THEN v]... [ELSE v] END
  // (the CASE keyword has already been consumed).
  Result<ExprPtr> ParseCase() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    if (!CheckKeyword("WHEN")) {
      GALAXY_ASSIGN_OR_RETURN(e->case_base, ParseExpr());
    }
    if (!CheckKeyword("WHEN")) {
      return Unexpected("WHEN in CASE expression");
    }
    while (MatchKeyword("WHEN")) {
      GALAXY_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      GALAXY_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      GALAXY_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->case_when.push_back(std::move(when));
      e->case_then.push_back(std::move(then));
    }
    if (MatchKeyword("ELSE")) {
      GALAXY_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
    }
    GALAXY_RETURN_IF_ERROR(ExpectKeyword("END"));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseFunctionCall(std::string name) {
    GALAXY_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFunctionCall;
    for (char& c : name) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    e->function = std::move(name);
    if (Match(TokenType::kStar)) {
      e->star_arg = true;
    } else if (!Check(TokenType::kRParen)) {
      do {
        GALAXY_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        e->args.push_back(std::move(arg));
      } while (Match(TokenType::kComma));
    }
    GALAXY_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::move(e));
  }

  // Clones a plain column reference (used to expand BETWEEN); returns null
  // for anything more complex.
  static ExprPtr CloneColumnOrFail(const Expr* e) {
    if (e == nullptr || e->kind != ExprKind::kColumnRef) return nullptr;
    return MakeColumnRef(e->table, e->column);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<ExprPtr> join_filters_;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> Parse(const std::string& sql) {
  GALAXY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace galaxy::sql
