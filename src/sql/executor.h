#ifndef GALAXY_SQL_EXECUTOR_H_
#define GALAXY_SQL_EXECUTOR_H_

#include "common/status.h"
#include "relation/table.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace galaxy::sql {

/// Optimizer/executor counters (for tests and tuning).
struct ExecStats {
  /// WHERE conjuncts pushed below the cross product (multi-table FROM).
  uint64_t pushed_filters = 0;
  /// Base-table rows removed by pushed filters before the join.
  uint64_t base_rows_filtered = 0;
  /// Row combinations actually enumerated by the cross product.
  uint64_t cross_product_rows = 0;
  /// Constant-folding rewrites applied.
  uint64_t folded_constants = 0;
  /// Two-table FROMs executed as a hash equi-join instead of a cross
  /// product (an A.x = B.y conjunct became the join key).
  uint64_t hash_joins = 0;
};

/// Executes a bound-and-parsed SELECT statement against the database.
/// Pipeline: constant folding -> FROM (cross product of base tables, with
/// single-table WHERE conjuncts pushed below the join) -> WHERE -> GROUP
/// BY / aggregates -> HAVING -> SKYLINE OF (record or aggregate skyline)
/// -> projection (+DISTINCT) -> ORDER BY -> LIMIT -> UNION combination.
/// Subqueries must be uncorrelated (they are evaluated once and
/// materialized).
///
/// The statement is mutated by binding (column slots / aggregate slots), so
/// a SelectStmt may be executed only once; parse again to re-run.
Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            ExecStats* stats = nullptr);

}  // namespace galaxy::sql

#endif  // GALAXY_SQL_EXECUTOR_H_
