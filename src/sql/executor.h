#pragma once

#include "common/status.h"
#include "core/exec_context.h"
#include "core/options.h"
#include "relation/table.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace galaxy::sql {

/// Per-query execution controls, threaded from the caller down to the
/// operators (see core/exec_context.h for the control-plane semantics).
struct ExecOptions {
  /// Optional control plane: rows streamed through the executor and record
  /// comparisons inside the skyline operators are charged to it; once it
  /// stops, the query returns its trip Status (kCancelled /
  /// kDeadlineExceeded / kResourceExhausted). Null = unbounded.
  core::ExecutionContext* exec = nullptr;
  /// When the control plane trips inside an aggregate-skyline step
  /// (SKYLINE OF ... GROUP BY) for a degradable reason, return the sound
  /// over-approximation instead of an error; ExecStats::skyline_quality
  /// reports kApproximateSuperset. Trips outside that step still error:
  /// a half-streamed WHERE has no sound partial answer.
  bool allow_approximate = false;
  /// Forces tuple-at-a-time evaluation, disabling the single-table batch
  /// paths (selection-vector predicates, typed aggregate folds, columnar
  /// projection gather). The scalar pipeline is the behavioral reference
  /// the batch engine is differentially tested against; results must be
  /// identical either way.
  bool force_scalar = false;
};

/// Optimizer/executor counters (for tests and tuning).
struct ExecStats {
  /// WHERE conjuncts pushed below the cross product (multi-table FROM).
  uint64_t pushed_filters = 0;
  /// Base-table rows removed by pushed filters before the join.
  uint64_t base_rows_filtered = 0;
  /// Row combinations actually enumerated by the cross product.
  uint64_t cross_product_rows = 0;
  /// Constant-folding rewrites applied.
  uint64_t folded_constants = 0;
  /// Two-table FROMs executed as a hash equi-join instead of a cross
  /// product (an A.x = B.y conjunct became the join key).
  uint64_t hash_joins = 0;
  /// WHERE conjuncts executed as vectorized selection kernels over column
  /// slices (single-table scans only).
  uint64_t vectorized_predicates = 0;
  /// Aggregate accumulations folded over typed column arrays instead of
  /// per-row boxed evaluation (one count per aggregate per group batch).
  uint64_t vectorized_folds = 0;
  /// Projections materialized by columnar gather, bypassing per-row
  /// expression evaluation and output re-inference.
  uint64_t columnar_projections = 0;
  /// Double cells gathered into dense per-group skyline buffers (the
  /// executor -> core::Group handoff is a single copy per cell).
  uint64_t group_gather_cells = 0;
  /// Quality of the aggregate-skyline step, if the query had one:
  /// kApproximateSuperset after a graceful degradation (see ExecOptions).
  core::ResultQuality skyline_quality = core::ResultQuality::kExact;
  /// Work counters of the aggregate-skyline step, if the query had one
  /// (all zero otherwise). The serving layer aggregates these into its
  /// metrics registry.
  core::AggregateSkylineStats skyline_stats;
};

/// Executes a bound-and-parsed SELECT statement against the database.
/// Pipeline: constant folding -> FROM (cross product of base tables, with
/// single-table WHERE conjuncts pushed below the join) -> WHERE -> GROUP
/// BY / aggregates -> HAVING -> SKYLINE OF (record or aggregate skyline)
/// -> projection (+DISTINCT) -> ORDER BY -> LIMIT -> UNION combination.
/// Subqueries must be uncorrelated (they are evaluated once and
/// materialized).
///
/// The statement is mutated by binding (column slots / aggregate slots), so
/// a SelectStmt may be executed only once; parse again to re-run.
Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            ExecStats* stats = nullptr);

/// Like ExecuteSelect, with per-query execution controls (deadline,
/// cancellation, budgets, graceful degradation).
Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            const ExecOptions& options, ExecStats* stats);

}  // namespace galaxy::sql

