#include "sql/optimizer.h"

#include <utility>

#include "sql/value_ops.h"

namespace galaxy::sql {

namespace {

bool IsLiteral(const Expr* e) {
  return e != nullptr && e->kind == ExprKind::kLiteral;
}

// Literal truthiness, or no value for NULL / non-literals / strings.
enum class LiteralTruth { kTrue, kFalse, kNull, kUnknown };

LiteralTruth TruthOf(const Expr* e) {
  if (!IsLiteral(e)) return LiteralTruth::kUnknown;
  if (e->literal.is_null()) return LiteralTruth::kNull;
  auto truth = ValueIsTrue(e->literal);
  if (!truth.ok()) return LiteralTruth::kUnknown;  // string literal
  return *truth ? LiteralTruth::kTrue : LiteralTruth::kFalse;
}

// Folds one node (children already folded); returns the replacement or
// null when unchanged.
ExprPtr FoldNode(ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kUnary: {
      if (!IsLiteral(e->left.get())) return nullptr;
      auto folded = EvalUnary(e->unary_op, e->left->literal);
      if (!folded.ok()) return nullptr;  // preserve runtime error semantics
      return MakeLiteral(std::move(folded).value());
    }
    case ExprKind::kBinary: {
      // Logic short-circuits with one literal side.
      if (e->binary_op == BinaryOp::kAnd || e->binary_op == BinaryOp::kOr) {
        bool is_and = e->binary_op == BinaryOp::kAnd;
        LiteralTruth left = TruthOf(e->left.get());
        LiteralTruth right = TruthOf(e->right.get());
        if (is_and) {
          if (left == LiteralTruth::kFalse || right == LiteralTruth::kFalse) {
            return MakeLiteral(Value(int64_t{0}));
          }
          if (left == LiteralTruth::kTrue) return std::move(e->right);
          if (right == LiteralTruth::kTrue) return std::move(e->left);
        } else {
          if (left == LiteralTruth::kTrue || right == LiteralTruth::kTrue) {
            return MakeLiteral(Value(int64_t{1}));
          }
          if (left == LiteralTruth::kFalse) return std::move(e->right);
          if (right == LiteralTruth::kFalse) return std::move(e->left);
        }
        // NULL op NULL and similar all-literal cases fold below.
      }
      if (!IsLiteral(e->left.get()) || !IsLiteral(e->right.get())) {
        return nullptr;
      }
      auto folded =
          EvalBinary(e->binary_op, e->left->literal, e->right->literal);
      if (!folded.ok()) return nullptr;
      return MakeLiteral(std::move(folded).value());
    }
    case ExprKind::kIsNull: {
      if (!IsLiteral(e->left.get())) return nullptr;
      bool is_null = e->left->literal.is_null();
      bool value = e->negated ? !is_null : is_null;
      return MakeLiteral(Value(value ? int64_t{1} : int64_t{0}));
    }
    case ExprKind::kCase: {
      if (e->case_base != nullptr) return nullptr;  // simple CASE: leave
      // Drop literal-FALSE arms; a literal-TRUE arm ends the CASE.
      std::vector<ExprPtr> when;
      std::vector<ExprPtr> then;
      bool changed = false;
      for (size_t i = 0; i < e->case_when.size(); ++i) {
        LiteralTruth truth = TruthOf(e->case_when[i].get());
        if (truth == LiteralTruth::kFalse || truth == LiteralTruth::kNull) {
          changed = true;  // arm can never fire
          continue;
        }
        if (truth == LiteralTruth::kTrue && when.empty()) {
          // First live arm always fires.
          return std::move(e->case_then[i]);
        }
        when.push_back(std::move(e->case_when[i]));
        then.push_back(std::move(e->case_then[i]));
      }
      if (changed && when.empty()) {
        if (e->case_else != nullptr) return std::move(e->case_else);
        return MakeLiteral(Value::Null());
      }
      // Reinstall the (possibly pruned) arms; the caller detects in-place
      // pruning by comparing arm counts.
      e->case_when = std::move(when);
      e->case_then = std::move(then);
      return nullptr;
    }
    default:
      return nullptr;
  }
}

size_t FoldRecursive(ExprPtr& e) {
  if (e == nullptr) return 0;
  size_t count = 0;
  switch (e->kind) {
    case ExprKind::kUnary:
      count += FoldRecursive(e->left);
      break;
    case ExprKind::kBinary:
      count += FoldRecursive(e->left);
      count += FoldRecursive(e->right);
      break;
    case ExprKind::kFunctionCall:
      for (ExprPtr& a : e->args) count += FoldRecursive(a);
      break;
    case ExprKind::kInSubquery:
    case ExprKind::kIsNull:
      count += FoldRecursive(e->left);
      break;
    case ExprKind::kLike:
      count += FoldRecursive(e->left);
      count += FoldRecursive(e->right);
      break;
    case ExprKind::kInList:
      count += FoldRecursive(e->left);
      for (ExprPtr& v : e->in_list) count += FoldRecursive(v);
      break;
    case ExprKind::kCase:
      count += FoldRecursive(e->case_base);
      for (ExprPtr& w : e->case_when) count += FoldRecursive(w);
      for (ExprPtr& t : e->case_then) count += FoldRecursive(t);
      count += FoldRecursive(e->case_else);
      break;
    default:
      break;
  }
  size_t arms_before =
      e->kind == ExprKind::kCase ? e->case_when.size() : 0;
  ExprPtr replacement = FoldNode(e);
  if (replacement != nullptr) {
    e = std::move(replacement);
    ++count;
  } else if (e->kind == ExprKind::kCase &&
             e->case_when.size() != arms_before) {
    ++count;  // in-place CASE arm pruning
  }
  return count;
}

}  // namespace

size_t FoldConstants(ExprPtr& expr) { return FoldRecursive(expr); }

size_t FoldStatement(SelectStmt& stmt) {
  size_t count = 0;
  for (SelectItem& item : stmt.items) {
    if (!item.star) count += FoldConstants(item.expr);
  }
  count += FoldConstants(stmt.where);
  for (ExprPtr& g : stmt.group_by) count += FoldConstants(g);
  count += FoldConstants(stmt.having);
  for (SkylineItem& item : stmt.skyline) count += FoldConstants(item.expr);
  for (OrderItem& item : stmt.order_by) count += FoldConstants(item.expr);
  if (stmt.union_next != nullptr) count += FoldStatement(*stmt.union_next);
  return count;
}

std::vector<ExprPtr> SplitConjuncts(ExprPtr where) {
  std::vector<ExprPtr> out;
  if (where == nullptr) return out;
  if (where->kind == ExprKind::kBinary &&
      where->binary_op == BinaryOp::kAnd) {
    std::vector<ExprPtr> left = SplitConjuncts(std::move(where->left));
    std::vector<ExprPtr> right = SplitConjuncts(std::move(where->right));
    for (ExprPtr& e : left) out.push_back(std::move(e));
    for (ExprPtr& e : right) out.push_back(std::move(e));
    return out;
  }
  out.push_back(std::move(where));
  return out;
}

ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (ExprPtr& e : conjuncts) {
    result = result == nullptr
                 ? std::move(e)
                 : MakeBinary(BinaryOp::kAnd, std::move(result), std::move(e));
  }
  return result;
}

}  // namespace galaxy::sql
