#ifndef GALAXY_SQL_CATALOG_H_
#define GALAXY_SQL_CATALOG_H_

#include <map>
#include <string>

#include "common/status.h"
#include "relation/table.h"

namespace galaxy::sql {

struct ExecOptions;  // sql/executor.h
struct ExecStats;    // sql/executor.h

/// A named collection of in-memory tables plus the query entry point — the
/// embedded-database facade of the SQL substrate.
///
///   Database db;
///   db.Register("movies", MovieTable());
///   GALAXY_ASSIGN_OR_RETURN(Table result,
///                           db.Query("SELECT * FROM movies WHERE Pop > 400"));
class Database {
 public:
  Database() = default;

  /// Registers (or replaces) a table under a case-insensitive name.
  void Register(const std::string& name, Table table);

  /// Removes a table; missing names are ignored.
  void Unregister(const std::string& name);

  /// Looks up a table by case-insensitive name.
  Result<const Table*> GetTable(const std::string& name) const;

  /// Parses and executes one SELECT statement.
  Result<Table> Query(const std::string& sql) const;

  /// Parses and executes one SELECT statement under per-query execution
  /// controls (sql/executor.h: deadline, cancellation, budgets, graceful
  /// degradation). `stats`, when non-null, receives executor counters
  /// including the skyline result quality.
  Result<Table> Query(const std::string& sql, const ExecOptions& options,
                      ExecStats* stats = nullptr) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  // Keyed by lower-cased name.
  std::map<std::string, Table> tables_;
};

}  // namespace galaxy::sql

#endif  // GALAXY_SQL_CATALOG_H_
