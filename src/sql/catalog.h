#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "relation/table.h"

namespace galaxy::sql {

struct ExecOptions;  // sql/executor.h
struct ExecStats;    // sql/executor.h

/// A named collection of in-memory tables plus the query entry point — the
/// embedded-database facade of the SQL substrate.
///
///   Database db;
///   db.Register("movies", MovieTable());
///   GALAXY_ASSIGN_OR_RETURN(Table result,
///                           db.Query("SELECT * FROM movies WHERE Pop > 400"));
///
/// Thread safety: every method may be called concurrently from any number
/// of threads. Tables are copy-on-update snapshots: Register installs a new
/// immutable `shared_ptr<const Table>`, and readers (GetTable, Query) keep
/// the snapshot they resolved alive for as long as they need it, so a
/// concurrent Register/Unregister never invalidates an in-flight query —
/// the query simply keeps reading the version it started with. There are no
/// multi-table transactions: a query joining two tables may observe table A
/// before and table B after a concurrent pair of updates.
///
/// Each Register assigns the table a version drawn from a database-wide
/// monotonic counter, so per-table versions strictly increase across
/// replace (and even across Unregister + re-Register). (normalized SQL,
/// referenced-table versions) is therefore a sound cache key: any update
/// changes the version and invalidates dependent entries (the serving
/// layer's result cache, src/server/result_cache.h, is built on this).
class Database {
 public:
  Database() = default;

  /// Movable so factories can return a populated database by value. Moving
  /// is NOT thread-safe with respect to concurrent users of either operand
  /// — move only during single-threaded setup/teardown. (Excluded from the
  /// thread-safety analysis: it locks both operands' mutexes, which the
  /// analysis cannot express across objects.)
  Database(Database&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  Database& operator=(Database&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers (or replaces) a table under a case-insensitive name.
  /// Returns the table's new version (monotonically increasing across the
  /// whole database; never 0).
  uint64_t Register(const std::string& name, Table table);

  /// Removes a table; missing names are ignored.
  void Unregister(const std::string& name);

  /// Looks up a table snapshot by case-insensitive name. The snapshot is
  /// immutable; holding the returned shared_ptr keeps it valid regardless
  /// of concurrent Register/Unregister calls.
  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;

  /// Current version of a table (see Register), NotFound if absent.
  Result<uint64_t> TableVersion(const std::string& name) const;

  /// Lower-cased names of all registered tables, ascending.
  std::vector<std::string> TableNames() const;

  /// One named snapshot per registered table, taken under a single lock
  /// acquisition — a consistent point-in-time listing (TableNames +
  /// GetTable in a loop could interleave with a concurrent Register).
  /// The durability layer serializes this as the snapshot file.
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>>
  SnapshotTables() const;

  /// Parses and executes one SELECT statement.
  Result<Table> Query(const std::string& sql) const;

  /// Parses and executes one SELECT statement under per-query execution
  /// controls (sql/executor.h: deadline, cancellation, budgets, graceful
  /// degradation). `stats`, when non-null, receives executor counters
  /// including the skyline result quality.
  Result<Table> Query(const std::string& sql, const ExecOptions& options,
                      ExecStats* stats = nullptr) const;

  size_t num_tables() const;

 private:
  struct Entry {
    std::shared_ptr<const Table> table;
    uint64_t version = 0;
  };

  mutable common::SharedMutex mutex_;
  uint64_t next_version_ GUARDED_BY(mutex_) = 0;
  // Keyed by lower-cased name.
  std::map<std::string, Entry> tables_ GUARDED_BY(mutex_);
};

}  // namespace galaxy::sql
