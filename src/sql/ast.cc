#include "sql/ast.h"

#include "common/str_util.h"

namespace galaxy::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT " : "-") + left->ToString();
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpToString(binary_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function + "(";
      if (star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
    case ExprKind::kInSubquery:
      return left->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = left->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return left->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return left->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             right->ToString();
    case ExprKind::kCase: {
      std::string out = "CASE";
      if (case_base) out += " " + case_base->ToString();
      for (size_t i = 0; i < case_when.size(); ++i) {
        out += " WHEN " + case_when[i]->ToString() + " THEN " +
               case_then[i]->ToString();
      }
      if (case_else) out += " ELSE " + case_else->ToString();
      return out + " END";
    }
    case ExprKind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             subquery->ToString() + ")";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table_name;
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!skyline.empty()) {
    out += " SKYLINE OF ";
    for (size_t i = 0; i < skyline.size(); ++i) {
      if (i > 0) out += ", ";
      out += skyline[i].expr->ToString();
      out += skyline[i].maximize ? " MAX" : " MIN";
    }
    if (skyline_gamma.has_value()) {
      out += " GAMMA " + FormatDouble(*skyline_gamma);
    }
    if (skyline_rank) out += " GAMMA RANK";
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (union_next) {
    out += union_all ? " UNION ALL " : " UNION ";
    out += union_next->ToString();
  }
  return out;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

}  // namespace galaxy::sql
