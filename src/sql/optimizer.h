#pragma once

#include "sql/ast.h"

namespace galaxy::sql {

/// Rule-based expression rewrites applied before binding/execution:
///
///  * constant folding: literal-only arithmetic, comparisons and logic
///    collapse to literals ("1.0 * 30 / 32" -> 0.9375); folding never
///    converts a would-be runtime error (division by zero) into a plan
///    error — such nodes are left untouched;
///  * logic simplification with SQL three-valued semantics:
///    TRUE AND x -> x, FALSE AND x -> FALSE, TRUE OR x -> TRUE,
///    FALSE OR x -> x, NOT <literal> -> literal;
///  * CASE pruning: searched CASE arms with literal FALSE conditions are
///    dropped; a leading literal TRUE arm replaces the whole CASE.
///
/// Returns the number of rewrites performed (0 = tree unchanged).
size_t FoldConstants(ExprPtr& expr);

/// Applies FoldConstants to every expression of a statement (select list,
/// WHERE, GROUP BY, HAVING, skyline items, ORDER BY, and union members).
/// Returns the total rewrite count.
size_t FoldStatement(SelectStmt& stmt);

/// Splits a WHERE tree into its top-level AND conjuncts (in evaluation
/// order). The tree is consumed; ownership of the conjuncts moves to the
/// output vector. Reassemble with ConjoinAll.
std::vector<ExprPtr> SplitConjuncts(ExprPtr where);

/// ANDs the expressions back together (returns null for an empty list).
ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts);

}  // namespace galaxy::sql

