#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"

namespace galaxy::sql {

struct SelectStmt;
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,
  kInSubquery,  ///< expr [NOT] IN (SELECT ...)
  kInList,      ///< expr [NOT] IN (v1, v2, ...)
  kIsNull,      ///< expr IS [NOT] NULL
  kLike,        ///< expr [NOT] LIKE pattern ('%' any run, '_' one char)
  kCase,        ///< CASE [base] WHEN .. THEN .. [ELSE ..] END
  kExists,      ///< EXISTS (SELECT ...)
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNotEq,
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

const char* BinaryOpToString(BinaryOp op);

/// One SQL expression node. A single struct (rather than a class hierarchy)
/// keeps the recursive-descent parser and the tree-walking evaluator
/// compact; `kind` selects which members are meaningful. The binder
/// annotates kColumnRef nodes with `bound_slot` and aggregate kFunctionCall
/// nodes with `agg_slot` before evaluation.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   ///< optional qualifier ("X" in X.num)
  std::string column;
  int bound_slot = -1;  ///< resolved input-row index (set by the binder)

  // kUnary / kBinary (unary uses `left` only)
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAnd;
  ExprPtr left;
  ExprPtr right;

  // kFunctionCall
  std::string function;  ///< upper-cased name (COUNT, SUM, AVG, MIN, MAX, ABS)
  std::vector<ExprPtr> args;
  bool star_arg = false;  ///< COUNT(*)
  int agg_slot = -1;      ///< aggregate result index (set by the binder)

  // kInSubquery / kInList / kIsNull / kLike / kExists
  std::unique_ptr<SelectStmt> subquery;
  std::vector<ExprPtr> in_list;
  bool negated = false;

  // kCase (a searched CASE has no case_base; a simple CASE compares
  // case_base against each WHEN value)
  ExprPtr case_base;
  std::vector<ExprPtr> case_when;
  std::vector<ExprPtr> case_then;
  ExprPtr case_else;

  /// Renders the expression back to SQL-ish text (diagnostics and tests).
  std::string ToString() const;
};

/// One SELECT-list entry; `star` denotes a bare `*`.
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;
};

/// A base-table reference in FROM, with optional alias.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< empty = table_name

  const std::string& effective_alias() const {
    return alias.empty() ? table_name : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// One attribute of the SKYLINE OF clause (the paper's syntax extension,
/// Examples 1 and 3): `SKYLINE OF Pop MAX, Qual MAX [GAMMA 0.6]`.
struct SkylineItem {
  ExprPtr expr;         ///< must bind to a numeric column
  bool maximize = true;
};

/// A parsed SELECT statement of the supported subset:
///   SELECT [DISTINCT] items FROM t1 [alias], t2 [alias], ...
///     [WHERE expr] [GROUP BY exprs] [HAVING expr]
///     [SKYLINE OF col MAX|MIN, ... [GAMMA x]]
///     [ORDER BY exprs [ASC|DESC]] [LIMIT n]
/// A SKYLINE OF clause without GROUP BY filters records (the traditional
/// skyline); with GROUP BY it computes the aggregate skyline over the
/// groups (Definition 2).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<SkylineItem> skyline;
  std::optional<double> skyline_gamma;
  /// SKYLINE OF ... GAMMA RANK (Section 2.2's parameter-free mode): with
  /// GROUP BY, instead of filtering at a fixed γ, emit every group that can
  /// appear in some γ-skyline, ordered by the minimal γ admitting it.
  bool skyline_rank = false;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// UNION chaining: the next SELECT of a `a UNION [ALL] b UNION c` chain.
  /// ORDER BY / LIMIT are not supported on union members.
  std::unique_ptr<SelectStmt> union_next;
  bool union_all = false;

  std::string ToString() const;
};

/// Convenience constructors used by the parser and tests.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);

}  // namespace galaxy::sql

