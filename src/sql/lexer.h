#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace galaxy::sql {

/// Tokenizes a SQL string. Keywords are case-insensitive; identifiers keep
/// their original casing (matched case-insensitively later). Supports
/// `--` line comments. Returns a ParseError on unknown characters or
/// unterminated strings. The final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (upper-cased) is one of the recognized SQL keywords.
bool IsKeyword(const std::string& upper_word);

}  // namespace galaxy::sql

