#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace galaxy::sql {

/// Parses one SELECT statement (optionally ';'-terminated) of the supported
/// SQL subset into an AST. Returns a ParseError with the offending token
/// position on malformed input.
Result<std::unique_ptr<SelectStmt>> Parse(const std::string& sql);

}  // namespace galaxy::sql

