#pragma once

#include <string>
#include <vector>

namespace galaxy::sql {

/// Generates the paper's direct-SQL aggregate skyline (Algorithm 1),
/// generalized to d MAX attributes: selects the distinct `class_column`
/// values NOT appearing as the dominated side (X) of any group pair whose
/// record-domination ratio exceeds `gamma`. The table must carry a
/// `num_column` holding each record's group cardinality (as Algorithm 1
/// requires).
///
/// Note: the query implements "p > γ" only; Definition 3's special case
/// "p = 1" coincides with it for every γ in [0.5, 1), so the SQL result
/// matches the native operator except at γ = 1.
std::string BuildAggregateSkylineSql(const std::string& table_name,
                                     const std::string& class_column,
                                     const std::string& num_column,
                                     const std::vector<std::string>& attributes,
                                     double gamma);

/// Generates the record-dominance predicate "Y dominates X" over the given
/// attributes (all MAX): AND of Y.a >= X.a plus OR of Y.a > X.a, expanded
/// to the 2-attribute disjunctive form of Algorithm 1 when d == 2.
std::string BuildDominancePredicate(const std::vector<std::string>& attributes,
                                    const std::string& left_alias,
                                    const std::string& right_alias);

}  // namespace galaxy::sql

