#pragma once

#include "common/status.h"
#include "relation/value.h"
#include "sql/ast.h"

namespace galaxy::sql {

/// Applies a binary SQL operator to two runtime values. Semantics:
///  * Any NULL operand yields NULL (for logic ops, SQL-style: NULL AND
///    FALSE = FALSE, NULL OR TRUE = TRUE).
///  * Arithmetic requires numeric operands; two integers stay integral
///    (integer division, like sqlite), otherwise the result is a double.
///  * Division / modulo by zero is an error.
///  * Comparisons promote int vs double; comparing a number with a string
///    is a type error.
///  * Logic treats 0 / 0.0 as false and any other numeric as true.
Result<Value> EvalBinary(BinaryOp op, const Value& left, const Value& right);

/// Applies NOT or unary minus.
Result<Value> EvalUnary(UnaryOp op, const Value& operand);

/// SQL truthiness: NULL and zero are false, other numerics true; strings
/// are a type error.
Result<bool> ValueIsTrue(const Value& v);

}  // namespace galaxy::sql

