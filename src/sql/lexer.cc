#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace galaxy::sql {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end-of-input";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kPercent:
      return "%";
    case TokenType::kEq:
      return "=";
    case TokenType::kNotEq:
      return "!=";
    case TokenType::kLt:
      return "<";
    case TokenType::kLtEq:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGtEq:
      return ">=";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kKeyword:
    case TokenType::kIdentifier:
      return text;
    case TokenType::kInteger:
      return std::to_string(int_value);
    case TokenType::kFloat:
      return FormatDouble(float_value);
    case TokenType::kString:
      return "'" + text + "'";
    default:
      return TokenTypeToString(type);
  }
}

bool IsKeyword(const std::string& upper_word) {
  static constexpr std::array kKeywords = {
      "SELECT", "DISTINCT", "FROM",  "WHERE", "GROUP",  "BY",     "HAVING",
      "ORDER",  "ASC",      "DESC",  "LIMIT", "AS",     "AND",    "OR",
      "NOT",    "IN",       "NULL",  "IS",    "JOIN",   "ON",     "INNER",
      "CROSS",  "BETWEEN",  "LIKE",  "CASE",  "WHEN",   "THEN",   "ELSE",
      "END",    "EXISTS",   "UNION", "ALL",   "OFFSET", "SKYLINE", "OF",
      "MIN",    "MAX",      "GAMMA",
  };
  for (const char* k : kKeywords) {
    if (upper_word == k) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto make = [&](TokenType type, size_t pos) {
    Token t;
    t.type = type;
    t.position = pos;
    return t;
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      // Numeric literal: digits, optional fraction and exponent.
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (input[exp] == '+' || input[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(input[exp]))) {
          is_float = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      std::string text = input.substr(start, i - start);
      Token t = make(is_float ? TokenType::kFloat : TokenType::kInteger, start);
      if (is_float) {
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = AsciiUpper(word);
      Token t = make(IsKeyword(upper) ? TokenType::kKeyword
                                      : TokenType::kIdentifier,
                     start);
      t.text = IsKeyword(upper) ? upper : word;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t = make(TokenType::kString, start);
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuation and operators.
    auto two = [&](char second) {
      return i + 1 < n && input[i + 1] == second;
    };
    switch (c) {
      case ',':
        tokens.push_back(make(TokenType::kComma, start));
        ++i;
        break;
      case '.':
        tokens.push_back(make(TokenType::kDot, start));
        ++i;
        break;
      case ';':
        tokens.push_back(make(TokenType::kSemicolon, start));
        ++i;
        break;
      case '(':
        tokens.push_back(make(TokenType::kLParen, start));
        ++i;
        break;
      case ')':
        tokens.push_back(make(TokenType::kRParen, start));
        ++i;
        break;
      case '*':
        tokens.push_back(make(TokenType::kStar, start));
        ++i;
        break;
      case '+':
        tokens.push_back(make(TokenType::kPlus, start));
        ++i;
        break;
      case '-':
        tokens.push_back(make(TokenType::kMinus, start));
        ++i;
        break;
      case '/':
        tokens.push_back(make(TokenType::kSlash, start));
        ++i;
        break;
      case '%':
        tokens.push_back(make(TokenType::kPercent, start));
        ++i;
        break;
      case '=':
        tokens.push_back(make(TokenType::kEq, start));
        i += two('=') ? 2 : 1;
        break;
      case '!':
        if (two('=')) {
          tokens.push_back(make(TokenType::kNotEq, start));
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (two('=')) {
          tokens.push_back(make(TokenType::kLtEq, start));
          i += 2;
        } else if (two('>')) {
          tokens.push_back(make(TokenType::kNotEq, start));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kLt, start));
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          tokens.push_back(make(TokenType::kGtEq, start));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kGt, start));
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back(make(TokenType::kEnd, n));
  return tokens;
}

}  // namespace galaxy::sql
