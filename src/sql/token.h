#pragma once

#include <cstdint>
#include <string>

namespace galaxy::sql {

/// Lexical token kinds of the SQL subset. Keywords are folded into
/// kKeyword with the upper-cased text as the token's `text`.
enum class TokenType {
  kEnd,
  kKeyword,     ///< SELECT, FROM, WHERE, ... (text upper-cased)
  kIdentifier,  ///< table / column / alias names (original casing)
  kInteger,     ///< integer literal
  kFloat,       ///< floating-point literal
  kString,      ///< 'single-quoted' string literal (unescaped)
  kComma,
  kDot,
  kSemicolon,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        ///< = or ==
  kNotEq,     ///< != or <>
  kLt,
  kLtEq,
  kGt,
  kGtEq,
};

const char* TokenTypeToString(TokenType type);

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      ///< identifier/keyword/string payload
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  ///< byte offset in the query string

  std::string ToString() const;
};

}  // namespace galaxy::sql

