#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string_view>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/aggregate_skyline.h"
#include "core/group.h"
#include "skyline/skyline.h"
#include "sql/optimizer.h"
#include "sql/value_ops.h"

namespace galaxy::sql {

namespace {

// A row assembled from the FROM cross product: borrowed pointers into the
// base tables (no copying on the join hot path).
using InputRow = std::vector<const Value*>;

struct SlotInfo {
  std::string table_alias;  // effective alias of the owning table
  std::string column;
  ValueType type;
};

bool NameEq(const std::string& a, const std::string& b) {
  return EqualsIgnoreCase(a, b);
}

// ---------------------------------------------------------------------------
// Binder: resolves column references to input slots and collects aggregate
// function calls.
// ---------------------------------------------------------------------------

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

class Binder {
 public:
  explicit Binder(std::vector<SlotInfo> slots) : slots_(std::move(slots)) {}

  const std::vector<SlotInfo>& slots() const { return slots_; }
  const std::vector<Expr*>& aggregates() const { return aggregates_; }

  Result<int> Resolve(const std::string& table,
                      const std::string& column) const {
    int found = -1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!table.empty() && !NameEq(slots_[i].table_alias, table)) continue;
      if (!NameEq(slots_[i].column, column)) continue;
      if (found != -1) {
        return Status::InvalidArgument("ambiguous column: " + column);
      }
      found = static_cast<int>(i);
    }
    if (found == -1) {
      std::string qualified = table.empty() ? column : table + "." + column;
      return Status::NotFound("unknown column: " + qualified);
    }
    return found;
  }

  // Binds `e`, recording aggregate calls. `allow_aggregates` is false
  // inside aggregate arguments and in WHERE.
  Status Bind(Expr* e, bool allow_aggregates) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kColumnRef: {
        GALAXY_ASSIGN_OR_RETURN(e->bound_slot, Resolve(e->table, e->column));
        return Status::OK();
      }
      case ExprKind::kUnary:
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kBinary:
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        return Bind(e->right.get(), allow_aggregates);
      case ExprKind::kFunctionCall: {
        if (IsAggregateFunction(e->function)) {
          if (!allow_aggregates) {
            return Status::InvalidArgument(
                "aggregate function not allowed here: " + e->function);
          }
          if (!e->star_arg) {
            if (e->args.size() != 1) {
              return Status::InvalidArgument(e->function +
                                             " takes one argument");
            }
            GALAXY_RETURN_IF_ERROR(
                Bind(e->args[0].get(), /*allow_aggregates=*/false));
          } else if (e->function != "COUNT") {
            return Status::InvalidArgument(e->function +
                                           "(*) is not supported");
          }
          e->agg_slot = static_cast<int>(aggregates_.size());
          aggregates_.push_back(e);
          return Status::OK();
        }
        // Scalar functions.
        if (e->function == "ABS" || e->function == "ROUND") {
          if (e->args.size() != 1 || e->star_arg) {
            return Status::InvalidArgument(e->function +
                                           " takes one argument");
          }
          return Bind(e->args[0].get(), allow_aggregates);
        }
        return Status::Unimplemented("unknown function: " + e->function);
      }
      case ExprKind::kInSubquery:
        // The subquery is bound and executed in its own scope.
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kInList: {
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        for (ExprPtr& v : e->in_list) {
          GALAXY_RETURN_IF_ERROR(Bind(v.get(), allow_aggregates));
        }
        return Status::OK();
      }
      case ExprKind::kIsNull:
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kLike:
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        return Bind(e->right.get(), allow_aggregates);
      case ExprKind::kCase: {
        if (e->case_base != nullptr) {
          GALAXY_RETURN_IF_ERROR(Bind(e->case_base.get(), allow_aggregates));
        }
        for (size_t i = 0; i < e->case_when.size(); ++i) {
          GALAXY_RETURN_IF_ERROR(
              Bind(e->case_when[i].get(), allow_aggregates));
          GALAXY_RETURN_IF_ERROR(
              Bind(e->case_then[i].get(), allow_aggregates));
        }
        if (e->case_else != nullptr) {
          return Bind(e->case_else.get(), allow_aggregates);
        }
        return Status::OK();
      }
      case ExprKind::kExists:
        // The subquery is bound and executed in its own scope.
        return Status::OK();
    }
    return Status::Internal("unhandled expression kind in Bind");
  }

  // True if the (bound or unbound) expression contains an aggregate call.
  static bool ContainsAggregate(const Expr* e) {
    if (e == nullptr) return false;
    switch (e->kind) {
      case ExprKind::kFunctionCall:
        if (IsAggregateFunction(e->function)) return true;
        for (const ExprPtr& a : e->args) {
          if (ContainsAggregate(a.get())) return true;
        }
        return false;
      case ExprKind::kUnary:
        return ContainsAggregate(e->left.get());
      case ExprKind::kBinary:
        return ContainsAggregate(e->left.get()) ||
               ContainsAggregate(e->right.get());
      case ExprKind::kInSubquery:
      case ExprKind::kIsNull:
        return ContainsAggregate(e->left.get());
      case ExprKind::kInList: {
        if (ContainsAggregate(e->left.get())) return true;
        for (const ExprPtr& v : e->in_list) {
          if (ContainsAggregate(v.get())) return true;
        }
        return false;
      }
      case ExprKind::kLike:
        return ContainsAggregate(e->left.get()) ||
               ContainsAggregate(e->right.get());
      case ExprKind::kCase: {
        if (ContainsAggregate(e->case_base.get())) return true;
        for (size_t i = 0; i < e->case_when.size(); ++i) {
          if (ContainsAggregate(e->case_when[i].get())) return true;
          if (ContainsAggregate(e->case_then[i].get())) return true;
        }
        return ContainsAggregate(e->case_else.get());
      }
      default:
        return false;
    }
  }

 private:
  std::vector<SlotInfo> slots_;
  std::vector<Expr*> aggregates_;
};

// ---------------------------------------------------------------------------
// Expression evaluation.
// ---------------------------------------------------------------------------

struct SubqueryCache {
  std::unordered_set<Value, ValueHash> values;
  bool has_null = false;
};

struct EvalContext {
  const Database* db = nullptr;
  const InputRow* row = nullptr;            // slot source
  const std::vector<Value>* aggs = nullptr; // aggregate results (grouped)
  std::map<const Expr*, SubqueryCache>* subqueries = nullptr;
  std::map<const Expr*, bool>* exists_cache = nullptr;
};

// SQL LIKE pattern matching: '%' matches any run (including empty), '_'
// matches exactly one character; ASCII case-insensitive (sqlite default).
// Iterative two-pointer matching with backtracking to the last '%'.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || lower(pattern[p]) == lower(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Eval(const Expr* e, EvalContext& ctx);

Result<const SubqueryCache*> MaterializeSubquery(const Expr* e,
                                                 EvalContext& ctx) {
  GALAXY_CHECK(ctx.subqueries != nullptr);
  auto it = ctx.subqueries->find(e);
  if (it != ctx.subqueries->end()) return &it->second;
  GALAXY_CHECK(ctx.db != nullptr);
  GALAXY_ASSIGN_OR_RETURN(Table result,
                          ExecuteSelect(*ctx.db, *e->subquery));
  if (result.num_columns() != 1) {
    return Status::InvalidArgument(
        "IN subquery must return exactly one column");
  }
  SubqueryCache cache;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    const Value& v = result.at(r, 0);
    if (v.is_null()) {
      cache.has_null = true;
    } else {
      cache.values.insert(v);
    }
  }
  auto [ins, _] = ctx.subqueries->emplace(e, std::move(cache));
  return &ins->second;
}

Result<Value> EvalIn(const Expr* e, bool found, bool set_has_null) {
  // SQL 3VL: x IN S is TRUE if found, NULL if not found but S has NULL,
  // FALSE otherwise; NOT IN negates with NULL preserved.
  Value v;
  if (found) {
    v = Value(int64_t{1});
  } else if (set_has_null) {
    v = Value::Null();
  } else {
    v = Value(int64_t{0});
  }
  if (e->negated) return EvalUnary(UnaryOp::kNot, v);
  return v;
}

Result<Value> Eval(const Expr* e, EvalContext& ctx) {
  switch (e->kind) {
    case ExprKind::kLiteral:
      return e->literal;
    case ExprKind::kColumnRef: {
      GALAXY_CHECK_GE(e->bound_slot, 0) << "unbound column " << e->column;
      GALAXY_CHECK(ctx.row != nullptr);
      return *(*ctx.row)[e->bound_slot];
    }
    case ExprKind::kUnary: {
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->left.get(), ctx));
      return EvalUnary(e->unary_op, v);
    }
    case ExprKind::kBinary: {
      // Short-circuit logic operators.
      if (e->binary_op == BinaryOp::kAnd) {
        GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
        if (!l.is_null()) {
          GALAXY_ASSIGN_OR_RETURN(bool lt, ValueIsTrue(l));
          if (!lt) return Value(int64_t{0});
        }
        GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
        return EvalBinary(BinaryOp::kAnd, l, r);
      }
      if (e->binary_op == BinaryOp::kOr) {
        GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
        if (!l.is_null()) {
          GALAXY_ASSIGN_OR_RETURN(bool lt, ValueIsTrue(l));
          if (lt) return Value(int64_t{1});
        }
        GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
        return EvalBinary(BinaryOp::kOr, l, r);
      }
      GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
      return EvalBinary(e->binary_op, l, r);
    }
    case ExprKind::kFunctionCall: {
      if (e->agg_slot >= 0) {
        GALAXY_CHECK(ctx.aggs != nullptr)
            << "aggregate evaluated outside a grouped context";
        return (*ctx.aggs)[e->agg_slot];
      }
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->args[0].get(), ctx));
      if (v.is_null()) return v;
      if (e->function == "ABS") {
        if (v.type() == ValueType::kInt64) {
          return Value(v.AsInt64() < 0 ? -v.AsInt64() : v.AsInt64());
        }
        GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value(d < 0 ? -d : d);
      }
      if (e->function == "ROUND") {
        GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value(static_cast<double>(llround(d)));
      }
      return Status::Unimplemented("unknown function: " + e->function);
    }
    case ExprKind::kInSubquery: {
      GALAXY_ASSIGN_OR_RETURN(Value needle, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(const SubqueryCache* cache,
                              MaterializeSubquery(e, ctx));
      if (needle.is_null()) return Value::Null();
      bool found = cache->values.contains(needle);
      return EvalIn(e, found, cache->has_null);
    }
    case ExprKind::kInList: {
      GALAXY_ASSIGN_OR_RETURN(Value needle, Eval(e->left.get(), ctx));
      if (needle.is_null()) return Value::Null();
      bool found = false;
      bool has_null = false;
      for (const ExprPtr& item : e->in_list) {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(item.get(), ctx));
        if (v.is_null()) {
          has_null = true;
        } else if (v == needle) {
          found = true;
          break;
        }
      }
      return EvalIn(e, found, has_null);
    }
    case ExprKind::kIsNull: {
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->left.get(), ctx));
      bool is_null = v.is_null();
      bool result = e->negated ? !is_null : is_null;
      return Value(result ? int64_t{1} : int64_t{0});
    }
    case ExprKind::kLike: {
      GALAXY_ASSIGN_OR_RETURN(Value text, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(Value pattern, Eval(e->right.get(), ctx));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (text.type() != ValueType::kString ||
          pattern.type() != ValueType::kString) {
        return Status::TypeError("LIKE requires string operands");
      }
      bool match = LikeMatch(text.AsString(), pattern.AsString());
      if (e->negated) match = !match;
      return Value(match ? int64_t{1} : int64_t{0});
    }
    case ExprKind::kCase: {
      Value base;
      if (e->case_base != nullptr) {
        GALAXY_ASSIGN_OR_RETURN(base, Eval(e->case_base.get(), ctx));
      }
      for (size_t i = 0; i < e->case_when.size(); ++i) {
        GALAXY_ASSIGN_OR_RETURN(Value when, Eval(e->case_when[i].get(), ctx));
        bool taken;
        if (e->case_base != nullptr) {
          // Simple CASE: equality against the base; NULL matches nothing.
          taken = !base.is_null() && !when.is_null() && base == when;
        } else {
          if (when.is_null()) continue;
          GALAXY_ASSIGN_OR_RETURN(taken, ValueIsTrue(when));
        }
        if (taken) return Eval(e->case_then[i].get(), ctx);
      }
      if (e->case_else != nullptr) return Eval(e->case_else.get(), ctx);
      return Value::Null();
    }
    case ExprKind::kExists: {
      GALAXY_CHECK(ctx.exists_cache != nullptr);
      auto it = ctx.exists_cache->find(e);
      if (it == ctx.exists_cache->end()) {
        GALAXY_CHECK(ctx.db != nullptr);
        GALAXY_ASSIGN_OR_RETURN(Table result,
                                ExecuteSelect(*ctx.db, *e->subquery));
        it = ctx.exists_cache->emplace(e, result.num_rows() > 0).first;
      }
      bool exists = it->second;
      if (e->negated) exists = !exists;
      return Value(exists ? int64_t{1} : int64_t{0});
    }
  }
  return Status::Internal("unhandled expression kind in Eval");
}

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

struct AggState {
  uint64_t rows = 0;      // COUNT(*)
  uint64_t non_null = 0;  // COUNT(x)
  bool sum_is_int = true;
  int64_t isum = 0;
  double dsum = 0.0;
  Value min;
  Value max;

  void Accumulate(const Value& v) {
    ++rows;
    if (v.is_null()) return;
    ++non_null;
    if (v.type() == ValueType::kInt64 && sum_is_int) {
      isum += v.AsInt64();
    } else if (v.is_numeric()) {
      if (sum_is_int) {
        dsum = static_cast<double>(isum);
        sum_is_int = false;
      }
      dsum += v.ToDouble().value();
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  Result<Value> Finish(const std::string& function, bool star) const {
    if (function == "COUNT") {
      return Value(static_cast<int64_t>(star ? rows : non_null));
    }
    if (function == "SUM") {
      if (non_null == 0) return Value::Null();
      return sum_is_int ? Value(isum) : Value(dsum);
    }
    if (function == "AVG") {
      if (non_null == 0) return Value::Null();
      double total = sum_is_int ? static_cast<double>(isum) : dsum;
      return Value(total / static_cast<double>(non_null));
    }
    if (function == "MIN") return min;
    if (function == "MAX") return max;
    return Status::Internal("unknown aggregate " + function);
  }
};

// Hash of a vector<Value> grouping key.
struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct GroupAccum {
  std::vector<Value> first_row;     // materialized first input row
  std::vector<AggState> agg_states;
  std::vector<Point> skyline_points;  // per-record skyline attributes
};

// ---------------------------------------------------------------------------
// Output assembly helpers.
// ---------------------------------------------------------------------------

struct OutputColumn {
  std::string name;
  const Expr* expr = nullptr;  // null for star expansion slots
  int star_slot = -1;
};

ValueType InferType(const std::vector<Row>& rows, size_t col,
                    ValueType fallback) {
  ValueType type = ValueType::kNull;
  for (const Row& r : rows) {
    if (r[col].is_null()) continue;
    ValueType vt = r[col].type();
    if (type == ValueType::kNull) {
      type = vt;
    } else if (type != vt) {
      // Mixed int/double columns widen to double; anything else is caught
      // by the TableBuilder type check.
      if ((type == ValueType::kInt64 && vt == ValueType::kDouble) ||
          (type == ValueType::kDouble && vt == ValueType::kInt64)) {
        type = ValueType::kDouble;
      }
    }
  }
  return type == ValueType::kNull ? fallback : type;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// Collects the bound input slots referenced by an expression (subquery
// bodies excluded: they bind in their own scope).
void CollectSlots(const Expr* e, std::vector<int>* slots) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kColumnRef:
      if (e->bound_slot >= 0) slots->push_back(e->bound_slot);
      return;
    case ExprKind::kUnary:
    case ExprKind::kIsNull:
    case ExprKind::kInSubquery:
      CollectSlots(e->left.get(), slots);
      return;
    case ExprKind::kBinary:
    case ExprKind::kLike:
      CollectSlots(e->left.get(), slots);
      CollectSlots(e->right.get(), slots);
      return;
    case ExprKind::kFunctionCall:
      for (const ExprPtr& a : e->args) CollectSlots(a.get(), slots);
      return;
    case ExprKind::kInList:
      CollectSlots(e->left.get(), slots);
      for (const ExprPtr& v : e->in_list) CollectSlots(v.get(), slots);
      return;
    case ExprKind::kCase:
      CollectSlots(e->case_base.get(), slots);
      for (const ExprPtr& w : e->case_when) CollectSlots(w.get(), slots);
      for (const ExprPtr& t : e->case_then) CollectSlots(t.get(), slots);
      CollectSlots(e->case_else.get(), slots);
      return;
    default:
      return;
  }
}

}  // namespace

// Executes one SELECT (without UNION chaining).
static Result<Table> ExecuteSingleSelect(const Database& db, SelectStmt& stmt,
                                         const ExecOptions& exec_options,
                                         ExecStats* stats) {
  core::ExecutionContext* exec = exec_options.exec;
  // ---- Resolve FROM tables and build the slot layout. -------------------
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  // Each table is a pinned copy-on-update snapshot (sql/catalog.h): the
  // shared_ptr keeps it alive for the whole query even if a concurrent
  // Register replaces the catalog entry mid-run.
  std::vector<std::shared_ptr<const Table>> pinned;
  std::vector<const Table*> tables;
  std::vector<SlotInfo> slots;
  std::vector<size_t> table_first_slot;
  for (const TableRef& ref : stmt.from) {
    GALAXY_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                            db.GetTable(ref.table_name));
    table_first_slot.push_back(slots.size());
    for (const ColumnDef& c : t->schema().columns()) {
      slots.push_back({ref.effective_alias(), c.name, c.type});
    }
    tables.push_back(t.get());
    pinned.push_back(std::move(t));
  }

  Binder binder(std::move(slots));

  // ---- Bind expressions. -------------------------------------------------
  if (stmt.where != nullptr) {
    GALAXY_RETURN_IF_ERROR(
        binder.Bind(stmt.where.get(), /*allow_aggregates=*/false));
  }
  for (ExprPtr& g : stmt.group_by) {
    GALAXY_RETURN_IF_ERROR(binder.Bind(g.get(), /*allow_aggregates=*/false));
  }
  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (!item.star && Binder::ContainsAggregate(item.expr.get())) {
      has_aggregates = true;
    }
  }
  if (Binder::ContainsAggregate(stmt.having.get())) has_aggregates = true;
  const bool grouped = !stmt.group_by.empty() || has_aggregates;

  if (stmt.having != nullptr && !grouped) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }
  if (stmt.skyline_rank && stmt.group_by.empty()) {
    return Status::InvalidArgument(
        "SKYLINE OF ... GAMMA RANK requires GROUP BY (it ranks groups)");
  }
  // Definition 3 needs γ ≥ 0.5 for asymmetry; reject here so a bad literal
  // is a clean InvalidArgument, not a core-layer precondition failure.
  if (stmt.skyline_gamma.has_value() &&
      !(*stmt.skyline_gamma >= 0.5 && *stmt.skyline_gamma <= 1.0)) {
    return Status::InvalidArgument("GAMMA must be in [0.5, 1]");
  }
  for (SelectItem& item : stmt.items) {
    if (item.star) {
      if (grouped) {
        return Status::InvalidArgument("SELECT * cannot be used with GROUP BY");
      }
      continue;
    }
    GALAXY_RETURN_IF_ERROR(binder.Bind(item.expr.get(), grouped));
  }
  if (stmt.having != nullptr) {
    GALAXY_RETURN_IF_ERROR(binder.Bind(stmt.having.get(), true));
  }
  for (SkylineItem& item : stmt.skyline) {
    GALAXY_RETURN_IF_ERROR(
        binder.Bind(item.expr.get(), /*allow_aggregates=*/false));
  }
  for (OrderItem& item : stmt.order_by) {
    // ORDER BY may name a select alias; rewrite to the aliased expression's
    // output, otherwise bind against the input.
    bool is_alias = false;
    if (item.expr->kind == ExprKind::kColumnRef && item.expr->table.empty()) {
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!stmt.items[i].star &&
            NameEq(stmt.items[i].alias, item.expr->column)) {
          item.expr->bound_slot = -2 - static_cast<int>(i);  // output ref
          is_alias = true;
          break;
        }
      }
    }
    if (!is_alias) {
      GALAXY_RETURN_IF_ERROR(binder.Bind(item.expr.get(), grouped));
    }
  }

  std::map<const Expr*, SubqueryCache> subquery_cache;
  std::map<const Expr*, bool> exists_cache;
  EvalContext ctx;
  ctx.db = &db;
  ctx.subqueries = &subquery_cache;
  ctx.exists_cache = &exists_cache;

  const size_t num_tables = tables.size();
  size_t total_slots = binder.slots().size();

  // ---- Predicate pushdown (multi-table FROM only): WHERE conjuncts whose
  // slots all belong to one table filter that table before the join. ------
  std::vector<std::vector<ExprPtr>> pushed(num_tables);
  if (num_tables > 1 && stmt.where != nullptr) {
    auto table_of_slot = [&](int slot) {
      size_t t = 0;
      while (t + 1 < num_tables &&
             static_cast<size_t>(slot) >= table_first_slot[t + 1]) {
        ++t;
      }
      return t;
    };
    std::vector<ExprPtr> residual;
    for (ExprPtr& conjunct : SplitConjuncts(std::move(stmt.where))) {
      std::vector<int> used;
      CollectSlots(conjunct.get(), &used);
      bool single = !used.empty();
      size_t table = single ? table_of_slot(used[0]) : 0;
      for (int s : used) {
        if (table_of_slot(s) != table) {
          single = false;
          break;
        }
      }
      if (single) {
        pushed[table].push_back(std::move(conjunct));
        if (stats != nullptr) ++stats->pushed_filters;
      } else {
        residual.push_back(std::move(conjunct));
      }
    }
    stmt.where = ConjoinAll(std::move(residual));
  }

  // ---- Hash equi-join detection (two-table FROM): a residual conjunct of
  // the form A.x = B.y becomes the join key; the probe replaces the
  // quadratic cross product. -----------------------------------------------
  ExprPtr join_key;  // the extracted equality, if any
  if (num_tables == 2 && stmt.where != nullptr) {
    std::vector<ExprPtr> residual;
    for (ExprPtr& conjunct : SplitConjuncts(std::move(stmt.where))) {
      bool is_key =
          join_key == nullptr && conjunct->kind == ExprKind::kBinary &&
          conjunct->binary_op == BinaryOp::kEq &&
          conjunct->left->kind == ExprKind::kColumnRef &&
          conjunct->right->kind == ExprKind::kColumnRef;
      if (is_key) {
        int slot_l = conjunct->left->bound_slot;
        int slot_r = conjunct->right->bound_slot;
        bool crosses =
            (static_cast<size_t>(slot_l) < table_first_slot[1]) !=
            (static_cast<size_t>(slot_r) < table_first_slot[1]);
        // Hash probing uses Value equality, which is only equivalent to the
        // SQL '=' operator when the column types are comparable (both
        // numeric or both string) — mismatches must keep erroring at
        // evaluation time.
        auto comparable = [&](ValueType a, ValueType b) {
          auto numeric = [](ValueType t) {
            return t == ValueType::kInt64 || t == ValueType::kDouble;
          };
          return (numeric(a) && numeric(b)) ||
                 (a == ValueType::kString && b == ValueType::kString);
        };
        if (crosses &&
            comparable(binder.slots()[slot_l].type,
                       binder.slots()[slot_r].type)) {
          join_key = std::move(conjunct);
          continue;
        }
      }
      residual.push_back(std::move(conjunct));
    }
    stmt.where = ConjoinAll(std::move(residual));
  }

  // Per-table candidate row lists (all rows unless a filter was pushed).
  std::vector<std::vector<size_t>> selected(num_tables);
  {
    InputRow scratch(total_slots, nullptr);
    for (size_t t = 0; t < num_tables; ++t) {
      selected[t].reserve(tables[t]->num_rows());
      for (size_t r = 0; r < tables[t]->num_rows(); ++r) {
        if (exec != nullptr && !exec->Charge(1)) return exec->status();
        if (!pushed[t].empty()) {
          const Row& base_row = tables[t]->row(r);
          for (size_t c = 0; c < base_row.size(); ++c) {
            scratch[table_first_slot[t] + c] = &base_row[c];
          }
          ctx.row = &scratch;
          bool pass = true;
          for (const ExprPtr& predicate : pushed[t]) {
            GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(predicate.get(), ctx));
            if (keep.is_null()) {
              pass = false;
              break;
            }
            GALAXY_ASSIGN_OR_RETURN(pass, ValueIsTrue(keep));
            if (!pass) break;
          }
          if (!pass) {
            if (stats != nullptr) ++stats->base_rows_filtered;
            continue;
          }
        }
        selected[t].push_back(r);
      }
    }
  }

  // ---- Stream the (filtered) FROM cross product through WHERE. ----------
  std::vector<size_t> cursor(num_tables, 0);
  InputRow row(total_slots);

  bool empty_product = false;
  for (size_t t = 0; t < num_tables; ++t) {
    if (selected[t].empty()) empty_product = true;
  }

  // Row consumers fill one of these.
  std::vector<std::vector<Value>> passing_rows;  // non-grouped path
  std::unordered_map<std::vector<Value>, GroupAccum, KeyHash> groups;
  std::vector<const std::vector<Value>*> group_order;  // stable output order
  const std::vector<Expr*>& agg_exprs = binder.aggregates();

  auto consume_row = [&]() -> Status {
    // One work unit per streamed row; trips surface here so the join loops
    // unwind through the usual error path within one row.
    if (exec != nullptr && !exec->Charge(1)) return exec->status();
    ctx.row = &row;
    if (stmt.where != nullptr) {
      GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(stmt.where.get(), ctx));
      if (keep.is_null()) return Status::OK();
      GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
      if (!pass) return Status::OK();
    }
    if (!grouped) {
      std::vector<Value> copy(total_slots);
      for (size_t i = 0; i < total_slots; ++i) copy[i] = *row[i];
      passing_rows.push_back(std::move(copy));
      return Status::OK();
    }
    // Grouped: evaluate the key and accumulate.
    std::vector<Value> key;
    key.reserve(stmt.group_by.size());
    for (const ExprPtr& g : stmt.group_by) {
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(g.get(), ctx));
      key.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    GroupAccum& accum = it->second;
    if (inserted) {
      group_order.push_back(&it->first);
      accum.first_row.resize(total_slots);
      for (size_t i = 0; i < total_slots; ++i) accum.first_row[i] = *row[i];
      accum.agg_states.resize(agg_exprs.size());
    }
    for (size_t a = 0; a < agg_exprs.size(); ++a) {
      const Expr* agg = agg_exprs[a];
      if (agg->star_arg) {
        accum.agg_states[a].Accumulate(Value(int64_t{1}));
      } else {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(agg->args[0].get(), ctx));
        accum.agg_states[a].Accumulate(v);
      }
    }
    if (!stmt.skyline.empty()) {
      Point p(stmt.skyline.size());
      for (size_t k = 0; k < stmt.skyline.size(); ++k) {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(stmt.skyline[k].expr.get(), ctx));
        GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
        p[k] = stmt.skyline[k].maximize ? d : -d;
      }
      accum.skyline_points.push_back(std::move(p));
    }
    return Status::OK();
  };

  if (!empty_product && join_key != nullptr) {
    // Hash equi-join: build on table 1, probe with table 0.
    if (stats != nullptr) ++stats->hash_joins;
    int slot_l = join_key->left->bound_slot;
    int slot_r = join_key->right->bound_slot;
    size_t slot0 = static_cast<size_t>(
        static_cast<size_t>(slot_l) < table_first_slot[1] ? slot_l : slot_r);
    size_t slot1 = static_cast<size_t>(
        static_cast<size_t>(slot_l) < table_first_slot[1] ? slot_r : slot_l);
    size_t col0 = slot0;
    size_t col1 = slot1 - table_first_slot[1];

    std::unordered_map<Value, std::vector<size_t>, ValueHash> build;
    for (size_t r1 : selected[1]) {
      const Value& key = tables[1]->at(r1, col1);
      if (!key.is_null()) build[key].push_back(r1);
    }
    for (size_t r0 : selected[0]) {
      const Value& key = tables[0]->at(r0, col0);
      if (key.is_null()) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      const Row& left_row = tables[0]->row(r0);
      for (size_t c = 0; c < left_row.size(); ++c) row[c] = &left_row[c];
      for (size_t r1 : it->second) {
        const Row& right_row = tables[1]->row(r1);
        for (size_t c = 0; c < right_row.size(); ++c) {
          row[table_first_slot[1] + c] = &right_row[c];
        }
        if (stats != nullptr) ++stats->cross_product_rows;
        GALAXY_RETURN_IF_ERROR(consume_row());
      }
    }
  } else if (!empty_product) {
    while (true) {
      // Assemble the current combination.
      size_t slot = 0;
      for (size_t t = 0; t < num_tables; ++t) {
        const Row& r = tables[t]->row(selected[t][cursor[t]]);
        for (size_t c = 0; c < r.size(); ++c) row[slot++] = &r[c];
      }
      if (stats != nullptr) ++stats->cross_product_rows;
      GALAXY_RETURN_IF_ERROR(consume_row());
      // Advance the odometer; stop when the most significant digit wraps.
      bool done = false;
      size_t t = num_tables;
      while (t > 0) {
        --t;
        if (++cursor[t] < selected[t].size()) break;
        cursor[t] = 0;
        if (t == 0) done = true;
      }
      if (done) break;
    }
  }

  // Global aggregate with no GROUP BY: one group over everything (even if
  // the input is empty).
  if (grouped && stmt.group_by.empty() && groups.empty()) {
    auto [it, _] = groups.try_emplace(std::vector<Value>{});
    it->second.agg_states.resize(agg_exprs.size());
    it->second.first_row.assign(total_slots, Value::Null());
    group_order.push_back(&it->first);
  }

  // ---- Build the output column list. -------------------------------------
  std::vector<OutputColumn> out_columns;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < binder.slots().size(); ++i) {
        OutputColumn col;
        col.name = num_tables > 1 ? binder.slots()[i].table_alias + "." +
                                        binder.slots()[i].column
                                  : binder.slots()[i].column;
        col.star_slot = static_cast<int>(i);
        out_columns.push_back(std::move(col));
      }
    } else {
      OutputColumn col;
      col.name = !item.alias.empty() ? item.alias : item.expr->ToString();
      col.expr = item.expr.get();
      out_columns.push_back(std::move(col));
    }
  }

  // ---- Produce output rows (plus ORDER BY sort keys). ---------------------
  std::vector<Row> out_rows;
  std::vector<std::vector<Value>> sort_keys;
  const bool need_sort = !stmt.order_by.empty();

  auto project = [&](EvalContext& rowctx,
                     const std::vector<Value>* materialized) -> Status {
    Row out;
    out.reserve(out_columns.size());
    for (const OutputColumn& col : out_columns) {
      if (col.star_slot >= 0) {
        out.push_back((*materialized)[col.star_slot]);
      } else {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(col.expr, rowctx));
        out.push_back(std::move(v));
      }
    }
    if (need_sort) {
      std::vector<Value> keys;
      keys.reserve(stmt.order_by.size());
      for (const OrderItem& item : stmt.order_by) {
        if (item.expr->bound_slot <= -2) {
          keys.push_back(out[static_cast<size_t>(-2 - item.expr->bound_slot)]);
        } else {
          GALAXY_ASSIGN_OR_RETURN(Value v, Eval(item.expr.get(), rowctx));
          keys.push_back(std::move(v));
        }
      }
      sort_keys.push_back(std::move(keys));
    }
    out_rows.push_back(std::move(out));
    return Status::OK();
  };

  if (!grouped) {
    // Optional record skyline filter (SKYLINE OF without GROUP BY).
    std::vector<size_t> kept(passing_rows.size());
    for (size_t i = 0; i < passing_rows.size(); ++i) kept[i] = i;
    if (!stmt.skyline.empty()) {
      std::vector<std::vector<double>> points;
      points.reserve(passing_rows.size());
      InputRow view(total_slots);
      for (const std::vector<Value>& r : passing_rows) {
        for (size_t i = 0; i < total_slots; ++i) view[i] = &r[i];
        ctx.row = &view;
        std::vector<double> p(stmt.skyline.size());
        for (size_t k = 0; k < stmt.skyline.size(); ++k) {
          GALAXY_ASSIGN_OR_RETURN(Value v,
                                  Eval(stmt.skyline[k].expr.get(), ctx));
          GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
          p[k] = stmt.skyline[k].maximize ? d : -d;
        }
        points.push_back(std::move(p));
      }
      kept = skyline::Compute(points,
                                  skyline::AllMax(stmt.skyline.size()),
                                  skyline::Algorithm::kSfs);
    }
    InputRow view(total_slots);
    for (size_t idx : kept) {
      const std::vector<Value>& r = passing_rows[idx];
      for (size_t i = 0; i < total_slots; ++i) view[i] = &r[i];
      ctx.row = &view;
      GALAXY_RETURN_IF_ERROR(project(ctx, &r));
    }
  } else {
    // Finish aggregates per group.
    std::unordered_map<const std::vector<Value>*, std::vector<Value>>
        agg_values;
    for (const std::vector<Value>* key : group_order) {
      GroupAccum& accum = groups.find(*key)->second;
      std::vector<Value> vals;
      vals.reserve(agg_exprs.size());
      for (size_t a = 0; a < agg_exprs.size(); ++a) {
        GALAXY_ASSIGN_OR_RETURN(
            Value v,
            accum.agg_states[a].Finish(agg_exprs[a]->function,
                                       agg_exprs[a]->star_arg));
        vals.push_back(std::move(v));
      }
      agg_values.emplace(key, std::move(vals));
    }

    // HAVING filter.
    std::vector<const std::vector<Value>*> surviving;
    InputRow view(total_slots);
    for (const std::vector<Value>* key : group_order) {
      GroupAccum& accum = groups.find(*key)->second;
      for (size_t i = 0; i < total_slots; ++i) view[i] = &accum.first_row[i];
      ctx.row = &view;
      ctx.aggs = &agg_values.find(key)->second;
      if (stmt.having != nullptr) {
        GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(stmt.having.get(), ctx));
        if (keep.is_null()) continue;
        GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
        if (!pass) continue;
      }
      surviving.push_back(key);
    }

    // Aggregate skyline over the surviving groups (SKYLINE OF + GROUP BY):
    // Definition 2 applied to the per-group record sets. GAMMA RANK instead
    // emits every group admissible at some γ, ordered by minimal γ
    // (Section 2.2's parameter-free mode).
    if (!stmt.skyline.empty()) {
      std::vector<std::vector<Point>> group_points;
      group_points.reserve(surviving.size());
      for (const std::vector<Value>* key : surviving) {
        group_points.push_back(groups.find(*key)->second.skyline_points);
      }
      if (!group_points.empty()) {
        core::GroupedDataset dataset =
            core::GroupedDataset::FromPoints(group_points);
        std::vector<const std::vector<Value>*> filtered;
        if (stmt.skyline_rank) {
          for (const core::RankedGroup& rg : core::RankByGamma(dataset)) {
            if (!rg.always_dominated) filtered.push_back(surviving[rg.id]);
          }
        } else {
          core::AggregateSkylineOptions options;
          options.gamma = stmt.skyline_gamma.value_or(0.5);
          options.algorithm = core::Algorithm::kNestedLoop;
          options.exec = exec;
          options.allow_approximate = exec_options.allow_approximate;
          GALAXY_ASSIGN_OR_RETURN(
              core::AggregateSkylineResult sky,
              core::ComputeAggregateSkylineBounded(dataset, options));
          if (stats != nullptr) {
            stats->skyline_quality = sky.quality;
            stats->skyline_stats = sky.stats;
          }
          for (uint32_t id : sky.skyline) {
            filtered.push_back(surviving[id]);
          }
        }
        surviving = std::move(filtered);
      }
    }

    for (const std::vector<Value>* key : surviving) {
      GroupAccum& accum = groups.find(*key)->second;
      for (size_t i = 0; i < total_slots; ++i) view[i] = &accum.first_row[i];
      ctx.row = &view;
      ctx.aggs = &agg_values.find(key)->second;
      GALAXY_RETURN_IF_ERROR(project(ctx, &accum.first_row));
    }
  }

  // ---- DISTINCT. ----------------------------------------------------------
  if (stmt.distinct) {
    std::unordered_set<Row, RowHash> seen;
    std::vector<Row> unique_rows;
    std::vector<std::vector<Value>> unique_keys;
    for (size_t i = 0; i < out_rows.size(); ++i) {
      if (seen.insert(out_rows[i]).second) {
        unique_rows.push_back(std::move(out_rows[i]));
        if (need_sort) unique_keys.push_back(std::move(sort_keys[i]));
      }
    }
    out_rows = std::move(unique_rows);
    sort_keys = std::move(unique_keys);
  }

  // ---- ORDER BY / LIMIT. ---------------------------------------------------
  if (need_sort) {
    std::vector<size_t> perm(out_rows.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        const Value& va = sort_keys[a][k];
        const Value& vb = sort_keys[b][k];
        if (va == vb) continue;
        bool less = va < vb;
        return stmt.order_by[k].ascending ? less : !less;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : perm) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }
  if (stmt.limit.has_value() && *stmt.limit >= 0 &&
      out_rows.size() > static_cast<size_t>(*stmt.limit)) {
    out_rows.resize(static_cast<size_t>(*stmt.limit));
  }

  // ---- Output schema. -------------------------------------------------------
  std::vector<ColumnDef> defs;
  defs.reserve(out_columns.size());
  for (size_t c = 0; c < out_columns.size(); ++c) {
    ValueType fallback = out_columns[c].star_slot >= 0
                             ? binder.slots()[out_columns[c].star_slot].type
                             : ValueType::kInt64;
    defs.push_back({out_columns[c].name, InferType(out_rows, c, fallback)});
  }
  // Normalize int-typed cells appearing in double columns and vice versa is
  // handled by TableBuilder widening; rebuild through it for type safety.
  TableBuilder builder{Schema(std::move(defs))};
  for (Row& r : out_rows) {
    GALAXY_RETURN_IF_ERROR(builder.TryAddRow(std::move(r)));
  }
  return builder.Build();
}

Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            ExecStats* stats) {
  return ExecuteSelect(db, stmt, ExecOptions{}, stats);
}

Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            const ExecOptions& options, ExecStats* stats) {
  size_t folded = FoldStatement(stmt);  // also folds union members
  if (stats != nullptr) stats->folded_constants += folded;
  GALAXY_ASSIGN_OR_RETURN(Table result,
                          ExecuteSingleSelect(db, stmt, options, stats));
  if (stmt.union_next == nullptr) return result;

  // Left-associative UNION evaluation: combine member by member, applying
  // duplicate elimination at every non-ALL link (standard SQL semantics).
  std::vector<Row> rows = result.rows();
  bool pending_all = stmt.union_all;
  for (SelectStmt* member = stmt.union_next.get(); member != nullptr;
       member = member->union_next.get()) {
    GALAXY_ASSIGN_OR_RETURN(Table next,
                            ExecuteSingleSelect(db, *member, options, stats));
    if (next.num_columns() != result.num_columns()) {
      return Status::InvalidArgument(
          "UNION members must have the same number of columns");
    }
    for (const Row& r : next.rows()) rows.push_back(r);
    if (!pending_all) {
      std::unordered_set<Row, RowHash> seen;
      std::vector<Row> unique_rows;
      unique_rows.reserve(rows.size());
      for (Row& r : rows) {
        if (seen.insert(r).second) unique_rows.push_back(std::move(r));
      }
      rows = std::move(unique_rows);
    }
    pending_all = member->union_all;
  }

  // Column names come from the first member; types are re-inferred over
  // the combined rows (int/double widening via the table builder).
  std::vector<ColumnDef> defs;
  defs.reserve(result.num_columns());
  for (size_t c = 0; c < result.num_columns(); ++c) {
    defs.push_back({result.schema().column(c).name,
                    InferType(rows, c, result.schema().column(c).type)});
  }
  TableBuilder builder{Schema(std::move(defs))};
  for (Row& r : rows) {
    GALAXY_RETURN_IF_ERROR(builder.TryAddRow(std::move(r)));
  }
  return builder.Build();
}

}  // namespace galaxy::sql
