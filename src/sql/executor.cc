#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/aggregate_skyline.h"
#include "core/group.h"
#include "relation/column.h"
#include "skyline/skyline.h"
#include "sql/optimizer.h"
#include "sql/value_ops.h"

namespace galaxy::sql {

namespace {

// A row as the expression evaluator sees it. Two modes:
//  - values mode: a materialized slot array (group first-rows, passing rows);
//  - cursor mode: slots resolve through the owning base table's current row,
//    boxing one cell on demand — the FROM product never copies whole rows.
struct RowView {
  const Value* values = nullptr;                 // values mode when non-null
  const Column* const* slot_columns = nullptr;   // cursor mode: slot -> column
  const size_t* slot_table = nullptr;            // slot -> owning table index
  const size_t* cursors = nullptr;               // per-table current row

  Value Get(int slot) const {
    if (values != nullptr) return values[slot];
    return slot_columns[slot]->GetValue(cursors[slot_table[slot]]);
  }
};

struct SlotInfo {
  std::string table_alias;  // effective alias of the owning table
  std::string column;
  ValueType type;
};

bool NameEq(const std::string& a, const std::string& b) {
  return EqualsIgnoreCase(a, b);
}

// ---------------------------------------------------------------------------
// Binder: resolves column references to input slots and collects aggregate
// function calls.
// ---------------------------------------------------------------------------

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

class Binder {
 public:
  explicit Binder(std::vector<SlotInfo> slots) : slots_(std::move(slots)) {}

  const std::vector<SlotInfo>& slots() const { return slots_; }
  const std::vector<Expr*>& aggregates() const { return aggregates_; }

  Result<int> Resolve(const std::string& table,
                      const std::string& column) const {
    int found = -1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!table.empty() && !NameEq(slots_[i].table_alias, table)) continue;
      if (!NameEq(slots_[i].column, column)) continue;
      if (found != -1) {
        return Status::InvalidArgument("ambiguous column: " + column);
      }
      found = static_cast<int>(i);
    }
    if (found == -1) {
      std::string qualified = table.empty() ? column : table + "." + column;
      return Status::NotFound("unknown column: " + qualified);
    }
    return found;
  }

  // Binds `e`, recording aggregate calls. `allow_aggregates` is false
  // inside aggregate arguments and in WHERE.
  Status Bind(Expr* e, bool allow_aggregates) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kColumnRef: {
        GALAXY_ASSIGN_OR_RETURN(e->bound_slot, Resolve(e->table, e->column));
        return Status::OK();
      }
      case ExprKind::kUnary:
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kBinary:
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        return Bind(e->right.get(), allow_aggregates);
      case ExprKind::kFunctionCall: {
        if (IsAggregateFunction(e->function)) {
          if (!allow_aggregates) {
            return Status::InvalidArgument(
                "aggregate function not allowed here: " + e->function);
          }
          if (!e->star_arg) {
            if (e->args.size() != 1) {
              return Status::InvalidArgument(e->function +
                                             " takes one argument");
            }
            GALAXY_RETURN_IF_ERROR(
                Bind(e->args[0].get(), /*allow_aggregates=*/false));
          } else if (e->function != "COUNT") {
            return Status::InvalidArgument(e->function +
                                           "(*) is not supported");
          }
          e->agg_slot = static_cast<int>(aggregates_.size());
          aggregates_.push_back(e);
          return Status::OK();
        }
        // Scalar functions.
        if (e->function == "ABS" || e->function == "ROUND") {
          if (e->args.size() != 1 || e->star_arg) {
            return Status::InvalidArgument(e->function +
                                           " takes one argument");
          }
          return Bind(e->args[0].get(), allow_aggregates);
        }
        return Status::Unimplemented("unknown function: " + e->function);
      }
      case ExprKind::kInSubquery:
        // The subquery is bound and executed in its own scope.
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kInList: {
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        for (ExprPtr& v : e->in_list) {
          GALAXY_RETURN_IF_ERROR(Bind(v.get(), allow_aggregates));
        }
        return Status::OK();
      }
      case ExprKind::kIsNull:
        return Bind(e->left.get(), allow_aggregates);
      case ExprKind::kLike:
        GALAXY_RETURN_IF_ERROR(Bind(e->left.get(), allow_aggregates));
        return Bind(e->right.get(), allow_aggregates);
      case ExprKind::kCase: {
        if (e->case_base != nullptr) {
          GALAXY_RETURN_IF_ERROR(Bind(e->case_base.get(), allow_aggregates));
        }
        for (size_t i = 0; i < e->case_when.size(); ++i) {
          GALAXY_RETURN_IF_ERROR(
              Bind(e->case_when[i].get(), allow_aggregates));
          GALAXY_RETURN_IF_ERROR(
              Bind(e->case_then[i].get(), allow_aggregates));
        }
        if (e->case_else != nullptr) {
          return Bind(e->case_else.get(), allow_aggregates);
        }
        return Status::OK();
      }
      case ExprKind::kExists:
        // The subquery is bound and executed in its own scope.
        return Status::OK();
    }
    return Status::Internal("unhandled expression kind in Bind");
  }

  // True if the (bound or unbound) expression contains an aggregate call.
  static bool ContainsAggregate(const Expr* e) {
    if (e == nullptr) return false;
    switch (e->kind) {
      case ExprKind::kFunctionCall:
        if (IsAggregateFunction(e->function)) return true;
        for (const ExprPtr& a : e->args) {
          if (ContainsAggregate(a.get())) return true;
        }
        return false;
      case ExprKind::kUnary:
        return ContainsAggregate(e->left.get());
      case ExprKind::kBinary:
        return ContainsAggregate(e->left.get()) ||
               ContainsAggregate(e->right.get());
      case ExprKind::kInSubquery:
      case ExprKind::kIsNull:
        return ContainsAggregate(e->left.get());
      case ExprKind::kInList: {
        if (ContainsAggregate(e->left.get())) return true;
        for (const ExprPtr& v : e->in_list) {
          if (ContainsAggregate(v.get())) return true;
        }
        return false;
      }
      case ExprKind::kLike:
        return ContainsAggregate(e->left.get()) ||
               ContainsAggregate(e->right.get());
      case ExprKind::kCase: {
        if (ContainsAggregate(e->case_base.get())) return true;
        for (size_t i = 0; i < e->case_when.size(); ++i) {
          if (ContainsAggregate(e->case_when[i].get())) return true;
          if (ContainsAggregate(e->case_then[i].get())) return true;
        }
        return ContainsAggregate(e->case_else.get());
      }
      default:
        return false;
    }
  }

 private:
  std::vector<SlotInfo> slots_;
  std::vector<Expr*> aggregates_;
};

// ---------------------------------------------------------------------------
// Expression evaluation.
// ---------------------------------------------------------------------------

struct SubqueryCache {
  std::unordered_set<Value, ValueHash> values;
  bool has_null = false;
};

struct EvalContext {
  const Database* db = nullptr;
  const RowView* row = nullptr;             // slot source
  const std::vector<Value>* aggs = nullptr; // aggregate results (grouped)
  std::map<const Expr*, SubqueryCache>* subqueries = nullptr;
  std::map<const Expr*, bool>* exists_cache = nullptr;
};

// SQL LIKE pattern matching: '%' matches any run (including empty), '_'
// matches exactly one character; ASCII case-insensitive (sqlite default).
// Iterative two-pointer matching with backtracking to the last '%'.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || lower(pattern[p]) == lower(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Eval(const Expr* e, EvalContext& ctx);

Result<const SubqueryCache*> MaterializeSubquery(const Expr* e,
                                                 EvalContext& ctx) {
  GALAXY_CHECK(ctx.subqueries != nullptr);
  auto it = ctx.subqueries->find(e);
  if (it != ctx.subqueries->end()) return &it->second;
  GALAXY_CHECK(ctx.db != nullptr);
  GALAXY_ASSIGN_OR_RETURN(Table result,
                          ExecuteSelect(*ctx.db, *e->subquery));
  if (result.num_columns() != 1) {
    return Status::InvalidArgument(
        "IN subquery must return exactly one column");
  }
  SubqueryCache cache;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    Value v = result.at(r, 0);
    if (v.is_null()) {
      cache.has_null = true;
    } else {
      cache.values.insert(std::move(v));
    }
  }
  auto [ins, _] = ctx.subqueries->emplace(e, std::move(cache));
  return &ins->second;
}

Result<Value> EvalIn(const Expr* e, bool found, bool set_has_null) {
  // SQL 3VL: x IN S is TRUE if found, NULL if not found but S has NULL,
  // FALSE otherwise; NOT IN negates with NULL preserved.
  Value v;
  if (found) {
    v = Value(int64_t{1});
  } else if (set_has_null) {
    v = Value::Null();
  } else {
    v = Value(int64_t{0});
  }
  if (e->negated) return EvalUnary(UnaryOp::kNot, v);
  return v;
}

Result<Value> Eval(const Expr* e, EvalContext& ctx) {
  switch (e->kind) {
    case ExprKind::kLiteral:
      return e->literal;
    case ExprKind::kColumnRef: {
      GALAXY_CHECK_GE(e->bound_slot, 0) << "unbound column " << e->column;
      GALAXY_CHECK(ctx.row != nullptr);
      return ctx.row->Get(e->bound_slot);
    }
    case ExprKind::kUnary: {
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->left.get(), ctx));
      return EvalUnary(e->unary_op, v);
    }
    case ExprKind::kBinary: {
      // Short-circuit logic operators.
      if (e->binary_op == BinaryOp::kAnd) {
        GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
        if (!l.is_null()) {
          GALAXY_ASSIGN_OR_RETURN(bool lt, ValueIsTrue(l));
          if (!lt) return Value(int64_t{0});
        }
        GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
        return EvalBinary(BinaryOp::kAnd, l, r);
      }
      if (e->binary_op == BinaryOp::kOr) {
        GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
        if (!l.is_null()) {
          GALAXY_ASSIGN_OR_RETURN(bool lt, ValueIsTrue(l));
          if (lt) return Value(int64_t{1});
        }
        GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
        return EvalBinary(BinaryOp::kOr, l, r);
      }
      GALAXY_ASSIGN_OR_RETURN(Value l, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(Value r, Eval(e->right.get(), ctx));
      return EvalBinary(e->binary_op, l, r);
    }
    case ExprKind::kFunctionCall: {
      if (e->agg_slot >= 0) {
        GALAXY_CHECK(ctx.aggs != nullptr)
            << "aggregate evaluated outside a grouped context";
        return (*ctx.aggs)[e->agg_slot];
      }
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->args[0].get(), ctx));
      if (v.is_null()) return v;
      if (e->function == "ABS") {
        if (v.type() == ValueType::kInt64) {
          return Value(v.AsInt64() < 0 ? -v.AsInt64() : v.AsInt64());
        }
        GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value(d < 0 ? -d : d);
      }
      if (e->function == "ROUND") {
        GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value(static_cast<double>(llround(d)));
      }
      return Status::Unimplemented("unknown function: " + e->function);
    }
    case ExprKind::kInSubquery: {
      GALAXY_ASSIGN_OR_RETURN(Value needle, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(const SubqueryCache* cache,
                              MaterializeSubquery(e, ctx));
      if (needle.is_null()) return Value::Null();
      bool found = cache->values.contains(needle);
      return EvalIn(e, found, cache->has_null);
    }
    case ExprKind::kInList: {
      GALAXY_ASSIGN_OR_RETURN(Value needle, Eval(e->left.get(), ctx));
      if (needle.is_null()) return Value::Null();
      bool found = false;
      bool has_null = false;
      for (const ExprPtr& item : e->in_list) {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(item.get(), ctx));
        if (v.is_null()) {
          has_null = true;
        } else if (v == needle) {
          found = true;
          break;
        }
      }
      return EvalIn(e, found, has_null);
    }
    case ExprKind::kIsNull: {
      GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e->left.get(), ctx));
      bool is_null = v.is_null();
      bool result = e->negated ? !is_null : is_null;
      return Value(result ? int64_t{1} : int64_t{0});
    }
    case ExprKind::kLike: {
      GALAXY_ASSIGN_OR_RETURN(Value text, Eval(e->left.get(), ctx));
      GALAXY_ASSIGN_OR_RETURN(Value pattern, Eval(e->right.get(), ctx));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (text.type() != ValueType::kString ||
          pattern.type() != ValueType::kString) {
        return Status::TypeError("LIKE requires string operands");
      }
      bool match = LikeMatch(text.AsString(), pattern.AsString());
      if (e->negated) match = !match;
      return Value(match ? int64_t{1} : int64_t{0});
    }
    case ExprKind::kCase: {
      Value base;
      if (e->case_base != nullptr) {
        GALAXY_ASSIGN_OR_RETURN(base, Eval(e->case_base.get(), ctx));
      }
      for (size_t i = 0; i < e->case_when.size(); ++i) {
        GALAXY_ASSIGN_OR_RETURN(Value when, Eval(e->case_when[i].get(), ctx));
        bool taken;
        if (e->case_base != nullptr) {
          // Simple CASE: equality against the base; NULL matches nothing.
          taken = !base.is_null() && !when.is_null() && base == when;
        } else {
          if (when.is_null()) continue;
          GALAXY_ASSIGN_OR_RETURN(taken, ValueIsTrue(when));
        }
        if (taken) return Eval(e->case_then[i].get(), ctx);
      }
      if (e->case_else != nullptr) return Eval(e->case_else.get(), ctx);
      return Value::Null();
    }
    case ExprKind::kExists: {
      GALAXY_CHECK(ctx.exists_cache != nullptr);
      auto it = ctx.exists_cache->find(e);
      if (it == ctx.exists_cache->end()) {
        GALAXY_CHECK(ctx.db != nullptr);
        GALAXY_ASSIGN_OR_RETURN(Table result,
                                ExecuteSelect(*ctx.db, *e->subquery));
        it = ctx.exists_cache->emplace(e, result.num_rows() > 0).first;
      }
      bool exists = it->second;
      if (e->negated) exists = !exists;
      return Value(exists ? int64_t{1} : int64_t{0});
    }
  }
  return Status::Internal("unhandled expression kind in Eval");
}

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

struct AggState {
  uint64_t rows = 0;      // COUNT(*)
  uint64_t non_null = 0;  // COUNT(x)
  bool sum_is_int = true;
  int64_t isum = 0;
  double dsum = 0.0;
  Value min;
  Value max;

  void Accumulate(const Value& v) {
    ++rows;
    if (v.is_null()) return;
    ++non_null;
    if (v.type() == ValueType::kInt64 && sum_is_int) {
      isum += v.AsInt64();
    } else if (v.is_numeric()) {
      if (sum_is_int) {
        dsum = static_cast<double>(isum);
        sum_is_int = false;
      }
      dsum += v.ToDouble().value();
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  Result<Value> Finish(const std::string& function, bool star) const {
    if (function == "COUNT") {
      return Value(static_cast<int64_t>(star ? rows : non_null));
    }
    if (function == "SUM") {
      if (non_null == 0) return Value::Null();
      return sum_is_int ? Value(isum) : Value(dsum);
    }
    if (function == "AVG") {
      if (non_null == 0) return Value::Null();
      double total = sum_is_int ? static_cast<double>(isum) : dsum;
      return Value(total / static_cast<double>(non_null));
    }
    if (function == "MIN") return min;
    if (function == "MAX") return max;
    return Status::Internal("unknown aggregate " + function);
  }
};

// Replays AggState::Accumulate over a typed column slice without boxing.
// Must reproduce the scalar semantics exactly: `rows` counts every input
// (including NULLs), sums stay integral until a double shows up, min/max
// follow Value comparison order (so NaN behaves the same), and string
// columns contribute min/max but leave the sums untouched.
void FoldColumnAgg(const Column& col, const std::vector<uint32_t>& rows,
                   AggState* st) {
  st->rows += rows.size();
  switch (col.type()) {
    case ValueType::kNull:
      return;
    case ValueType::kInt64: {
      const std::vector<int64_t>& v = col.ints();
      bool any = false;
      int64_t mn = 0, mx = 0, sum = 0;
      uint64_t nn = 0;
      for (uint32_t r : rows) {
        if (col.is_null(r)) continue;
        const int64_t x = v[r];
        if (!any) {
          mn = mx = x;
          any = true;
        } else {
          if (x < mn) mn = x;
          if (mx < x) mx = x;
        }
        sum += x;
        ++nn;
      }
      if (nn == 0) return;
      st->non_null += nn;
      st->isum += sum;  // a fresh state is always still integral here
      st->min = Value(mn);
      st->max = Value(mx);
      return;
    }
    case ValueType::kDouble: {
      const std::vector<double>& v = col.doubles();
      bool any = false;
      double mn = 0.0, mx = 0.0, sum = 0.0;
      uint64_t nn = 0;
      for (uint32_t r : rows) {
        if (col.is_null(r)) continue;
        const double x = v[r];
        if (!any) {
          mn = mx = x;
          any = true;
        } else {
          if (x < mn) mn = x;
          if (mx < x) mx = x;
        }
        sum += x;
        ++nn;
      }
      if (nn == 0) return;
      st->non_null += nn;
      st->sum_is_int = false;
      st->dsum = static_cast<double>(st->isum) + sum;
      st->min = Value(mn);
      st->max = Value(mx);
      return;
    }
    case ValueType::kString: {
      const std::vector<std::string>& v = col.strings();
      const std::string* mn = nullptr;
      const std::string* mx = nullptr;
      uint64_t nn = 0;
      for (uint32_t r : rows) {
        if (col.is_null(r)) continue;
        const std::string& x = v[r];
        if (mn == nullptr) {
          mn = mx = &x;
        } else {
          if (x < *mn) mn = &x;
          if (*mx < x) mx = &x;
        }
        ++nn;
      }
      if (nn == 0) return;
      st->non_null += nn;
      st->min = Value(*mn);
      st->max = Value(*mx);
      return;
    }
  }
}

// Hash of a vector<Value> grouping key.
struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct GroupAccum {
  std::vector<Value> first_row;  // materialized first input row
  std::vector<AggState> agg_states;
  // Per-record skyline attributes, flattened row-major (dims per record):
  // the dense buffer hands off to core::Group without re-densifying.
  std::vector<double> skyline_buf;
};

// ---------------------------------------------------------------------------
// Vectorized WHERE: conjuncts compiled to typed selection kernels.
// ---------------------------------------------------------------------------

// One comparison or null test over column storage, applied to a selection
// vector without boxing. Only shapes whose scalar evaluation cannot differ
// are compiled (numeric-vs-numeric or string-vs-string comparisons with
// non-null literals); everything else falls back to per-row Eval.
struct ColumnPredicate {
  enum class Kind { kCmpConst, kCmpCol, kIsNull, kIsNotNull };
  Kind kind = Kind::kCmpConst;
  BinaryOp op = BinaryOp::kEq;
  size_t lhs = 0;  // column index
  size_t rhs = 0;  // kCmpCol only
  Value constant;  // kCmpConst only
};

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLtEq:
      return BinaryOp::kGtEq;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGtEq:
      return BinaryOp::kLtEq;
    default:
      return op;  // kEq / kNotEq are symmetric
  }
}

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

std::optional<ColumnPredicate> CompilePredicate(const Expr* e,
                                                const Table& table) {
  auto column_of = [&](const Expr* x) -> std::optional<size_t> {
    if (x != nullptr && x->kind == ExprKind::kColumnRef && x->bound_slot >= 0 &&
        static_cast<size_t>(x->bound_slot) < table.num_columns()) {
      return static_cast<size_t>(x->bound_slot);
    }
    return std::nullopt;
  };
  if (e->kind == ExprKind::kIsNull) {
    std::optional<size_t> c = column_of(e->left.get());
    if (!c.has_value()) return std::nullopt;
    ColumnPredicate p;
    p.kind = e->negated ? ColumnPredicate::Kind::kIsNotNull
                        : ColumnPredicate::Kind::kIsNull;
    p.lhs = *c;
    return p;
  }
  if (e->kind != ExprKind::kBinary || !IsComparisonOp(e->binary_op)) {
    return std::nullopt;
  }
  auto comparable = [](ValueType a, ValueType b) {
    return (IsNumericType(a) && IsNumericType(b)) ||
           (a == ValueType::kString && b == ValueType::kString);
  };
  std::optional<size_t> lc = column_of(e->left.get());
  std::optional<size_t> rc = column_of(e->right.get());
  if (lc.has_value() && rc.has_value()) {
    if (!comparable(table.column(*lc).type(), table.column(*rc).type())) {
      return std::nullopt;
    }
    ColumnPredicate p;
    p.kind = ColumnPredicate::Kind::kCmpCol;
    p.op = e->binary_op;
    p.lhs = *lc;
    p.rhs = *rc;
    return p;
  }
  ColumnPredicate p;
  p.kind = ColumnPredicate::Kind::kCmpConst;
  if (lc.has_value() && e->right->kind == ExprKind::kLiteral) {
    p.op = e->binary_op;
    p.lhs = *lc;
    p.constant = e->right->literal;
  } else if (rc.has_value() && e->left->kind == ExprKind::kLiteral) {
    p.op = FlipComparison(e->binary_op);  // literal on the left: flip
    p.lhs = *rc;
    p.constant = e->left->literal;
  } else {
    return std::nullopt;
  }
  if (p.constant.is_null()) return std::nullopt;
  if (!comparable(table.column(p.lhs).type(), p.constant.type())) {
    return std::nullopt;
  }
  return p;
}

// Derives lt/gt/eq exactly like value_ops Comparison(): eq is !(lt||gt), so
// NaN compares "equal" to everything — the kernels must keep that quirk
// rather than using operator==.
template <typename T>
bool ComparePass(BinaryOp op, const T& a, const T& b) {
  const bool lt = a < b;
  const bool gt = b < a;
  switch (op) {
    case BinaryOp::kEq:
      return !lt && !gt;
    case BinaryOp::kNotEq:
      return lt || gt;
    case BinaryOp::kLt:
      return lt;
    case BinaryOp::kLtEq:
      return !gt;  // lt || eq
    case BinaryOp::kGt:
      return gt;
    case BinaryOp::kGtEq:
      return !lt;  // gt || eq
    default:
      return false;
  }
}

void ApplyPredicate(const ColumnPredicate& p, const Table& table,
                    std::vector<uint32_t>* sel) {
  std::vector<uint32_t>& s = *sel;
  size_t w = 0;
  const Column& l = table.column(p.lhs);
  switch (p.kind) {
    case ColumnPredicate::Kind::kIsNull:
      for (uint32_t r : s) {
        if (l.is_null(r)) s[w++] = r;
      }
      break;
    case ColumnPredicate::Kind::kIsNotNull:
      for (uint32_t r : s) {
        if (!l.is_null(r)) s[w++] = r;
      }
      break;
    case ColumnPredicate::Kind::kCmpConst: {
      if (l.type() == ValueType::kString) {
        const std::string& lit = p.constant.AsString();
        const std::vector<std::string>& v = l.strings();
        for (uint32_t r : s) {
          if (!l.is_null(r) && ComparePass(p.op, v[r], lit)) s[w++] = r;
        }
      } else if (l.type() == ValueType::kInt64 &&
                 p.constant.type() == ValueType::kInt64) {
        // int-vs-int compares integrally (Value semantics: no promotion).
        const int64_t lit = p.constant.AsInt64();
        const std::vector<int64_t>& v = l.ints();
        for (uint32_t r : s) {
          if (!l.is_null(r) && ComparePass(p.op, v[r], lit)) s[w++] = r;
        }
      } else {
        const double lit = p.constant.type() == ValueType::kInt64
                               ? static_cast<double>(p.constant.AsInt64())
                               : p.constant.AsDouble();
        if (l.type() == ValueType::kInt64) {
          const std::vector<int64_t>& v = l.ints();
          for (uint32_t r : s) {
            if (!l.is_null(r) &&
                ComparePass(p.op, static_cast<double>(v[r]), lit)) {
              s[w++] = r;
            }
          }
        } else {
          const std::vector<double>& v = l.doubles();
          for (uint32_t r : s) {
            if (!l.is_null(r) && ComparePass(p.op, v[r], lit)) s[w++] = r;
          }
        }
      }
      break;
    }
    case ColumnPredicate::Kind::kCmpCol: {
      const Column& rc = table.column(p.rhs);
      if (l.type() == ValueType::kString) {  // both string (checked above)
        const std::vector<std::string>& a = l.strings();
        const std::vector<std::string>& b = rc.strings();
        for (uint32_t r : s) {
          if (!l.is_null(r) && !rc.is_null(r) &&
              ComparePass(p.op, a[r], b[r])) {
            s[w++] = r;
          }
        }
      } else if (l.type() == ValueType::kInt64 &&
                 rc.type() == ValueType::kInt64) {
        const std::vector<int64_t>& a = l.ints();
        const std::vector<int64_t>& b = rc.ints();
        for (uint32_t r : s) {
          if (!l.is_null(r) && !rc.is_null(r) &&
              ComparePass(p.op, a[r], b[r])) {
            s[w++] = r;
          }
        }
      } else {
        // Mixed numeric: promote both sides to double per Value semantics.
        auto cell = [](const Column& c, uint32_t r) {
          return c.type() == ValueType::kInt64
                     ? static_cast<double>(c.ints()[r])
                     : c.doubles()[r];
        };
        for (uint32_t r : s) {
          if (!l.is_null(r) && !rc.is_null(r) &&
              ComparePass(p.op, cell(l, r), cell(rc, r))) {
            s[w++] = r;
          }
        }
      }
      break;
    }
  }
  s.resize(w);
}

// ---------------------------------------------------------------------------
// Output assembly helpers.
// ---------------------------------------------------------------------------

struct OutputColumn {
  std::string name;
  const Expr* expr = nullptr;  // null for star expansion slots
  int star_slot = -1;
};

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : row) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// Gathers `rows` of `src` into a new owned column — the single copy in the
// columnar projection path.
Column GatherColumn(const Column& src, const std::vector<uint32_t>& rows) {
  Column out{src.type()};
  out.Reserve(rows.size());
  switch (src.type()) {
    case ValueType::kNull:
      for (size_t i = 0; i < rows.size(); ++i) out.AppendNull();
      break;
    case ValueType::kInt64: {
      const std::vector<int64_t>& v = src.ints();
      for (uint32_t r : rows) {
        if (src.is_null(r)) {
          out.AppendNull();
        } else {
          out.AppendInt64(v[r]);
        }
      }
      break;
    }
    case ValueType::kDouble: {
      const std::vector<double>& v = src.doubles();
      for (uint32_t r : rows) {
        if (src.is_null(r)) {
          out.AppendNull();
        } else {
          out.AppendDouble(v[r]);
        }
      }
      break;
    }
    case ValueType::kString: {
      const std::vector<std::string>& v = src.strings();
      for (uint32_t r : rows) {
        if (src.is_null(r)) {
          out.AppendNull();
        } else {
          out.AppendString(v[r]);
        }
      }
      break;
    }
  }
  return out;
}

// Single-pass output materialization: one ValueColumnBuilder per column
// replaces the old full-scan InferType plus row-at-a-time TableBuilder
// rebuild. All-null columns take the per-column fallback type.
Result<Table> RowsToTable(const std::vector<std::string>& names,
                          const std::vector<ValueType>& fallbacks,
                          std::vector<Row> rows) {
  std::vector<ValueColumnBuilder> builders;
  builders.reserve(names.size());
  for (const std::string& name : names) builders.emplace_back(name);
  for (const Row& row : rows) {
    // Every row here was already streamed through (and charged by) the
    // operator pipeline that produced it, so the materialization size is
    // bounded by budget the query has already spent; recharging it would
    // double-bill output rows against the comparison budget.
    // galaxy-analyze: allow(budget-reach)
    for (size_t c = 0; c < builders.size(); ++c) {
      GALAXY_RETURN_IF_ERROR(builders[c].Append(row[c]));
    }
  }
  std::vector<ColumnDef> defs;
  std::vector<Column> columns;
  defs.reserve(names.size());
  columns.reserve(names.size());
  for (size_t c = 0; c < builders.size(); ++c) {
    const ValueType type = builders[c].type() == ValueType::kNull
                               ? fallbacks[c]
                               : builders[c].type();
    defs.push_back({names[c], type});
    columns.push_back(std::move(builders[c]).Build(fallbacks[c]));
  }
  return Table(Schema(std::move(defs)), std::move(columns));
}

// Collects the bound input slots referenced by an expression (subquery
// bodies excluded: they bind in their own scope).
void CollectSlots(const Expr* e, std::vector<int>* slots) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kColumnRef:
      if (e->bound_slot >= 0) slots->push_back(e->bound_slot);
      return;
    case ExprKind::kUnary:
    case ExprKind::kIsNull:
    case ExprKind::kInSubquery:
      CollectSlots(e->left.get(), slots);
      return;
    case ExprKind::kBinary:
    case ExprKind::kLike:
      CollectSlots(e->left.get(), slots);
      CollectSlots(e->right.get(), slots);
      return;
    case ExprKind::kFunctionCall:
      for (const ExprPtr& a : e->args) CollectSlots(a.get(), slots);
      return;
    case ExprKind::kInList:
      CollectSlots(e->left.get(), slots);
      for (const ExprPtr& v : e->in_list) CollectSlots(v.get(), slots);
      return;
    case ExprKind::kCase:
      CollectSlots(e->case_base.get(), slots);
      for (const ExprPtr& w : e->case_when) CollectSlots(w.get(), slots);
      for (const ExprPtr& t : e->case_then) CollectSlots(t.get(), slots);
      CollectSlots(e->case_else.get(), slots);
      return;
    default:
      return;
  }
}

// Charges `n` streamed rows to the control plane in batch-sized chunks, so
// the vectorized pipeline trips within the same tolerance as the per-row
// scalar loop without a branch per row.
Status ChargeRows(core::ExecutionContext* exec, uint64_t n) {
  if (exec == nullptr) return Status::OK();
  while (n > 0) {
    const uint64_t step =
        std::min<uint64_t>(n, core::ExecutionContext::kChargeBatch);
    if (!exec->Charge(step)) return exec->status();
    n -= step;
  }
  return Status::OK();
}

// Applies the aggregate-skyline step (Definition 2 / GAMMA RANK) to groups
// given as dense per-group attribute buffers. Returns the surviving indices
// into `bufs`, in output order. Shared by the scalar and batch pipelines.
Result<std::vector<size_t>> AggregateSkylineFilter(
    size_t dims, std::vector<std::vector<double>> bufs, bool rank,
    std::optional<double> gamma, const ExecOptions& exec_options,
    ExecStats* stats) {
  core::GroupedDataset dataset =
      core::GroupedDataset::FromDenseBuffers(dims, std::move(bufs));
  std::vector<size_t> filtered;
  if (rank) {
    GALAXY_ASSIGN_OR_RETURN(
        std::vector<core::RankedGroup> ranked,
        core::RankByGammaBounded(dataset, exec_options.exec));
    for (const core::RankedGroup& rg : ranked) {
      if (!rg.always_dominated) filtered.push_back(rg.id);
    }
    return filtered;
  }
  core::AggregateSkylineOptions options;
  options.gamma = gamma.value_or(0.5);
  options.algorithm = core::Algorithm::kNestedLoop;
  options.exec = exec_options.exec;
  options.allow_approximate = exec_options.allow_approximate;
  GALAXY_ASSIGN_OR_RETURN(core::AggregateSkylineResult sky,
                          core::ComputeAggregateSkylineBounded(dataset,
                                                               options));
  if (stats != nullptr) {
    stats->skyline_quality = sky.quality;
    stats->skyline_stats = sky.stats;
  }
  for (uint32_t id : sky.skyline) filtered.push_back(id);
  return filtered;
}

}  // namespace

// Executes one SELECT (without UNION chaining).
static Result<Table> ExecuteSingleSelect(const Database& db, SelectStmt& stmt,
                                         const ExecOptions& exec_options,
                                         ExecStats* stats) {
  core::ExecutionContext* exec = exec_options.exec;
  // ---- Resolve FROM tables and build the slot layout. -------------------
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  // Each table is a pinned copy-on-update snapshot (sql/catalog.h): the
  // shared_ptr keeps it alive for the whole query even if a concurrent
  // Register replaces the catalog entry mid-run.
  std::vector<std::shared_ptr<const Table>> pinned;
  std::vector<const Table*> tables;
  std::vector<SlotInfo> slots;
  std::vector<size_t> table_first_slot;
  for (const TableRef& ref : stmt.from) {
    GALAXY_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                            db.GetTable(ref.table_name));
    table_first_slot.push_back(slots.size());
    for (const ColumnDef& c : t->schema().columns()) {
      slots.push_back({ref.effective_alias(), c.name, c.type});
    }
    tables.push_back(t.get());
    pinned.push_back(std::move(t));
  }

  Binder binder(std::move(slots));

  // ---- Bind expressions. -------------------------------------------------
  if (stmt.where != nullptr) {
    GALAXY_RETURN_IF_ERROR(
        binder.Bind(stmt.where.get(), /*allow_aggregates=*/false));
  }
  for (ExprPtr& g : stmt.group_by) {
    GALAXY_RETURN_IF_ERROR(binder.Bind(g.get(), /*allow_aggregates=*/false));
  }
  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (!item.star && Binder::ContainsAggregate(item.expr.get())) {
      has_aggregates = true;
    }
  }
  if (Binder::ContainsAggregate(stmt.having.get())) has_aggregates = true;
  const bool grouped = !stmt.group_by.empty() || has_aggregates;

  if (stmt.having != nullptr && !grouped) {
    return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
  }
  if (stmt.skyline_rank && stmt.group_by.empty()) {
    return Status::InvalidArgument(
        "SKYLINE OF ... GAMMA RANK requires GROUP BY (it ranks groups)");
  }
  // Definition 3 needs γ ≥ 0.5 for asymmetry; reject here so a bad literal
  // is a clean InvalidArgument, not a core-layer precondition failure.
  if (stmt.skyline_gamma.has_value() &&
      !(*stmt.skyline_gamma >= 0.5 && *stmt.skyline_gamma <= 1.0)) {
    return Status::InvalidArgument("GAMMA must be in [0.5, 1]");
  }
  for (SelectItem& item : stmt.items) {
    if (item.star) {
      if (grouped) {
        return Status::InvalidArgument("SELECT * cannot be used with GROUP BY");
      }
      continue;
    }
    GALAXY_RETURN_IF_ERROR(binder.Bind(item.expr.get(), grouped));
  }
  if (stmt.having != nullptr) {
    GALAXY_RETURN_IF_ERROR(binder.Bind(stmt.having.get(), true));
  }
  for (SkylineItem& item : stmt.skyline) {
    GALAXY_RETURN_IF_ERROR(
        binder.Bind(item.expr.get(), /*allow_aggregates=*/false));
  }
  for (OrderItem& item : stmt.order_by) {
    // ORDER BY may name a select alias; rewrite to the aliased expression's
    // output, otherwise bind against the input.
    bool is_alias = false;
    if (item.expr->kind == ExprKind::kColumnRef && item.expr->table.empty()) {
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!stmt.items[i].star &&
            NameEq(stmt.items[i].alias, item.expr->column)) {
          item.expr->bound_slot = -2 - static_cast<int>(i);  // output ref
          is_alias = true;
          break;
        }
      }
    }
    if (!is_alias) {
      GALAXY_RETURN_IF_ERROR(binder.Bind(item.expr.get(), grouped));
    }
  }

  std::map<const Expr*, SubqueryCache> subquery_cache;
  std::map<const Expr*, bool> exists_cache;
  EvalContext ctx;
  ctx.db = &db;
  ctx.subqueries = &subquery_cache;
  ctx.exists_cache = &exists_cache;

  const size_t num_tables = tables.size();
  size_t total_slots = binder.slots().size();

  // ---- Predicate pushdown (multi-table FROM only): WHERE conjuncts whose
  // slots all belong to one table filter that table before the join. ------
  std::vector<std::vector<ExprPtr>> pushed(num_tables);
  if (num_tables > 1 && stmt.where != nullptr) {
    auto table_of_slot = [&](int slot) {
      size_t t = 0;
      while (t + 1 < num_tables &&
             static_cast<size_t>(slot) >= table_first_slot[t + 1]) {
        ++t;
      }
      return t;
    };
    std::vector<ExprPtr> residual;
    for (ExprPtr& conjunct : SplitConjuncts(std::move(stmt.where))) {
      std::vector<int> used;
      CollectSlots(conjunct.get(), &used);
      bool single = !used.empty();
      size_t table = single ? table_of_slot(used[0]) : 0;
      for (int s : used) {
        if (table_of_slot(s) != table) {
          single = false;
          break;
        }
      }
      if (single) {
        pushed[table].push_back(std::move(conjunct));
        if (stats != nullptr) ++stats->pushed_filters;
      } else {
        residual.push_back(std::move(conjunct));
      }
    }
    stmt.where = ConjoinAll(std::move(residual));
  }

  // ---- Hash equi-join detection (two-table FROM): a residual conjunct of
  // the form A.x = B.y becomes the join key; the probe replaces the
  // quadratic cross product. -----------------------------------------------
  ExprPtr join_key;  // the extracted equality, if any
  if (num_tables == 2 && stmt.where != nullptr) {
    std::vector<ExprPtr> residual;
    for (ExprPtr& conjunct : SplitConjuncts(std::move(stmt.where))) {
      bool is_key =
          join_key == nullptr && conjunct->kind == ExprKind::kBinary &&
          conjunct->binary_op == BinaryOp::kEq &&
          conjunct->left->kind == ExprKind::kColumnRef &&
          conjunct->right->kind == ExprKind::kColumnRef;
      if (is_key) {
        int slot_l = conjunct->left->bound_slot;
        int slot_r = conjunct->right->bound_slot;
        bool crosses =
            (static_cast<size_t>(slot_l) < table_first_slot[1]) !=
            (static_cast<size_t>(slot_r) < table_first_slot[1]);
        // Hash probing uses Value equality, which is only equivalent to the
        // SQL '=' operator when the column types are comparable (both
        // numeric or both string) — mismatches must keep erroring at
        // evaluation time.
        auto comparable = [&](ValueType a, ValueType b) {
          auto numeric = [](ValueType t) {
            return t == ValueType::kInt64 || t == ValueType::kDouble;
          };
          return (numeric(a) && numeric(b)) ||
                 (a == ValueType::kString && b == ValueType::kString);
        };
        if (crosses &&
            comparable(binder.slots()[slot_l].type,
                       binder.slots()[slot_r].type)) {
          join_key = std::move(conjunct);
          continue;
        }
      }
      residual.push_back(std::move(conjunct));
    }
    stmt.where = ConjoinAll(std::move(residual));
  }

  // ---- Build the output column list. -------------------------------------
  std::vector<OutputColumn> out_columns;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < binder.slots().size(); ++i) {
        OutputColumn col;
        col.name = num_tables > 1 ? binder.slots()[i].table_alias + "." +
                                        binder.slots()[i].column
                                  : binder.slots()[i].column;
        col.star_slot = static_cast<int>(i);
        out_columns.push_back(std::move(col));
      }
    } else {
      OutputColumn col;
      col.name = !item.alias.empty() ? item.alias : item.expr->ToString();
      col.expr = item.expr.get();
      out_columns.push_back(std::move(col));
    }
  }

  // ---- Output rows (plus ORDER BY sort keys) and the projector. ----------
  std::vector<Row> out_rows;
  std::vector<std::vector<Value>> sort_keys;
  const bool need_sort = !stmt.order_by.empty();

  auto project = [&](EvalContext& rowctx) -> Status {
    Row out;
    out.reserve(out_columns.size());
    for (const OutputColumn& col : out_columns) {
      if (col.star_slot >= 0) {
        out.push_back(rowctx.row->Get(col.star_slot));
      } else {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(col.expr, rowctx));
        out.push_back(std::move(v));
      }
    }
    if (need_sort) {
      std::vector<Value> keys;
      keys.reserve(stmt.order_by.size());
      for (const OrderItem& item : stmt.order_by) {
        if (item.expr->bound_slot <= -2) {
          keys.push_back(out[static_cast<size_t>(-2 - item.expr->bound_slot)]);
        } else {
          GALAXY_ASSIGN_OR_RETURN(Value v, Eval(item.expr.get(), rowctx));
          keys.push_back(std::move(v));
        }
      }
      sort_keys.push_back(std::move(keys));
    }
    out_rows.push_back(std::move(out));
    return Status::OK();
  };

  // ---- Cursor-mode row view over the base tables. ------------------------
  std::vector<const Column*> slot_cols;
  std::vector<size_t> slot_table(total_slots);
  std::vector<size_t> current(num_tables, 0);
  slot_cols.reserve(total_slots);
  {
    size_t slot = 0;
    for (size_t t = 0; t < num_tables; ++t) {
      for (size_t c = 0; c < tables[t]->num_columns(); ++c, ++slot) {
        slot_cols.push_back(&tables[t]->column(c));
        slot_table[slot] = t;
      }
    }
  }
  RowView scan_view;
  scan_view.slot_columns = slot_cols.data();
  scan_view.slot_table = slot_table.data();
  scan_view.cursors = current.data();

  const std::vector<Expr*>& agg_exprs = binder.aggregates();
  const bool vectorized = num_tables == 1 && !exec_options.force_scalar;

  if (vectorized) {
    // =======================================================================
    // Batch pipeline (single-table FROM): selection vectors over column
    // storage instead of per-row boxed evaluation. Behavior must be
    // indistinguishable from the scalar pipeline below (which still serves
    // multi-table FROMs and ExecOptions::force_scalar).
    // =======================================================================
    const Table& t0 = *tables[0];
    const size_t nrows = t0.num_rows();
    if (stats != nullptr) stats->cross_product_rows += nrows;
    // Charge parity with the scalar pipeline: one unit per scanned row plus
    // one per row streamed into WHERE.
    GALAXY_RETURN_IF_ERROR(ChargeRows(exec, nrows));
    GALAXY_RETURN_IF_ERROR(ChargeRows(exec, nrows));

    std::vector<uint32_t> sel(nrows);
    for (size_t i = 0; i < nrows; ++i) sel[i] = static_cast<uint32_t>(i);

    // WHERE: compiled conjuncts shrink the selection vector in place; the
    // rest evaluate per surviving row. Sequential conjunct filtering is
    // equivalent to per-row AND short-circuiting.
    if (stmt.where != nullptr) {
      for (ExprPtr& conjunct : SplitConjuncts(std::move(stmt.where))) {
        std::optional<ColumnPredicate> p =
            CompilePredicate(conjunct.get(), t0);
        if (p.has_value()) {
          ApplyPredicate(*p, t0, &sel);
          if (stats != nullptr) ++stats->vectorized_predicates;
          continue;
        }
        std::vector<uint32_t> out;
        out.reserve(sel.size());
        for (uint32_t r : sel) {
          current[0] = r;
          ctx.row = &scan_view;
          GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(conjunct.get(), ctx));
          if (keep.is_null()) continue;
          GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
          if (pass) out.push_back(r);
        }
        sel = std::move(out);
      }
    }

    // Evaluates one SKYLINE OF dimension over the selection into a dense
    // array (negated for MIN dimensions). Plain numeric columns copy
    // without boxing; NULL/string cells box per cell so the conversion
    // error text matches the scalar pipeline.
    auto eval_skyline_dim =
        [&](const SkylineItem& item) -> Result<std::vector<double>> {
      std::vector<double> out(sel.size());
      const Expr* e = item.expr.get();
      if (e->kind == ExprKind::kColumnRef && e->bound_slot >= 0) {
        const Column& col = t0.column(static_cast<size_t>(e->bound_slot));
        if (col.type() == ValueType::kDouble && !col.has_nulls()) {
          const std::vector<double>& v = col.doubles();
          for (size_t i = 0; i < sel.size(); ++i) out[i] = v[sel[i]];
        } else if (col.type() == ValueType::kInt64 && !col.has_nulls()) {
          const std::vector<int64_t>& v = col.ints();
          for (size_t i = 0; i < sel.size(); ++i) {
            out[i] = static_cast<double>(v[sel[i]]);
          }
        } else {
          for (size_t i = 0; i < sel.size(); ++i) {
            GALAXY_ASSIGN_OR_RETURN(out[i],
                                    col.GetValue(sel[i]).ToDouble());
          }
        }
      } else {
        for (size_t i = 0; i < sel.size(); ++i) {
          current[0] = sel[i];
          ctx.row = &scan_view;
          GALAXY_ASSIGN_OR_RETURN(Value v, Eval(e, ctx));
          GALAXY_ASSIGN_OR_RETURN(out[i], v.ToDouble());
        }
      }
      if (!item.maximize) {
        for (double& x : out) x = -x;
      }
      return out;
    };

    if (!grouped) {
      // Optional record skyline filter (SKYLINE OF without GROUP BY).
      if (!stmt.skyline.empty()) {
        const size_t d = stmt.skyline.size();
        std::vector<std::vector<double>> dims(d);
        for (size_t k = 0; k < d; ++k) {
          GALAXY_ASSIGN_OR_RETURN(dims[k], eval_skyline_dim(stmt.skyline[k]));
        }
        std::vector<std::vector<double>> points(sel.size(),
                                                std::vector<double>(d));
        for (size_t i = 0; i < sel.size(); ++i) {
          for (size_t k = 0; k < d; ++k) points[i][k] = dims[k][i];
        }
        std::vector<size_t> keep = skyline::Compute(
            points, skyline::AllMax(d), skyline::Algorithm::kSfs);
        std::vector<uint32_t> filtered;
        filtered.reserve(keep.size());
        for (size_t idx : keep) filtered.push_back(sel[idx]);
        sel = std::move(filtered);
      }

      // Columnar projection gather: when every output is a plain column and
      // no DISTINCT/ORDER BY reshapes the result, the output table is a
      // per-column gather — no boxed rows at all. LIMIT truncates the
      // selection first (a column gather cannot error, so this is safe).
      bool gatherable = !stmt.distinct && !need_sort;
      for (const OutputColumn& col : out_columns) {
        if (col.star_slot >= 0) continue;
        if (col.expr->kind != ExprKind::kColumnRef ||
            col.expr->bound_slot < 0) {
          gatherable = false;
          break;
        }
      }
      if (gatherable) {
        if (stmt.limit.has_value() && *stmt.limit >= 0 &&
            sel.size() > static_cast<size_t>(*stmt.limit)) {
          sel.resize(static_cast<size_t>(*stmt.limit));
        }
        if (stats != nullptr) ++stats->columnar_projections;
        std::vector<ColumnDef> defs;
        std::vector<Column> cols;
        defs.reserve(out_columns.size());
        cols.reserve(out_columns.size());
        for (const OutputColumn& col : out_columns) {
          const size_t src = col.star_slot >= 0
                                 ? static_cast<size_t>(col.star_slot)
                                 : static_cast<size_t>(col.expr->bound_slot);
          Column gathered = GatherColumn(t0.column(src), sel);
          // Typing parity with the scalar output path: an expression column
          // with no non-null output cells falls back to INT64.
          if (col.star_slot < 0 &&
              gathered.null_count() == gathered.size() &&
              gathered.type() != ValueType::kInt64) {
            Column conformed{ValueType::kInt64};
            for (size_t i = 0; i < gathered.size(); ++i) {
              conformed.AppendNull();
            }
            gathered = std::move(conformed);
          }
          defs.push_back({col.name, gathered.type()});
          cols.push_back(std::move(gathered));
        }
        return Table(Schema(std::move(defs)), std::move(cols));
      }

      for (uint32_t r : sel) {
        current[0] = r;
        ctx.row = &scan_view;
        GALAXY_RETURN_IF_ERROR(project(ctx));
      }
    } else {
      // ---- Grouping: dense group ids over the selection. ----------------
      std::vector<std::vector<uint32_t>> group_rows;
      std::vector<uint32_t> row_gid(sel.size(), 0);
      if (stmt.group_by.empty()) {
        // Global aggregate: one group over everything (even when empty).
        group_rows.emplace_back(sel.begin(), sel.end());
      } else {
        const Expr* single =
            stmt.group_by.size() == 1 &&
                    stmt.group_by[0]->kind == ExprKind::kColumnRef &&
                    stmt.group_by[0]->bound_slot >= 0
                ? stmt.group_by[0].get()
                : nullptr;
        const ValueType key_type =
            single != nullptr ? t0.column(single->bound_slot).type()
                              : ValueType::kNull;
        if (single != nullptr && key_type == ValueType::kString) {
          const Column& col = t0.column(single->bound_slot);
          const std::vector<std::string>& v = col.strings();
          std::unordered_map<std::string_view, uint32_t> gids;
          uint32_t null_gid = UINT32_MAX;
          for (size_t i = 0; i < sel.size(); ++i) {
            const uint32_t r = sel[i];
            uint32_t gid;
            if (col.is_null(r)) {
              if (null_gid == UINT32_MAX) {
                null_gid = static_cast<uint32_t>(group_rows.size());
                group_rows.emplace_back();
              }
              gid = null_gid;
            } else {
              auto [it, inserted] = gids.try_emplace(
                  std::string_view(v[r]),
                  static_cast<uint32_t>(group_rows.size()));
              if (inserted) group_rows.emplace_back();
              gid = it->second;
            }
            group_rows[gid].push_back(r);
            row_gid[i] = gid;
          }
        } else if (single != nullptr && key_type == ValueType::kInt64) {
          const Column& col = t0.column(single->bound_slot);
          const std::vector<int64_t>& v = col.ints();
          std::unordered_map<int64_t, uint32_t> gids;
          uint32_t null_gid = UINT32_MAX;
          for (size_t i = 0; i < sel.size(); ++i) {
            const uint32_t r = sel[i];
            uint32_t gid;
            if (col.is_null(r)) {
              if (null_gid == UINT32_MAX) {
                null_gid = static_cast<uint32_t>(group_rows.size());
                group_rows.emplace_back();
              }
              gid = null_gid;
            } else {
              auto [it, inserted] = gids.try_emplace(
                  v[r], static_cast<uint32_t>(group_rows.size()));
              if (inserted) group_rows.emplace_back();
              gid = it->second;
            }
            group_rows[gid].push_back(r);
            row_gid[i] = gid;
          }
        } else {
          // Generic fallback (expressions, composite or double keys): boxed
          // composite keys — bit-for-bit the scalar pipeline's grouping,
          // including int/double cross-type equality and NULL keys.
          std::unordered_map<std::vector<Value>, uint32_t, KeyHash> gids;
          std::vector<Value> key;
          for (size_t i = 0; i < sel.size(); ++i) {
            const uint32_t r = sel[i];
            key.clear();
            for (const ExprPtr& g : stmt.group_by) {
              if (g->kind == ExprKind::kColumnRef && g->bound_slot >= 0) {
                key.push_back(t0.column(g->bound_slot).GetValue(r));
              } else {
                current[0] = r;
                ctx.row = &scan_view;
                GALAXY_ASSIGN_OR_RETURN(Value v, Eval(g.get(), ctx));
                key.push_back(std::move(v));
              }
            }
            auto [it, inserted] = gids.try_emplace(
                key, static_cast<uint32_t>(group_rows.size()));
            if (inserted) group_rows.emplace_back();
            group_rows[it->second].push_back(r);
            row_gid[i] = it->second;
          }
        }
      }
      const size_t num_groups = group_rows.size();

      // First row of each group (all-NULL for the synthetic global group):
      // one boxed row per group feeds HAVING and projection; the per-row
      // hot path stays columnar.
      std::vector<Row> first_rows(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        if (group_rows[g].empty()) {
          first_rows[g].assign(total_slots, Value::Null());
        } else {
          // galaxy-lint: allow(row-major-access)
          first_rows[g] = t0.MaterializeRow(group_rows[g][0]);
        }
      }

      // Aggregates: typed folds over column slices where the argument is a
      // plain column; everything else replays the scalar Accumulate.
      std::vector<std::vector<AggState>> agg_states(
          num_groups, std::vector<AggState>(agg_exprs.size()));
      for (size_t a = 0; a < agg_exprs.size(); ++a) {
        const Expr* agg = agg_exprs[a];
        if (agg->star_arg) {
          for (size_t g = 0; g < num_groups; ++g) {
            AggState& st = agg_states[g][a];
            const uint64_t n = group_rows[g].size();
            st.rows += n;
            st.non_null += n;
            st.isum += static_cast<int64_t>(n);
          }
          if (stats != nullptr) stats->vectorized_folds += num_groups;
          continue;
        }
        const Expr* arg = agg->args[0].get();
        if (arg->kind == ExprKind::kColumnRef && arg->bound_slot >= 0) {
          const Column& col = t0.column(arg->bound_slot);
          for (size_t g = 0; g < num_groups; ++g) {
            FoldColumnAgg(col, group_rows[g], &agg_states[g][a]);
          }
          if (stats != nullptr) stats->vectorized_folds += num_groups;
          continue;
        }
        for (size_t g = 0; g < num_groups; ++g) {
          for (uint32_t r : group_rows[g]) {
            current[0] = r;
            ctx.row = &scan_view;
            GALAXY_ASSIGN_OR_RETURN(Value v, Eval(arg, ctx));
            agg_states[g][a].Accumulate(v);
          }
        }
      }

      // SKYLINE OF attributes, gathered into dense per-group buffers before
      // HAVING (scalar order: attribute conversion errors surface for every
      // streamed row, HAVING or not).
      std::vector<std::vector<double>> group_bufs;
      if (!stmt.skyline.empty()) {
        const size_t d = stmt.skyline.size();
        std::vector<std::vector<double>> dims(d);
        for (size_t k = 0; k < d; ++k) {
          GALAXY_ASSIGN_OR_RETURN(dims[k], eval_skyline_dim(stmt.skyline[k]));
        }
        group_bufs.resize(num_groups);
        for (size_t g = 0; g < num_groups; ++g) {
          group_bufs[g].reserve(group_rows[g].size() * d);
        }
        for (size_t i = 0; i < sel.size(); ++i) {
          std::vector<double>& buf = group_bufs[row_gid[i]];
          for (size_t k = 0; k < d; ++k) buf.push_back(dims[k][i]);
        }
        if (stats != nullptr) stats->group_gather_cells += sel.size() * d;
      }

      // Finish aggregates per group.
      std::vector<std::vector<Value>> agg_values(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        agg_values[g].reserve(agg_exprs.size());
        for (size_t a = 0; a < agg_exprs.size(); ++a) {
          GALAXY_ASSIGN_OR_RETURN(
              Value v, agg_states[g][a].Finish(agg_exprs[a]->function,
                                               agg_exprs[a]->star_arg));
          agg_values[g].push_back(std::move(v));
        }
      }

      // HAVING filter.
      std::vector<uint32_t> surviving;
      RowView group_view;
      for (size_t g = 0; g < num_groups; ++g) {
        group_view.values = first_rows[g].data();
        ctx.row = &group_view;
        ctx.aggs = &agg_values[g];
        if (stmt.having != nullptr) {
          GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(stmt.having.get(), ctx));
          if (keep.is_null()) continue;
          GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
          if (!pass) continue;
        }
        surviving.push_back(static_cast<uint32_t>(g));
      }

      // Aggregate skyline over the surviving groups.
      if (!stmt.skyline.empty() && !surviving.empty()) {
        std::vector<std::vector<double>> bufs;
        bufs.reserve(surviving.size());
        for (uint32_t g : surviving) bufs.push_back(std::move(group_bufs[g]));
        GALAXY_ASSIGN_OR_RETURN(
            std::vector<size_t> filtered,
            AggregateSkylineFilter(stmt.skyline.size(), std::move(bufs),
                                   stmt.skyline_rank, stmt.skyline_gamma,
                                   exec_options, stats));
        std::vector<uint32_t> next;
        next.reserve(filtered.size());
        for (size_t id : filtered) next.push_back(surviving[id]);
        surviving = std::move(next);
      }

      for (uint32_t g : surviving) {
        group_view.values = first_rows[g].data();
        ctx.row = &group_view;
        ctx.aggs = &agg_values[g];
        GALAXY_RETURN_IF_ERROR(project(ctx));
      }
      ctx.aggs = nullptr;
    }
  } else {
    // =======================================================================
    // Scalar (tuple-at-a-time) pipeline: multi-table FROMs and the
    // force_scalar reference mode.
    // =======================================================================

    // Per-table candidate row lists (all rows unless a filter was pushed).
    std::vector<std::vector<size_t>> selected(num_tables);
    for (size_t t = 0; t < num_tables; ++t) {
      selected[t].reserve(tables[t]->num_rows());
      for (size_t r = 0; r < tables[t]->num_rows(); ++r) {
        if (exec != nullptr && !exec->Charge(1)) return exec->status();
        if (!pushed[t].empty()) {
          current[t] = r;
          ctx.row = &scan_view;
          bool pass = true;
          for (const ExprPtr& predicate : pushed[t]) {
            GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(predicate.get(), ctx));
            if (keep.is_null()) {
              pass = false;
              break;
            }
            GALAXY_ASSIGN_OR_RETURN(pass, ValueIsTrue(keep));
            if (!pass) break;
          }
          if (!pass) {
            if (stats != nullptr) ++stats->base_rows_filtered;
            continue;
          }
        }
        selected[t].push_back(r);
      }
    }

    // ---- Stream the (filtered) FROM cross product through WHERE. --------
    std::vector<size_t> cursor(num_tables, 0);  // positions into selected[t]

    bool empty_product = false;
    for (size_t t = 0; t < num_tables; ++t) {
      if (selected[t].empty()) empty_product = true;
    }

    // Row consumers fill one of these.
    std::vector<std::vector<Value>> passing_rows;  // non-grouped path
    std::unordered_map<std::vector<Value>, GroupAccum, KeyHash> groups;
    std::vector<const std::vector<Value>*> group_order;  // stable order

    auto consume_row = [&]() -> Status {
      // One work unit per streamed row; trips surface here so the join
      // loops unwind through the usual error path within one row.
      if (exec != nullptr && !exec->Charge(1)) return exec->status();
      ctx.row = &scan_view;
      if (stmt.where != nullptr) {
        GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(stmt.where.get(), ctx));
        if (keep.is_null()) return Status::OK();
        GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
        if (!pass) return Status::OK();
      }
      if (!grouped) {
        std::vector<Value> copy(total_slots);
        for (size_t i = 0; i < total_slots; ++i) {
          copy[i] = scan_view.Get(static_cast<int>(i));
        }
        passing_rows.push_back(std::move(copy));
        return Status::OK();
      }
      // Grouped: evaluate the key and accumulate.
      std::vector<Value> key;
      key.reserve(stmt.group_by.size());
      for (const ExprPtr& g : stmt.group_by) {
        GALAXY_ASSIGN_OR_RETURN(Value v, Eval(g.get(), ctx));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      GroupAccum& accum = it->second;
      if (inserted) {
        group_order.push_back(&it->first);
        accum.first_row.resize(total_slots);
        for (size_t i = 0; i < total_slots; ++i) {
          accum.first_row[i] = scan_view.Get(static_cast<int>(i));
        }
        accum.agg_states.resize(agg_exprs.size());
      }
      for (size_t a = 0; a < agg_exprs.size(); ++a) {
        const Expr* agg = agg_exprs[a];
        if (agg->star_arg) {
          accum.agg_states[a].Accumulate(Value(int64_t{1}));
        } else {
          GALAXY_ASSIGN_OR_RETURN(Value v, Eval(agg->args[0].get(), ctx));
          accum.agg_states[a].Accumulate(v);
        }
      }
      if (!stmt.skyline.empty()) {
        for (size_t k = 0; k < stmt.skyline.size(); ++k) {
          GALAXY_ASSIGN_OR_RETURN(Value v,
                                  Eval(stmt.skyline[k].expr.get(), ctx));
          GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
          accum.skyline_buf.push_back(stmt.skyline[k].maximize ? d : -d);
        }
      }
      return Status::OK();
    };

    if (!empty_product && join_key != nullptr) {
      // Hash equi-join: build on table 1, probe with table 0.
      if (stats != nullptr) ++stats->hash_joins;
      int slot_l = join_key->left->bound_slot;
      int slot_r = join_key->right->bound_slot;
      size_t slot0 = static_cast<size_t>(
          static_cast<size_t>(slot_l) < table_first_slot[1] ? slot_l : slot_r);
      size_t slot1 = static_cast<size_t>(
          static_cast<size_t>(slot_l) < table_first_slot[1] ? slot_r : slot_l);
      size_t col0 = slot0;
      size_t col1 = slot1 - table_first_slot[1];

      std::unordered_map<Value, std::vector<size_t>, ValueHash> build;
      for (size_t r1 : selected[1]) {
        Value key = tables[1]->at(r1, col1);
        if (!key.is_null()) build[std::move(key)].push_back(r1);
      }
      for (size_t r0 : selected[0]) {
        Value key = tables[0]->at(r0, col0);
        if (key.is_null()) continue;
        auto it = build.find(key);
        if (it == build.end()) continue;
        current[0] = r0;
        for (size_t r1 : it->second) {
          current[1] = r1;
          if (stats != nullptr) ++stats->cross_product_rows;
          GALAXY_RETURN_IF_ERROR(consume_row());
        }
      }
    } else if (!empty_product) {
      while (true) {
        // Position each table's cursor at the current combination.
        for (size_t t = 0; t < num_tables; ++t) {
          current[t] = selected[t][cursor[t]];
        }
        if (stats != nullptr) ++stats->cross_product_rows;
        GALAXY_RETURN_IF_ERROR(consume_row());
        // Advance the odometer; stop when the most significant digit wraps.
        bool done = false;
        size_t t = num_tables;
        while (t > 0) {
          --t;
          if (++cursor[t] < selected[t].size()) break;
          cursor[t] = 0;
          if (t == 0) done = true;
        }
        if (done) break;
      }
    }

    // Global aggregate with no GROUP BY: one group over everything (even if
    // the input is empty).
    if (grouped && stmt.group_by.empty() && groups.empty()) {
      auto [it, _] = groups.try_emplace(std::vector<Value>{});
      it->second.agg_states.resize(agg_exprs.size());
      it->second.first_row.assign(total_slots, Value::Null());
      group_order.push_back(&it->first);
    }

    if (!grouped) {
      // Optional record skyline filter (SKYLINE OF without GROUP BY).
      std::vector<size_t> kept(passing_rows.size());
      for (size_t i = 0; i < passing_rows.size(); ++i) kept[i] = i;
      if (!stmt.skyline.empty()) {
        std::vector<std::vector<double>> points;
        points.reserve(passing_rows.size());
        RowView row_view;
        for (const std::vector<Value>& r : passing_rows) {
          row_view.values = r.data();
          ctx.row = &row_view;
          std::vector<double> p(stmt.skyline.size());
          for (size_t k = 0; k < stmt.skyline.size(); ++k) {
            GALAXY_ASSIGN_OR_RETURN(Value v,
                                    Eval(stmt.skyline[k].expr.get(), ctx));
            GALAXY_ASSIGN_OR_RETURN(double d, v.ToDouble());
            p[k] = stmt.skyline[k].maximize ? d : -d;
          }
          points.push_back(std::move(p));
        }
        kept = skyline::Compute(points, skyline::AllMax(stmt.skyline.size()),
                                skyline::Algorithm::kSfs);
      }
      RowView row_view;
      for (size_t idx : kept) {
        row_view.values = passing_rows[idx].data();
        ctx.row = &row_view;
        GALAXY_RETURN_IF_ERROR(project(ctx));
      }
    } else {
      // Finish aggregates per group.
      std::unordered_map<const std::vector<Value>*, std::vector<Value>>
          agg_values;
      for (const std::vector<Value>* key : group_order) {
        GroupAccum& accum = groups.find(*key)->second;
        std::vector<Value> vals;
        vals.reserve(agg_exprs.size());
        for (size_t a = 0; a < agg_exprs.size(); ++a) {
          GALAXY_ASSIGN_OR_RETURN(
              Value v,
              accum.agg_states[a].Finish(agg_exprs[a]->function,
                                         agg_exprs[a]->star_arg));
          vals.push_back(std::move(v));
        }
        agg_values.emplace(key, std::move(vals));
      }

      // HAVING filter.
      std::vector<const std::vector<Value>*> surviving;
      RowView group_view;
      for (const std::vector<Value>* key : group_order) {
        GroupAccum& accum = groups.find(*key)->second;
        group_view.values = accum.first_row.data();
        ctx.row = &group_view;
        ctx.aggs = &agg_values.find(key)->second;
        if (stmt.having != nullptr) {
          GALAXY_ASSIGN_OR_RETURN(Value keep, Eval(stmt.having.get(), ctx));
          if (keep.is_null()) continue;
          GALAXY_ASSIGN_OR_RETURN(bool pass, ValueIsTrue(keep));
          if (!pass) continue;
        }
        surviving.push_back(key);
      }

      // Aggregate skyline over the surviving groups (SKYLINE OF + GROUP
      // BY): Definition 2 applied to the per-group record sets. GAMMA RANK
      // instead emits every group admissible at some γ, ordered by minimal
      // γ (Section 2.2's parameter-free mode).
      if (!stmt.skyline.empty() && !surviving.empty()) {
        std::vector<std::vector<double>> bufs;
        bufs.reserve(surviving.size());
        for (const std::vector<Value>* key : surviving) {
          bufs.push_back(std::move(groups.find(*key)->second.skyline_buf));
        }
        GALAXY_ASSIGN_OR_RETURN(
            std::vector<size_t> filtered,
            AggregateSkylineFilter(stmt.skyline.size(), std::move(bufs),
                                   stmt.skyline_rank, stmt.skyline_gamma,
                                   exec_options, stats));
        std::vector<const std::vector<Value>*> next;
        next.reserve(filtered.size());
        for (size_t id : filtered) next.push_back(surviving[id]);
        surviving = std::move(next);
      }

      for (const std::vector<Value>* key : surviving) {
        GroupAccum& accum = groups.find(*key)->second;
        group_view.values = accum.first_row.data();
        ctx.row = &group_view;
        ctx.aggs = &agg_values.find(key)->second;
        GALAXY_RETURN_IF_ERROR(project(ctx));
      }
      ctx.aggs = nullptr;
    }
  }

  // ---- DISTINCT. ----------------------------------------------------------
  if (stmt.distinct) {
    std::unordered_set<Row, RowHash> seen;
    std::vector<Row> unique_rows;
    std::vector<std::vector<Value>> unique_keys;
    for (size_t i = 0; i < out_rows.size(); ++i) {
      if (seen.insert(out_rows[i]).second) {
        unique_rows.push_back(std::move(out_rows[i]));
        if (need_sort) unique_keys.push_back(std::move(sort_keys[i]));
      }
    }
    out_rows = std::move(unique_rows);
    sort_keys = std::move(unique_keys);
  }

  // ---- ORDER BY / LIMIT. ---------------------------------------------------
  if (need_sort) {
    std::vector<size_t> perm(out_rows.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        const Value& va = sort_keys[a][k];
        const Value& vb = sort_keys[b][k];
        if (va == vb) continue;
        bool less = va < vb;
        return stmt.order_by[k].ascending ? less : !less;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : perm) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }
  if (stmt.limit.has_value() && *stmt.limit >= 0 &&
      out_rows.size() > static_cast<size_t>(*stmt.limit)) {
    out_rows.resize(static_cast<size_t>(*stmt.limit));
  }

  // ---- Output schema. -------------------------------------------------------
  std::vector<std::string> names;
  std::vector<ValueType> fallbacks;
  names.reserve(out_columns.size());
  fallbacks.reserve(out_columns.size());
  for (const OutputColumn& col : out_columns) {
    names.push_back(col.name);
    fallbacks.push_back(col.star_slot >= 0
                            ? binder.slots()[col.star_slot].type
                            : ValueType::kInt64);
  }
  return RowsToTable(names, fallbacks, std::move(out_rows));
}

Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            ExecStats* stats) {
  return ExecuteSelect(db, stmt, ExecOptions{}, stats);
}

Result<Table> ExecuteSelect(const Database& db, SelectStmt& stmt,
                            const ExecOptions& options, ExecStats* stats) {
  size_t folded = FoldStatement(stmt);  // also folds union members
  if (stats != nullptr) stats->folded_constants += folded;
  GALAXY_ASSIGN_OR_RETURN(Table result,
                          ExecuteSingleSelect(db, stmt, options, stats));
  if (stmt.union_next == nullptr) return result;

  // Left-associative UNION evaluation: combine member by member, applying
  // duplicate elimination at every non-ALL link (standard SQL semantics).
  // UNION links deduplicate whole tuples, which is inherently row-shaped;
  // the boxing here is off the single-member hot path.
  std::vector<Row> rows = result.DebugRows();  // galaxy-lint: allow(row-major-access)
  bool pending_all = stmt.union_all;
  for (SelectStmt* member = stmt.union_next.get(); member != nullptr;
       member = member->union_next.get()) {
    GALAXY_ASSIGN_OR_RETURN(Table next,
                            ExecuteSingleSelect(db, *member, options, stats));
    if (next.num_columns() != result.num_columns()) {
      return Status::InvalidArgument(
          "UNION members must have the same number of columns");
    }
    for (size_t r = 0; r < next.num_rows(); ++r) {
      rows.push_back(next.MaterializeRow(r));  // galaxy-lint: allow(row-major-access)
    }
    if (!pending_all) {
      std::unordered_set<Row, RowHash> seen;
      std::vector<Row> unique_rows;
      unique_rows.reserve(rows.size());
      for (Row& r : rows) {
        if (seen.insert(r).second) unique_rows.push_back(std::move(r));
      }
      rows = std::move(unique_rows);
    }
    pending_all = member->union_all;
  }

  // Column names come from the first member; types are re-inferred over
  // the combined rows (int/double widening via the column builders).
  std::vector<std::string> names;
  std::vector<ValueType> fallbacks;
  names.reserve(result.num_columns());
  fallbacks.reserve(result.num_columns());
  for (size_t c = 0; c < result.num_columns(); ++c) {
    names.push_back(result.schema().column(c).name);
    fallbacks.push_back(result.schema().column(c).type);
  }
  return RowsToTable(names, fallbacks, std::move(rows));
}

}  // namespace galaxy::sql
