#include "sql/skyline_query.h"

#include "common/str_util.h"

namespace galaxy::sql {

std::string BuildDominancePredicate(const std::vector<std::string>& attributes,
                                    const std::string& y,
                                    const std::string& x) {
  // (AND_i y.a_i >= x.a_i) AND (OR_i y.a_i > x.a_i)
  std::string all_geq;
  std::string any_gt;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) {
      all_geq += " AND ";
      any_gt += " OR ";
    }
    all_geq += y + "." + attributes[i] + " >= " + x + "." + attributes[i];
    any_gt += y + "." + attributes[i] + " > " + x + "." + attributes[i];
  }
  return "(" + all_geq + ") AND (" + any_gt + ")";
}

std::string BuildAggregateSkylineSql(const std::string& table_name,
                                     const std::string& class_column,
                                     const std::string& num_column,
                                     const std::vector<std::string>& attributes,
                                     double gamma) {
  std::string dominance = BuildDominancePredicate(attributes, "Y", "X");
  std::string sql = "SELECT DISTINCT " + class_column + " FROM " + table_name;
  sql += " WHERE " + class_column + " NOT IN (";
  sql += "SELECT X." + class_column;
  sql += " FROM " + table_name + " X, " + table_name + " Y";
  sql += " WHERE X." + class_column + " != Y." + class_column;
  sql += " AND (" + dominance + ")";
  sql += " GROUP BY X." + class_column + ", Y." + class_column;
  sql += " HAVING 1.0 * COUNT(*) / (X." + num_column + " * Y." + num_column +
         ") > " + FormatDouble(gamma, 12);
  sql += ")";
  return sql;
}

}  // namespace galaxy::sql
