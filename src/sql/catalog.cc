#include "sql/catalog.h"

#include "common/str_util.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace galaxy::sql {

void Database::Register(const std::string& name, Table table) {
  tables_.insert_or_assign(AsciiLower(name), std::move(table));
}

void Database::Unregister(const std::string& name) {
  tables_.erase(AsciiLower(name));
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(AsciiLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + name);
  }
  return &it->second;
}

Result<Table> Database::Query(const std::string& sql) const {
  GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, Parse(sql));
  return ExecuteSelect(*this, *stmt);
}

Result<Table> Database::Query(const std::string& sql,
                              const ExecOptions& options,
                              ExecStats* stats) const {
  GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, Parse(sql));
  return ExecuteSelect(*this, *stmt, options, stats);
}

}  // namespace galaxy::sql
