#include "sql/catalog.h"

#include <utility>

#include "common/str_util.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace galaxy::sql {

using common::ReaderMutexLock;
using common::SharedMutex;
using common::WriterMutexLock;

Database::Database(Database&& other) noexcept {
  // No lock on *this: the object is being constructed, nobody else can
  // reference it yet.
  WriterMutexLock lock(&other.mutex_);
  next_version_ = other.next_version_;
  tables_ = std::move(other.tables_);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  // Deterministic address order avoids deadlock if two threads ever move
  // in opposite directions (moves are documented single-threaded anyway).
  SharedMutex* first = this < &other ? &mutex_ : &other.mutex_;
  SharedMutex* second = this < &other ? &other.mutex_ : &mutex_;
  WriterMutexLock lock_first(first);
  WriterMutexLock lock_second(second);
  next_version_ = other.next_version_;
  tables_ = std::move(other.tables_);
  return *this;
}

uint64_t Database::Register(const std::string& name, Table table) {
  auto snapshot = std::make_shared<const Table>(std::move(table));
  WriterMutexLock lock(&mutex_);
  const uint64_t version = ++next_version_;
  tables_.insert_or_assign(AsciiLower(name),
                           Entry{std::move(snapshot), version});
  return version;
}

void Database::Unregister(const std::string& name) {
  WriterMutexLock lock(&mutex_);
  tables_.erase(AsciiLower(name));
}

Result<std::shared_ptr<const Table>> Database::GetTable(
    const std::string& name) const {
  ReaderMutexLock lock(&mutex_);
  auto it = tables_.find(AsciiLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + name);
  }
  return it->second.table;
}

Result<uint64_t> Database::TableVersion(const std::string& name) const {
  ReaderMutexLock lock(&mutex_);
  auto it = tables_.find(AsciiLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + name);
  }
  return it->second.version;
}

std::vector<std::string> Database::TableNames() const {
  ReaderMutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, std::shared_ptr<const Table>>>
Database::SnapshotTables() const {
  ReaderMutexLock lock(&mutex_);
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.emplace_back(name, entry.table);
  return out;
}

size_t Database::num_tables() const {
  ReaderMutexLock lock(&mutex_);
  return tables_.size();
}

Result<Table> Database::Query(const std::string& sql) const {
  GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, Parse(sql));
  return ExecuteSelect(*this, *stmt);
}

Result<Table> Database::Query(const std::string& sql,
                              const ExecOptions& options,
                              ExecStats* stats) const {
  GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, Parse(sql));
  return ExecuteSelect(*this, *stmt, options, stats);
}

}  // namespace galaxy::sql
