#include "relation/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace galaxy {

Result<Value> Table::at(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row index " + std::to_string(row) +
                              " out of range");
  }
  GALAXY_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return rows_[row][col];
}

Result<std::vector<std::vector<double>>> Table::ExtractNumeric(
    const std::vector<std::string>& columns) const {
  std::vector<size_t> indexes;
  indexes.reserve(columns.size());
  for (const std::string& name : columns) {
    GALAXY_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
    indexes.push_back(idx);
  }
  std::vector<std::vector<double>> out;
  out.reserve(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::vector<double> point(indexes.size());
    for (size_t k = 0; k < indexes.size(); ++k) {
      GALAXY_ASSIGN_OR_RETURN(point[k], rows_[r][indexes[k]].ToDouble());
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over header and the printed rows.
  size_t n = std::min(max_rows, rows_.size());
  std::vector<size_t> width(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    width[c] = schema_.column(c).name.size();
  }
  std::vector<std::vector<std::string>> cells(n);
  for (size_t r = 0; r < n; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << "+";
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t c = 0; c < width.size(); ++c) {
    const std::string& name = schema_.column(c).name;
    os << " " << name << std::string(width[c] - name.size(), ' ') << " |";
  }
  os << "\n";
  rule();
  for (size_t r = 0; r < n; ++r) {
    os << "|";
    for (size_t c = 0; c < width.size(); ++c) {
      os << " " << cells[r][c] << std::string(width[c] - cells[r][c].size(), ' ')
         << " |";
    }
    os << "\n";
  }
  rule();
  if (n < rows_.size()) {
    os << "... " << (rows_.size() - n) << " more rows\n";
  }
  return os.str();
}

namespace {

bool TypeAccepts(ValueType column, ValueType value) {
  if (value == ValueType::kNull) return true;
  if (column == value) return true;
  if (column == ValueType::kDouble && value == ValueType::kInt64) return true;
  return false;
}

}  // namespace

TableBuilder& TableBuilder::AddRow(Row row) {
  Status s = TryAddRow(std::move(row));
  GALAXY_CHECK(s.ok()) << s.ToString();
  return *this;
}

Status TableBuilder::TryAddRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (!TypeAccepts(schema_.column(c).type, row[c].type())) {
      return Status::TypeError("column '" + schema_.column(c).name +
                               "' expects " +
                               ValueTypeToString(schema_.column(c).type) +
                               ", got " + ValueTypeToString(row[c].type()));
    }
    // Widen ints stored in double columns so downstream readers see one type.
    if (schema_.column(c).type == ValueType::kDouble &&
        row[c].type() == ValueType::kInt64) {
      row[c] = Value(static_cast<double>(row[c].AsInt64()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Table TableBuilder::Build() {
  return Table(schema_, std::move(rows_));
}

}  // namespace galaxy
