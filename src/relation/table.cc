#include "relation/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace galaxy {

namespace {

bool TypeAccepts(ValueType column, ValueType value) {
  if (value == ValueType::kNull) return true;
  if (column == value) return true;
  if (column == ValueType::kDouble && value == ValueType::kInt64) return true;
  return false;
}

Status CheckRowAgainstSchema(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema.ToString());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (!TypeAccepts(schema.column(c).type, row[c].type())) {
      return Status::TypeError("column '" + schema.column(c).name +
                               "' expects " +
                               ValueTypeToString(schema.column(c).type) +
                               ", got " + ValueTypeToString(row[c].type()));
    }
  }
  return Status::OK();
}

}  // namespace

Table::Table(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  GALAXY_CHECK_EQ(columns_.size(), schema_.num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    GALAXY_CHECK(columns_[c].type() == schema_.column(c).type)
        << "column '" << schema_.column(c).name << "' storage type mismatch";
    if (c == 0) {
      num_rows_ = columns_[c].size();
    } else {
      GALAXY_CHECK_EQ(columns_[c].size(), num_rows_);
    }
  }
}

Table::Table(Schema schema, const std::vector<Row>& rows)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    Column col{schema_.column(c).type};
    col.Reserve(rows.size());
    columns_.push_back(std::move(col));
  }
  for (const Row& row : rows) {
    Status s = CheckRowAgainstSchema(schema_, row);
    GALAXY_CHECK(s.ok()) << s.ToString();
    for (size_t c = 0; c < row.size(); ++c) {
      columns_[c].AppendValue(row[c]);
    }
  }
  num_rows_ = rows.size();
}

Result<Value> Table::at(size_t row, const std::string& column) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("row index " + std::to_string(row) +
                              " out of range");
  }
  GALAXY_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return columns_[col].GetValue(row);
}

Row Table::MaterializeRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const Column& col : columns_) {
    row.push_back(col.GetValue(i));
  }
  return row;
}

std::vector<Row> Table::DebugRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    rows.push_back(MaterializeRow(r));
  }
  return rows;
}

std::optional<size_t> Table::FindRow(const Row& row) const {
  if (row.size() != columns_.size()) return std::nullopt;
  for (size_t r = 0; r < num_rows_; ++r) {
    bool match = true;
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (!(columns_[c].GetValue(r) == row[c])) {
        match = false;
        break;
      }
    }
    if (match) return r;
  }
  return std::nullopt;
}

Result<Table> Table::CopyWithAppended(const Row& row) const {
  GALAXY_RETURN_IF_ERROR(CheckRowAgainstSchema(schema_, row));
  std::vector<Column> columns = columns_;
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].AppendValue(row[c]);
  }
  return Table(schema_, std::move(columns));
}

Result<Table> Table::CopyWithRemoved(const Row& row) const {
  std::optional<size_t> target = FindRow(row);
  if (!target.has_value()) {
    return Status::NotFound("no row matching the remove body");
  }
  // Columns have no erase primitive (they are append-only); rebuild each
  // column skipping the removed row. Same O(rows) as the old row-vector
  // erase, without boxing cells.
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column col{columns_[c].type()};
    col.Reserve(num_rows_ - 1);
    for (size_t r = 0; r < num_rows_; ++r) {
      if (r == *target) continue;
      col.AppendValue(columns_[c].GetValue(r));
    }
    columns.push_back(std::move(col));
  }
  return Table(schema_, std::move(columns));
}

Result<std::vector<std::vector<double>>> Table::ExtractNumeric(
    const std::vector<std::string>& columns) const {
  std::vector<size_t> indexes;
  indexes.reserve(columns.size());
  for (const std::string& name : columns) {
    GALAXY_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
    indexes.push_back(idx);
  }
  std::vector<std::vector<double>> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<double> point(indexes.size());
    for (size_t k = 0; k < indexes.size(); ++k) {
      GALAXY_ASSIGN_OR_RETURN(point[k],
                              columns_[indexes[k]].GetValue(r).ToDouble());
    }
    out.push_back(std::move(point));
  }
  return out;
}

Result<Table::NumericColumns> Table::ExtractNumericColumns(
    const std::vector<std::string>& columns) const {
  NumericColumns out;
  out.slices.reserve(columns.size());
  // Reserve so `owned` never reallocates under an aliasing span.
  out.owned.reserve(columns.size());
  for (const std::string& name : columns) {
    GALAXY_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
    const Column& col = columns_[idx];
    if (num_rows_ == 0) {
      // An empty relation extracts as empty slices whatever the declared
      // types — matching the row-major path, which never inspects a cell.
      out.slices.emplace_back();
      continue;
    }
    if (col.has_nulls() || col.type() == ValueType::kNull) {
      return Status::TypeError("cannot convert NULL to double");
    }
    switch (col.type()) {
      case ValueType::kDouble:
        out.slices.emplace_back(col.doubles().data(), col.doubles().size());
        break;
      case ValueType::kInt64: {
        std::vector<double> converted(col.ints().begin(), col.ints().end());
        out.owned.push_back(std::move(converted));
        out.slices.emplace_back(out.owned.back().data(),
                                out.owned.back().size());
        break;
      }
      case ValueType::kNull:
        out.slices.emplace_back();  // empty column
        break;
      case ValueType::kString:
        return Status::TypeError("cannot convert STRING to double");
    }
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over header and the printed rows.
  size_t n = std::min(max_rows, num_rows_);
  std::vector<size_t> width(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    width[c] = schema_.column(c).name.size();
  }
  std::vector<std::vector<std::string>> cells(n);
  for (size_t r = 0; r < n; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = columns_[c].GetValue(r).ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << "+";
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t c = 0; c < width.size(); ++c) {
    const std::string& name = schema_.column(c).name;
    os << " " << name << std::string(width[c] - name.size(), ' ') << " |";
  }
  os << "\n";
  rule();
  for (size_t r = 0; r < n; ++r) {
    os << "|";
    for (size_t c = 0; c < width.size(); ++c) {
      os << " " << cells[r][c] << std::string(width[c] - cells[r][c].size(), ' ')
         << " |";
    }
    os << "\n";
  }
  rule();
  if (n < num_rows_) {
    os << "... " << (num_rows_ - n) << " more rows\n";
  }
  return os.str();
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    columns_.emplace_back(schema_.column(c).type);
  }
}

TableBuilder& TableBuilder::AddRow(Row row) {
  Status s = TryAddRow(std::move(row));
  GALAXY_CHECK(s.ok()) << s.ToString();
  return *this;
}

Status TableBuilder::TryAddRow(Row row) {
  GALAXY_RETURN_IF_ERROR(CheckRowAgainstSchema(schema_, row));
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
  ++num_rows_;
  return Status::OK();
}

Table TableBuilder::Build() {
  num_rows_ = 0;
  return Table(schema_, std::move(columns_));
}

}  // namespace galaxy
