#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace galaxy {

/// Column data types supported by the relational substrate.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed scalar: NULL, 64-bit integer, double, or string.
/// Used as the cell type of relation::Table rows and as the runtime value of
/// SQL expression evaluation. Numeric comparisons between kInt64 and kDouble
/// promote to double, matching SQL semantics.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Typed accessors; calling the wrong accessor aborts (programming error).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value as double, promoting kInt64; returns an error for
  /// non-numeric values.
  Result<double> ToDouble() const;

  /// SQL-style three-valued comparison helpers are provided at the SQL
  /// layer; these operators implement total comparisons where NULL sorts
  /// before everything and cross-type comparisons order by type.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  /// Rendering used by table printing and test diagnostics.
  std::string ToString() const;

  /// Hash compatible with operator== (numeric 3 == 3.0 hash equal).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace galaxy

