#include "relation/value.h"

#include <cmath>

#include "common/str_util.h"

namespace galaxy {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::TypeError("cannot convert " +
                               std::string(ValueTypeToString(type())) +
                               " to double");
  }
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      return AsInt64() == other.AsInt64();
    }
    return ToDouble().value() == other.ToDouble().value();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kString:
      return AsString() == other.AsString();
    default:
      return false;  // unreachable: numerics handled above
  }
}

bool Value::operator<(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      return AsInt64() < other.AsInt64();
    }
    return ToDouble().value() < other.ToDouble().value();
  }
  // Order across types: NULL < numeric < string.
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  if (rank(type()) != rank(other.type())) {
    return rank(type()) < rank(other.type());
  }
  if (type() == ValueType::kString) return AsString() < other.AsString();
  return false;  // both NULL
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64: {
      // Hash integers through double when they are representable so that
      // 3 and 3.0 (which compare equal) hash equal.
      double d = static_cast<double>(AsInt64());
      if (static_cast<int64_t>(d) == AsInt64()) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(AsInt64());
    }
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace galaxy
