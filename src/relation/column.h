#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace galaxy {

/// A typed column vector: the storage unit of the column-major (SoA)
/// relation::Table. Cells live in one dense typed array selected by
/// `type()`; NULLs occupy a zero/empty slot in that array and are marked in
/// a validity bitmap (bit set = valid). The bitmap is materialized lazily on
/// the first NULL, so fully-valid columns carry no per-row overhead. A
/// column whose type is kNull holds only NULLs and stores no typed payload.
///
/// Scans read the typed arrays directly (`doubles()`, `ints()`,
/// `strings()`) — this is what the batch executor and the dominance-kernel
/// gather paths are built on. `GetValue` materializes a single cell as a
/// boxed Value for the scalar paths.
class Column {
 public:
  Column() = default;
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// True when row `i` is NULL.
  bool is_null(size_t i) const {
    if (null_count_ == 0) return false;
    return (valid_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
  }

  void Reserve(size_t n);

  /// Typed appends. The caller must match the column type (checked).
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  /// Appends a boxed value. NULL is always accepted; kInt64 widens into
  /// kDouble columns. Any other mismatch aborts (programming error — use
  /// TableBuilder::TryAddRow for untrusted input).
  void AppendValue(const Value& v);

  /// Materializes cell `i` as a boxed Value (copies strings).
  Value GetValue(size_t i) const;

  /// Dense typed payloads; valid only for the matching type(). NULL slots
  /// hold 0 / 0.0 / "" and must be masked with is_null().
  const std::vector<int64_t>& ints() const;
  const std::vector<double>& doubles() const;
  const std::vector<std::string>& strings() const;

 private:
  void PushValidBit(bool valid);

  ValueType type_ = ValueType::kNull;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> valid_;  // empty = all rows valid
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// Accumulates dynamically typed output values into a Column, inferring the
/// type incrementally: the first non-null value fixes the type, an
/// int/double mix widens the column (rewriting already-appended ints) and
/// any other mix is a TypeError. This replaces the executor's old two-pass
/// result materialization (a full O(rows x cols) InferType scan followed by
/// a row-by-row TableBuilder rebuild) with a single append pass.
class ValueColumnBuilder {
 public:
  /// `name` is used in TypeError messages only.
  explicit ValueColumnBuilder(std::string name) : name_(std::move(name)) {}

  Status Append(const Value& v);

  /// Type inferred so far (kNull until the first non-null value).
  ValueType type() const { return column_.type(); }
  size_t size() const { return column_.size(); }

  /// Finalizes the column; an all-null column takes `fallback_type`.
  Column Build(ValueType fallback_type) &&;

 private:
  std::string name_;
  Column column_;
};

}  // namespace galaxy
