#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace galaxy {

/// Options for CSV reading.
struct CsvReadOptions {
  char delimiter = ',';
  /// First row holds column names. When false, columns are named c0..cN.
  bool has_header = true;
  /// Empty fields (and the literal "NULL") become SQL NULLs.
  bool empty_is_null = true;
  /// Upper bound on the byte length of one logical record (a quoted field
  /// may span physical lines). Longer records — truncated files, binary
  /// junk, runaway unclosed quotes — fail with kParseError instead of
  /// buffering without bound. 0 = unlimited.
  size_t max_record_bytes = 16 * 1024 * 1024;
};

/// Parses a CSV document into a Table. Column types are inferred from the
/// data: a column whose every non-null field parses as an integer is
/// INT64; parseable as a number, DOUBLE; otherwise STRING. Quoted fields
/// ("a,b" and doubled "" escapes) are supported. Malformed input — ragged
/// rows, embedded NUL bytes, unterminated quotes, records longer than
/// CsvReadOptions::max_record_bytes — fails with kParseError naming the
/// offending physical (1-based) line.
Result<Table> ReadCsv(std::istream& input, const CsvReadOptions& options = {});

/// Convenience overload parsing from a string.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

/// Splits one CSV record (double-quote quoting, "" escapes) into raw
/// fields. No type conversion; comma delimiter only.
Result<std::vector<std::string>> SplitCsvRecord(std::string_view line);

/// Parses one CSV record into a typed Row matching `schema` — the /update
/// request-body format, shared by the HTTP server and WAL recovery replay
/// (both sides MUST interpret a logged row identically). Surrounding
/// whitespace is trimmed; empty fields and the literal NULL become SQL
/// NULLs; numeric fields must parse in full.
Result<Row> ParseCsvRowForSchema(const Schema& schema, std::string_view body);

/// Writes a table as CSV (header row + data rows; strings are quoted when
/// they contain the delimiter, quotes or newlines; NULLs are empty).
Status WriteCsv(const Table& table, std::ostream& output,
                char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace galaxy

