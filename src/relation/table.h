#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace galaxy {

/// A materialized tuple.
using Row = std::vector<Value>;

/// An immutable in-memory relation: a schema plus a vector of rows. Tables
/// are the substrate shared by the SQL engine, the record-skyline operators
/// and the aggregate-skyline operator. Construct with TableBuilder, which
/// type-checks every appended row.
class Table {
 public:
  Table() = default;
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Cell accessor by row index and column index.
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Cell accessor by row index and column name.
  Result<Value> at(size_t row, const std::string& column) const;

  /// Extracts the named numeric columns of every row into dense points
  /// (row-major), the input format of the skyline operators. Fails on
  /// non-numeric or NULL cells.
  Result<std::vector<std::vector<double>>> ExtractNumeric(
      const std::vector<std::string>& columns) const;

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Builds a Table row by row with type checking. Int64 values are accepted
/// into DOUBLE columns (widening); all other mismatches are errors.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a row; returns *this for chaining. Aborts on arity or type
  /// mismatch — use TryAddRow in code paths that handle untrusted input.
  TableBuilder& AddRow(Row row);

  /// Appends a row; returns an error on arity or type mismatch.
  Status TryAddRow(Row row);

  /// Number of rows appended so far.
  size_t num_rows() const { return rows_.size(); }

  /// Finalizes the table, consuming the accumulated rows.
  Table Build();

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace galaxy

