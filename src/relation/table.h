#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/column.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace galaxy {

/// A materialized tuple.
using Row = std::vector<Value>;

/// An immutable in-memory relation: a schema plus column-major (SoA)
/// storage — one typed Column vector per schema column (see
/// relation/column.h). Tables are the substrate shared by the SQL engine,
/// the record-skyline operators and the aggregate-skyline operator.
/// Construct with TableBuilder, which type-checks every appended row, or
/// directly from typed columns.
///
/// Hot paths read whole columns (`column(c)` and the typed payload
/// accessors) instead of materializing rows; `MaterializeRow`/`DebugRows`
/// exist for debug, test and seeding paths only and are lint-restricted
/// outside src/relation/ (galaxy_lint rule `row-major-access`).
class Table {
 public:
  Table() = default;

  /// Primary constructor: one typed column per schema column, all the same
  /// length. Column types must match the schema (checked).
  Table(Schema schema, std::vector<Column> columns);

  /// Convenience constructor converting row-major input (tests, small
  /// fixtures). Cell types must match the schema modulo int->double
  /// widening and NULLs (checked).
  Table(Schema schema, const std::vector<Row>& rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Column accessors — the batch-execution interface.
  const Column& column(size_t c) const { return columns_[c]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Cell accessor by row index and column index (boxes the cell).
  Value at(size_t row, size_t col) const { return columns_[col].GetValue(row); }

  /// Cell accessor by row index and column name.
  Result<Value> at(size_t row, const std::string& column) const;

  /// Materializes one row as boxed values (copies every cell). Debug, test
  /// and view-seeding paths only; not for per-row query execution.
  Row MaterializeRow(size_t i) const;

  /// Materializes every row. Debug and test assertions only.
  std::vector<Row> DebugRows() const;

  /// Index of the first row equal to `row` (Value equality, so int 3
  /// matches double 3.0), or nullopt.
  std::optional<size_t> FindRow(const Row& row) const;

  /// Copy-on-write helpers for the immutable-snapshot update path: clone
  /// the column vectors with one row appended / removed, without
  /// re-boxing the table through rows. Appends type-check like
  /// TableBuilder::TryAddRow; removal targets the first FindRow match.
  Result<Table> CopyWithAppended(const Row& row) const;
  Result<Table> CopyWithRemoved(const Row& row) const;

  /// Extracts the named numeric columns of every row into dense points
  /// (row-major), the input format of the record-skyline operators. Fails
  /// on non-numeric or NULL cells.
  Result<std::vector<std::vector<double>>> ExtractNumeric(
      const std::vector<std::string>& columns) const;

  /// Column-major variant: one contiguous double slice per requested
  /// column. For kDouble columns the span aliases the column storage
  /// directly (zero-copy: pointer-identical to `column(c).doubles()`);
  /// kInt64 columns are converted once into `owned`. Fails on NULL cells
  /// and non-numeric columns.
  struct NumericColumns {
    std::vector<std::span<const double>> slices;
    // Backing store for converted (non-double) columns; slices may point
    // into it, so move it together with them.
    std::vector<std::vector<double>> owned;
  };
  Result<NumericColumns> ExtractNumericColumns(
      const std::vector<std::string>& columns) const;

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

/// Builds a Table row by row with type checking, appending straight into
/// typed columns. Int64 values are accepted into DOUBLE columns (widening);
/// all other mismatches are errors.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends a row; returns *this for chaining. Aborts on arity or type
  /// mismatch — use TryAddRow in code paths that handle untrusted input.
  TableBuilder& AddRow(Row row);

  /// Appends a row; returns an error on arity or type mismatch.
  Status TryAddRow(Row row);

  /// Number of rows appended so far.
  size_t num_rows() const { return num_rows_; }

  /// Finalizes the table, consuming the accumulated columns.
  Table Build();

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace galaxy
