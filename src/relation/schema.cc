#include "relation/schema.h"

#include "common/str_util.h"

namespace galaxy {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  index_.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = index_.try_emplace(AsciiLower(columns_[i].name), i);
    if (!inserted) it->second = kAmbiguous;
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(AsciiLower(name));
  if (it == index_.end()) {
    return Status::NotFound("no column named: " + name);
  }
  if (it->second == kAmbiguous) {
    return Status::InvalidArgument("ambiguous column name: " + name);
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.contains(AsciiLower(name));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace galaxy
