#include "relation/schema.h"

#include "common/str_util.h"

namespace galaxy {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      if (found != columns_.size()) {
        return Status::InvalidArgument("ambiguous column name: " + name);
      }
      found = i;
    }
  }
  if (found == columns_.size()) {
    return Status::NotFound("no column named: " + name);
  }
  return found;
}

bool Schema::Contains(const std::string& name) const {
  for (const ColumnDef& c : columns_) {
    if (EqualsIgnoreCase(c.name, name)) return true;
  }
  return false;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace galaxy
