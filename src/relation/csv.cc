#include "relation/csv.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace galaxy {

namespace {

// Splits one logical CSV record (may span physical lines inside quotes)
// from the stream; returns false at end of input. `*line` is the current
// physical 1-based line number, advanced past the newlines consumed;
// `*record_line` receives the line the record started on, so parse errors
// can point at the offending input even when quoting spans lines.
bool ReadRecord(std::istream& input, const CsvReadOptions& options,
                std::vector<std::string>* fields, bool* blank,
                bool* parse_error, std::string* error, size_t* line,
                size_t* record_line) {
  fields->clear();
  *blank = false;
  *parse_error = false;
  int c = input.get();
  if (c == std::char_traits<char>::eof()) return false;
  *record_line = *line;

  auto fail = [&](const std::string& message) {
    *parse_error = true;
    *error = "line " + std::to_string(*record_line) + ": " + message;
    return true;
  };

  std::string field;
  size_t record_bytes = 0;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_quoted = false;
  bool any_delimiter = false;
  while (true) {
    if (c == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return fail("unterminated quoted field at end of input");
      }
      break;
    }
    char ch = static_cast<char>(c);
    if (ch == '\0') {
      // NUL bytes mean binary data, not CSV; no later layer of the string
      // pipeline handles them gracefully, so reject the file here.
      return fail("embedded NUL byte");
    }
    if (options.max_record_bytes != 0 &&
        ++record_bytes > options.max_record_bytes) {
      return fail("record longer than " +
                  std::to_string(options.max_record_bytes) +
                  " bytes (CsvReadOptions::max_record_bytes)");
    }
    if (in_quotes) {
      if (ch == '"') {
        int next = input.peek();
        if (next == '"') {
          field += '"';
          input.get();
        } else {
          in_quotes = false;
        }
      } else {
        if (ch == '\n') ++*line;
        field += ch;
      }
    } else if (ch == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      any_quoted = true;
    } else if (ch == options.delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      any_delimiter = true;
    } else if (ch == '\n') {
      ++*line;
      break;
    } else if (ch == '\r') {
      // swallow; handles \r\n line endings
    } else {
      field += ch;
    }
    c = input.get();
  }
  fields->push_back(std::move(field));
  // A physically empty line (no delimiters, no quotes, no content) is a
  // blank record the caller may skip; a lone quoted empty field is not.
  *blank = !any_delimiter && !any_quoted && fields->size() == 1 &&
           (*fields)[0].empty();
  return true;
}

bool ParsesAsInt(const std::string& s, int64_t* value) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *value = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* value) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *value = v;
  return true;
}

}  // namespace

Result<Table> ReadCsv(std::istream& input, const CsvReadOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> records;
  std::vector<size_t> record_lines;  // physical start line of each record
  std::vector<std::string> fields;
  bool parse_error = false;
  std::string error;

  bool first = true;
  bool blank = false;
  size_t line = 1;
  size_t record_line = 1;
  while (ReadRecord(input, options, &fields, &blank, &parse_error, &error,
                    &line, &record_line)) {
    if (parse_error) return Status::ParseError(error);
    if (blank) continue;  // skip physically blank lines
    if (first && options.has_header) {
      header = fields;
      first = false;
      continue;
    }
    first = false;
    records.push_back(fields);
    record_lines.push_back(record_line);
  }

  size_t columns = options.has_header
                       ? header.size()
                       : (records.empty() ? 0 : records[0].size());
  if (columns == 0) {
    return Status::InvalidArgument("CSV input has no columns");
  }
  if (!options.has_header) {
    header.clear();
    for (size_t i = 0; i < columns; ++i) {
      header.push_back("c" + std::to_string(i));
    }
  }
  for (size_t r = 0; r < records.size(); ++r) {
    if (records[r].size() != columns) {
      return Status::ParseError(
          "line " + std::to_string(record_lines[r]) + ": row has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(columns));
    }
  }

  auto is_null = [&](const std::string& s) {
    return options.empty_is_null && (s.empty() || s == "NULL");
  };

  // Type inference per column: INT64 ⊂ DOUBLE ⊂ STRING.
  std::vector<ValueType> types(columns, ValueType::kNull);
  for (const auto& record : records) {
    for (size_t c = 0; c < columns; ++c) {
      if (is_null(record[c])) continue;
      int64_t iv;
      double dv;
      ValueType observed = ParsesAsInt(record[c], &iv) ? ValueType::kInt64
                           : ParsesAsDouble(record[c], &dv)
                               ? ValueType::kDouble
                               : ValueType::kString;
      ValueType& t = types[c];
      if (t == ValueType::kNull) {
        t = observed;
      } else if (t != observed) {
        if ((t == ValueType::kInt64 && observed == ValueType::kDouble) ||
            (t == ValueType::kDouble && observed == ValueType::kInt64)) {
          t = ValueType::kDouble;
        } else {
          t = ValueType::kString;
        }
      }
    }
  }
  for (ValueType& t : types) {
    if (t == ValueType::kNull) t = ValueType::kString;  // all-null column
  }

  // Build the typed columns directly from the string records — the
  // column-major table needs no row materialization on the load path.
  std::vector<ColumnDef> defs;
  defs.reserve(columns);
  std::vector<Column> cols;
  cols.reserve(columns);
  for (size_t c = 0; c < columns; ++c) {
    defs.push_back({header[c], types[c]});
    Column col{types[c]};
    col.Reserve(records.size());
    cols.push_back(std::move(col));
  }
  for (const auto& record : records) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string& s = record[c];
      if (is_null(s)) {
        cols[c].AppendNull();
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParsesAsInt(s, &v);
          cols[c].AppendInt64(v);
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParsesAsDouble(s, &v);
          cols[c].AppendDouble(v);
          break;
        }
        default:
          cols[c].AppendString(s);
      }
    }
  }
  return Table(Schema(std::move(defs)), std::move(cols));
}

Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options) {
  std::istringstream stream(text);
  return ReadCsv(stream, options);
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream stream(path);
  if (!stream) {
    return Status::NotFound("cannot open file: " + path);
  }
  return ReadCsv(stream, options);
}

namespace {

void WriteField(std::ostream& output, const std::string& s, char delimiter) {
  bool needs_quotes = s.find(delimiter) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos ||
                      s.find('\r') != std::string::npos;
  if (!needs_quotes) {
    output << s;
    return;
  }
  output << '"';
  for (char c : s) {
    if (c == '"') output << '"';
    output << c;
  }
  output << '"';
}

}  // namespace

Result<std::vector<std::string>> SplitCsvRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (quoted) {
    return Status::ParseError("unterminated quote in update row");
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<Row> ParseCsvRowForSchema(const Schema& schema, std::string_view body) {
  std::string_view line = StrTrim(body);
  GALAXY_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitCsvRecord(line));
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "update row has " + std::to_string(fields.size()) +
        " fields; table has " + std::to_string(schema.num_columns()) +
        " columns");
  }
  Row row;
  row.reserve(fields.size());
  for (size_t c = 0; c < fields.size(); ++c) {
    const std::string& field = fields[c];
    const ColumnDef& col = schema.column(c);
    if (field.empty() || field == "NULL") {
      row.push_back(Value::Null());
      continue;
    }
    switch (col.type) {
      case ValueType::kInt64: {
        char* end = nullptr;
        errno = 0;
        long long v = std::strtoll(field.c_str(), &end, 10);
        if (errno != 0 || end != field.c_str() + field.size()) {
          return Status::TypeError("column " + col.name +
                                   " expects INT64, got: " + field);
        }
        row.push_back(Value(static_cast<int64_t>(v)));
        break;
      }
      case ValueType::kDouble: {
        char* end = nullptr;
        errno = 0;
        double v = std::strtod(field.c_str(), &end);
        if (errno != 0 || end != field.c_str() + field.size()) {
          return Status::TypeError("column " + col.name +
                                   " expects DOUBLE, got: " + field);
        }
        row.push_back(Value(v));
        break;
      }
      case ValueType::kString:
      case ValueType::kNull:
        row.push_back(Value(field));
        break;
    }
  }
  return row;
}

Status WriteCsv(const Table& table, std::ostream& output, char delimiter) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) output << delimiter;
    WriteField(output, table.schema().column(c).name, delimiter);
  }
  output << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) output << delimiter;
      const Value& v = table.at(r, c);
      if (!v.is_null()) {
        WriteField(output, v.ToString(), delimiter);
      }
    }
    output << "\n";
  }
  if (!output) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  // CSV export of query results, not durable server state — crash safety
  // is not part of this file's contract, so it stays off the Env seam.
  // galaxy-lint: allow(raw-file-io)
  std::ofstream stream(path);
  if (!stream) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  return WriteCsv(table, stream, delimiter);
}

}  // namespace galaxy
