#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace galaxy {

/// A named, typed column of a relation.
struct ColumnDef {
  std::string name;
  ValueType type;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of column definitions. Column names are matched
/// case-insensitively (SQL identifier semantics) but stored as declared.
/// Name lookup is a precomputed lowercase-name -> index hash map, so
/// IndexOf/Contains are O(1) instead of a linear scan per cell access.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given (case-insensitive) name, or an
  /// error if absent or ambiguous.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if a column with the given name exists.
  bool Contains(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  // Lowercased name -> column index; names declared more than once map to
  // kAmbiguous so IndexOf can keep reporting the ambiguity.
  static constexpr size_t kAmbiguous = static_cast<size_t>(-1);
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace galaxy
