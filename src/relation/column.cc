#include "relation/column.h"

#include "common/logging.h"

namespace galaxy {

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
  }
}

void Column::PushValidBit(bool valid) {
  if (valid_.empty()) {
    if (valid) return;  // stay in the implicit all-valid representation
    // First NULL: materialize the bitmap, backfilling ones for every row
    // appended so far.
    valid_.assign((size_ + 64) / 64 + 1, 0);
    for (size_t i = 0; i < size_; ++i) {
      valid_[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  size_t word = size_ >> 6;
  if (word >= valid_.size()) valid_.resize(word + 1, 0);
  if (valid) valid_[word] |= uint64_t{1} << (size_ & 63);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
  }
  PushValidBit(false);
  ++null_count_;
  ++size_;
}

void Column::AppendInt64(int64_t v) {
  GALAXY_CHECK(type_ == ValueType::kInt64);
  ints_.push_back(v);
  PushValidBit(true);
  ++size_;
}

void Column::AppendDouble(double v) {
  GALAXY_CHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  PushValidBit(true);
  ++size_;
}

void Column::AppendString(std::string v) {
  GALAXY_CHECK(type_ == ValueType::kString);
  strings_.push_back(std::move(v));
  PushValidBit(true);
  ++size_;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (type_ == ValueType::kDouble && v.type() == ValueType::kInt64) {
    AppendDouble(static_cast<double>(v.AsInt64()));
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      return;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case ValueType::kString:
      AppendString(v.AsString());
      return;
    case ValueType::kNull:
      return;  // handled above
  }
}

Value Column::GetValue(size_t i) const {
  if (is_null(i) || type_ == ValueType::kNull) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[i]);
    case ValueType::kDouble:
      return Value(doubles_[i]);
    case ValueType::kString:
      return Value(strings_[i]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

const std::vector<int64_t>& Column::ints() const {
  GALAXY_CHECK(type_ == ValueType::kInt64);
  return ints_;
}

const std::vector<double>& Column::doubles() const {
  GALAXY_CHECK(type_ == ValueType::kDouble);
  return doubles_;
}

const std::vector<std::string>& Column::strings() const {
  GALAXY_CHECK(type_ == ValueType::kString);
  return strings_;
}

Status ValueColumnBuilder::Append(const Value& v) {
  if (v.is_null()) {
    column_.AppendNull();
    return Status::OK();
  }
  if (column_.type() == ValueType::kNull) {
    // First non-null value fixes the column type; re-box the NULL prefix.
    Column typed{v.type()};
    typed.Reserve(column_.size() + 1);
    for (size_t i = 0; i < column_.size(); ++i) typed.AppendNull();
    column_ = std::move(typed);
    column_.AppendValue(v);
    return Status::OK();
  }
  if (column_.type() == ValueType::kInt64 && v.type() == ValueType::kDouble) {
    // Widen the whole column to double, preserving the validity bitmap.
    Column widened{ValueType::kDouble};
    widened.Reserve(column_.size() + 1);
    const std::vector<int64_t>& ints = column_.ints();
    for (size_t i = 0; i < column_.size(); ++i) {
      if (column_.is_null(i)) {
        widened.AppendNull();
      } else {
        widened.AppendDouble(static_cast<double>(ints[i]));
      }
    }
    column_ = std::move(widened);
    column_.AppendDouble(v.AsDouble());
    return Status::OK();
  }
  bool accepts =
      column_.type() == v.type() ||
      (column_.type() == ValueType::kDouble && v.type() == ValueType::kInt64);
  if (!accepts) {
    return Status::TypeError("column '" + name_ + "' expects " +
                             ValueTypeToString(column_.type()) + ", got " +
                             ValueTypeToString(v.type()));
  }
  column_.AppendValue(v);
  return Status::OK();
}

Column ValueColumnBuilder::Build(ValueType fallback_type) && {
  if (column_.type() != ValueType::kNull || fallback_type == ValueType::kNull) {
    return std::move(column_);
  }
  Column typed{fallback_type};
  for (size_t i = 0; i < column_.size(); ++i) typed.AppendNull();
  return typed;
}

}  // namespace galaxy
